//! Quickstart: detect outliers in a synthetic dataset in a few lines.
//!
//! Run: `cargo run --release --example quickstart`

// Examples favor brevity: panicking on setup failure is the right
// behavior for demo binaries.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic
)]

use dbscout::core::{detect_outliers, DbscoutParams};
use dbscout::data::generators::blobs;
use dbscout::metrics::ConfusionMatrix;

fn main() {
    // Three Gaussian clusters of 4950 points plus 50 planted outliers.
    let dataset = blobs(4950, 50, 3, 0.5, 42);
    println!(
        "dataset: {} points, {} ground-truth outliers ({:.1}% contamination)",
        dataset.len(),
        dataset.num_outliers(),
        dataset.contamination() * 100.0
    );

    // DBSCOUT needs the two DBSCAN parameters: ε and minPts.
    let params = DbscoutParams::new(0.6, 5).expect("valid parameters");
    let result = detect_outliers(&dataset.points, params).expect("detection succeeds");

    println!(
        "DBSCOUT: {} core points, {} outliers, {} cells ({} dense), {} distance computations",
        result.num_core(),
        result.num_outliers(),
        result.stats.num_cells,
        result.stats.dense_cells,
        result.stats.distance_computations
    );
    println!(
        "phase timings: grid {:?}, dense-map {:?}, core {:?}, core-map {:?}, outliers {:?}",
        result.timings.grid,
        result.timings.dense_map,
        result.timings.core_points,
        result.timings.core_map,
        result.timings.outliers
    );

    // How well did it recover the planted outliers?
    let m = ConfusionMatrix::from_masks(&result.outlier_mask(), &dataset.labels);
    println!(
        "vs ground truth: precision {:.3}, recall {:.3}, F1 {:.3}",
        m.precision(),
        m.recall(),
        m.f1()
    );
}
