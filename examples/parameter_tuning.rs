//! Parameter selection the paper's way (§IV-C1): fix minPts, draw the
//! k-dist graph, take ε at the elbow — then see how sensitive the F1
//! score actually is around that choice.
//!
//! Run: `cargo run --release --example parameter_tuning`

// Examples favor brevity: panicking on setup failure is the right
// behavior for demo binaries.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic
)]

use dbscout::core::{detect_outliers, DbscoutParams};
use dbscout::data::generators::{blobs, circles, moons};
use dbscout::data::kdist::{elbow_eps, kdist_graph};
use dbscout::data::LabeledDataset;
use dbscout::metrics::ConfusionMatrix;

fn main() {
    for ds in [
        blobs(3960, 40, 3, 0.5, 1),
        circles(3960, 40, 0.5, 0.03, 1),
        moons(3960, 40, 0.04, 1),
    ] {
        analyze(&ds, 5);
    }
}

fn analyze(ds: &LabeledDataset, min_pts: usize) {
    println!(
        "── {} ({} points, ν = {:.2}) ──",
        ds.name,
        ds.len(),
        ds.contamination()
    );

    // The k-dist graph, printed as a coarse sketch.
    let graph = kdist_graph(&ds.points, min_pts);
    let eps = elbow_eps(&graph).expect("non-trivial graph");
    println!(
        "k-dist graph (k = {min_pts}): head {:.4} … elbow {:.4} … tail {:.4}",
        graph[0],
        eps,
        graph[graph.len() - 1]
    );

    // F1 at the elbow and at perturbed values: the elbow should sit on a
    // wide plateau, which is why the paper calls the technique "very
    // simple" yet sufficient.
    for factor in [0.5, 0.75, 1.0, 1.5, 2.0] {
        let e = eps * factor;
        let params = DbscoutParams::new(e, min_pts).expect("valid parameters");
        let result = detect_outliers(&ds.points, params).expect("detection succeeds");
        let f1 = ConfusionMatrix::from_masks(&result.outlier_mask(), &ds.labels).f1();
        let marker = if (factor - 1.0f64).abs() < 1e-9 {
            "  ← elbow"
        } else {
            ""
        };
        println!(
            "  eps = {e:8.4} ({factor:>4}x): {} outliers, F1 = {f1:.4}{marker}",
            result.num_outliers()
        );
    }
    println!();
}
