//! GPS anomaly detection — the paper's motivating workload (§I): find the
//! isolated fixes in a heavily skewed GPS trace collection, with ε chosen
//! by the k-dist elbow heuristic rather than by hand.
//!
//! Run: `cargo run --release --example gps_anomalies`

// Examples favor brevity: panicking on setup failure is the right
// behavior for demo binaries.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic
)]

use dbscout::core::{Dbscout, DbscoutParams};
use dbscout::data::generators::geolife_like;
use dbscout::data::kdist::suggest_eps;
use dbscout::data::sampling::sample_exact;
use dbscout::spatial::Grid;

fn main() {
    // A Geolife-like trace collection: one dominant metropolitan hotspot,
    // a few minor cities, some world-scale stragglers. 3-D (x, y, alt).
    let n = 100_000;
    let store = geolife_like(n, 7);
    println!("generated {} GPS fixes (3-D)", store.len());

    // Pick ε from the k-dist graph of a sample (minPts = 100, as in the
    // paper's efficiency experiments; the graph needs only a sample).
    let sample = sample_exact(&store, 20_000, 1);
    let eps = suggest_eps(&sample, 100).expect("non-trivial sample");
    println!("k-dist elbow suggests eps ≈ {eps:.1}");

    // Show the skew DBSCOUT has to digest (paper §IV-B2: on real Geolife,
    // 40% of points share one cell at eps = 200).
    let grid = Grid::build(&store, eps).expect("valid eps");
    println!(
        "grid: {} non-empty cells; most populous holds {:.1}% of all points",
        grid.num_cells(),
        grid.skew() * 100.0
    );

    let params = DbscoutParams::new(eps, 100).expect("valid parameters");
    let result = Dbscout::new(params)
        .detect(&store)
        .expect("detection succeeds");
    println!(
        "DBSCOUT found {} anomalous fixes out of {} ({:.2}%) in {:?}",
        result.num_outliers(),
        store.len(),
        100.0 * result.num_outliers() as f64 / store.len() as f64,
        result.timings.total()
    );

    // Peek at a few anomalies.
    for &id in result.outliers.iter().take(5) {
        let p = store.point(id);
        println!(
            "  anomalous fix #{id}: x={:.0} y={:.0} alt={:.0}",
            p[0], p[1], p[2]
        );
    }
}
