//! Streaming outlier detection with the incremental engine — an
//! extension beyond the paper, for the growing GPS feeds its
//! introduction motivates. Watches how outliers get "rescued" as later
//! fixes densify their surroundings.
//!
//! Run: `cargo run --release --example streaming_gps`

// Examples favor brevity: panicking on setup failure is the right
// behavior for demo binaries.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic
)]

use dbscout::core::incremental::IncrementalDbscout;
use dbscout::core::DbscoutParams;
use dbscout::data::generators::geolife_like;

fn main() {
    let stream = geolife_like(50_000, 13);
    let params = DbscoutParams::new(100.0, 50).expect("valid parameters");
    let mut inc = IncrementalDbscout::new(3, params).expect("3-D supported");

    let t = std::time::Instant::now();
    let mut last_report = 0usize;
    for (_, fix) in stream.iter() {
        inc.insert(fix).expect("finite fix");
        let n = inc.len();
        if n >= last_report + 10_000 {
            last_report = n;
            println!(
                "after {:>6} fixes: {:>5} current outliers ({:.2}%), {:.1}s elapsed",
                n,
                inc.outliers().len(),
                100.0 * inc.outliers().len() as f64 / n as f64,
                t.elapsed().as_secs_f64()
            );
        }
    }

    // Sanity: the final state matches a batch run over the same data.
    let batch = dbscout::core::detect_outliers(&stream, params).expect("batch run");
    assert_eq!(inc.labels(), batch.labels.as_slice());
    println!(
        "\nfinal: {} outliers across {} fixes — identical to a from-scratch batch run ✓",
        inc.outliers().len(),
        inc.len()
    );
}
