//! The distributed engine up close: run the paper's Spark-style
//! formulation on the bundled dataflow substrate, compare the §III-G join
//! strategies, and inspect what actually moved through the shuffle.
//!
//! Run: `cargo run --release --example distributed_engine`

// Examples favor brevity: panicking on setup failure is the right
// behavior for demo binaries.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic
)]

use dbscout::core::{DbscoutParams, DistributedDbscout, JoinStrategy};
use dbscout::data::generators::osm_like;
use dbscout::dataflow::ExecutionContext;

fn main() {
    let store = osm_like(100_000, 3);
    let params = DbscoutParams::new(500_000.0, 100).expect("valid parameters");
    println!(
        "OSM-like dataset: {} points; eps = {}, minPts = {}\n",
        store.len(),
        params.eps,
        params.min_pts
    );

    let mut reference: Option<Vec<u32>> = None;
    for strategy in [
        JoinStrategy::Shuffle,
        JoinStrategy::GroupedShuffle,
        JoinStrategy::Broadcast,
    ] {
        let ctx = ExecutionContext::builder().default_partitions(16).build();
        let before = ctx.metrics().snapshot();
        let t = std::time::Instant::now();
        let result = DistributedDbscout::new(ctx.clone(), params)
            .with_strategy(strategy)
            .detect(&store)
            .expect("detection succeeds");
        let elapsed = t.elapsed();
        let m = ctx.metrics().snapshot().since(&before);

        println!("{strategy:?}:");
        println!(
            "  {} outliers in {elapsed:?} ({} distance computations)",
            result.num_outliers(),
            result.stats.distance_computations
        );
        println!(
            "  engine: {} stages, {} tasks, {} records shuffled, {} join outputs, {} broadcasts",
            m.stages, m.tasks, m.shuffle_records, m.join_output_records, m.broadcasts
        );

        // Exactness holds regardless of strategy.
        match &reference {
            None => reference = Some(result.outliers.clone()),
            Some(r) => assert_eq!(&result.outliers, r, "strategies must agree"),
        }
        println!();
    }
    println!("all three strategies returned identical outlier sets ✓");
}
