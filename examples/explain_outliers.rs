//! Outlier triage: detect, rank by nearest-core distance, and print a
//! counterfactual explanation for the top findings — what a human
//! reviewing the alerts actually needs.
//!
//! Run: `cargo run --release --example explain_outliers`

// Examples favor brevity: panicking on setup failure is the right
// behavior for demo binaries.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic
)]

use dbscout::core::explain::{consistent, explain};
use dbscout::core::{outlier_scores, DbscoutParams};
use dbscout::data::generators::blobs;

fn main() {
    let ds = blobs(4950, 50, 3, 0.5, 99);
    let params = DbscoutParams::new(0.6, 5).expect("valid parameters");
    let scored = outlier_scores(&ds.points, params).expect("detection succeeds");
    println!(
        "{} points, {} outliers detected\n",
        ds.len(),
        scored.result.num_outliers()
    );

    // Rank outliers by how far outside every dense region they sit.
    let mut ranked: Vec<u32> = scored.result.outliers.clone();
    ranked.sort_by(|&a, &b| scored.scores[b as usize].total_cmp(&scored.scores[a as usize]));

    let top: Vec<u32> = ranked.iter().take(5).copied().collect();
    println!("top {} most extreme outliers:", top.len());
    let explanations =
        explain(&ds.points, &scored.result, params, &top).expect("explanation succeeds");
    for e in &explanations {
        assert!(consistent(e, params), "explanation must match the label");
        println!("  {e}");
    }

    // Borderline cases are the interesting ones for a reviewer: the
    // outliers *closest* to being covered.
    let bottom: Vec<u32> = ranked.iter().rev().take(3).copied().collect();
    println!("\nborderline outliers (closest to a dense region):");
    for e in explain(&ds.points, &scored.result, params, &bottom).expect("explanation succeeds") {
        let slack = e.eps_to_cover.map(|d| d - params.eps);
        println!(
            "  {e}\n    → would be covered if eps grew by {:.4}",
            slack.unwrap_or(f64::INFINITY)
        );
    }
}
