//! Fault detection in sensor telemetry — one of the applications the
//! paper's introduction motivates. Readings are embedded as
//! (value, rate-of-change) pairs; healthy operation forms dense regions
//! (steady state, periodic swings) while faults (spikes, dropouts, stuck
//! values drifting) land outside them. Compares DBSCOUT against LOF and
//! Isolation Forest on the same stream.
//!
//! Run: `cargo run --release --example sensor_faults`

// Examples favor brevity: panicking on setup failure is the right
// behavior for demo binaries.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic
)]

use dbscout::baselines::{IsolationForest, KnnOutlier, Lof};
use dbscout::core::{outlier_scores, DbscoutParams};
use dbscout::data::kdist::suggest_eps;
use dbscout::data::transform::Scaler;
use dbscout::metrics::{roc_auc, ConfusionMatrix};
use dbscout::spatial::PointStore;
use dbscout_rng::Rng;

fn main() {
    let (raw, truth) = simulate_telemetry(20_000, 60, 11);
    println!(
        "telemetry: {} readings, {} injected faults",
        raw.len(),
        truth.iter().filter(|&&t| t).count()
    );

    // The value and Δvalue axes have different spreads: standardize so a
    // single global ε treats them commensurably.
    let scaler = Scaler::fit_standard(&raw).expect("non-empty stream");
    let store = scaler.transform(&raw).expect("same dims");

    // DBSCOUT with elbow-selected eps, plus the nearest-core-distance
    // score so the detectors can also be compared threshold-free.
    let eps = suggest_eps(&store, 10).expect("non-trivial stream");
    let params = DbscoutParams::new(eps, 10).expect("valid parameters");
    let scout = outlier_scores(&store, params).expect("detection succeeds");
    report(
        "DBSCOUT",
        &scout.result.outlier_mask(),
        &scout.scores,
        &truth,
    );

    // Baselines at the true contamination.
    let nu = truth.iter().filter(|&&t| t).count() as f64 / truth.len() as f64;
    report(
        "LOF(k=20)",
        &Lof::new(20).detect(&store, nu),
        &Lof::new(20).score(&store).scores,
        &truth,
    );
    report(
        "IsolationForest",
        &IsolationForest::new(1).detect(&store, nu),
        &IsolationForest::new(1).score(&store),
        &truth,
    );
    report(
        "kNN-dist(k=10)",
        &KnnOutlier::new(10).detect(&store, nu),
        &KnnOutlier::new(10).score(&store),
        &truth,
    );
    println!(
        "\nnote: LOF with k smaller than the fault population suffers the classic\n\
         *masking* effect — the faults form their own consistent-density group, so\n\
         their local density ratio looks normal. Density methods with a global ε\n\
         (DBSCOUT) and global-distance methods (kNN-dist, IF) are immune."
    );
}

fn report(name: &str, predicted: &[bool], scores: &[f64], truth: &[bool]) {
    let m = ConfusionMatrix::from_masks(predicted, truth);
    let auc = roc_auc(scores, truth).unwrap_or(f64::NAN);
    println!(
        "{name:16} precision {:.3}  recall {:.3}  F1 {:.3}  ROC-AUC {:.3}",
        m.precision(),
        m.recall(),
        m.f1(),
        auc
    );
}

/// A sensor alternating between a steady state and periodic swings, with
/// injected spike/dropout faults. Embedded as (value, Δvalue) pairs.
fn simulate_telemetry(n: usize, faults: usize, seed: u64) -> (PointStore, Vec<bool>) {
    let mut rng = Rng::seed_from_u64(seed);
    let mut values = Vec::with_capacity(n);
    for t in 0..n {
        let phase = (t / 2000) % 2;
        let base = if phase == 0 {
            50.0
        } else {
            50.0 + 12.0 * (t as f64 * 0.05).sin()
        };
        values.push(base + rng.gen_range(-0.4..0.4));
    }
    // Inject faults at random positions: spikes or dropouts.
    let mut fault_at = vec![false; n];
    for _ in 0..faults {
        let i = rng.gen_range(1..n);
        fault_at[i] = true;
        values[i] = if rng.gen_bool(0.5) {
            values[i] + rng.gen_range(30.0..80.0) // spike
        } else {
            rng.gen_range(-10.0..0.0) // dropout
        };
    }
    // Embed as (value, delta).
    let mut store = PointStore::new(2).expect("2-D");
    let mut truth = Vec::with_capacity(n - 1);
    for t in 1..n {
        store
            .push(&[values[t], values[t] - values[t - 1]])
            .expect("finite reading");
        // A fault contaminates its own (value, Δ) reading and the next
        // reading's Δ (the recovery swing) — label both.
        truth.push(fault_at[t] || fault_at[t - 1]);
    }
    (store, truth)
}
