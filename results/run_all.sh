#!/bin/sh
# Regenerates every table and figure of the paper at default laptop scale.
set -x
cd /root/repo
cargo run --release -p dbscout-bench --bin table1 > results/table1.txt 2>&1
cargo run --release -p dbscout-bench --bin table3 > results/table3.txt 2>&1
cargo run --release -p dbscout-bench --bin table4 > results/table4.txt 2>&1
cargo run --release -p dbscout-bench --bin table5 > results/table5.txt 2>&1
cargo run --release -p dbscout-bench --bin fig11 > results/fig11.txt 2>&1
cargo run --release -p dbscout-bench --bin fig12 > results/fig12.txt 2>&1
cargo run --release -p dbscout-bench --bin fig13 > results/fig13.txt 2>&1
cargo run --release -p dbscout-bench --bin table2_fig10 > results/table2_fig10.txt 2>&1
echo ALL_DONE
