//! Miniature versions of every paper experiment, wired through the same
//! code paths as the full binaries — so the experiment harness itself is
//! covered by `cargo test`.

// Tests assert on known-good data; panicking is the failure mode.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic,
    clippy::float_cmp
)]

use dbscout::baselines::{IsolationForest, Lof, OneClassSvm, RpDbscan};
use dbscout::core::{detect_outliers, DbscoutParams, DistributedDbscout};
use dbscout::data::generators::{geolife_like, moons, osm_like};
use dbscout::data::kdist::suggest_eps;
use dbscout::data::sampling::sample_fraction;
use dbscout::dataflow::ExecutionContext;
use dbscout::metrics::ConfusionMatrix;
use dbscout::spatial::neighbors::{count_k_d, loose_upper_bound};

#[test]
fn table1_shape() {
    // The exact values are asserted in the spatial crate; here: the bound
    // dominates and both grow with d.
    let mut prev = 0;
    for d in 2..=5 {
        let kd = count_k_d(d).unwrap();
        assert!(kd <= loose_upper_bound(d));
        assert!(kd > prev);
        prev = kd;
    }
}

#[test]
fn table2_shape_mini() {
    // DBSCOUT must do (distance-)work linear in n while staying exact.
    let base = osm_like(20_000, 1);
    let params = DbscoutParams::new(1_000_000.0, 100).unwrap();
    let full = detect_outliers(&base, params).unwrap();
    let half = detect_outliers(&sample_fraction(&base, 0.5, 2), params).unwrap();
    let work_ratio =
        full.stats.distance_computations as f64 / half.stats.distance_computations.max(1) as f64;
    assert!(
        work_ratio < 4.0,
        "distance work grew superlinearly: {work_ratio}"
    );
}

#[test]
fn fig13_shape_mini() {
    // Partition count must not change the result (the figure varies it
    // for timing only).
    let store = osm_like(5_000, 3);
    let params = DbscoutParams::new(1_000_000.0, 50).unwrap();
    let mut reference = None;
    for parts in [2, 8, 32] {
        let ctx = ExecutionContext::builder().workers(2).build();
        let got = DistributedDbscout::new(ctx, params)
            .with_partitions(parts)
            .detect(&store)
            .unwrap();
        match &reference {
            None => reference = Some(got.outliers),
            Some(r) => assert_eq!(&got.outliers, r, "partitions {parts}"),
        }
    }
}

#[test]
fn table3_shape_mini() {
    // On a non-convex labelled dataset, density methods must beat the
    // one-class boundary method — the paper's central quality claim.
    let ds = moons(1980, 20, 0.04, 5);
    let nu = ds.contamination();
    let eps = suggest_eps(&ds.points, 5).unwrap();
    let scout = detect_outliers(&ds.points, DbscoutParams::new(eps, 5).unwrap()).unwrap();
    let f1 = |mask: &[bool]| ConfusionMatrix::from_masks(mask, &ds.labels).f1();
    let scout_f1 = f1(&scout.outlier_mask());
    let lof_f1 = f1(&Lof::new(10).detect(&ds.points, nu));
    let if_f1 = f1(&IsolationForest::new(1).detect(&ds.points, nu));
    let svm_f1 = f1(&OneClassSvm::new(nu.max(0.01), 1).detect(&ds.points, nu));
    assert!(scout_f1 > 0.8, "DBSCOUT F1 {scout_f1}");
    assert!(lof_f1 > 0.8, "LOF F1 {lof_f1}");
    assert!(
        scout_f1 > svm_f1 && lof_f1 > svm_f1,
        "density methods must beat OC-SVM on moons: {scout_f1}/{lof_f1} vs {svm_f1}"
    );
    let _ = if_f1; // IF varies by seed; the F1 bound above is the claim.
}

#[test]
fn tables45_shape_mini() {
    // RP-DBSCAN-A: superset with FN = 0, and outlier counts shrink as ε
    // grows.
    let store = geolife_like(20_000, 7);
    let mut last = usize::MAX;
    for eps in [50.0, 200.0] {
        let params = DbscoutParams::new(eps, 50).unwrap();
        let exact = detect_outliers(&store, params).unwrap().outlier_mask();
        let ctx = ExecutionContext::builder().workers(2).build();
        let approx = RpDbscan::new(ctx, eps, 50)
            .detect(&store)
            .unwrap()
            .outlier_mask;
        let m = ConfusionMatrix::from_masks(&approx, &exact);
        assert_eq!(m.fn_, 0, "eps {eps}: false negatives");
        let total = m.tp + m.fn_;
        assert!(total < last, "outliers must shrink with eps");
        last = total;
    }
}
