//! Workspace-level integration tests: the umbrella API exercised end to
//! end across generators, engines, baselines, IO and metrics.

// Tests assert on known-good data; panicking is the failure mode.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic,
    clippy::float_cmp
)]

use dbscout::baselines::{Dbscan, IsolationForest, Lof, RpDbscan};
use dbscout::core::{detect_outliers, Dbscout, DbscoutParams, DistributedDbscout};
use dbscout::data::generators::{blobs, circles, cure_t2_like, geolife_like, moons, osm_like};
use dbscout::data::io::{decode_binary, encode_binary, read_csv, write_csv};
use dbscout::data::kdist::suggest_eps;
use dbscout::data::sampling::sample_exact;
use dbscout::dataflow::ExecutionContext;
use dbscout::metrics::ConfusionMatrix;

#[test]
fn detect_on_every_generator_family() {
    // Every generator must produce data DBSCOUT can digest, and planted
    // outliers must be recovered with decent quality.
    let sets = vec![
        blobs(1980, 20, 3, 0.5, 1),
        circles(1980, 20, 0.5, 0.03, 1),
        moons(1980, 20, 0.04, 1),
        cure_t2_like(1),
    ];
    for ds in sets {
        let min_pts = 5;
        let eps = suggest_eps(&ds.points, min_pts).expect("non-trivial dataset");
        let params = DbscoutParams::new(eps, min_pts).unwrap();
        let result = detect_outliers(&ds.points, params).unwrap();
        let f1 = ConfusionMatrix::from_masks(&result.outlier_mask(), &ds.labels).f1();
        assert!(f1 > 0.5, "{}: F1 {f1} too low (eps {eps})", ds.name);
    }
}

#[test]
fn gps_generators_flow_through_both_engines() {
    let store = geolife_like(20_000, 2);
    let params = DbscoutParams::new(100.0, 100).unwrap();
    let native = Dbscout::new(params).detect(&store).unwrap();
    let ctx = ExecutionContext::builder().workers(2).build();
    let dist = DistributedDbscout::new(ctx, params).detect(&store).unwrap();
    assert_eq!(native.outliers, dist.outliers);
    assert!(native.num_outliers() > 0, "skewed GPS data has outliers");
    assert!(
        native.num_outliers() < store.len() as usize / 2,
        "most fixes are inliers"
    );
}

#[test]
fn osm_generator_agrees_across_all_detectors_semantics() {
    let store = sample_exact(&osm_like(30_000, 4), 10_000, 1);
    let params = DbscoutParams::new(1_000_000.0, 50).unwrap();
    let scout = detect_outliers(&store, params).unwrap();

    // DBSCAN noise = DBSCOUT outliers (definitional equivalence).
    let dbscan = Dbscan::new(params.eps, params.min_pts).fit(&store).unwrap();
    assert_eq!(scout.outlier_mask(), dbscan.noise_mask());

    // RP-DBSCAN-A: superset of the exact outliers.
    let ctx = ExecutionContext::builder().workers(2).build();
    let rp = RpDbscan::new(ctx, params.eps, params.min_pts)
        .detect(&store)
        .unwrap();
    for (i, (&e, &a)) in scout
        .outlier_mask()
        .iter()
        .zip(&rp.outlier_mask)
        .enumerate()
    {
        assert!(!e || a, "exact outlier {i} missing from approximation");
    }
}

#[test]
fn score_based_baselines_rank_planted_outliers_high() {
    let ds = blobs(990, 10, 2, 0.4, 9);
    let nu = ds.contamination();
    for (name, mask) in [
        ("lof", Lof::new(20).detect(&ds.points, nu)),
        ("iforest", IsolationForest::new(1).detect(&ds.points, nu)),
    ] {
        let f1 = ConfusionMatrix::from_masks(&mask, &ds.labels).f1();
        assert!(f1 > 0.6, "{name}: F1 {f1}");
    }
}

#[test]
fn csv_and_binary_round_trip_through_detection() {
    let ds = moons(500, 10, 0.05, 3);
    let dir = std::env::temp_dir().join("dbscout-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("moons.csv");
    write_csv(&path, &ds.points, Some(&ds.labels)).unwrap();
    let (loaded, labels) = read_csv(&path, true).unwrap();
    assert_eq!(loaded, ds.points);
    assert_eq!(labels.unwrap(), ds.labels);

    let bin = encode_binary(&ds.points);
    let decoded = decode_binary(&bin).unwrap();
    let params = DbscoutParams::new(0.1, 5).unwrap();
    let a = detect_outliers(&ds.points, params).unwrap();
    let b = detect_outliers(&decoded, params).unwrap();
    assert_eq!(a.outliers, b.outliers);
}

#[test]
fn linearity_of_distance_work() {
    // Lemma 6/8 in practice: doubling n must not blow up the per-point
    // distance work. (Wall-clock is too noisy for CI; the distance
    // counter is exact and deterministic.)
    let big = osm_like(40_000, 5);
    let small = sample_exact(&big, 20_000, 6);
    let params = DbscoutParams::new(500_000.0, 100).unwrap();
    let r_small = detect_outliers(&small, params).unwrap();
    let r_big = detect_outliers(&big, params).unwrap();
    let per_point_small = r_small.stats.distance_computations as f64 / small.len() as f64;
    let per_point_big = r_big.stats.distance_computations as f64 / big.len() as f64;
    // Denser data does more work per point (more neighbors below the
    // minPts early-exit), but it must stay within a small constant.
    assert!(
        per_point_big < per_point_small * 3.0,
        "per-point work grew superlinearly: {per_point_small} -> {per_point_big}"
    );
}

#[test]
fn umbrella_reexports_are_usable() {
    // Compile-time check that every sub-crate is reachable through the
    // umbrella, plus a smoke call through each path.
    let store = dbscout::spatial::PointStore::from_rows(2, vec![vec![0.0, 0.0]]).unwrap();
    assert_eq!(store.len(), 1);
    let _ = dbscout::metrics::ConfusionMatrix::default();
    let ctx = dbscout::dataflow::ExecutionContext::builder()
        .workers(1)
        .build();
    assert_eq!(ctx.workers(), 1);
}
