//! The paper's §III worked example, reconstructed as an executable test.
//!
//! The paper walks a 2-D toy dataset through all five phases with
//! ε = √2 and minPts = 5 (Figs. 2–9): a dense cell at (0,0) whose points
//! are core without any distance check; a two-point cell (1,−1) whose
//! point p1 = (1.1, −0.3) proves core by finding nine neighbors while
//! p2 = (1.9, −0.9) stays non-core; and a cell (0,−2) where
//! p3 = (0.7, −1.5) is rescued by a nearby core point while
//! p4 = (0.3, −1.8) ends up the outlier.
//!
//! The figures' raw coordinates are not published, so this test uses a
//! reconstructed dataset with the paper's named points at their stated
//! coordinates and filler points chosen to satisfy every claim the text
//! makes about them. Each claim is asserted explicitly, on both engines.

// Tests assert on known-good data; panicking is the failure mode.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic,
    clippy::float_cmp
)]

use dbscout::core::{detect_outliers, DbscoutParams, DistributedDbscout, PointLabel};
use dbscout::dataflow::ExecutionContext;
use dbscout::spatial::distance::within;
use dbscout::spatial::{Grid, PointStore};

const EPS: f64 = std::f64::consts::SQRT_2;
const MIN_PTS: usize = 5;

/// Ids 0–4: the dense cell (0,0). Ids 5–8: cell (1,0). Id 9: p1.
/// Id 10: p2. Id 11: p3. Id 12: p4.
fn toy() -> PointStore {
    PointStore::from_rows(
        2,
        vec![
            // Cell (0,0) — exactly minPts points ⇒ dense (Fig. 3).
            vec![0.05, 0.95],
            vec![0.50, 0.50],
            vec![0.80, 0.20],
            vec![0.20, 0.90],
            vec![0.90, 0.60],
            // Cell (1,0) — four points, non-dense.
            vec![1.15, 0.40],
            vec![1.45, 0.45],
            vec![1.75, 0.55],
            vec![1.05, 0.75],
            // Cell (1,-1) — the two example points of Figs. 4–5.
            vec![1.10, -0.30], // p1
            vec![1.90, -0.90], // p2
            // Cell (0,-2) — the two example points of Figs. 7–8.
            vec![0.70, -1.50], // p3
            vec![0.30, -1.80], // p4
        ],
    )
    .expect("finite rows")
}

const P1: u32 = 9;
const P2: u32 = 10;
const P3: u32 = 11;
const P4: u32 = 12;

#[test]
fn grid_definition_step_fig3() {
    // §III-B: ε = √2 in 2-D gives unit cells.
    let store = toy();
    let grid = Grid::build(&store, EPS).unwrap();
    assert!((grid.side() - 1.0).abs() < 1e-12, "side {}", grid.side());
    assert_eq!(grid.num_cells(), 4);
    let cell = |x: f64, y: f64| grid.points_in(&grid.cell_for(&[x, y])).unwrap().len();
    assert_eq!(cell(0.5, 0.5), 5, "cell (0,0)");
    assert_eq!(cell(1.5, 0.5), 4, "cell (1,0)");
    assert_eq!(cell(1.5, -0.5), 2, "cell (1,-1)");
    assert_eq!(cell(0.5, -1.5), 2, "cell (0,-2)");
}

#[test]
fn core_identification_step_figs4_to_6() {
    let store = toy();
    let params = DbscoutParams::new(EPS, MIN_PTS).unwrap();
    let r = detect_outliers(&store, params).unwrap();

    // "Since C1 is dense, all of its points are immediately marked as
    // core" (Lemma 1).
    for id in 0..5u32 {
        assert_eq!(r.labels[id as usize], PointLabel::Core, "dense-cell {id}");
    }

    // "Point p1 = (1.1, −0.3) happens to have nine neighbors, a value
    // which is greater than minPts. Thus, the point is marked as core."
    let eps_sq = EPS * EPS;
    let p1_neighbors = store
        .iter()
        .filter(|&(id, q)| id != P1 && within(store.point(P1), q, eps_sq))
        .count();
    assert_eq!(p1_neighbors, 9, "p1's neighbor count");
    assert_eq!(r.labels[P1 as usize], PointLabel::Core);

    // "Conversely, point p2 = (1.9, −0.9) … is not core" — far fewer
    // points fall inside its ε-neighborhood than sit in the neighboring
    // cells (the red arrows of Fig. 5).
    let p2_ball = store
        .iter()
        .filter(|(_, q)| within(store.point(P2), q, eps_sq))
        .count();
    assert!(p2_ball < MIN_PTS, "p2 ball {p2_ball}");
    assert_ne!(r.labels[P2 as usize], PointLabel::Core);
}

#[test]
fn outlier_identification_step_figs7_to_9() {
    let store = toy();
    let params = DbscoutParams::new(EPS, MIN_PTS).unwrap();
    let r = detect_outliers(&store, params).unwrap();

    // "Point p3 includes [a] core point within its ε-neighborhood, which
    // is a sufficient condition not to classify it as an outlier."
    assert_eq!(r.labels[P3 as usize], PointLabel::Covered);
    assert!(within(store.point(P3), store.point(P1), EPS * EPS));

    // "Point p4 happens to have all the core points … at a distance
    // greater than ε. Thus, it is classified as an outlier."
    assert_eq!(r.labels[P4 as usize], PointLabel::Outlier);
    for (id, l) in r.labels.iter().enumerate() {
        if *l == PointLabel::Core {
            assert!(
                !within(store.point(P4), store.point(id as u32), EPS * EPS),
                "core {id} within eps of p4"
            );
        }
    }

    // Final result (Fig. 9): exactly one outlier in the toy dataset.
    assert_eq!(r.outliers, vec![P4]);
}

#[test]
fn both_engines_agree_on_the_worked_example() {
    let store = toy();
    let params = DbscoutParams::new(EPS, MIN_PTS).unwrap();
    let native = detect_outliers(&store, params).unwrap();
    let ctx = ExecutionContext::builder().workers(2).build();
    let dist = DistributedDbscout::new(ctx, params).detect(&store).unwrap();
    assert_eq!(native.labels, dist.labels);
    assert_eq!(
        native.labels,
        dbscout::core::reference::naive_labels(&store, params)
    );
}
