//! Umbrella crate re-exporting the DBSCOUT workspace. The README below
//! doubles as documentation and as a doctest (its Rust snippet runs under
//! `cargo test`).
//!
#![doc = include_str!("../README.md")]

pub use dbscout_baselines as baselines;
pub use dbscout_core as core;
pub use dbscout_data as data;
pub use dbscout_dataflow as dataflow;
pub use dbscout_metrics as metrics;
pub use dbscout_spatial as spatial;

/// Everything needed to run a detection, in one import.
///
/// ```
/// use dbscout::prelude::*;
///
/// let mut rows: Vec<Vec<f64>> = (0..8).map(|i| vec![0.1 * i as f64, 0.0]).collect();
/// rows.push(vec![1e6, 1e6]);
/// let store = PointStore::from_rows(2, rows).unwrap();
///
/// let params = DbscoutParams::new(1.0, 4).unwrap();
/// let result = DetectorBuilder::new(params).build().detect(&store).unwrap();
/// assert_eq!(result.outliers, vec![8]);
/// ```
pub mod prelude {
    pub use dbscout_core::{
        detect_outliers, Dbscout, DbscoutError, DbscoutParams, DetectorBuilder, DistributedDbscout,
        ExecutionConfig, ExecutionLayout, IncrementalDbscout, JoinStrategy, KernelKind,
        NativeOptions, OutlierDetector, OutlierResult, PointLabel, Result, RunStats,
    };
    pub use dbscout_dataflow::ExecutionContext;
    pub use dbscout_spatial::PointStore;
}
