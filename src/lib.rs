//! Umbrella crate re-exporting the DBSCOUT workspace. The README below
//! doubles as documentation and as a doctest (its Rust snippet runs under
//! `cargo test`).
//!
#![doc = include_str!("../README.md")]

pub use dbscout_baselines as baselines;
pub use dbscout_core as core;
pub use dbscout_data as data;
pub use dbscout_dataflow as dataflow;
pub use dbscout_metrics as metrics;
pub use dbscout_spatial as spatial;
