//! Subcommand implementations. Each returns the report to print, so the
//! logic is testable without spawning processes.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use dbscout_core::{
    build_run_report, DbscoutError, DbscoutParams, DetectorBuilder, ExecutionConfig,
    ExecutionLayout, KernelKind, NativeOptions, PhaseTimings, RunInfo, PHASE_NAMES,
};
use dbscout_data::generators as gen;
use dbscout_data::io::{read_csv_with, write_binary, write_csv, IngestMode, QuarantineReport};
use dbscout_data::kdist::{elbow_eps, kdist_graph};
use dbscout_data::{materialize, BinarySource, CsvIngest, PointSource, DEFAULT_BATCH_SIZE};
use dbscout_dataflow::{
    ExecutionBackend, ExecutionContext, FaultPlan, MetricsSnapshot, ProcessPoolStats, StageRecord,
    WorkerSpec, DEFAULT_RESPAWN_BUDGET,
};
use dbscout_spatial::{Grid, PointStore};
use dbscout_telemetry::{Recorder, Span, SpanKind, TraceCollector};

use crate::cli::{CliError, Flags};
use crate::progress::{ProgressReporter, TeeRecorder};

/// A failure while reading or writing the dataset (exit code 2).
fn data_err(e: impl std::fmt::Display) -> CliError {
    CliError::data(e.to_string())
}

/// A failure inside a detection engine (exit code 3).
fn engine_err(e: impl std::fmt::Display) -> CliError {
    CliError::engine(e.to_string())
}

/// Classifies a `detect_source` failure: ingest errors surfaced through
/// the streaming source are data failures (exit code 2, same as the
/// materialized read path); everything else is an engine fault.
fn detect_err(e: DbscoutError) -> CliError {
    match e {
        DbscoutError::Ingest(_) => CliError::data(e.to_string()),
        other => CliError::engine(other.to_string()),
    }
}

/// Reads the CSV dataset a subcommand operates on, mapping failures to
/// the data exit class (exit code 2). Every subcommand that
/// materializes a CSV goes through here, so label/ingest-mode plumbing
/// and error mapping live in one place — and all of them ride the same
/// streaming [`dbscout_data::CsvSource`] underneath.
pub(crate) fn load_dataset(
    path: &str,
    labeled: bool,
    mode: IngestMode,
) -> Result<CsvIngest, CliError> {
    read_csv_with(path, labeled, mode).map_err(data_err)
}

/// Parses the `--layout` flag for the native engine.
pub(crate) fn parse_layout(s: &str) -> Result<ExecutionLayout, CliError> {
    match s {
        "cell-major" => Ok(ExecutionLayout::CellMajor),
        "hashed" => Ok(ExecutionLayout::Hashed),
        other => Err(CliError::new(format!(
            "unknown layout {other:?} (expected cell-major or hashed)"
        ))),
    }
}

/// Parses the `--kernel` flag for the native engine.
pub(crate) fn parse_kernel(s: &str) -> Result<KernelKind, CliError> {
    s.parse().map_err(|_| {
        CliError::new(format!(
            "unknown kernel {s:?} (expected scalar, unrolled, or auto)"
        ))
    })
}

/// Renders a permissive-ingest quarantine summary into `out`.
fn quarantine_summary(out: &mut String, q: &QuarantineReport) {
    if q.is_clean() {
        return;
    }
    let _ = writeln!(
        out,
        "quarantined {} malformed row(s) (permissive ingest):",
        q.quarantined
    );
    for s in &q.samples {
        let _ = writeln!(out, "  line {}: {}", s.line, s.reason);
    }
    if q.quarantined > q.samples.len() {
        let _ = writeln!(out, "  ... and {} more", q.quarantined - q.samples.len());
    }
}

/// Replays the native engine's phase timings as phase spans (the native
/// engine has no execution context, so its trace is synthesized from
/// [`PhaseTimings`] after the fact, phases laid end to end).
fn synthesize_phase_spans(recorder: &dyn Recorder, started: Instant, timings: &PhaseTimings) {
    let durations = [
        timings.grid,
        timings.dense_map,
        timings.core_points,
        timings.core_map,
        timings.outliers,
    ];
    let mut cursor = started;
    for (name, duration) in PHASE_NAMES.iter().zip(durations) {
        recorder.record_span(Span::new(*name, SpanKind::Phase, cursor, duration));
        cursor += duration;
    }
}

/// Hidden `dbscout worker`: serve this process as a shard worker over
/// stdin/stdout until the driver hangs up. Spawned by `--backend
/// process`, never typed by hand; its stdout carries IPC frames, so the
/// report it returns is empty.
pub fn worker(_flags: &Flags) -> Result<String, CliError> {
    dbscout_core::run_worker(
        dbscout_telemetry::peak_rss_bytes,
        dbscout_telemetry::cpu_time_us,
    )
    .map_err(engine_err)?;
    Ok(String::new())
}

/// Builds the worker-kill fault plan for `--backend process`, if any
/// chaos knobs are set: `DBSCOUT_CHAOS_SEED` draws one seeded
/// mid-dispatch SIGKILL per stage; `DBSCOUT_WORKER_KILL`
/// (`<stage>:<task>:<times>`, empty stage = every stage) scripts kills
/// on a task's first `times` dispatches; `DBSCOUT_WORKER_KILL_AT_END`
/// (`<stage>:<slot>`) SIGKILLs an idle worker after a stage completes.
fn worker_fault_plan(chaos_seed: Option<u64>) -> Result<Option<FaultPlan>, CliError> {
    let on_dispatch = std::env::var("DBSCOUT_WORKER_KILL").ok();
    let at_end = std::env::var("DBSCOUT_WORKER_KILL_AT_END").ok();
    if chaos_seed.is_none() && on_dispatch.is_none() && at_end.is_none() {
        return Ok(None);
    }
    let stage_of = |s: &str| (!s.is_empty()).then(|| s.to_string());
    let mut builder = FaultPlan::builder(chaos_seed.unwrap_or(0));
    if chaos_seed.is_some() {
        builder = builder.max_worker_kills_per_stage(1);
    }
    if let Some(spec) = on_dispatch {
        // Split from the right: stage names may themselves contain ':'.
        let mut parts = spec.rsplitn(3, ':');
        let (times, task, stage) = (parts.next(), parts.next(), parts.next());
        match (
            stage,
            task.and_then(|t| t.parse().ok()),
            times.and_then(|t| t.parse().ok()),
        ) {
            (Some(stage), Some(task), Some(times)) => {
                builder = builder.kill_worker_on_dispatch(stage_of(stage), task, times);
            }
            _ => {
                return Err(CliError::new(format!(
                    "invalid DBSCOUT_WORKER_KILL {spec:?} (expected <stage>:<task>:<times>)"
                )))
            }
        }
    }
    if let Some(spec) = at_end {
        let mut parts = spec.rsplitn(2, ':');
        let (slot, stage) = (parts.next(), parts.next());
        match (stage, slot.and_then(|s| s.parse().ok())) {
            (Some(stage), Some(slot)) => {
                builder = builder.kill_worker_at_stage_end(stage_of(stage), slot);
            }
            _ => {
                return Err(CliError::new(format!(
                    "invalid DBSCOUT_WORKER_KILL_AT_END {spec:?} (expected <stage>:<slot>)"
                )))
            }
        }
    }
    Ok(Some(builder.build()))
}

/// Names the next CSV-input spill file for the process backend (workers
/// read the shared input from disk, so non-binary input is re-encoded
/// as a temporary `DBSC` file for the run).
fn spill_path() -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SPILL_SEQ.fetch_add(1, Ordering::SeqCst);
    std::env::temp_dir().join(format!("dbscout-spill-{}-{seq}.dbsc", std::process::id()))
}

/// `dbscout detect`: read points, run DBSCOUT, report / write outliers.
pub fn detect(flags: &Flags) -> Result<String, CliError> {
    let input: String = flags.require("input")?;
    let eps: f64 = flags.require("eps")?;
    let min_pts: usize = flags.require("min-pts")?;
    let engine: String = flags.get("engine", "native".to_string())?;
    let backend: String = flags.get("backend", "in-process".to_string())?;
    let workers: usize = flags.get("workers", 4)?;
    let respawn_budget: usize = flags.get("respawn-budget", DEFAULT_RESPAWN_BUDGET)?;
    match backend.as_str() {
        "in-process" | "process" => {}
        other => {
            return Err(CliError::new(format!(
                "unknown backend {other:?} (expected in-process or process)"
            )))
        }
    }
    if backend == "process" && engine != "native" {
        return Err(CliError::new(
            "--backend process drives the native engine only; drop --engine distributed",
        ));
    }
    let labeled = flags.has("labeled");
    let from_binary = flags.has("from-binary");
    let batch_size: usize = flags.get("batch-size", DEFAULT_BATCH_SIZE)?;
    if batch_size == 0 {
        return Err(CliError::new("--batch-size must be at least 1"));
    }
    if from_binary && labeled {
        return Err(CliError::new(
            "--from-binary input carries no label column; drop --labeled",
        ));
    }
    if from_binary && flags.has("permissive-ingest") {
        return Err(CliError::new(
            "--permissive-ingest applies to CSV input only",
        ));
    }
    let mode = if flags.has("permissive-ingest") {
        IngestMode::Permissive
    } else {
        IngestMode::Strict
    };
    let max_task_retries: usize = flags.get(
        "max-task-retries",
        dbscout_dataflow::context::DEFAULT_TASK_RETRIES,
    )?;
    let output_path = flags.require::<String>("output").ok();
    let trace_out = flags.require::<String>("trace-out").ok();
    let report_out = flags.require::<String>("report-json").ok();
    // A single collector feeds both outputs; it is only constructed (and
    // the engine only records spans) when one of the flags asks for it.
    let collector =
        (trace_out.is_some() || report_out.is_some()).then(|| Arc::new(TraceCollector::new()));
    // `--progress` streams rate-limited status lines to stderr; when it
    // rides alongside trace collection, a tee fans the events out.
    let progress = flags
        .has("progress")
        .then(|| Arc::new(ProgressReporter::new()));
    let recorder: Option<Arc<dyn Recorder>> = match (&collector, &progress) {
        (Some(c), Some(p)) => Some(Arc::new(TeeRecorder::new(vec![
            Arc::clone(c) as Arc<dyn Recorder>,
            Arc::clone(p) as Arc<dyn Recorder>,
        ]))),
        (Some(c), None) => Some(Arc::clone(c) as Arc<dyn Recorder>),
        (None, Some(p)) => Some(Arc::clone(p) as Arc<dyn Recorder>),
        (None, None) => None,
    };
    let chaos_seed: Option<u64> = std::env::var("DBSCOUT_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok());
    // Every execution knob funnels through one ExecutionConfig here;
    // the engine arms below read from it instead of re-parsing flags.
    let exec = ExecutionConfig::new()
        .with_threads(flags.get("threads", 0)?)
        .with_layout(parse_layout(
            &flags.get("layout", "cell-major".to_string())?,
        )?)
        .with_kernel(parse_kernel(&flags.get("kernel", "auto".to_string())?)?)
        .with_workers(workers);

    // The streaming path never materializes the dataset. It needs the
    // native engine (the distributed one partitions an in-memory store)
    // and no `--output` (writing flagged rows needs the coordinates).
    let streaming = from_binary && engine == "native" && output_path.is_none();
    let mut quarantine = QuarantineReport::default();
    let mut truth: Option<Vec<bool>> = None;
    let mut source = if from_binary {
        Some(BinarySource::open(&input, batch_size).map_err(data_err)?)
    } else {
        None
    };
    let store: Option<PointStore> = match (&mut source, streaming) {
        (Some(_), true) => None,
        (Some(src), false) => Some(materialize(src).map_err(data_err)?),
        (None, _) => {
            let ingest = load_dataset(&input, labeled, mode)?;
            quarantine = ingest.quarantine;
            truth = ingest.labels;
            Some(ingest.store)
        }
    };
    let dims: u64 = match (&store, &source) {
        (Some(s), _) => s.dims() as u64,
        (None, Some(src)) => src.dims().unwrap_or(0) as u64,
        (None, None) => 0,
    };
    let params = DbscoutParams::new(eps, min_pts).map_err(|e| CliError::new(e.to_string()))?;

    let t = Instant::now();
    let mut fault_tolerance: Option<MetricsSnapshot> = None;
    let mut stage_records: Vec<StageRecord> = Vec::new();
    let mut process_stats: Option<ProcessPoolStats> = None;
    // 0 = "auto" for the native engine's thread count.
    let run_workers;
    let mut run_partitions = 0u64;
    let result = match engine.as_str() {
        "native" if backend == "process" => {
            if exec.layout != ExecutionLayout::CellMajor {
                return Err(CliError::new(
                    "--backend process shards the cell-major layout only",
                ));
            }
            run_workers = workers as u64;
            let exe = std::env::current_exe()
                .map_err(|e| CliError::engine(format!("cannot locate own executable: {e}")))?;
            let mut builder = ExecutionContext::builder()
                .backend(ExecutionBackend::Process { workers })
                .worker_spec(WorkerSpec::new(exe).arg("worker"))
                .respawn_budget(respawn_budget)
                .max_task_retries(max_task_retries);
            if let Some(plan) = worker_fault_plan(chaos_seed)? {
                builder = builder.fault_plan(plan);
            }
            if let Some(r) = &recorder {
                builder = builder.recorder(Arc::clone(r));
            }
            let ctx = builder.build();
            let before = ctx.metrics().snapshot();
            // Workers read the shared input from disk, so CSV (or any
            // materialized) input is spilled to a temporary DBSC file.
            let (bin_path, spill) = if from_binary {
                (std::path::PathBuf::from(&input), false)
            } else {
                let st = store
                    .as_ref()
                    .ok_or_else(|| CliError::new("internal: no dataset loaded"))?;
                let path = spill_path();
                write_binary(&path, st).map_err(data_err)?;
                (path, true)
            };
            let detection = dbscout_core::detect_with_process_workers(
                &ctx,
                &bin_path,
                batch_size,
                params,
                NativeOptions::default(),
                exec.kernel,
            );
            if spill {
                std::fs::remove_file(&bin_path).ok();
            }
            fault_tolerance = Some(ctx.metrics().snapshot().since(&before));
            stage_records = ctx.metrics().stage_records();
            process_stats = ctx.process_stats();
            if let Some(c) = &collector {
                ctx.metrics().emit_stage_spans(c.as_ref());
            }
            ctx.shutdown_process_pool();
            detection.map_err(detect_err)?
        }
        "native" => {
            run_workers = exec.threads as u64;
            let builder = DetectorBuilder::new(params).execution(exec);
            match (&store, &mut source) {
                (Some(st), _) => builder.build_native().detect(st).map_err(engine_err)?,
                (None, Some(src)) => builder.detect_source(src).map_err(detect_err)?,
                (None, None) => return Err(CliError::new("internal: no dataset loaded")),
            }
        }
        "distributed" => {
            let mut builder = ExecutionContext::builder().max_task_retries(max_task_retries);
            if let Some(seed) = chaos_seed {
                // The chaos seed drives the same bounded seeded-fault plan
                // the chaos test suite uses, so a seeded CLI run exercises
                // (and reports) the retry machinery deterministically.
                builder =
                    builder.fault_plan(FaultPlan::builder(seed).max_faults_per_task(1).build());
            }
            if let Some(r) = &recorder {
                builder = builder.recorder(Arc::clone(r));
            }
            let ctx = builder.build();
            run_workers = ctx.workers() as u64;
            run_partitions = ctx.default_partitions() as u64;
            let st = store
                .as_ref()
                .ok_or_else(|| CliError::new("internal: no dataset loaded"))?;
            let detector = DetectorBuilder::new(params)
                .distributed(ctx)
                .build_distributed();
            let before = detector.ctx().metrics().snapshot();
            let result = detector.detect(st).map_err(engine_err)?;
            fault_tolerance = Some(detector.ctx().metrics().snapshot().since(&before));
            stage_records = detector.ctx().metrics().stage_records();
            if let Some(c) = &collector {
                detector.ctx().metrics().emit_stage_spans(c.as_ref());
            }
            result
        }
        other => return Err(CliError::new(format!("unknown engine {other:?}"))),
    };
    let elapsed = t.elapsed();
    // The resolved execution echo: the concrete kernel the run used
    // (never "auto"; hashed layouts pin to scalar) and the in-process
    // thread count. The distributed engine's distance path is scalar
    // and its parallelism is the worker count echoed above.
    let (run_kernel, run_threads) = if engine == "native" {
        (
            exec.resolved_kernel().as_str().to_owned(),
            exec.resolved_threads() as u64,
        )
    } else {
        ("scalar".to_owned(), 0u64)
    };
    if engine == "native" {
        if let Some(c) = &collector {
            synthesize_phase_spans(c.as_ref(), t, &result.timings);
            // Kernel work totals as Chrome Trace counter events. The
            // process backend already emitted cumulative per-stage
            // points via `emit_stage_spans`; for in-process runs the
            // run total is the only sample.
            if backend != "process" {
                let end = t + result.timings.total();
                for (name, value) in result.stats.kernel.named() {
                    c.record_counter_point(name, end, value);
                }
            }
        }
    }

    let points: u64 = match &store {
        Some(s) => u64::from(s.len()),
        None => result.labels.len() as u64,
    };
    let mut out = String::new();
    // `write!` into a String is infallible; the results are discarded.
    let _ = writeln!(
        out,
        "{points} points, eps = {eps}, minPts = {min_pts}, engine = {engine}{}{}{}",
        if engine == "native" {
            format!(", kernel = {run_kernel}, threads = {run_threads}")
        } else {
            String::new()
        },
        if backend == "process" {
            format!(", backend = process ({workers} workers)")
        } else {
            String::new()
        },
        if streaming {
            format!(" (streamed, batch size {batch_size})")
        } else {
            String::new()
        }
    );
    let _ = writeln!(
        out,
        "{} outliers, {} core points, {} cells ({} dense, {} core) in {elapsed:?}",
        result.num_outliers(),
        result.num_core(),
        result.stats.num_cells,
        result.stats.dense_cells,
        result.stats.core_cells,
    );
    quarantine_summary(&mut out, &quarantine);
    if let Some(ps) = &process_stats {
        if ps.worker_kills > 0 || ps.worker_respawns > 0 || ps.poisoned_tasks > 0 {
            let _ = writeln!(
                out,
                "worker failures: {} kill(s), {} respawn(s) (budget {respawn_budget}), \
                 {} task reassignment(s), {} poisoned task(s)",
                ps.worker_kills, ps.worker_respawns, ps.task_reassignments, ps.poisoned_tasks,
            );
        }
    }
    if let Some(m) = fault_tolerance {
        if m.task_retries > 0 || m.speculative_launches > 0 || m.injected_faults > 0 {
            let _ = writeln!(
                out,
                "fault tolerance: {} task retr{} (budget {max_task_retries}), \
                 {} speculative launch(es), {} speculative win(s), {} injected fault(s)",
                m.task_retries,
                if m.task_retries == 1 { "y" } else { "ies" },
                m.speculative_launches,
                m.speculative_wins,
                m.injected_faults,
            );
        }
    }

    if let Some(truth) = truth {
        let m = dbscout_metrics::ConfusionMatrix::from_masks(&result.outlier_mask(), &truth);
        let _ = writeln!(
            out,
            "vs labels: precision {:.4}, recall {:.4}, F1 {:.4}",
            m.precision(),
            m.recall(),
            m.f1()
        );
    }

    if let (Some(path), Some(st)) = (&output_path, &store) {
        let mask = result.outlier_mask();
        write_csv(path, st, Some(&mask)).map_err(data_err)?;
        let _ = writeln!(out, "wrote labelled output to {path}");
    }

    if let (Some(path), Some(c)) = (&trace_out, &collector) {
        std::fs::write(path, c.to_chrome_trace()).map_err(data_err)?;
        let _ = writeln!(out, "wrote chrome trace to {path}");
    }
    if let Some(path) = &report_out {
        let info = RunInfo {
            source: input.clone(),
            points,
            dimensions: dims,
            engine: engine.clone(),
            partitions: run_partitions,
            workers: run_workers,
            kernel: run_kernel.clone(),
            threads: run_threads,
            chaos_seed,
            peak_rss_bytes: dbscout_telemetry::peak_rss_bytes(),
        };
        let report = build_run_report(
            &info,
            params,
            &result,
            &fault_tolerance.unwrap_or_default(),
            &stage_records,
            process_stats.as_ref(),
            elapsed,
        );
        std::fs::write(path, report.to_json()).map_err(data_err)?;
        let _ = writeln!(out, "wrote run report to {path}");
    }
    Ok(out)
}

/// `dbscout generate`: emit a synthetic dataset as CSV.
pub fn generate(flags: &Flags) -> Result<String, CliError> {
    let dataset: String = flags.require("dataset")?;
    let output: String = flags.require("output")?;
    let n: usize = flags.get("n", 10_000)?;
    let seed: u64 = flags.get("seed", 1)?;
    let labeled = flags.has("labeled");
    let format: String = flags.get("format", "csv".to_string())?;

    let n_out = (n / 100).max(1);
    let n_in = n.saturating_sub(n_out).max(1);
    let (store, labels): (PointStore, Option<Vec<bool>>) = match dataset.as_str() {
        "blobs" => labeled_parts(gen::blobs(n_in, n_out, 3, 0.5, seed)),
        "circles" => labeled_parts(gen::circles(n_in, n_out, 0.5, 0.03, seed)),
        "moons" => labeled_parts(gen::moons(n_in, n_out, 0.04, seed)),
        "cluto-t4" => labeled_parts(gen::cluto_t4_like(seed)),
        "cluto-t5" => labeled_parts(gen::cluto_t5_like(seed)),
        "cluto-t7" => labeled_parts(gen::cluto_t7_like(seed)),
        "cluto-t8" => labeled_parts(gen::cluto_t8_like(seed)),
        "cure-t2" => labeled_parts(gen::cure_t2_like(seed)),
        "geolife" => (gen::geolife_like(n, seed), None),
        "osm" => (gen::osm_like(n, seed), None),
        other => return Err(CliError::new(format!("unknown dataset {other:?}"))),
    };
    let labels = if labeled { labels } else { None };
    match format.as_str() {
        "csv" => write_csv(&output, &store, labels.as_deref()).map_err(data_err)?,
        "binary" => {
            if labels.is_some() {
                return Err(CliError::new(
                    "--labeled requires --format csv (the binary format carries no labels)",
                ));
            }
            write_binary(&output, &store).map_err(data_err)?;
        }
        other => {
            return Err(CliError::new(format!(
                "unknown format {other:?} (expected csv or binary)"
            )))
        }
    }
    Ok(format!(
        "wrote {} {}-dimensional points to {output}{}\n",
        store.len(),
        store.dims(),
        if labels.is_some() {
            " (with labels)"
        } else {
            ""
        }
    ))
}

fn labeled_parts(ds: dbscout_data::LabeledDataset) -> (PointStore, Option<Vec<bool>>) {
    (ds.points, Some(ds.labels))
}

/// `dbscout kdist`: print the k-dist graph summary and the elbow ε.
pub fn kdist(flags: &Flags) -> Result<String, CliError> {
    let input: String = flags.require("input")?;
    let k: usize = flags.get("k", 5)?;
    let store = load_dataset(&input, flags.has("labeled"), IngestMode::Strict)?.store;
    if store.len() < 3 {
        return Err(CliError::new("need at least 3 points for a k-dist graph"));
    }
    let graph = kdist_graph(&store, k);
    let eps =
        elbow_eps(&graph).ok_or_else(|| CliError::new("k-dist graph too small for an elbow"))?;
    let q = |f: f64| {
        let i = ((graph.len() - 1) as f64 * f) as usize;
        graph.get(i).copied().unwrap_or(0.0)
    };
    Ok(format!(
        "k-dist graph (k = {k}, {} points)\n\
         max {:.6}  p90 {:.6}  median {:.6}  p10 {:.6}  min {:.6}\n\
         suggested eps (elbow): {eps:.6}\n",
        store.len(),
        graph.first().copied().unwrap_or(0.0),
        q(0.1),
        q(0.5),
        q(0.9),
        graph.last().copied().unwrap_or(0.0),
    ))
}

/// `dbscout sweep`: run DBSCOUT over an ε ladder (geometric between
/// `--from` and `--to`, or ±2 octaves around the k-dist elbow) and report
/// outlier counts (plus F1 when labels are present).
pub fn sweep(flags: &Flags) -> Result<String, CliError> {
    let input: String = flags.require("input")?;
    let min_pts: usize = flags.get("min-pts", 5)?;
    let steps: usize = flags.get("steps", 7)?;
    if steps < 2 {
        return Err(CliError::new("--steps must be at least 2"));
    }
    let labeled = flags.has("labeled");
    let ingest = load_dataset(&input, labeled, IngestMode::Strict)?;
    let (store, truth) = (ingest.store, ingest.labels);

    let (from, to) = match (flags.require::<f64>("from"), flags.require::<f64>("to")) {
        (Ok(a), Ok(b)) if a > 0.0 && b > a => (a, b),
        (Ok(_), Ok(_)) => return Err(CliError::new("--from/--to must satisfy 0 < from < to")),
        _ => {
            let elbow = dbscout_data::kdist::suggest_eps(&store, min_pts)
                .ok_or_else(|| CliError::new("dataset too small for a k-dist elbow"))?;
            (elbow / 4.0, elbow * 4.0)
        }
    };

    let mut out = format!(
        "eps sweep on {} points (minPts = {min_pts}): {from:.6} .. {to:.6}\n",
        store.len()
    );
    let ratio = (to / from).powf(1.0 / (steps - 1) as f64);
    for i in 0..steps {
        let eps = from * ratio.powi(i as i32);
        let params = DbscoutParams::new(eps, min_pts).map_err(|e| CliError::new(e.to_string()))?;
        let result = DetectorBuilder::new(params)
            .build_native()
            .detect(&store)
            .map_err(engine_err)?;
        let _ = write!(
            out,
            "  eps {eps:12.6}: {:6} outliers",
            result.num_outliers()
        );
        if let Some(truth) = &truth {
            let f1 =
                dbscout_metrics::ConfusionMatrix::from_masks(&result.outlier_mask(), truth).f1();
            let _ = write!(out, "  F1 {f1:.4}");
        }
        out.push('\n');
    }
    Ok(out)
}

/// `dbscout compare`: DBSCOUT vs LOF / IF / kNN-dist on a labelled CSV.
pub fn compare(flags: &Flags) -> Result<String, CliError> {
    use dbscout_baselines::{IsolationForest, KnnOutlier, Lof};

    let input: String = flags.require("input")?;
    let min_pts: usize = flags.get("min-pts", 5)?;
    let k: usize = flags.get("k", 20)?;
    let ingest = load_dataset(&input, true, IngestMode::Strict)?;
    let (store, truth) = (ingest.store, ingest.labels);
    let truth = truth.ok_or_else(|| CliError::new("input has no label column"))?;
    let nu = truth.iter().filter(|&&t| t).count() as f64 / truth.len().max(1) as f64;
    if nu == 0.0 {
        return Err(CliError::new("no positive labels in the input"));
    }

    let eps = match flags.require::<f64>("eps") {
        Ok(e) => e,
        Err(_) => dbscout_data::kdist::suggest_eps(&store, min_pts)
            .ok_or_else(|| CliError::new("dataset too small for a k-dist elbow"))?,
    };
    let params = DbscoutParams::new(eps, min_pts).map_err(|e| CliError::new(e.to_string()))?;
    let scout = DetectorBuilder::new(params)
        .build_native()
        .detect(&store)
        .map_err(engine_err)?;

    let mut table =
        dbscout_metrics::table::Table::new(&["detector", "params", "precision", "recall", "F1"]);
    let mut add = |name: &str, p: String, mask: &[bool]| {
        let m = dbscout_metrics::ConfusionMatrix::from_masks(mask, &truth);
        table.row(&[
            name.to_string(),
            p,
            format!("{:.4}", m.precision()),
            format!("{:.4}", m.recall()),
            format!("{:.4}", m.f1()),
        ]);
    };
    add(
        "DBSCOUT",
        format!("eps={eps:.4} minPts={min_pts}"),
        &scout.outlier_mask(),
    );
    add(
        "LOF",
        format!("k={k} nu={nu:.3}"),
        &Lof::new(k).detect(&store, nu),
    );
    add(
        "IsolationForest",
        format!("nu={nu:.3}"),
        &IsolationForest::new(0).detect(&store, nu),
    );
    add(
        "kNN-dist",
        format!("k={k} nu={nu:.3}"),
        &KnnOutlier::new(k).detect(&store, nu),
    );
    Ok(format!("{}\n", table.render()))
}

/// `dbscout info`: dataset statistics (and grid stats at a given ε).
pub fn info(flags: &Flags) -> Result<String, CliError> {
    let input: String = flags.require("input")?;
    let store = load_dataset(&input, flags.has("labeled"), IngestMode::Strict)?.store;
    let mut out = format!("{} points, {} dimensions\n", store.len(), store.dims());
    if let Some((min, max)) = store.bounding_box() {
        let _ = writeln!(out, "bounding box: min {min:?}, max {max:?}");
    }
    if let Ok(eps) = flags.require::<f64>("eps") {
        let grid = Grid::build(&store, eps).map_err(data_err)?;
        let _ = writeln!(
            out,
            "grid at eps = {eps}: {} non-empty cells, heaviest holds {:.2}% of points",
            grid.num_cells(),
            grid.skew() * 100.0
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {

    use crate::cli::run;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("dbscout-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn generate_then_detect_round_trip() {
        let data = tmp("blobs.csv");
        let report = run(&argv(&[
            "generate",
            "--dataset",
            "blobs",
            "--n",
            "2000",
            "--seed",
            "7",
            "--output",
            &data,
            "--labeled",
        ]))
        .unwrap();
        assert!(report.contains("2000"), "{report}");

        let out = tmp("flagged.csv");
        let report = run(&argv(&[
            "detect",
            "--input",
            &data,
            "--labeled",
            "--eps",
            "0.6",
            "--min-pts",
            "5",
            "--output",
            &out,
        ]))
        .unwrap();
        assert!(report.contains("outliers"), "{report}");
        assert!(report.contains("F1"), "{report}");
        assert!(std::path::Path::new(&out).exists());
    }

    #[test]
    fn detect_engines_agree() {
        let data = tmp("moons.csv");
        run(&argv(&[
            "generate",
            "--dataset",
            "moons",
            "--n",
            "1000",
            "--output",
            &data,
        ]))
        .unwrap();
        let native = run(&argv(&[
            "detect",
            "--input",
            &data,
            "--eps",
            "0.1",
            "--min-pts",
            "5",
        ]))
        .unwrap();
        let dist = run(&argv(&[
            "detect",
            "--input",
            &data,
            "--eps",
            "0.1",
            "--min-pts",
            "5",
            "--engine",
            "distributed",
        ]))
        .unwrap();
        let count = |r: &str| {
            r.lines()
                .nth(1)
                .unwrap()
                .split_whitespace()
                .next()
                .unwrap()
                .to_string()
        };
        assert_eq!(count(&native), count(&dist));
    }

    #[test]
    fn detect_layouts_agree() {
        let data = tmp("layouts.csv");
        run(&argv(&[
            "generate",
            "--dataset",
            "blobs",
            "--n",
            "800",
            "--output",
            &data,
        ]))
        .unwrap();
        let base = ["detect", "--input", &data, "--eps", "0.6", "--min-pts", "5"];
        let cell_major = run(&argv(&base)).unwrap();
        let mut with_flag = base.to_vec();
        with_flag.extend(["--layout", "hashed"]);
        let hashed = run(&argv(&with_flag)).unwrap();
        let count = |r: &str| {
            r.lines()
                .nth(1)
                .unwrap()
                .split_whitespace()
                .next()
                .unwrap()
                .to_string()
        };
        assert_eq!(count(&cell_major), count(&hashed));
        let mut bad = base.to_vec();
        bad.extend(["--layout", "diagonal"]);
        assert!(run(&argv(&bad)).is_err());
    }

    #[test]
    fn kernel_flag_is_equivalent_and_echoed() {
        use dbscout_telemetry::json::parse;

        let data = tmp("kernels.csv");
        run(&argv(&[
            "generate",
            "--dataset",
            "blobs",
            "--n",
            "800",
            "--output",
            &data,
        ]))
        .unwrap();
        let base = ["detect", "--input", &data, "--eps", "0.6", "--min-pts", "5"];
        let count = |r: &str| {
            r.lines()
                .nth(1)
                .unwrap()
                .split_whitespace()
                .next()
                .unwrap()
                .to_string()
        };
        let mut scalar_args = base.to_vec();
        scalar_args.extend(["--kernel", "scalar"]);
        let scalar = run(&argv(&scalar_args)).unwrap();
        assert!(scalar.contains("kernel = scalar"), "{scalar}");
        let mut unrolled_args = base.to_vec();
        unrolled_args.extend(["--kernel", "unrolled"]);
        let unrolled = run(&argv(&unrolled_args)).unwrap();
        assert!(unrolled.contains("kernel = unrolled"), "{unrolled}");
        assert_eq!(count(&scalar), count(&unrolled));
        // The default (auto) resolves to unrolled on cell-major, and a
        // hashed layout pins to scalar regardless of the flag.
        let auto = run(&argv(&base)).unwrap();
        assert!(auto.contains("kernel = unrolled"), "{auto}");
        let mut hashed_args = base.to_vec();
        hashed_args.extend(["--layout", "hashed", "--kernel", "unrolled"]);
        let hashed = run(&argv(&hashed_args)).unwrap();
        assert!(hashed.contains("kernel = scalar"), "{hashed}");
        assert_eq!(count(&scalar), count(&hashed));
        // Unknown kernels are usage errors.
        let mut bad = base.to_vec();
        bad.extend(["--kernel", "fma"]);
        assert!(run(&argv(&bad)).is_err());
        // The run report echoes the resolved kernel and thread count.
        let report = tmp("kernels-report.json");
        let mut with_report = base.to_vec();
        with_report.extend([
            "--kernel",
            "scalar",
            "--threads",
            "2",
            "--report-json",
            &report,
        ]);
        run(&argv(&with_report)).unwrap();
        let doc = parse(&std::fs::read_to_string(&report).unwrap()).unwrap();
        let params = doc.get("params").unwrap();
        assert_eq!(params.get("kernel").unwrap().as_str(), Some("scalar"));
        assert_eq!(params.get("threads").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn kdist_and_info_report() {
        let data = tmp("circles.csv");
        run(&argv(&[
            "generate",
            "--dataset",
            "circles",
            "--n",
            "500",
            "--output",
            &data,
        ]))
        .unwrap();
        let report = run(&argv(&["kdist", "--input", &data, "--k", "4"])).unwrap();
        assert!(report.contains("suggested eps"), "{report}");
        let report = run(&argv(&["info", "--input", &data, "--eps", "0.1"])).unwrap();
        assert!(report.contains("non-empty cells"), "{report}");
    }

    #[test]
    fn sweep_reports_ladder_with_f1() {
        let data = tmp("sweep.csv");
        run(&argv(&[
            "generate",
            "--dataset",
            "blobs",
            "--n",
            "1500",
            "--output",
            &data,
            "--labeled",
        ]))
        .unwrap();
        let report = run(&argv(&[
            "sweep",
            "--input",
            &data,
            "--labeled",
            "--min-pts",
            "5",
            "--steps",
            "4",
        ]))
        .unwrap();
        assert_eq!(report.matches("F1").count(), 4, "{report}");
        assert!(run(&argv(&["sweep", "--input", &data, "--steps", "1"])).is_err());
        assert!(run(&argv(&[
            "sweep", "--input", &data, "--from", "2.0", "--to", "1.0"
        ]))
        .is_err());
    }

    #[test]
    fn compare_ranks_detectors() {
        let data = tmp("compare.csv");
        run(&argv(&[
            "generate",
            "--dataset",
            "moons",
            "--n",
            "1500",
            "--output",
            &data,
            "--labeled",
        ]))
        .unwrap();
        let report = run(&argv(&["compare", "--input", &data, "--min-pts", "5"])).unwrap();
        assert!(report.contains("DBSCOUT"), "{report}");
        assert!(report.contains("IsolationForest"), "{report}");
        assert!(report.contains("kNN-dist"), "{report}");
    }

    #[test]
    fn permissive_ingest_quarantines_and_reports() {
        let data = tmp("dirty.csv");
        let mut content = String::new();
        for i in 0..200 {
            content.push_str(&format!("{}.0,{}.5\n", i % 20, i % 17));
        }
        content.push_str("garbage,row\n1.0,NaN\n");
        std::fs::write(&data, content).unwrap();

        // Strict mode (the default) fails with a data error.
        let err = run(&argv(&[
            "detect",
            "--input",
            &data,
            "--eps",
            "1.0",
            "--min-pts",
            "3",
        ]))
        .unwrap_err();
        assert_eq!(err.kind, crate::cli::ErrorKind::Data);

        // Permissive mode quarantines the two bad rows and proceeds.
        let report = run(&argv(&[
            "detect",
            "--input",
            &data,
            "--eps",
            "1.0",
            "--min-pts",
            "3",
            "--permissive-ingest",
        ]))
        .unwrap();
        assert!(report.contains("200 points"), "{report}");
        assert!(
            report.contains("quarantined 2 malformed row(s)"),
            "{report}"
        );
        assert!(report.contains("non-finite coordinate"), "{report}");
    }

    #[test]
    fn max_task_retries_flag_reaches_the_distributed_engine() {
        let data = tmp("retries.csv");
        run(&argv(&[
            "generate",
            "--dataset",
            "blobs",
            "--n",
            "500",
            "--output",
            &data,
        ]))
        .unwrap();
        let report = run(&argv(&[
            "detect",
            "--input",
            &data,
            "--eps",
            "0.6",
            "--min-pts",
            "5",
            "--engine",
            "distributed",
            "--max-task-retries",
            "0",
        ]))
        .unwrap();
        // Healthy run: no faults, so no fault-tolerance line is printed.
        assert!(report.contains("outliers"), "{report}");
        assert!(!report.contains("fault tolerance"), "{report}");
    }

    #[test]
    fn trace_and_report_flags_emit_valid_documents() {
        use dbscout_telemetry::json::{parse, Value};

        let data = tmp("traced.csv");
        run(&argv(&[
            "generate",
            "--dataset",
            "blobs",
            "--n",
            "800",
            "--output",
            &data,
        ]))
        .unwrap();
        let trace = tmp("trace.json");
        let report = tmp("report.json");
        let out = run(&argv(&[
            "detect",
            "--input",
            &data,
            "--eps",
            "0.6",
            "--min-pts",
            "5",
            "--engine",
            "distributed",
            "--trace-out",
            &trace,
            "--report-json",
            &report,
        ]))
        .unwrap();
        assert!(out.contains("wrote chrome trace"), "{out}");
        assert!(out.contains("wrote run report"), "{out}");

        // The trace is a Chrome Trace Event array with complete events
        // covering every paper phase plus stage and task spans.
        let doc = parse(&std::fs::read_to_string(&trace).unwrap()).unwrap();
        let events = doc.as_array().expect("trace must be a JSON array");
        assert!(!events.is_empty());
        let mut cats = std::collections::BTreeSet::new();
        for e in events {
            assert_eq!(e.get("ph").unwrap().as_str(), Some("X"));
            assert!(e.get("ts").unwrap().as_u64().is_some());
            assert!(e.get("dur").unwrap().as_u64().is_some());
            assert!(matches!(e.get("name"), Some(Value::Str(_))));
            cats.insert(e.get("cat").unwrap().as_str().unwrap().to_owned());
        }
        assert_eq!(
            cats.into_iter().collect::<Vec<_>>(),
            ["phase", "stage", "task"]
        );
        let phase_names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("cat").unwrap().as_str() == Some("phase"))
            .map(|e| e.get("name").unwrap().as_str().unwrap())
            .collect();
        for required in dbscout_core::PHASE_NAMES {
            assert!(phase_names.contains(&required), "missing {required}");
        }

        // The report is schema-versioned and echoes the run shape.
        let doc = parse(&std::fs::read_to_string(&report).unwrap()).unwrap();
        assert_eq!(
            doc.get("schema_version").unwrap().as_u64(),
            Some(dbscout_telemetry::REPORT_SCHEMA_VERSION)
        );
        assert_eq!(
            doc.get("dataset").unwrap().get("points").unwrap().as_u64(),
            Some(800)
        );
        assert_eq!(
            doc.get("params").unwrap().get("engine").unwrap().as_str(),
            Some("distributed")
        );
        assert_eq!(
            doc.get("phases").unwrap().as_array().unwrap().len(),
            dbscout_core::PHASE_NAMES.len()
        );
        assert!(!doc.get("stages").unwrap().as_array().unwrap().is_empty());
        // Peak RSS is populated from /proc on Linux (0 elsewhere means
        // "unknown", which the report schema also allows).
        let rss = doc
            .get("totals")
            .unwrap()
            .get("peak_rss_bytes")
            .unwrap()
            .as_u64()
            .unwrap();
        if cfg!(target_os = "linux") {
            assert!(rss > 0);
        }
    }

    #[test]
    fn native_engine_trace_and_report_cover_phases() {
        use dbscout_telemetry::json::parse;

        let data = tmp("traced-native.csv");
        run(&argv(&[
            "generate",
            "--dataset",
            "blobs",
            "--n",
            "500",
            "--output",
            &data,
        ]))
        .unwrap();
        let trace = tmp("trace-native.json");
        let report = tmp("report-native.json");
        run(&argv(&[
            "detect",
            "--input",
            &data,
            "--eps",
            "0.6",
            "--min-pts",
            "5",
            "--trace-out",
            &trace,
            "--report-json",
            &report,
        ]))
        .unwrap();
        let doc = parse(&std::fs::read_to_string(&trace).unwrap()).unwrap();
        let events = doc.as_array().unwrap();
        // The native engine has no stages or tasks: phase spans plus one
        // counter sample per kernel counter.
        let spans: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .collect();
        assert_eq!(spans.len(), dbscout_core::PHASE_NAMES.len());
        let mut counters: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("C"))
            .map(|e| e.get("name").unwrap().as_str().unwrap())
            .collect();
        counters.sort_unstable();
        let mut expected = dbscout_telemetry::KERNEL_COUNTER_NAMES.to_vec();
        expected.sort_unstable();
        assert_eq!(counters, expected);
        let doc = parse(&std::fs::read_to_string(&report).unwrap()).unwrap();
        assert_eq!(
            doc.get("params").unwrap().get("engine").unwrap().as_str(),
            Some("native")
        );
        assert!(doc.get("stages").unwrap().as_array().unwrap().is_empty());
        // Kernel totals land in the deterministic section of the totals.
        let totals = doc.get("totals").unwrap();
        assert!(totals.get("cells_visited").unwrap().as_u64().unwrap() > 0);
        assert!(totals.get("distance_evals").unwrap().as_u64().unwrap() > 0);
    }

    #[test]
    fn progress_flag_is_accepted_on_every_engine() {
        let data = tmp("progress.csv");
        run(&argv(&[
            "generate",
            "--dataset",
            "blobs",
            "--n",
            "400",
            "--output",
            &data,
        ]))
        .unwrap();
        let base = ["detect", "--input", &data, "--eps", "0.6", "--min-pts", "5"];
        for extra in [
            &["--progress"][..],
            &["--progress", "--engine", "distributed"][..],
        ] {
            let mut args = base.to_vec();
            args.extend_from_slice(extra);
            let report = run(&argv(&args)).unwrap();
            assert!(report.contains("outliers"), "{extra:?}: {report}");
        }
    }

    #[test]
    fn binary_streaming_detect_agrees_with_materialized_csv() {
        use dbscout_telemetry::json::parse;

        let csv = tmp("stream.csv");
        let bin = tmp("stream.bin");
        for (path, format) in [(&csv, "csv"), (&bin, "binary")] {
            run(&argv(&[
                "generate",
                "--dataset",
                "blobs",
                "--n",
                "1200",
                "--seed",
                "3",
                "--output",
                path,
                "--format",
                format,
            ]))
            .unwrap();
        }

        let materialized = run(&argv(&[
            "detect",
            "--input",
            &csv,
            "--eps",
            "0.6",
            "--min-pts",
            "5",
        ]))
        .unwrap();
        let report = tmp("stream-report.json");
        let streamed = run(&argv(&[
            "detect",
            "--input",
            &bin,
            "--from-binary",
            "--batch-size",
            "97",
            "--eps",
            "0.6",
            "--min-pts",
            "5",
            "--report-json",
            &report,
        ]))
        .unwrap();
        assert!(streamed.contains("(streamed, batch size 97)"), "{streamed}");

        // Same outliers/core/cell counts; only the elapsed time differs.
        let counts = |r: &str| {
            r.lines()
                .nth(1)
                .unwrap()
                .split(" in ")
                .next()
                .unwrap()
                .to_string()
        };
        assert_eq!(counts(&materialized), counts(&streamed));

        // The run report reflects the streamed dataset's true shape.
        let doc = parse(&std::fs::read_to_string(&report).unwrap()).unwrap();
        let dataset = doc.get("dataset").unwrap();
        assert_eq!(dataset.get("points").unwrap().as_u64(), Some(1200));
        assert_eq!(dataset.get("dimensions").unwrap().as_u64(), Some(2));

        // `--output` forces materialization but still accepts binary input.
        let flagged = tmp("stream-flagged.csv");
        let with_output = run(&argv(&[
            "detect",
            "--input",
            &bin,
            "--from-binary",
            "--eps",
            "0.6",
            "--min-pts",
            "5",
            "--output",
            &flagged,
        ]))
        .unwrap();
        assert!(!with_output.contains("streamed"), "{with_output}");
        assert_eq!(counts(&materialized), counts(&with_output));
        assert!(std::path::Path::new(&flagged).exists());

        // The distributed engine consumes binary input via the
        // materializing adapter and agrees too.
        let dist = run(&argv(&[
            "detect",
            "--input",
            &bin,
            "--from-binary",
            "--eps",
            "0.6",
            "--min-pts",
            "5",
            "--engine",
            "distributed",
        ]))
        .unwrap();
        let outliers = |r: &str| {
            r.lines()
                .nth(1)
                .unwrap()
                .split_whitespace()
                .next()
                .unwrap()
                .to_string()
        };
        assert_eq!(outliers(&materialized), outliers(&dist));
    }

    #[test]
    fn streaming_flag_validation() {
        let bin = tmp("validate.bin");
        run(&argv(&[
            "generate",
            "--dataset",
            "blobs",
            "--n",
            "300",
            "--output",
            &bin,
            "--format",
            "binary",
        ]))
        .unwrap();
        let base = ["detect", "--input", &bin, "--eps", "0.6", "--min-pts", "5"];
        for extra in [
            &["--batch-size", "0"][..],
            &["--from-binary", "--labeled"][..],
            &["--from-binary", "--permissive-ingest"][..],
        ] {
            let mut args = base.to_vec();
            args.extend_from_slice(extra);
            let err = run(&argv(&args)).unwrap_err();
            assert_eq!(err.kind, crate::cli::ErrorKind::Usage, "{extra:?}: {err}");
        }
        // A CSV fed to --from-binary is a data error (bad header), not a crash.
        let csv = tmp("validate.csv");
        run(&argv(&[
            "generate",
            "--dataset",
            "blobs",
            "--n",
            "300",
            "--output",
            &csv,
        ]))
        .unwrap();
        let err = run(&argv(&[
            "detect",
            "--input",
            &csv,
            "--from-binary",
            "--eps",
            "0.6",
            "--min-pts",
            "5",
        ]))
        .unwrap_err();
        assert_eq!(err.kind, crate::cli::ErrorKind::Data);
        // Labels require the CSV format, and unknown formats are rejected.
        assert!(run(&argv(&[
            "generate",
            "--dataset",
            "blobs",
            "--n",
            "100",
            "--output",
            &bin,
            "--format",
            "binary",
            "--labeled",
        ]))
        .is_err());
        assert!(run(&argv(&[
            "generate",
            "--dataset",
            "blobs",
            "--n",
            "100",
            "--output",
            &bin,
            "--format",
            "parquet",
        ]))
        .is_err());
    }

    #[test]
    fn bad_inputs_are_clean_errors() {
        assert!(run(&argv(&[
            "detect",
            "--input",
            "/nonexistent.csv",
            "--eps",
            "1",
            "--min-pts",
            "5"
        ]))
        .is_err());
        assert!(run(&argv(&[
            "generate",
            "--dataset",
            "nope",
            "--output",
            &tmp("x.csv")
        ]))
        .is_err());
        assert!(run(&argv(&[
            "detect",
            "--input",
            &tmp("x.csv"),
            "--eps",
            "-1",
            "--min-pts",
            "5"
        ]))
        .is_err());
    }
}
