//! Live progress reporting for `--progress`: a [`Recorder`] that turns
//! the engine's span/counter stream into rate-limited stderr lines.
//!
//! This lives in the CLI binary on purpose — library crates are
//! print-free (lint XL006); the only place allowed to talk to a
//! terminal is this binary.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use dbscout_telemetry::{Recorder, Span, SpanKind};

/// Minimum gap between two progress lines, so a stage with thousands of
/// short tasks cannot flood stderr.
const MIN_INTERVAL: Duration = Duration::from_millis(100);

#[derive(Default)]
struct State {
    /// Label of the most recently completed task span.
    stage: String,
    /// Task spans seen so far (attempts, including speculative ones).
    tasks: u64,
    /// Worker processes killed or lost so far.
    worker_kills: u64,
    /// When the last line was written; `None` before the first.
    last_emit: Option<Instant>,
}

/// Streams coarse progress (current stage, tasks completed, worker
/// failures) to stderr as the engine records spans and counters.
pub struct ProgressReporter {
    state: Mutex<State>,
}

impl ProgressReporter {
    /// A reporter with no progress observed yet.
    pub fn new() -> Self {
        Self {
            state: Mutex::new(State::default()),
        }
    }

    /// Emits a line if enough time has passed since the previous one
    /// (worker failures always print — they are rare and important).
    fn emit(&self, state: &mut State, force: bool) {
        let now = Instant::now();
        let due = state
            .last_emit
            .is_none_or(|last| now.duration_since(last) >= MIN_INTERVAL);
        if !(force || due) {
            return;
        }
        state.last_emit = Some(now);
        let kills = if state.worker_kills > 0 {
            format!(", {} worker failure(s)", state.worker_kills)
        } else {
            String::new()
        };
        eprintln!(
            "progress: {} — {} task(s) done{kills}",
            if state.stage.is_empty() {
                "starting"
            } else {
                &state.stage
            },
            state.tasks,
        );
    }
}

impl Default for ProgressReporter {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder for ProgressReporter {
    fn record_span(&self, span: Span) {
        if span.kind != SpanKind::Task {
            return;
        }
        let Ok(mut state) = self.state.lock() else {
            return;
        };
        let stage_changed = state.stage != span.name;
        if stage_changed {
            state.stage = span.name;
        }
        state.tasks += 1;
        self.emit(&mut state, stage_changed);
    }

    fn record_counter(&self, name: &str, delta: u64) {
        if name != "worker_kills" {
            return;
        }
        let Ok(mut state) = self.state.lock() else {
            return;
        };
        state.worker_kills += delta;
        self.emit(&mut state, true);
    }
}

/// Fans every recorder event out to several sinks, so `--progress` can
/// ride alongside `--trace-out`/`--report-json` collection.
pub struct TeeRecorder {
    sinks: Vec<std::sync::Arc<dyn Recorder>>,
}

impl TeeRecorder {
    /// A recorder forwarding to all of `sinks`.
    pub fn new(sinks: Vec<std::sync::Arc<dyn Recorder>>) -> Self {
        Self { sinks }
    }
}

impl Recorder for TeeRecorder {
    fn record_span(&self, span: Span) {
        for sink in &self.sinks {
            sink.record_span(span.clone());
        }
    }

    fn record_counter(&self, name: &str, delta: u64) {
        for sink in &self.sinks {
            sink.record_counter(name, delta);
        }
    }

    fn record_counter_point(&self, name: &str, at: Instant, value: u64) {
        for sink in &self.sinks {
            sink.record_counter_point(name, at, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn task_spans_and_kill_counters_update_state() {
        let p = ProgressReporter::new();
        let t = Instant::now();
        for i in 0..3 {
            p.record_span(
                Span::new("core-point pass: shard", SpanKind::Task, t, Duration::ZERO)
                    .arg("partition", i as u64),
            );
        }
        // Non-task spans and unrelated counters are ignored.
        p.record_span(Span::new(
            "core-point pass",
            SpanKind::Stage,
            t,
            Duration::ZERO,
        ));
        p.record_counter("task_retries", 5);
        p.record_counter("worker_kills", 2);
        let state = p.state.lock().unwrap();
        assert_eq!(state.stage, "core-point pass: shard");
        assert_eq!(state.tasks, 3);
        assert_eq!(state.worker_kills, 2);
    }

    #[test]
    fn tee_forwards_to_every_sink() {
        let a = Arc::new(dbscout_telemetry::TraceCollector::new());
        let b = Arc::new(dbscout_telemetry::TraceCollector::new());
        let tee = TeeRecorder::new(vec![
            Arc::clone(&a) as Arc<dyn Recorder>,
            Arc::clone(&b) as Arc<dyn Recorder>,
        ]);
        let t = Instant::now();
        tee.record_span(Span::new("s", SpanKind::Task, t, Duration::ZERO));
        tee.record_counter_point("distance_evals", t, 42);
        for c in [&a, &b] {
            let trace = c.to_chrome_trace();
            assert!(trace.contains("\"s\""), "{trace}");
            assert!(trace.contains("distance_evals"), "{trace}");
        }
    }
}
