//! `dbscout` — command-line outlier detection.
//!
//! ```text
//! dbscout detect   --input pts.csv --eps 0.5 --min-pts 5 [--engine native|distributed]
//!                  [--labeled] [--output outliers.csv] [--threads N]
//! dbscout generate --dataset blobs|circles|moons|geolife|osm --n 10000 --seed 1
//!                  --output pts.csv [--labeled]
//! dbscout kdist    --input pts.csv --k 5
//! dbscout info     --input pts.csv [--eps 0.5]
//! ```

// Unit tests may panic freely; library code is held to the panic-freedom
// gates in `[workspace.lints]` and `cargo xtask lint`.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::indexing_slicing,
        clippy::panic,
        clippy::float_cmp
    )
)]

use std::process::ExitCode;

mod cli;
mod commands;
mod progress;
mod serve;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match cli::run(&args) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            // Only usage errors get the usage text; data/engine failures
            // already carry a precise message.
            if e.kind == cli::ErrorKind::Usage {
                eprintln!("{}", cli::USAGE);
            }
            ExitCode::from(e.exit_code())
        }
    }
}
