//! Argument parsing and command dispatch (no external CLI crate is
//! available offline, so this is a small hand-rolled `--key value`
//! parser plus a subcommand table).

use std::collections::HashMap;
use std::fmt;

use crate::commands;

/// Usage text printed on errors.
pub const USAGE: &str = "\
usage:
  dbscout detect   --input <csv|bin> --eps <f64> --min-pts <usize>
                   [--engine native|distributed] [--labeled]
                   [--output <csv>] [--threads <usize>]
                   [--layout cell-major|hashed]
                   [--kernel scalar|unrolled|auto]
                   [--backend in-process|process] [--workers <usize>]
                   [--respawn-budget <usize>]
                   [--from-binary] [--batch-size <usize>]
                   [--max-task-retries <usize>] [--permissive-ingest]
                   [--trace-out <json>] [--report-json <json>] [--progress]
  dbscout generate --dataset blobs|circles|moons|cluto-t4|cluto-t5|cluto-t7|cluto-t8|cure-t2|geolife|osm
                   --output <path> [--n <usize>] [--seed <u64>] [--labeled]
                   [--format csv|binary]
  dbscout kdist    --input <csv> [--k <usize>]
  dbscout info     --input <csv> [--eps <f64>]
  dbscout sweep    --input <csv> [--min-pts <usize>] [--from <f64> --to <f64>]
                   [--steps <usize>] [--labeled]
  dbscout compare  --input <labeled csv> [--eps <f64>] [--min-pts <usize>] [--k <usize>]
  dbscout serve    --input <csv|bin> --eps <f64> --min-pts <usize>
                   [--from-binary] [--labeled] [--batch-size <usize>]
                   [--layout cell-major|hashed]
                   [--kernel scalar|unrolled|auto] [--threads <usize>]
                   [--socket <path>]
                   [--trace-out <json>] [--report-json <json>]";

/// What went wrong, at the granularity callers (and shell scripts)
/// care about. Each kind maps to a distinct process exit code so
/// pipelines can tell a typo from a corrupt file from an engine fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Bad flags / unknown subcommand — exit code 1.
    Usage,
    /// The input data could not be read or parsed — exit code 2.
    Data,
    /// The detection engine itself failed (task retries exhausted,
    /// internal error) — exit code 3.
    Engine,
}

/// A CLI error with a human-readable message and an [`ErrorKind`].
#[derive(Debug, PartialEq, Eq)]
pub struct CliError {
    /// Which failure class this is.
    pub kind: ErrorKind,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

impl CliError {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        Self {
            kind: ErrorKind::Usage,
            message: msg.into(),
        }
    }

    pub(crate) fn data(msg: impl Into<String>) -> Self {
        Self {
            kind: ErrorKind::Data,
            message: msg.into(),
        }
    }

    pub(crate) fn engine(msg: impl Into<String>) -> Self {
        Self {
            kind: ErrorKind::Engine,
            message: msg.into(),
        }
    }

    /// The process exit code for this error: 1 usage, 2 data, 3 engine.
    pub fn exit_code(&self) -> u8 {
        match self.kind {
            ErrorKind::Usage => 1,
            ErrorKind::Data => 2,
            ErrorKind::Engine => 3,
        }
    }
}

/// Parsed `--key value` flags of one subcommand invocation.
#[derive(Debug, Default)]
pub struct Flags {
    values: HashMap<String, String>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Self, CliError> {
        let mut values = HashMap::new();
        let mut iter = args.iter().peekable();
        while let Some(a) = iter.next() {
            let Some(key) = a.strip_prefix("--") else {
                return Err(CliError::new(format!("unexpected argument {a:?}")));
            };
            match iter.peek() {
                Some(v) if !v.starts_with("--") => {
                    values.insert(key.to_string(), (*v).clone());
                    iter.next();
                }
                _ => {
                    values.insert(key.to_string(), "true".to_string());
                }
            }
        }
        Ok(Self { values })
    }

    /// A required typed flag.
    pub fn require<T: std::str::FromStr>(&self, key: &str) -> Result<T, CliError> {
        let raw = self
            .values
            .get(key)
            .ok_or_else(|| CliError::new(format!("missing required flag --{key}")))?;
        raw.parse()
            .map_err(|_| CliError::new(format!("invalid value for --{key}: {raw:?}")))
    }

    /// An optional typed flag with a default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.values.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| CliError::new(format!("invalid value for --{key}: {raw:?}"))),
        }
    }

    /// A boolean presence flag.
    pub fn has(&self, key: &str) -> bool {
        self.values.contains_key(key)
    }
}

/// Parses `args` and runs the selected subcommand, returning its report.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let (cmd, rest) = args
        .split_first()
        .ok_or_else(|| CliError::new("no subcommand given"))?;
    let flags = Flags::parse(rest)?;
    match cmd.as_str() {
        "detect" => commands::detect(&flags),
        "generate" => commands::generate(&flags),
        "kdist" => commands::kdist(&flags),
        "info" => commands::info(&flags),
        "sweep" => commands::sweep(&flags),
        "compare" => commands::compare(&flags),
        "serve" => crate::serve::serve(&flags),
        // Hidden: how `--backend process` re-invokes this binary as a
        // worker. Never typed by hand, so it stays out of the usage text.
        "worker" => commands::worker(&flags),
        other => Err(CliError::new(format!("unknown subcommand {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn flags_parse_pairs_and_presence() {
        let f = Flags::parse(&argv(&["--eps", "0.5", "--labeled", "--min-pts", "5"])).unwrap();
        assert_eq!(f.require::<f64>("eps").unwrap(), 0.5);
        assert_eq!(f.require::<usize>("min-pts").unwrap(), 5);
        assert!(f.has("labeled"));
        assert!(!f.has("output"));
    }

    #[test]
    fn missing_required_flag_is_an_error() {
        let f = Flags::parse(&[]).unwrap();
        let e = f.require::<f64>("eps").unwrap_err();
        assert!(e.to_string().contains("--eps"));
    }

    #[test]
    fn invalid_value_is_an_error() {
        let f = Flags::parse(&argv(&["--eps", "abc"])).unwrap();
        assert!(f.require::<f64>("eps").is_err());
        assert!(f.get::<f64>("eps", 1.0).is_err());
    }

    #[test]
    fn positional_arguments_rejected() {
        assert!(Flags::parse(&argv(&["stray"])).is_err());
    }

    #[test]
    fn unknown_subcommand_rejected() {
        assert!(run(&argv(&["frobnicate"])).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn error_kinds_map_to_distinct_exit_codes() {
        assert_eq!(CliError::new("x").exit_code(), 1);
        assert_eq!(CliError::data("x").exit_code(), 2);
        assert_eq!(CliError::engine("x").exit_code(), 3);
        // A usage error (unknown subcommand) carries the Usage kind.
        let e = run(&argv(&["frobnicate"])).unwrap_err();
        assert_eq!(e.kind, ErrorKind::Usage);
        // A missing input file is a data error.
        let e = run(&argv(&[
            "detect",
            "--input",
            "/nonexistent.csv",
            "--eps",
            "1",
            "--min-pts",
            "5",
        ]))
        .unwrap_err();
        assert_eq!(e.kind, ErrorKind::Data);
    }
}
