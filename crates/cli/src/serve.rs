//! `dbscout serve`: a warm serving daemon over the incremental engine.
//!
//! Bulk-loads a dataset once, keeps detector state warm (grid, counts,
//! labels), and then answers line-delimited JSON queries on stdin/stdout
//! or a Unix socket without ever rebuilding the grid per query.
//!
//! Protocol (one JSON object per line, one response line per request):
//!
//! ```text
//! > {"op":"probe","point":[1.0,2.0]}
//! < {"ok":true,"op":"probe","label":"outlier"}
//! > {"op":"insert","point":[1.0,2.0]}
//! < {"ok":true,"op":"insert","id":800,"label":"outlier"}
//! > {"op":"remove","id":800}
//! < {"ok":true,"op":"remove","id":800,"removed":true}
//! > {"op":"outliers"}
//! < {"ok":true,"op":"outliers","count":2,"ids":[13,77]}
//! > {"op":"stats"}
//! < {"ok":true,"op":"stats","points":800,...}
//! > {"op":"shutdown"}
//! < {"ok":true,"op":"shutdown"}
//! ```
//!
//! Malformed requests answer `{"ok":false,"error":"..."}` and keep the
//! session alive; only `shutdown` (or EOF / a hangup) ends it. `probe`
//! is non-mutating: it answers the label an `insert` of the same point
//! would receive, without changing detector state. All human-facing
//! output goes to stderr; stdout carries protocol frames only.

use std::io::{BufRead, BufReader, Write};
use std::sync::Arc;
use std::time::Instant;

use dbscout_core::{build_run_report, DbscoutParams, IncrementalDbscout, PointLabel, RunInfo};
use dbscout_data::io::IngestMode;
use dbscout_data::{materialize, BinarySource, DEFAULT_BATCH_SIZE};
use dbscout_dataflow::MetricsSnapshot;
use dbscout_spatial::points::PointId;
use dbscout_telemetry::json::{escape, parse, Value};
use dbscout_telemetry::{Recorder, ServeReport, Span, SpanKind, TraceCollector};

use crate::cli::{CliError, Flags};
use crate::commands::{load_dataset, parse_kernel, parse_layout};

/// Warm serving state: the incremental detector plus the session's
/// operation tally and (optional) trace collector.
pub(crate) struct ServeState {
    inc: IncrementalDbscout,
    report: ServeReport,
    collector: Option<Arc<TraceCollector>>,
}

impl ServeState {
    pub(crate) fn new(inc: IncrementalDbscout, collector: Option<Arc<TraceCollector>>) -> Self {
        Self {
            inc,
            report: ServeReport::default(),
            collector,
        }
    }

    /// The warm detector (for post-session reporting).
    pub(crate) fn detector(&self) -> &IncrementalDbscout {
        &self.inc
    }

    /// The session's operation tally so far.
    pub(crate) fn serve_report(&self) -> ServeReport {
        let mut r = self.report.clone();
        r.rebuilds = self.inc.rebuilds();
        r.compactions = self.inc.compactions();
        r
    }
}

/// Renders a label for the wire.
fn label_str(label: PointLabel) -> &'static str {
    match label {
        PointLabel::Core => "core",
        PointLabel::Covered => "covered",
        PointLabel::Outlier => "outlier",
    }
}

/// One-line error response.
fn err_line(msg: &str) -> String {
    format!("{{\"ok\":false,\"error\":\"{}\"}}", escape(msg))
}

/// Extracts the `"point"` array from a request.
fn point_of(doc: &Value) -> Result<Vec<f64>, String> {
    let arr = doc
        .get("point")
        .and_then(Value::as_array)
        .ok_or_else(|| "missing \"point\" array".to_string())?;
    let mut out = Vec::with_capacity(arr.len());
    for v in arr {
        out.push(
            v.as_f64()
                .ok_or_else(|| "\"point\" must hold numbers".to_string())?,
        );
    }
    Ok(out)
}

/// Handles one request line. Returns the response line, the op name (for
/// the per-query telemetry span), and whether the session should end.
fn handle(state: &mut ServeState, line: &str) -> (String, &'static str, bool) {
    let doc = match parse(line) {
        Ok(doc) => doc,
        Err(e) => {
            state.report.errors += 1;
            return (err_line(&format!("invalid JSON: {e}")), "error", false);
        }
    };
    let Some(op) = doc.get("op").and_then(Value::as_str) else {
        state.report.errors += 1;
        return (err_line("missing \"op\" field"), "error", false);
    };
    match op {
        "probe" => {
            match point_of(&doc).and_then(|p| state.inc.probe(&p).map_err(|e| e.to_string())) {
                Ok(label) => {
                    state.report.probes += 1;
                    (
                        format!(
                            "{{\"ok\":true,\"op\":\"probe\",\"label\":\"{}\"}}",
                            label_str(label)
                        ),
                        "probe",
                        false,
                    )
                }
                Err(e) => {
                    state.report.errors += 1;
                    (err_line(&e), "probe", false)
                }
            }
        }
        "insert" => {
            match point_of(&doc).and_then(|p| state.inc.insert(&p).map_err(|e| e.to_string())) {
                Ok(id) => {
                    state.report.inserts += 1;
                    (
                        format!(
                            "{{\"ok\":true,\"op\":\"insert\",\"id\":{id},\"label\":\"{}\"}}",
                            label_str(state.inc.label(id))
                        ),
                        "insert",
                        false,
                    )
                }
                Err(e) => {
                    state.report.errors += 1;
                    (err_line(&e), "insert", false)
                }
            }
        }
        "remove" => match doc.get("id").and_then(Value::as_u64) {
            Some(raw) => {
                // Ids outside the u32 id space were never assigned, so
                // they are misses, not errors — same as a re-remove.
                let removed = u32::try_from(raw)
                    .ok()
                    .is_some_and(|id: PointId| state.inc.remove(id));
                state.report.removes += 1;
                (
                    format!("{{\"ok\":true,\"op\":\"remove\",\"id\":{raw},\"removed\":{removed}}}"),
                    "remove",
                    false,
                )
            }
            None => {
                state.report.errors += 1;
                (err_line("missing \"id\" field"), "remove", false)
            }
        },
        "outliers" => {
            let ids = state.inc.outliers();
            state.report.outlier_queries += 1;
            let mut out = format!(
                "{{\"ok\":true,\"op\":\"outliers\",\"count\":{},\"ids\":[",
                ids.len()
            );
            for (i, id) in ids.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&id.to_string());
            }
            out.push_str("]}");
            (out, "outliers", false)
        }
        "stats" => {
            state.report.stats_queries += 1;
            let inc = &state.inc;
            let core = (0..inc.total_inserted() as PointId)
                .filter(|&id| inc.is_alive(id) && inc.label(id) == PointLabel::Core)
                .count();
            let k = inc.kernel_counters();
            (
                format!(
                    "{{\"ok\":true,\"op\":\"stats\",\"points\":{},\"total_inserted\":{},\
                     \"outliers\":{},\"core\":{},\"layout\":\"{}\",\"kernel\":\"{}\",\
                     \"rebuilds\":{},\"compactions\":{},\"cells_visited\":{},\
                     \"bbox_prunes\":{},\"early_exit_hits\":{},\"distance_evals\":{}}}",
                    inc.len(),
                    inc.total_inserted(),
                    inc.outliers().len(),
                    core,
                    match inc.layout() {
                        dbscout_core::ExecutionLayout::CellMajor => "cell-major",
                        dbscout_core::ExecutionLayout::Hashed => "hashed",
                    },
                    inc.kernel().as_str(),
                    inc.rebuilds(),
                    inc.compactions(),
                    k.cells_visited,
                    k.bbox_prunes,
                    k.early_exit_hits,
                    k.distance_evals,
                ),
                "stats",
                false,
            )
        }
        "shutdown" => (
            "{\"ok\":true,\"op\":\"shutdown\"}".to_string(),
            "shutdown",
            true,
        ),
        other => {
            state.report.errors += 1;
            (err_line(&format!("unknown op {other:?}")), "error", false)
        }
    }
}

/// Runs one serving session: reads request lines from `reader`, writes
/// one response line per request to `writer`. Returns `Ok(true)` when
/// the client asked for `shutdown`, `Ok(false)` on EOF/hangup.
pub(crate) fn serve_session<R: BufRead, W: Write>(
    state: &mut ServeState,
    reader: R,
    writer: &mut W,
) -> std::io::Result<bool> {
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let started = Instant::now();
        let (response, op, shutdown) = handle(state, &line);
        state.report.queries += 1;
        if let Some(c) = &state.collector {
            c.record_span(
                Span::new(
                    format!("serve:{op}"),
                    SpanKind::Task,
                    started,
                    started.elapsed(),
                )
                .arg("seq", state.report.queries),
            );
        }
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if shutdown {
            return Ok(true);
        }
    }
    Ok(false)
}

/// `dbscout serve`: bulk-load a dataset, then answer queries against the
/// warm incremental detector until `shutdown`.
pub fn serve(flags: &Flags) -> Result<String, CliError> {
    let input: String = flags.require("input")?;
    let eps: f64 = flags.require("eps")?;
    let min_pts: usize = flags.require("min-pts")?;
    let from_binary = flags.has("from-binary");
    let labeled = flags.has("labeled");
    if from_binary && labeled {
        return Err(CliError::new(
            "--from-binary input carries no label column; drop --labeled",
        ));
    }
    let batch_size: usize = flags.get("batch-size", DEFAULT_BATCH_SIZE)?;
    if batch_size == 0 {
        return Err(CliError::new("--batch-size must be at least 1"));
    }
    let layout = parse_layout(&flags.get("layout", "cell-major".to_string())?)?;
    let kernel = parse_kernel(&flags.get("kernel", "auto".to_string())?)?;
    // Accepted for flag-surface parity with `detect` and echoed in the
    // run report; the warm engine answers each query on one thread.
    let threads: u64 = flags.get("threads", 1)?;
    let socket: Option<String> = flags.require::<String>("socket").ok();
    let trace_out = flags.require::<String>("trace-out").ok();
    let report_out = flags.require::<String>("report-json").ok();
    let collector =
        (trace_out.is_some() || report_out.is_some()).then(|| Arc::new(TraceCollector::new()));

    let params = DbscoutParams::new(eps, min_pts).map_err(|e| CliError::new(e.to_string()))?;
    let store = if from_binary {
        let mut src =
            BinarySource::open(&input, batch_size).map_err(|e| CliError::data(e.to_string()))?;
        materialize(&mut src).map_err(|e| CliError::data(e.to_string()))?
    } else {
        load_dataset(&input, labeled, IngestMode::Strict)?.store
    };
    let dims = store.dims() as u64;

    let t = Instant::now();
    let inc = IncrementalDbscout::from_store_with(&store, params, layout, kernel)
        .map_err(|e| CliError::engine(e.to_string()))?;
    eprintln!(
        "dbscout serve: {} points warm in {:?} (layout = {}, kernel = {}), {} outliers",
        inc.len(),
        t.elapsed(),
        match inc.layout() {
            dbscout_core::ExecutionLayout::CellMajor => "cell-major",
            dbscout_core::ExecutionLayout::Hashed => "hashed",
        },
        inc.kernel().as_str(),
        inc.outliers().len(),
    );
    let mut state = ServeState::new(inc, collector.clone());

    let session_start = Instant::now();
    if let Some(path) = &socket {
        serve_on_socket(&mut state, path)?;
    } else {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        serve_session(&mut state, stdin.lock(), &mut out)
            .map_err(|e| CliError::engine(format!("serve session failed: {e}")))?;
    }
    let elapsed = session_start.elapsed();

    let serve_report = state.serve_report();
    eprintln!(
        "dbscout serve: session over — {} queries ({} probes, {} inserts, {} removes, \
         {} outlier queries, {} stats queries, {} errors), {} rebuilds, {} compactions",
        serve_report.queries,
        serve_report.probes,
        serve_report.inserts,
        serve_report.removes,
        serve_report.outlier_queries,
        serve_report.stats_queries,
        serve_report.errors,
        serve_report.rebuilds,
        serve_report.compactions,
    );

    let inc = state.detector();
    if let (Some(path), Some(c)) = (&trace_out, &collector) {
        let end = Instant::now();
        for (name, value) in inc.kernel_counters().named() {
            c.record_counter_point(name, end, value);
        }
        std::fs::write(path, c.to_chrome_trace()).map_err(|e| CliError::data(e.to_string()))?;
        eprintln!("wrote chrome trace to {path}");
    }
    if let Some(path) = &report_out {
        let result = inc.snapshot();
        let info = RunInfo {
            source: input.clone(),
            points: inc.len() as u64,
            dimensions: dims,
            engine: "incremental".to_owned(),
            partitions: 0,
            workers: 0,
            kernel: inc.kernel().as_str().to_owned(),
            threads,
            chaos_seed: None,
            peak_rss_bytes: dbscout_telemetry::peak_rss_bytes(),
        };
        let mut report = build_run_report(
            &info,
            params,
            &result,
            &MetricsSnapshot::default(),
            &[],
            None,
            elapsed,
        );
        // The snapshot's per-run kernel counters are zero by design (the
        // work happened across individual queries); the totals echo the
        // accumulated per-operation counters instead.
        let k = inc.kernel_counters();
        report.totals.cells_visited = k.cells_visited;
        report.totals.bbox_prunes = k.bbox_prunes;
        report.totals.early_exit_hits = k.early_exit_hits;
        report.totals.distance_evals = k.distance_evals;
        report.serve = Some(serve_report);
        std::fs::write(path, report.to_json()).map_err(|e| CliError::data(e.to_string()))?;
        eprintln!("wrote run report to {path}");
    }
    // Stdout is the protocol channel, so the report string stays empty
    // (summaries went to stderr above).
    Ok(String::new())
}

/// Socket mode: accept connections one at a time and serve each as a
/// session; `shutdown` from any client stops the daemon.
fn serve_on_socket(state: &mut ServeState, path: &str) -> Result<(), CliError> {
    use std::os::unix::net::UnixListener;

    // A stale socket file from a previous run would make bind fail.
    let _ = std::fs::remove_file(path);
    let listener =
        UnixListener::bind(path).map_err(|e| CliError::data(format!("bind {path}: {e}")))?;
    eprintln!("dbscout serve: listening on {path}");
    let mut shutdown = false;
    while !shutdown {
        let (stream, _) = listener
            .accept()
            .map_err(|e| CliError::engine(format!("accept on {path}: {e}")))?;
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| CliError::engine(format!("socket clone: {e}")))?,
        );
        let mut writer = stream;
        // A client hanging up mid-session is normal; only report errors
        // that are not disconnects.
        match serve_session(state, reader, &mut writer) {
            Ok(s) => shutdown = s,
            Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => {}
            Err(e) => return Err(CliError::engine(format!("serve session failed: {e}"))),
        }
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbscout_core::ExecutionLayout;
    use dbscout_spatial::KernelKind;
    use std::io::Cursor;

    fn warm_state(layout: ExecutionLayout) -> ServeState {
        // A dense 3×3 grid plus one far-away outlier, ids 0..=9.
        let mut rows: Vec<Vec<f64>> = Vec::new();
        for i in 0..3 {
            for j in 0..3 {
                rows.push(vec![0.1 * f64::from(i), 0.1 * f64::from(j)]);
            }
        }
        rows.push(vec![100.0, 100.0]);
        let store = dbscout_spatial::PointStore::from_rows(2, rows).unwrap();
        let params = DbscoutParams::new(1.0, 4).unwrap();
        let inc =
            IncrementalDbscout::from_store_with(&store, params, layout, KernelKind::Auto).unwrap();
        ServeState::new(inc, None)
    }

    fn run_lines(state: &mut ServeState, lines: &[&str]) -> (Vec<String>, bool) {
        let input = lines.join("\n");
        let mut out = Vec::new();
        let shutdown = serve_session(state, Cursor::new(input), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        (text.lines().map(str::to_owned).collect(), shutdown)
    }

    #[test]
    fn protocol_round_trip_probe_insert_remove_outliers() {
        for layout in [ExecutionLayout::CellMajor, ExecutionLayout::Hashed] {
            let mut state = warm_state(layout);
            let (responses, shutdown) = run_lines(
                &mut state,
                &[
                    r#"{"op":"outliers"}"#,
                    r#"{"op":"probe","point":[0.1,0.1]}"#,
                    r#"{"op":"probe","point":[50.0,50.0]}"#,
                    r#"{"op":"insert","point":[50.0,50.0]}"#,
                    r#"{"op":"outliers"}"#,
                    r#"{"op":"remove","id":10}"#,
                    r#"{"op":"remove","id":10}"#,
                    r#"{"op":"outliers"}"#,
                    r#"{"op":"stats"}"#,
                    r#"{"op":"shutdown"}"#,
                ],
            );
            assert!(shutdown);
            assert_eq!(responses.len(), 10, "{responses:?}");
            assert_eq!(
                responses[0],
                r#"{"ok":true,"op":"outliers","count":1,"ids":[9]}"#
            );
            // Probing inside the dense grid answers core; far away, outlier.
            assert_eq!(responses[1], r#"{"ok":true,"op":"probe","label":"core"}"#);
            assert_eq!(
                responses[2],
                r#"{"ok":true,"op":"probe","label":"outlier"}"#
            );
            // The probe did not mutate: the insert gets the next id (10).
            assert_eq!(
                responses[3],
                r#"{"ok":true,"op":"insert","id":10,"label":"outlier"}"#
            );
            assert_eq!(
                responses[4],
                r#"{"ok":true,"op":"outliers","count":2,"ids":[9,10]}"#
            );
            assert_eq!(
                responses[5],
                r#"{"ok":true,"op":"remove","id":10,"removed":true}"#
            );
            // Re-removing is a miss, answered — not an error.
            assert_eq!(
                responses[6],
                r#"{"ok":true,"op":"remove","id":10,"removed":false}"#
            );
            assert_eq!(
                responses[7],
                r#"{"ok":true,"op":"outliers","count":1,"ids":[9]}"#
            );
            assert!(responses[8].contains("\"points\":10"), "{}", responses[8]);
            assert!(
                responses[8].contains("\"total_inserted\":11"),
                "{}",
                responses[8]
            );
            assert_eq!(responses[9], r#"{"ok":true,"op":"shutdown"}"#);

            let r = state.serve_report();
            assert_eq!(r.queries, 10);
            assert_eq!(r.probes, 2);
            assert_eq!(r.inserts, 1);
            assert_eq!(r.removes, 2);
            assert_eq!(r.outlier_queries, 3);
            assert_eq!(r.stats_queries, 1);
            assert_eq!(r.errors, 0);
        }
    }

    #[test]
    fn malformed_requests_answer_errors_and_keep_the_session_alive() {
        let mut state = warm_state(ExecutionLayout::CellMajor);
        let (responses, shutdown) = run_lines(
            &mut state,
            &[
                "not json at all",
                r#"{"point":[1.0,2.0]}"#,
                r#"{"op":"frobnicate"}"#,
                r#"{"op":"probe"}"#,
                r#"{"op":"probe","point":[1.0]}"#,
                r#"{"op":"probe","point":["a","b"]}"#,
                r#"{"op":"insert","point":[1.0,2.0,3.0]}"#,
                r#"{"op":"remove"}"#,
                "",
                r#"{"op":"stats"}"#,
            ],
        );
        // EOF without shutdown: the daemon reports a hangup, not a close.
        assert!(!shutdown);
        // The blank line is skipped entirely (no response, not counted).
        assert_eq!(responses.len(), 9, "{responses:?}");
        for r in &responses[..8] {
            assert!(r.starts_with(r#"{"ok":false,"error":""#), "{r}");
        }
        assert!(responses[8].starts_with(r#"{"ok":true,"op":"stats""#));
        let r = state.serve_report();
        assert_eq!(r.queries, 9);
        assert_eq!(r.errors, 8);
        assert_eq!(r.stats_queries, 1);
        // The dimension-mismatched insert really was rejected.
        assert_eq!(state.detector().total_inserted(), 10);
    }

    #[test]
    fn session_mutations_match_a_directly_driven_detector() {
        for layout in [ExecutionLayout::CellMajor, ExecutionLayout::Hashed] {
            let mut state = warm_state(layout);
            let mut twin = warm_state(layout);

            let mut lines = Vec::new();
            for i in 0..20u32 {
                let x = 0.05 * f64::from(i % 7);
                let y = 40.0 + 0.05 * f64::from(i % 5);
                lines.push(format!(r#"{{"op":"insert","point":[{x},{y}]}}"#));
                twin.inc.insert(&[x, y]).unwrap();
                if i % 3 == 0 {
                    lines.push(format!(r#"{{"op":"remove","id":{i}}}"#));
                    twin.inc.remove(i);
                }
            }
            lines.push(r#"{"op":"outliers"}"#.to_string());
            let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
            let (responses, _) = run_lines(&mut state, &refs);

            let expected = twin.inc.outliers();
            let mut want = format!(
                r#"{{"ok":true,"op":"outliers","count":{},"ids":["#,
                expected.len()
            );
            want.push_str(
                &expected
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(","),
            );
            want.push_str("]}");
            assert_eq!(responses.last().unwrap(), &want, "layout {layout:?}");
            assert_eq!(state.inc.labels(), twin.inc.labels());
        }
    }
}
