//! End-to-end tests of `dbscout serve` as a real child process: the
//! daemon's warm answers must be byte-identical to what the batch CLI
//! computes from scratch over the equivalent dataset, across arbitrary
//! insert/remove interleavings (with exact id mapping), on both stdio
//! and Unix-socket transports.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing
)]

use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};

use dbscout_telemetry::json::{parse, Value};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("dbscout-serve-test");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn dbscout_ok(args: &[&str]) -> Output {
    let out = Command::new(env!("CARGO_BIN_EXE_dbscout"))
        .args(args)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "dbscout {args:?} failed:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

/// Reads the CSV the test generated back as rows of `f64`s.
fn read_rows(path: &PathBuf) -> Vec<Vec<f64>> {
    std::fs::read_to_string(path)
        .unwrap()
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| l.split(',').map(|c| c.parse().unwrap()).collect())
        .collect()
}

/// Writes rows as a CSV the batch CLI can consume.
fn write_rows(path: &PathBuf, rows: &[Vec<f64>]) {
    let mut out = String::new();
    for row in rows {
        let cells: Vec<String> = row.iter().map(|v| format!("{v:?}")).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    std::fs::write(path, out).unwrap();
}

/// Runs the batch CLI over `rows` and returns the flagged row indices
/// (the trailing column `--output` writes is the outlier flag).
fn batch_outlier_indices(name: &str, rows: &[Vec<f64>], eps: &str, min_pts: &str) -> Vec<usize> {
    let input = tmp(&format!("{name}-batch-in.csv"));
    let flagged = tmp(&format!("{name}-batch-out.csv"));
    write_rows(&input, rows);
    dbscout_ok(&[
        "detect",
        "--input",
        input.to_str().unwrap(),
        "--eps",
        eps,
        "--min-pts",
        min_pts,
        "--output",
        flagged.to_str().unwrap(),
    ]);
    std::fs::read_to_string(&flagged)
        .unwrap()
        .lines()
        .enumerate()
        .filter(|(_, l)| l.trim().ends_with(",1"))
        .map(|(i, _)| i)
        .collect()
}

/// Spawns `dbscout serve` on stdio and returns the child.
fn spawn_serve(args: &[&str]) -> Child {
    Command::new(env!("CARGO_BIN_EXE_dbscout"))
        .arg("serve")
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap()
}

/// Sends the request lines and collects one response line per request.
fn drive(child: &mut Child, requests: &[String]) -> Vec<String> {
    let mut stdin = child.stdin.take().unwrap();
    for r in requests {
        writeln!(stdin, "{r}").unwrap();
    }
    drop(stdin); // EOF after shutdown
    let stdout = child.stdout.take().unwrap();
    let responses: Vec<String> = BufReader::new(stdout).lines().map(Result::unwrap).collect();
    let status = child.wait().unwrap();
    assert!(status.success(), "serve exited with {status:?}");
    responses
}

fn ids_of_outliers_response(line: &str) -> Vec<u64> {
    let doc = parse(line).unwrap();
    assert_eq!(doc.get("ok").and_then(Value::as_u64), None); // bools aren't u64
    assert_eq!(doc.get("op").unwrap().as_str(), Some("outliers"));
    doc.get("ids")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|v| v.as_u64().unwrap())
        .collect()
}

#[test]
fn interleaved_session_matches_batch_cli_with_exact_id_mapping() {
    for layout in ["cell-major", "hashed"] {
        let data = tmp(&format!("mix-{layout}.csv"));
        dbscout_ok(&[
            "generate",
            "--dataset",
            "blobs",
            "--n",
            "400",
            "--seed",
            "19",
            "--output",
            data.to_str().unwrap(),
        ]);
        let base_rows = read_rows(&data);
        let n = base_rows.len();

        // Book-keep the session ourselves: rows by id, and liveness.
        let mut rows_by_id = base_rows.clone();
        let mut alive: Vec<bool> = vec![true; n];
        let mut requests: Vec<String> = Vec::new();
        // An arbitrary interleaving: new points (clustered and far),
        // removals of original AND fresh ids, a re-remove miss, probes.
        let new_points: Vec<Vec<f64>> = (0..12)
            .map(|i| {
                if i % 3 == 0 {
                    vec![200.0 + f64::from(i), 200.0]
                } else {
                    vec![0.01 * f64::from(i), 0.02 * f64::from(i)]
                }
            })
            .collect();
        for (i, p) in new_points.iter().enumerate() {
            requests.push(format!(
                r#"{{"op":"insert","point":[{:?},{:?}]}}"#,
                p[0], p[1]
            ));
            rows_by_id.push(p.clone());
            alive.push(true);
            if i % 2 == 0 {
                // Remove an original id interleaved with the inserts.
                let victim = i * 13 % n;
                requests.push(format!(r#"{{"op":"remove","id":{victim}}}"#));
                alive[victim] = false;
            }
            requests.push(r#"{"op":"probe","point":[0.0,0.0]}"#.to_string());
        }
        // Remove two of the fresh ids too, plus one guaranteed miss.
        for fresh in [n as u64, n as u64 + 3] {
            requests.push(format!(r#"{{"op":"remove","id":{fresh}}}"#));
            alive[fresh as usize] = false;
        }
        requests.push(format!(r#"{{"op":"remove","id":{}}}"#, n)); // re-remove
        requests.push(r#"{"op":"outliers"}"#.to_string());
        requests.push(r#"{"op":"stats"}"#.to_string());
        requests.push(r#"{"op":"shutdown"}"#.to_string());

        let mut child = spawn_serve(&[
            "--input",
            data.to_str().unwrap(),
            "--eps",
            "0.6",
            "--min-pts",
            "5",
            "--layout",
            layout,
        ]);
        let responses = drive(&mut child, &requests);
        assert_eq!(responses.len(), requests.len(), "{responses:?}");
        let outliers_line = &responses[responses.len() - 3];
        let served_ids = ids_of_outliers_response(outliers_line);

        // Exact id mapping: survivors in id order are the batch rows in
        // row order, so batch outlier row k is survivor id ids[k].
        let survivor_ids: Vec<u64> = (0..rows_by_id.len() as u64)
            .filter(|&id| alive[id as usize])
            .collect();
        let survivor_rows: Vec<Vec<f64>> = survivor_ids
            .iter()
            .map(|&id| rows_by_id[id as usize].clone())
            .collect();
        let batch_ids: Vec<u64> =
            batch_outlier_indices(&format!("mix-{layout}"), &survivor_rows, "0.6", "5")
                .into_iter()
                .map(|k| survivor_ids[k])
                .collect();
        assert_eq!(served_ids, batch_ids, "layout {layout}");
    }
}

#[test]
fn serve_report_carries_the_v6_serve_section() {
    let data = tmp("report.csv");
    dbscout_ok(&[
        "generate",
        "--dataset",
        "blobs",
        "--n",
        "300",
        "--seed",
        "5",
        "--output",
        data.to_str().unwrap(),
    ]);
    let report = tmp("serve-report.json");
    let mut child = spawn_serve(&[
        "--input",
        data.to_str().unwrap(),
        "--eps",
        "0.6",
        "--min-pts",
        "5",
        "--report-json",
        report.to_str().unwrap(),
    ]);
    let requests: Vec<String> = vec![
        r#"{"op":"probe","point":[0.0,0.0]}"#.to_string(),
        r#"{"op":"insert","point":[90.0,90.0]}"#.to_string(),
        r#"{"op":"remove","id":300}"#.to_string(),
        r#"{"op":"outliers"}"#.to_string(),
        "garbage".to_string(),
        r#"{"op":"stats"}"#.to_string(),
        r#"{"op":"shutdown"}"#.to_string(),
    ];
    let responses = drive(&mut child, &requests);
    assert_eq!(responses.len(), 7);

    let doc = parse(&std::fs::read_to_string(&report).unwrap()).unwrap();
    assert_eq!(
        doc.get("schema_version").unwrap().as_u64(),
        Some(dbscout_telemetry::REPORT_SCHEMA_VERSION)
    );
    assert_eq!(
        doc.get("params").unwrap().get("engine").unwrap().as_str(),
        Some("incremental")
    );
    let serve = doc.get("serve").expect("serve section present");
    assert_eq!(serve.get("queries").unwrap().as_u64(), Some(7));
    assert_eq!(serve.get("probes").unwrap().as_u64(), Some(1));
    assert_eq!(serve.get("inserts").unwrap().as_u64(), Some(1));
    assert_eq!(serve.get("removes").unwrap().as_u64(), Some(1));
    assert_eq!(serve.get("outlier_queries").unwrap().as_u64(), Some(1));
    assert_eq!(serve.get("stats_queries").unwrap().as_u64(), Some(1));
    assert_eq!(serve.get("errors").unwrap().as_u64(), Some(1));
    assert!(serve.get("rebuilds").unwrap().as_u64().is_some());
    assert!(serve.get("compactions").unwrap().as_u64().is_some());
    // The dataset's points echo the *surviving* count (300 + 1 - 1).
    assert_eq!(
        doc.get("dataset").unwrap().get("points").unwrap().as_u64(),
        Some(300)
    );
    // Kernel totals reflect the accumulated per-query work.
    let totals = doc.get("totals").unwrap();
    assert!(totals.get("distance_evals").unwrap().as_u64().unwrap() > 0);
}

#[test]
fn socket_transport_answers_across_reconnects() {
    use std::os::unix::net::UnixStream;
    use std::time::{Duration, Instant};

    let data = tmp("socket.csv");
    dbscout_ok(&[
        "generate",
        "--dataset",
        "blobs",
        "--n",
        "200",
        "--seed",
        "8",
        "--output",
        data.to_str().unwrap(),
    ]);
    let sock = tmp("serve.sock");
    let _ = std::fs::remove_file(&sock);
    let mut child = spawn_serve(&[
        "--input",
        data.to_str().unwrap(),
        "--eps",
        "0.6",
        "--min-pts",
        "5",
        "--socket",
        sock.to_str().unwrap(),
    ]);
    // Wait for the socket to appear.
    let deadline = Instant::now() + Duration::from_secs(30);
    while !sock.exists() {
        assert!(Instant::now() < deadline, "socket never appeared");
        std::thread::sleep(Duration::from_millis(20));
    }

    let ask = |line: &str| -> String {
        let stream = UnixStream::connect(&sock).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        writeln!(writer, "{line}").unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        response.trim_end().to_string()
    };

    // Warm state persists across reconnects: the insert from the first
    // connection is visible to the second.
    let first = ask(r#"{"op":"insert","point":[500.0,500.0]}"#);
    assert!(first.contains(r#""id":200"#), "{first}");
    let second = ask(r#"{"op":"outliers"}"#);
    assert!(ids_of_outliers_response(&second).contains(&200), "{second}");
    let bye = ask(r#"{"op":"shutdown"}"#);
    assert_eq!(bye, r#"{"ok":true,"op":"shutdown"}"#);

    let status = child.wait().unwrap();
    assert!(status.success(), "{status:?}");
    assert!(!sock.exists(), "socket file cleaned up");
}
