//! Worker-loss chaos suite for `--backend process` (satellite of the
//! shared-nothing process-worker work).
//!
//! The contract under test: the process backend's labels are
//! **byte-identical** to the in-process backend's — no matter how many
//! worker processes are SIGKILLed mid-stage — because every shard is a
//! pure function of the shared input file and the failure machinery
//! only re-dispatches whole shards. Failure-path behaviour (poisoned
//! tasks, respawn-budget exhaustion) must be a clean typed error with
//! the engine exit code, never a hang or a wrong answer.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing
)]

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use dbscout_telemetry::json::parse;
use dbscout_telemetry::strip_timing_lines;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("dbscout-process-backend");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Runs `dbscout` with optional chaos env vars; panics only on spawn
/// failure so failure-path tests can inspect the exit status.
fn dbscout_raw(args: &[&str], envs: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_dbscout"));
    cmd.args(args);
    for var in [
        "DBSCOUT_CHAOS_SEED",
        "DBSCOUT_WORKER_KILL",
        "DBSCOUT_WORKER_KILL_AT_END",
    ] {
        cmd.env_remove(var);
    }
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().unwrap()
}

fn dbscout_ok(args: &[&str], envs: &[(&str, &str)]) -> String {
    let out = dbscout_raw(args, envs);
    assert!(
        out.status.success(),
        "dbscout {args:?} (env {envs:?}) failed:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Generates the shared binary dataset once per test binary.
fn dataset() -> PathBuf {
    let data = tmp("chaos.dbsc");
    if !data.exists() {
        dbscout_ok(
            &[
                "generate",
                "--dataset",
                "blobs",
                "--n",
                "4000",
                "--seed",
                "11",
                "--output",
                data.to_str().unwrap(),
                "--format",
                "binary",
            ],
            &[],
        );
    }
    data
}

const EPS: &str = "0.6";
const MIN_PTS: &str = "5";

/// Runs a detection writing flagged labels to `out_csv`, returning the
/// report text. `backend_args` selects the backend; `envs` the chaos.
fn detect_to(data: &Path, out_csv: &Path, backend_args: &[&str], envs: &[(&str, &str)]) -> String {
    let mut args = vec![
        "detect",
        "--input",
        data.to_str().unwrap(),
        "--from-binary",
        "--eps",
        EPS,
        "--min-pts",
        MIN_PTS,
        "--output",
        out_csv.to_str().unwrap(),
    ];
    args.extend_from_slice(backend_args);
    dbscout_ok(&args, envs)
}

/// The in-process reference labels (computed once, compared by bytes).
fn reference_labels(data: &Path) -> Vec<u8> {
    let out = tmp("labels-reference.csv");
    detect_to(data, &out, &[], &[]);
    std::fs::read(&out).unwrap()
}

#[test]
fn process_backend_labels_match_in_process_byte_for_byte() {
    let data = dataset();
    let reference = reference_labels(&data);
    let out = tmp("labels-process.csv");
    let report = detect_to(
        &data,
        &out,
        &["--backend", "process", "--workers", "4"],
        &[],
    );
    assert!(report.contains("backend = process (4 workers)"), "{report}");
    assert_eq!(std::fs::read(&out).unwrap(), reference);
}

#[test]
fn csv_input_is_spilled_and_agrees_with_binary_streaming() {
    // The spill path: CSV input is re-encoded to a temp DBSC file for
    // the workers; labels must match the binary-input process run.
    let csv = tmp("chaos.csv");
    dbscout_ok(
        &[
            "generate",
            "--dataset",
            "blobs",
            "--n",
            "4000",
            "--seed",
            "11",
            "--output",
            csv.to_str().unwrap(),
        ],
        &[],
    );
    let from_csv = tmp("labels-from-csv.csv");
    dbscout_ok(
        &[
            "detect",
            "--input",
            csv.to_str().unwrap(),
            "--eps",
            EPS,
            "--min-pts",
            MIN_PTS,
            "--output",
            from_csv.to_str().unwrap(),
            "--backend",
            "process",
            "--workers",
            "2",
        ],
        &[],
    );
    let reference = reference_labels(&dataset());
    assert_eq!(std::fs::read(&from_csv).unwrap(), reference);
}

#[test]
fn sigkill_mid_core_point_pass_preserves_labels() {
    let data = dataset();
    let reference = reference_labels(&data);
    let out = tmp("labels-kill-core.csv");
    let report = detect_to(
        &data,
        &out,
        &["--backend", "process", "--workers", "4"],
        &[("DBSCOUT_WORKER_KILL", "core-point:1:1")],
    );
    // Respawn count is deliberately not asserted: the 25ms backoff races
    // stage completion, so the dead slot may or may not be revived before
    // the run finishes. Kills and reassignments are plan-driven and exact.
    assert!(report.contains("worker failures: 1 kill(s)"), "{report}");
    assert!(report.contains("1 task reassignment(s)"), "{report}");
    assert_eq!(std::fs::read(&out).unwrap(), reference);
}

#[test]
fn sigkill_mid_outlier_pass_preserves_labels() {
    let data = dataset();
    let reference = reference_labels(&data);
    let out = tmp("labels-kill-outlier.csv");
    let report = detect_to(
        &data,
        &out,
        &["--backend", "process", "--workers", "4"],
        &[("DBSCOUT_WORKER_KILL", "outlier:2:1")],
    );
    assert!(report.contains("worker failures: 1 kill(s)"), "{report}");
    assert_eq!(std::fs::read(&out).unwrap(), reference);
}

#[test]
fn sigkill_after_stage_completion_preserves_labels() {
    // The worker dies while idle, between the shuffle-complete point of
    // the core-point pass and the outlier pass; the pool discovers the
    // corpse on the next dispatch and works around it.
    let data = dataset();
    let reference = reference_labels(&data);
    let out = tmp("labels-kill-idle.csv");
    let report = detect_to(
        &data,
        &out,
        &["--backend", "process", "--workers", "4"],
        &[("DBSCOUT_WORKER_KILL_AT_END", "core-point:0")],
    );
    assert!(report.contains("worker failures: 1 kill(s)"), "{report}");
    assert_eq!(std::fs::read(&out).unwrap(), reference);
}

#[test]
fn every_single_worker_kill_survives_with_identical_labels() {
    // Graceful degradation: killing any one worker of a two-worker pool
    // mid-stage leaves one survivor that must still produce the exact
    // labels (the ISSUE's "SIGKILL of any single worker" acceptance).
    let data = dataset();
    let reference = reference_labels(&data);
    for slot_task in [0usize, 3, 5] {
        let out = tmp(&format!("labels-anykill-{slot_task}.csv"));
        let kill = format!(":{slot_task}:1");
        let report = detect_to(
            &data,
            &out,
            &["--backend", "process", "--workers", "2"],
            &[("DBSCOUT_WORKER_KILL", kill.as_str())],
        );
        // The kill spec has no stage filter, so both stages lose the
        // worker hosting that task once.
        assert!(report.contains("worker failures: 2 kill(s)"), "{report}");
        assert_eq!(
            std::fs::read(&out).unwrap(),
            reference,
            "labels diverged after killing the worker of task {slot_task}"
        );
    }
}

#[test]
fn poison_task_is_quarantined_with_engine_exit_code() {
    // The same task kills two distinct workers -> quarantined as poison
    // input with a clean typed failure, not an infinite respawn loop.
    let data = dataset();
    let out = dbscout_raw(
        &[
            "detect",
            "--input",
            data.to_str().unwrap(),
            "--from-binary",
            "--eps",
            EPS,
            "--min-pts",
            MIN_PTS,
            "--backend",
            "process",
            "--workers",
            "2",
        ],
        &[("DBSCOUT_WORKER_KILL", "core-point:0:2")],
    );
    assert_eq!(out.status.code(), Some(3), "engine exit code expected");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("poison input quarantined"), "{stderr}");
    assert!(stderr.contains("2 distinct worker processes"), "{stderr}");
}

#[test]
fn respawn_budget_exhaustion_is_a_clean_worker_lost_error() {
    // One worker, killed on every dispatch, tiny budget: the run must
    // end in a WorkerLost engine error (exit 3) naming the budget —
    // never a hang.
    let data = dataset();
    let out = dbscout_raw(
        &[
            "detect",
            "--input",
            data.to_str().unwrap(),
            "--from-binary",
            "--eps",
            EPS,
            "--min-pts",
            MIN_PTS,
            "--backend",
            "process",
            "--workers",
            "1",
            "--respawn-budget",
            "2",
        ],
        &[("DBSCOUT_WORKER_KILL", ":0:99")],
    );
    assert_eq!(out.status.code(), Some(3), "engine exit code expected");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("respawn budget exhausted"), "{stderr}");
    assert!(stderr.contains("2 respawn(s) used"), "{stderr}");
}

#[test]
fn seeded_worker_kills_record_versioned_report_and_deterministic_skeleton() {
    let data = dataset();
    let mut reports = Vec::new();
    for run in 0..2 {
        let report_path = tmp(&format!("process-report-{run}.json"));
        dbscout_ok(
            &[
                "detect",
                "--input",
                data.to_str().unwrap(),
                "--from-binary",
                "--eps",
                EPS,
                "--min-pts",
                MIN_PTS,
                "--backend",
                "process",
                "--workers",
                "4",
                "--report-json",
                report_path.to_str().unwrap(),
            ],
            &[("DBSCOUT_CHAOS_SEED", "20210414")],
        );
        reports.push(std::fs::read_to_string(&report_path).unwrap());
    }

    // Same seed, two runs: every non-timing field is byte-identical.
    assert_eq!(
        strip_timing_lines(&reports[0]),
        strip_timing_lines(&reports[1])
    );

    let doc = parse(&reports[0]).unwrap();
    assert_eq!(
        doc.get("schema_version").unwrap().as_u64(),
        Some(dbscout_telemetry::REPORT_SCHEMA_VERSION)
    );
    assert_eq!(
        doc.get("params")
            .unwrap()
            .get("chaos_seed")
            .unwrap()
            .as_u64(),
        Some(20_210_414)
    );

    // The seeded plan kills one worker per stage; the report records the
    // kills and the reassignments of their in-flight shards, per stage
    // and in totals, plus the pool's own attribution section.
    let stages = doc.get("stages").unwrap().as_array().unwrap();
    assert_eq!(stages.len(), 2, "core-point and outlier stages");
    for stage in stages {
        assert_eq!(stage.get("worker_kills").unwrap().as_u64(), Some(1));
        assert_eq!(stage.get("task_reassignments").unwrap().as_u64(), Some(1));
    }
    let totals = doc.get("totals").unwrap();
    assert_eq!(totals.get("worker_kills").unwrap().as_u64(), Some(2));
    assert_eq!(totals.get("task_reassignments").unwrap().as_u64(), Some(2));

    let process = doc.get("process").unwrap();
    assert_eq!(process.get("workers").unwrap().as_u64(), Some(4));
    assert_eq!(process.get("worker_kills").unwrap().as_u64(), Some(2));
    assert_eq!(
        process.get("per_worker").unwrap().as_array().unwrap().len(),
        4
    );
    // Workers self-report their peak RSS (VmHWM) over IPC; on Linux the
    // sum is nonzero and flows into the totals.
    if cfg!(target_os = "linux") {
        let child_rss = totals
            .get("child_peak_rss_bytes")
            .unwrap()
            .as_u64()
            .unwrap();
        assert!(child_rss > 0, "child VmHWM should be reported");
        assert_eq!(
            process.get("child_peak_rss_bytes").unwrap().as_u64(),
            Some(child_rss)
        );
    }

    // And the chaos run's labels still match the clean reference.
    let reference = reference_labels(&data);
    let out = tmp("labels-seeded.csv");
    detect_to(
        &data,
        &out,
        &["--backend", "process", "--workers", "4"],
        &[("DBSCOUT_CHAOS_SEED", "20210414")],
    );
    assert_eq!(std::fs::read(&out).unwrap(), reference);
}

#[test]
fn backend_flag_validation() {
    let data = dataset();
    let base = [
        "detect",
        "--input",
        data.to_str().unwrap(),
        "--from-binary",
        "--eps",
        EPS,
        "--min-pts",
        MIN_PTS,
    ];
    for (extra, expect) in [
        (&["--backend", "sidecar"][..], "unknown backend"),
        (
            &["--backend", "process", "--engine", "distributed"][..],
            "native engine only",
        ),
        (
            &["--backend", "process", "--layout", "hashed"][..],
            "cell-major",
        ),
    ] {
        let mut args = base.to_vec();
        args.extend_from_slice(extra);
        let out = dbscout_raw(&args, &[]);
        assert_eq!(
            out.status.code(),
            Some(1),
            "{extra:?} must be a usage error"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(expect), "{extra:?}: {stderr}");
    }
    // Malformed chaos env specs are usage errors, not silent no-ops.
    let mut args = base.to_vec();
    args.extend_from_slice(&["--backend", "process"]);
    let out = dbscout_raw(&args, &[("DBSCOUT_WORKER_KILL", "not-a-spec")]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("DBSCOUT_WORKER_KILL"),
        "malformed kill spec must be named in the error"
    );
}

/// Runs a detection with `--trace-out`/`--report-json` plus
/// `backend_args`, returning (trace JSON, report JSON, stdout, stderr).
fn detect_traced(
    data: &Path,
    tag: &str,
    backend_args: &[&str],
) -> (String, String, String, String) {
    let trace = tmp(&format!("trace-{tag}.json"));
    let report = tmp(&format!("report-{tag}.json"));
    let mut args = vec![
        "detect",
        "--input",
        data.to_str().unwrap(),
        "--from-binary",
        "--eps",
        EPS,
        "--min-pts",
        MIN_PTS,
        "--trace-out",
        trace.to_str().unwrap(),
        "--report-json",
        report.to_str().unwrap(),
    ];
    args.extend_from_slice(backend_args);
    let out = dbscout_raw(&args, &[]);
    assert!(
        out.status.success(),
        "dbscout {args:?} failed:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (
        std::fs::read_to_string(&trace).unwrap(),
        std::fs::read_to_string(&report).unwrap(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// Validates Chrome Trace shape: parses as an array, every event is a
/// complete (`X`) or counter (`C`) event, span timestamps are monotone
/// within each (pid, tid) lane, and counter events reference declared
/// kernel counters with numeric values.
fn assert_valid_chrome_trace(trace: &str) {
    use std::collections::BTreeMap;
    let doc = parse(trace).unwrap();
    let events = doc.as_array().expect("trace must be a JSON array");
    assert!(!events.is_empty(), "trace must not be empty");
    let mut last_ts: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    for e in events {
        let ts = e.get("ts").unwrap().as_u64().unwrap();
        match e.get("ph").unwrap().as_str().unwrap() {
            "X" => {
                assert!(e.get("dur").unwrap().as_u64().is_some());
                let pid = e.get("pid").unwrap().as_u64().unwrap();
                let tid = e.get("tid").unwrap().as_u64().unwrap();
                let prev = last_ts.entry((pid, tid)).or_insert(0);
                assert!(
                    ts >= *prev,
                    "span timestamps must be monotone per lane: {ts} < {prev} in ({pid}, {tid})"
                );
                *prev = ts;
            }
            "C" => {
                let name = e.get("name").unwrap().as_str().unwrap();
                assert!(
                    dbscout_telemetry::KERNEL_COUNTER_NAMES.contains(&name),
                    "undeclared counter {name:?}"
                );
                let args = e.get("args").unwrap();
                assert!(args.get("value").unwrap().as_u64().is_some());
            }
            other => panic!("unexpected event phase {other:?}"),
        }
    }
}

#[test]
fn process_trace_merges_every_worker_lane_without_warnings() {
    let data = dataset();
    let (trace, _report, stdout, stderr) =
        detect_traced(&data, "merged", &["--backend", "process", "--workers", "3"]);
    // Satellite of the distributed-tracing work: the trace now covers
    // the workers too, so the CLI must not warn that it is parent-only.
    assert!(!stdout.to_lowercase().contains("warning"), "{stdout}");
    assert!(!stderr.to_lowercase().contains("warning"), "{stderr}");

    let doc = parse(&trace).unwrap();
    let events = doc.as_array().unwrap();
    let mut worker_pids = std::collections::BTreeSet::new();
    let mut driver_spans = 0usize;
    for e in events {
        if e.get("ph").unwrap().as_str() != Some("X") {
            continue;
        }
        let pid = e.get("pid").unwrap().as_u64().unwrap();
        if pid == 1 {
            driver_spans += 1;
        } else {
            worker_pids.insert(pid);
        }
    }
    assert!(driver_spans > 0, "driver lane must keep its spans");
    assert_eq!(
        worker_pids.len(),
        3,
        "every worker pid must have a distinct lane: {worker_pids:?}"
    );
}

#[test]
fn chrome_traces_are_valid_on_both_backends() {
    let data = dataset();
    let (in_process, _, _, _) = detect_traced(&data, "valid-inproc", &[]);
    assert_valid_chrome_trace(&in_process);
    let (process, _, _, _) = detect_traced(
        &data,
        "valid-process",
        &["--backend", "process", "--workers", "2"],
    );
    assert_valid_chrome_trace(&process);
}

/// The acceptance pin for the kernel-counter taxonomy: totals are sums
/// over a disjoint partition of the cell range, so they are identical
/// across thread counts and across the in-process / process backends.
#[test]
fn kernel_counters_identical_across_backends_and_thread_counts() {
    let data = dataset();
    let kernel_totals = |report: &str| -> Vec<u64> {
        let doc = parse(report).unwrap();
        let totals = doc.get("totals").unwrap();
        [
            "cells_visited",
            "bbox_prunes",
            "early_exit_hits",
            "distance_evals",
        ]
        .iter()
        .map(|k| totals.get(k).unwrap().as_u64().unwrap())
        .collect()
    };
    let (_, one_thread, _, _) = detect_traced(&data, "eq-t1", &["--threads", "1"]);
    let (_, four_threads, _, _) = detect_traced(&data, "eq-t4", &["--threads", "4"]);
    let (_, process, _, _) = detect_traced(
        &data,
        "eq-proc",
        &["--backend", "process", "--workers", "3"],
    );
    let reference = kernel_totals(&one_thread);
    assert!(reference.iter().sum::<u64>() > 0, "counters must be live");
    assert_eq!(reference, kernel_totals(&four_threads));
    assert_eq!(reference, kernel_totals(&process));
}
