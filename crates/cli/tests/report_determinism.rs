//! Report-determinism pin (satellite of the observability work): two
//! `dbscout detect` runs under the same `DBSCOUT_CHAOS_SEED` must agree
//! byte-for-byte on every non-timing report field — the chaos plan,
//! retry outcomes, and all record/shuffle volumes are deterministic.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing
)]

use std::path::PathBuf;
use std::process::Command;

use dbscout_telemetry::json::parse;
use dbscout_telemetry::strip_timing_lines;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("dbscout-report-determinism");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn dbscout(args: &[&str], chaos_seed: Option<&str>) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_dbscout"));
    cmd.args(args);
    match chaos_seed {
        Some(seed) => cmd.env("DBSCOUT_CHAOS_SEED", seed),
        None => cmd.env_remove("DBSCOUT_CHAOS_SEED"),
    };
    let out = cmd.output().unwrap();
    assert!(
        out.status.success(),
        "dbscout {args:?} failed:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn seeded_runs_produce_identical_report_skeletons() {
    let data = tmp("blobs.csv");
    dbscout(
        &[
            "generate",
            "--dataset",
            "blobs",
            "--n",
            "1200",
            "--seed",
            "9",
            "--output",
            data.to_str().unwrap(),
        ],
        None,
    );

    let mut reports = Vec::new();
    for run in 0..2 {
        let report = tmp(&format!("report-{run}.json"));
        dbscout(
            &[
                "detect",
                "--input",
                data.to_str().unwrap(),
                "--eps",
                "0.6",
                "--min-pts",
                "5",
                "--engine",
                "distributed",
                "--report-json",
                report.to_str().unwrap(),
            ],
            Some("42"),
        );
        reports.push(std::fs::read_to_string(&report).unwrap());
    }

    let (a, b) = (&reports[0], &reports[1]);
    // Timing fields (the only `_us`-suffixed keys) may differ; everything
    // else must be byte-identical.
    assert_eq!(strip_timing_lines(a), strip_timing_lines(b));

    // The chaos seed is echoed and the seeded faults actually fired
    // (deterministically), so the skeleton equality above is load-bearing.
    let doc = parse(a).unwrap();
    assert_eq!(
        doc.get("params")
            .unwrap()
            .get("chaos_seed")
            .unwrap()
            .as_u64(),
        Some(42)
    );
    let totals = doc.get("totals").unwrap();
    let faults = totals.get("injected_faults").unwrap().as_u64().unwrap();
    assert!(faults > 0, "seeded chaos plan injected no faults");
    assert_eq!(
        totals.get("task_retries").unwrap().as_u64().unwrap(),
        faults,
        "every injected fault costs exactly one retry"
    );
}
