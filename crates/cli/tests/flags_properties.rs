//! Property tests for the CLI argument layer: arbitrary flag soups must
//! never panic, and well-formed pairs must round-trip.

use proptest::prelude::*;

fn run(args: Vec<String>) -> Result<String, String> {
    // Reach the parser through the binary's public behavior: unknown
    // subcommands and malformed flags must come back as clean errors.
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_dbscout"))
        .args(&args)
        .output()
        .expect("binary runs");
    if output.status.success() {
        Ok(String::from_utf8_lossy(&output.stdout).into_owned())
    } else {
        Err(String::from_utf8_lossy(&output.stderr).into_owned())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn arbitrary_flag_soup_never_panics(
        words in prop::collection::vec("[a-z0-9./-]{1,12}", 0..6),
    ) {
        // Whatever the words are, the process must exit cleanly (success
        // or a usage error), never abort.
        let result = run(words);
        if let Err(stderr) = result {
            prop_assert!(stderr.contains("error:"), "no clean error: {stderr}");
            prop_assert!(!stderr.contains("panicked"), "panic leaked: {stderr}");
        }
    }

    #[test]
    fn detect_validates_numbers(
        eps in prop::sample::select(vec!["-1", "0", "abc", ""]),
    ) {
        let err = run(vec![
            "detect".into(),
            "--input".into(),
            "/nonexistent.csv".into(),
            "--eps".into(),
            eps.to_string(),
            "--min-pts".into(),
            "5".into(),
        ])
        .unwrap_err();
        prop_assert!(err.contains("error:"), "{err}");
        prop_assert!(!err.contains("panicked"), "{err}");
    }
}
