//! Randomized tests for the CLI argument layer: arbitrary flag soups must
//! never panic, and malformed numbers must come back as clean errors.
//! Cases are drawn from a seeded [`dbscout_rng::Rng`] for reproducibility.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic,
    clippy::float_cmp
)]

use dbscout_rng::Rng;

fn run(args: Vec<String>) -> Result<String, String> {
    // Reach the parser through the binary's public behavior: unknown
    // subcommands and malformed flags must come back as clean errors.
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_dbscout"))
        .args(&args)
        .output()
        .expect("binary runs");
    if output.status.success() {
        Ok(String::from_utf8_lossy(&output.stdout).into_owned())
    } else {
        Err(String::from_utf8_lossy(&output.stderr).into_owned())
    }
}

/// A random word of 1..=12 chars drawn from `[a-z0-9./-]` — the same
/// alphabet the original fuzz pattern used.
fn word(rng: &mut Rng) -> String {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789./-";
    let len = rng.gen_range(1usize..=12);
    (0..len)
        .map(|_| char::from(ALPHABET[rng.gen_range(0..ALPHABET.len())]))
        .collect()
}

#[test]
fn arbitrary_flag_soup_never_panics() {
    let mut rng = Rng::seed_from_u64(0x9001);
    for _ in 0..16 {
        let n = rng.gen_range(0usize..6);
        let words: Vec<String> = (0..n).map(|_| word(&mut rng)).collect();
        // Whatever the words are, the process must exit cleanly (success
        // or a usage error), never abort.
        let result = run(words);
        if let Err(stderr) = result {
            assert!(stderr.contains("error:"), "no clean error: {stderr}");
            assert!(!stderr.contains("panicked"), "panic leaked: {stderr}");
        }
    }
}

#[test]
fn detect_validates_numbers() {
    for eps in ["-1", "0", "abc", ""] {
        let err = run(vec![
            "detect".into(),
            "--input".into(),
            "/nonexistent.csv".into(),
            "--eps".into(),
            eps.to_string(),
            "--min-pts".into(),
            "5".into(),
        ])
        .unwrap_err();
        assert!(err.contains("error:"), "{err}");
        assert!(!err.contains("panicked"), "{err}");
    }
}
