//! Standard experiment workloads with laptop-scale default sizes.
//!
//! The paper's absolute cardinalities (24.9M Geolife, 2.77B OSM) are
//! cluster-scale; the reproduction runs the same *sweeps* over seeded
//! generators at sizes a single machine handles, overridable via `--n`.
//! The ε values can be used unchanged because the generators emit data at
//! the same coordinate scale as the originals (meters / mercator-meters).

use std::path::Path;

use dbscout_data::generators::{enlarge, geolife_like, osm_like};
use dbscout_data::io::write_binary;
use dbscout_data::sampling::sample_fraction;
use dbscout_rng::Rng;
use dbscout_spatial::PointStore;

/// Default Geolife-like cardinality (paper: 24,876,978).
pub const GEOLIFE_DEFAULT_N: usize = 200_000;

/// Default OSM-like 100% cardinality (paper: 2,770,238,904).
pub const OSM_DEFAULT_N: usize = 400_000;

/// The paper's ε sweep for Geolife (Table IV / Fig. 11).
pub const GEOLIFE_EPS_SWEEP: [f64; 4] = [25.0, 50.0, 100.0, 200.0];

/// The paper's ε sweep for OpenStreetMap (Table V / Fig. 12).
pub const OSM_EPS_SWEEP: [f64; 4] = [250_000.0, 500_000.0, 1_000_000.0, 2_000_000.0];

/// The paper's central ε for Geolife scalability runs (§IV-B1).
pub const GEOLIFE_EPS_CENTRAL: f64 = 100.0;

/// The paper's central ε for OSM scalability runs (§IV-B1).
pub const OSM_EPS_CENTRAL: f64 = 1_000_000.0;

/// The paper's minPts for all efficiency experiments.
pub const MIN_PTS: usize = 100;

/// The Table II / Fig. 10 size ladder, in percent of the base dataset.
pub const OSM_PERCENT_LADDER: [usize; 8] = [1, 25, 50, 75, 100, 200, 500, 1000];

/// Side length of the [`uniform2d`] domain. At 1M points this gives a
/// density of one point per unit², so [`UNIFORM2D_EPS`] cells hold a
/// double-digit point count — the worst case for the hashed layout
/// (every phase-3/5 task probes all 21 neighbor cells through the map).
pub const UNIFORM2D_SIDE: f64 = 1_000.0;

/// ε for the uniform-2d layout benchmark (ε-cell side ≈ 3.5 units).
pub const UNIFORM2D_EPS: f64 = 5.0;

/// minPts for the uniform-2d layout benchmark: high enough that most
/// cells are not dense, so the counted kernel does real work.
pub const UNIFORM2D_MIN_PTS: usize = 50;

/// `n` points uniform on `[0, UNIFORM2D_SIDE)²`. Unlike the clustered
/// GPS-like workloads, uniform data spreads the points across *every*
/// grid cell, which maximizes the number of per-cell neighbor lookups —
/// exactly the access pattern the cell-major layout exists to serve.
// Construction cannot fail: dims is the literal 2 (under MAX_DIMS) and
// every coordinate is a finite uniform sample. As in `dbscout_data`'s
// generators, a failure is a generator bug and should panic loudly.
#[allow(clippy::expect_used)]
pub fn uniform2d(n: usize, seed: u64) -> PointStore {
    let mut rng = Rng::seed_from_u64(seed);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            vec![
                rng.gen_range(0.0..UNIFORM2D_SIDE),
                rng.gen_range(0.0..UNIFORM2D_SIDE),
            ]
        })
        .collect();
    PointStore::from_rows(2, rows).expect("generator rows are finite by construction")
}

/// Default cardinality of the streaming-ingest workload.
pub const STREAMING1M_N: usize = 1_000_000;

/// ε for the streaming workload (same uniform 2-D domain as
/// [`uniform2d`], so every grid cell is occupied).
pub const STREAMING1M_EPS: f64 = UNIFORM2D_EPS;

/// minPts for the streaming workload.
pub const STREAMING1M_MIN_PTS: usize = UNIFORM2D_MIN_PTS;

/// Seed of the streaming workload generator.
pub const STREAMING1M_SEED: u64 = 0x57EA;

/// The streaming-ingest workload: `n` points drawn by [`uniform2d`],
/// written to `path` in the versioned binary format so benchmarks can
/// stream them back through a `BinarySource`. Returns the in-memory
/// store for the materialized baseline.
// Bench workload setup panics loudly on I/O failure, like the
// generators do on impossible construction errors.
#[allow(clippy::expect_used)]
pub fn streaming1m(n: usize, path: impl AsRef<Path>) -> PointStore {
    let store = uniform2d(n, STREAMING1M_SEED);
    write_binary(path, &store).expect("write streaming workload file");
    store
}

/// The Geolife-like workload at cardinality `n`.
pub fn geolife(n: usize) -> PointStore {
    geolife_like(n, 0x6E01)
}

/// The OSM-like workload at 100% cardinality `n`.
pub fn osm(n: usize) -> PointStore {
    osm_like(n, 0x05A1)
}

/// An OSM-like dataset at `percent`% of base size `n`: samples below
/// 100%, the paper's duplicate-with-noise enlargement above.
pub fn osm_at_percent(base: &PointStore, percent: usize) -> PointStore {
    match percent {
        0 => base.gather(&[]),
        100 => base.clone(),
        p if p < 100 => sample_fraction(base, p as f64 / 100.0, 0x5A3B),
        p => {
            let factor = p / 100;
            let rem = p % 100;
            // Replica noise of 10 km: "small" at world scale (0.025% of
            // the domain) but above the ρ·ε sub-cell granularity of the
            // approximated competitor, so duplicated points genuinely
            // enlarge every algorithm's working structures — as the
            // paper's enlargement does at its scale.
            let mut out = enlarge(base, factor, 10_000.0, 0xB16);
            if rem > 0 {
                let extra = sample_fraction(base, rem as f64 / 100.0, 0xE17_u64);
                let noisy = enlarge(&extra, 1, 0.0, 0);
                // Both stores derive from `base`, so dims always match.
                let _ = out.extend_from(&noisy);
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_ladder_sizes() {
        let base = osm(10_000);
        assert_eq!(osm_at_percent(&base, 100).len(), 10_000);
        let one = osm_at_percent(&base, 1).len() as f64;
        assert!(one > 50.0 && one < 180.0, "1% gave {one}");
        assert_eq!(osm_at_percent(&base, 200).len(), 20_000);
        let p250 = osm_at_percent(&base, 250).len() as f64;
        assert!(p250 > 24_000.0 && p250 < 26_000.0, "250% gave {p250}");
        assert_eq!(osm_at_percent(&base, 0).len(), 0);
    }

    #[test]
    fn workloads_have_expected_dims() {
        assert_eq!(geolife(1_000).dims(), 3);
        assert_eq!(osm(1_000).dims(), 2);
    }

    #[test]
    fn streaming_workload_round_trips_through_its_binary_file() {
        use dbscout_data::{materialize, BinarySource, PointSource};

        let path = std::env::temp_dir().join("dbscout-bench-streaming-test.bin");
        let store = streaming1m(500, &path);
        assert_eq!(store.len(), 500);
        let mut source = BinarySource::open(&path, 64).unwrap();
        assert_eq!(source.len_hint(), Some(500));
        let read_back = materialize(&mut source).unwrap();
        assert_eq!(read_back.flat(), store.flat());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn uniform2d_stays_in_domain_and_is_seeded() {
        let a = uniform2d(500, 7);
        assert_eq!(a.len(), 500);
        assert_eq!(a.dims(), 2);
        for (_, p) in a.iter() {
            assert!(p.iter().all(|&c| (0.0..UNIFORM2D_SIDE).contains(&c)));
        }
        let b = uniform2d(500, 7);
        assert_eq!(a.point(42), b.point(42));
        let c = uniform2d(500, 8);
        assert_ne!(a.point(42), c.point(42));
    }
}
