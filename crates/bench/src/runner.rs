//! Budgeted repeated-run measurement for the scalability sweeps.
//!
//! The paper marks configurations that ran out of memory or exceeded a
//! 4-hour limit with "-" in Table II; laptop-scale reproductions use the
//! same mechanism with a (configurable) per-run budget: once an
//! algorithm's run exceeds the budget, larger configurations of the same
//! sweep are skipped.

use std::time::{Duration, Instant};

use dbscout_metrics::TimingStats;

/// A per-algorithm sweep guard: measures runs until one exceeds the
/// budget, then reports `None` (the paper's "-") for everything after.
#[derive(Debug)]
pub struct BudgetedRunner {
    budget: Duration,
    repetitions: usize,
    exhausted: bool,
}

impl BudgetedRunner {
    /// A runner with a per-run `budget` and a repetition count for
    /// configurations that fit the budget.
    pub fn new(budget: Duration, repetitions: usize) -> Self {
        Self {
            budget,
            repetitions: repetitions.max(1),
            exhausted: false,
        }
    }

    /// Whether a previous run blew the budget.
    pub fn exhausted(&self) -> bool {
        self.exhausted
    }

    /// Measures `f`, or returns `None` if the budget was previously
    /// exceeded. The first run doubles as a warm-up probe: if it exceeds
    /// the budget, no repetitions are added and the runner trips.
    pub fn measure<T>(&mut self, mut f: impl FnMut() -> T) -> Option<TimingStats> {
        if self.exhausted {
            return None;
        }
        let t = Instant::now();
        std::hint::black_box(f());
        let first = t.elapsed();
        if first > self.budget {
            self.exhausted = true;
            // Still report the one completed run: the paper reports the
            // run that *finished* before declaring larger ones hopeless.
            return Some(TimingStats::new(vec![first]));
        }
        let mut runs = vec![first];
        for _ in 1..self.repetitions {
            let t = Instant::now();
            std::hint::black_box(f());
            runs.push(t.elapsed());
        }
        Some(TimingStats::new(runs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn within_budget_runs_all_repetitions() {
        let mut r = BudgetedRunner::new(Duration::from_secs(10), 3);
        let mut calls = 0;
        let s = r.measure(|| calls += 1).unwrap();
        assert_eq!(calls, 3);
        assert_eq!(s.runs.len(), 3);
        assert!(!r.exhausted());
    }

    #[test]
    fn budget_blown_trips_the_runner() {
        let mut r = BudgetedRunner::new(Duration::from_millis(1), 5);
        let s = r
            .measure(|| std::thread::sleep(Duration::from_millis(5)))
            .unwrap();
        assert_eq!(s.runs.len(), 1, "no repetitions after a blown budget");
        assert!(r.exhausted());
        assert!(r.measure(|| ()).is_none(), "subsequent configs skipped");
    }

    #[test]
    fn zero_repetitions_clamped_to_one() {
        let mut r = BudgetedRunner::new(Duration::from_secs(1), 0);
        let s = r.measure(|| ()).unwrap();
        assert_eq!(s.runs.len(), 1);
    }
}
