//! Shared harness for the experiment binaries that regenerate every table
//! and figure of the paper's evaluation (§IV). See `DESIGN.md` for the
//! experiment ↔ binary index and `EXPERIMENTS.md` for recorded results.
//!
//! Binaries (run with `cargo run --release -p dbscout-bench --bin <name>`):
//!
//! | binary          | reproduces                                         |
//! |-----------------|----------------------------------------------------|
//! | `table1`        | Table I — k_d bounds vs actual per dimensionality  |
//! | `table2_fig10`  | Table II + Fig. 10 — runtime vs input size         |
//! | `fig11`         | Fig. 11 — runtime vs ε on Geolife-like             |
//! | `fig12`         | Fig. 12 — runtime vs ε on OSM-like                 |
//! | `fig13`         | Fig. 13 — runtime vs number of partitions          |
//! | `table3`        | Table III — F1 vs LOF / IF / OC-SVM                |
//! | `table4`        | Table IV — RP-DBSCAN accuracy on Geolife-like      |
//! | `table5`        | Table V — RP-DBSCAN accuracy on OSM-like           |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
// Unit tests may panic freely; library code is held to the panic-freedom
// gates in `[workspace.lints]` and `cargo xtask lint`.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::indexing_slicing,
        clippy::panic,
        clippy::float_cmp
    )
)]
pub mod args;
pub mod figures;
pub mod harness;
pub mod runner;
pub mod workloads;
