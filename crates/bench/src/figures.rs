//! Figure output helper: write a chart next to the textual table.

use dbscout_metrics::plot::LineChart;

/// Writes `chart` as SVG to `path`, creating parent directories; errors
/// are reported to stderr rather than aborting the experiment (the
/// textual table already went to stdout).
pub fn write_svg(path: &str, chart: &LineChart) {
    if let Some(dir) = std::path::Path::new(path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(path, chart.to_svg()) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbscout_metrics::plot::Series;

    #[test]
    fn writes_svg_file() {
        let dir = std::env::temp_dir().join("dbscout-figures-test");
        let path = dir.join("t.svg").to_string_lossy().into_owned();
        let chart =
            LineChart::new("t", "x", "y").series(Series::new("s", vec![(0.0, 1.0), (1.0, 2.0)]));
        write_svg(&path, &chart);
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("<svg"));
    }
}
