//! Table III: outlier-class F1 of DBSCOUT vs LOF, Isolation Forest and
//! One-Class SVM on nine labelled 2-D datasets.
//!
//! Methodology mirrors §IV-C1:
//!
//! * DBSCOUT — minPts fixed per dataset family (5 for the sklearn-style
//!   shapes, 10 for Cluto/Cure, as in the paper's Table III); ε chosen
//!   from the k-dist-graph elbow (no knowledge of the true contamination);
//! * LOF — grid search over k, contamination ν set to the true fraction;
//! * IF / OC-SVM — ν set to the true fraction.
//!
//! Paper F1 reference (for shape comparison; our datasets are seeded
//! stand-ins so absolute values differ): DBSCOUT ≈ LOF ≫ IF, OC-SVM, with
//! DBSCOUT best on homogeneous-density and non-convex shapes.
//!
//! Run: `cargo run --release -p dbscout-bench --bin table3 [--seed 1]`

// Experiment binaries panic on setup failure: there is no caller to
// recover, and a partial table is worse than no table.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic
)]

use dbscout_baselines::{IsolationForest, Lof, OneClassSvm};
use dbscout_bench::args::Args;
use dbscout_core::{detect_outliers, DbscoutParams};
use dbscout_data::generators::{
    blobs, blobs_varied_density, circles, cluto_t4_like, cluto_t5_like, cluto_t7_like,
    cluto_t8_like, cure_t2_like, moons,
};
use dbscout_data::kdist::suggest_eps;
use dbscout_data::LabeledDataset;
use dbscout_metrics::table::Table;
use dbscout_metrics::ConfusionMatrix;

fn datasets(seed: u64) -> Vec<(LabeledDataset, usize)> {
    vec![
        (blobs(3960, 40, 3, 0.5, seed), 5),
        (
            {
                let mut d = blobs_varied_density(3960, 40, &[0.3, 1.2, 0.6], seed);
                d.name = "blobs-vd".into();
                d
            },
            5,
        ),
        (circles(3960, 40, 0.5, 0.03, seed), 5),
        (moons(3960, 40, 0.04, seed), 5),
        (cluto_t4_like(seed), 10),
        (cluto_t5_like(seed), 10),
        (cluto_t7_like(seed), 10),
        (cluto_t8_like(seed), 10),
        (cure_t2_like(seed), 10),
    ]
}

fn f1(predicted: &[bool], actual: &[bool]) -> f64 {
    ConfusionMatrix::from_masks(predicted, actual).f1()
}

fn main() {
    let args = Args::parse();
    let seed: u64 = args.get("seed", 1);

    println!("Table III — outlier-class F1 comparison (seed = {seed})\n");
    let mut t = Table::new(&[
        "dataset",
        "nu",
        "DBSCOUT (eps)",
        "DBSCOUT",
        "LOF (best k)",
        "LOF",
        "IF",
        "OC-SVM",
    ]);
    for (ds, min_pts) in datasets(seed) {
        let nu = ds.contamination();

        // DBSCOUT: eps from the k-dist elbow, no use of nu.
        let eps = suggest_eps(&ds.points, min_pts).expect("non-trivial dataset");
        let params = DbscoutParams::new(eps, min_pts).expect("valid params");
        let scout_mask = detect_outliers(&ds.points, params)
            .expect("dbscout run")
            .outlier_mask();
        let scout_f1 = f1(&scout_mask, &ds.labels);

        // LOF: grid search over k at the true contamination.
        let mut best = (0usize, 0.0f64);
        for k in [5, 10, 20, 40, 65, 100, 150, 200] {
            let mask = Lof::new(k).detect(&ds.points, nu);
            let score = f1(&mask, &ds.labels);
            if score > best.1 {
                best = (k, score);
            }
        }
        let (lof_k, lof_f1) = best;

        let if_mask = IsolationForest::new(seed).detect(&ds.points, nu);
        let if_f1 = f1(&if_mask, &ds.labels);

        let svm_mask = OneClassSvm::new(nu.max(0.01), seed).detect(&ds.points, nu);
        let svm_f1 = f1(&svm_mask, &ds.labels);

        t.row(&[
            ds.name.clone(),
            format!("{nu:.2}"),
            format!("{eps:.4}"),
            format!("{scout_f1:.5}"),
            format!("k={lof_k}"),
            format!("{lof_f1:.5}"),
            format!("{if_f1:.5}"),
            format!("{svm_f1:.5}"),
        ]);
    }
    println!("{}", t.render());
    println!("\nShape to verify vs paper Table III: DBSCOUT ≈ LOF on most rows, both well above IF and OC-SVM;\nIF/OC-SVM collapse on the non-convex shapes (circles, moons).");
}
