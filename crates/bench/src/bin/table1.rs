//! Table I: number of neighboring cells per dimensionality — the loose
//! Lemma 3 upper bound `(2⌈√d⌉+1)^d` vs the actual k_d.
//!
//! Run: `cargo run --release -p dbscout-bench --bin table1 [--max-d 9]`

// Experiment binaries panic on setup failure: there is no caller to
// recover, and a partial table is worse than no table.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic
)]

use dbscout_bench::args::Args;
use dbscout_metrics::table::Table;
use dbscout_spatial::neighbors::{count_k_d, loose_upper_bound};

/// The paper's Table I, for comparison: (d, upper bound, actual k_d).
const PAPER: [(usize, u64, u64); 8] = [
    (2, 25, 21),
    (3, 125, 117),
    (4, 625, 609),
    (5, 16807, 3903),
    (6, 117649, 28197),
    (7, 823543, 197067),
    (8, 5764801, 1278129),
    (9, 40353607, 8077671),
];

fn main() {
    let args = Args::parse();
    let max_d: usize = args.get("max-d", 9);

    println!("Table I — neighboring-cell counts per dimensionality\n");
    let mut t = Table::new(&[
        "d",
        "upper bound",
        "actual k_d",
        "paper bound",
        "paper k_d",
        "match",
    ]);
    for &(d, paper_bound, paper_kd) in PAPER.iter().filter(|(d, ..)| *d <= max_d) {
        let bound = loose_upper_bound(d);
        let kd = count_k_d(d).expect("d within range");
        t.row(&[
            d.to_string(),
            bound.to_string(),
            kd.to_string(),
            paper_bound.to_string(),
            paper_kd.to_string(),
            if bound == paper_bound && kd == paper_kd {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    println!("{}", t.render());
}
