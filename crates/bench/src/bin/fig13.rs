//! Fig. 13: runtime vs the number of data partitions on the OSM-like
//! dataset (ε = 10⁶, minPts = 100).
//!
//! Paper finding: DBSCOUT's time first drops as partitions increase, then
//! plateaus; RP-DBSCAN's time *grows* almost linearly with the partition
//! count (per-partition cell dictionaries get duplicated and re-merged),
//! so DBSCOUT suits horizontal scaling better.
//!
//! Run: `cargo run --release -p dbscout-bench --bin fig13
//!       [--n 400000] [--reps 3]`

// Experiment binaries panic on setup failure: there is no caller to
// recover, and a partial table is worse than no table.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic
)]

use dbscout_baselines::RpDbscan;
use dbscout_bench::args::Args;
use dbscout_bench::workloads::{self, MIN_PTS, OSM_EPS_CENTRAL};
use dbscout_core::{DbscoutParams, DistributedDbscout};
use dbscout_dataflow::ExecutionContext;
use dbscout_metrics::plot::{LineChart, Series};
use dbscout_metrics::table::Table;
use dbscout_metrics::time_runs;

const PARTITION_SWEEP: [usize; 5] = [4, 8, 16, 32, 64];

fn main() {
    let args = Args::parse();
    let n: usize = args.get("n", workloads::OSM_DEFAULT_N);
    let reps: usize = args.get("reps", 3);
    let svg: String = args.get("svg", "results/fig13.svg".to_string());
    let store = workloads::osm(n);
    let params = DbscoutParams::new(OSM_EPS_CENTRAL, MIN_PTS).expect("valid params");

    println!(
        "Fig. 13 — OSM-like: runtime vs #partitions (n = {n}, eps = {OSM_EPS_CENTRAL:e}, minPts = {MIN_PTS}, reps = {reps})\n"
    );
    let mut t = Table::new(&["partitions", "DBSCOUT (s)", "RP-DBSCAN-A (s)"]);
    let mut scout_series = Vec::new();
    let mut rp_series = Vec::new();
    for parts in PARTITION_SWEEP {
        let scout = time_runs(reps, || {
            let ctx = ExecutionContext::builder().build();
            DistributedDbscout::new(ctx, params)
                .with_partitions(parts)
                .detect(&store)
                .expect("dbscout run")
        });
        let rp = time_runs(reps, || {
            let ctx = ExecutionContext::builder().build();
            RpDbscan::new(ctx, OSM_EPS_CENTRAL, MIN_PTS)
                .with_partitions(parts)
                .detect(&store)
                .expect("rp-dbscan run")
        });
        scout_series.push((parts as f64, scout.mean_secs()));
        rp_series.push((parts as f64, rp.mean_secs()));
        t.row(&[parts.to_string(), scout.summary_cell(), rp.summary_cell()]);
    }
    println!("{}", t.render());

    let chart = LineChart::new(
        format!("Fig. 13 — OSM-like: runtime vs #partitions (n = {n})"),
        "partitions",
        "seconds",
    )
    .series(Series::new("DBSCOUT", scout_series))
    .series(Series::new("RP-DBSCAN-A", rp_series));
    dbscout_bench::figures::write_svg(&svg, &chart);
}
