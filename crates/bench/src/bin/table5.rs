//! Table V: RP-DBSCAN detection accuracy vs exact DBSCOUT on the OSM-like
//! dataset, over the ε sweep {0.25, 0.5, 1, 2}·10⁶ (minPts = 100,
//! ρ = 0.01).
//!
//! Paper reference (OpenStreetMap, 2.77B points):
//!
//! | eps     | DBSCOUT | RP-DBSCAN | TP      | FP      | FN  |
//! |---------|---------|-----------|---------|---------|-----|
//! | 250000  | 5343651 | 6594305   | 5343151 | 1251154 | 500 |
//! | 500000  | 2198398 | 2612656   | 2198224 | 414432  | 174 |
//! | 1000000 | 1084141 | 1225326   | 1083932 | 141394  | 209 |
//! | 2000000 | 506386  | 547805    | 505966  | 41839   | 420 |
//!
//! Shape to verify: superset output, FP a noticeable share, FN ≈ 0.01%.
//!
//! Run: `cargo run --release -p dbscout-bench --bin table5 [--n 400000]`

// Experiment binaries panic on setup failure: there is no caller to
// recover, and a partial table is worse than no table.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic
)]

use dbscout_baselines::RpDbscan;
use dbscout_bench::args::Args;
use dbscout_bench::workloads::{self, MIN_PTS, OSM_EPS_SWEEP};
use dbscout_core::{detect_outliers, DbscoutParams};
use dbscout_dataflow::ExecutionContext;
use dbscout_metrics::table::Table;
use dbscout_metrics::ConfusionMatrix;

fn main() {
    let args = Args::parse();
    let n: usize = args.get("n", workloads::OSM_DEFAULT_N);
    let store = workloads::osm(n);

    println!(
        "Table V — RP-DBSCAN-A accuracy on OSM-like (n = {n}, minPts = {MIN_PTS}, rho = 0.01)\n"
    );
    let mut t = Table::new(&[
        "eps",
        "DBSCOUT",
        "RP-DBSCAN-A",
        "TP",
        "FP",
        "FN",
        "FP/output",
    ]);
    for eps in OSM_EPS_SWEEP {
        let params = DbscoutParams::new(eps, MIN_PTS).expect("valid params");
        let exact = detect_outliers(&store, params)
            .expect("dbscout run")
            .outlier_mask();
        let ctx = ExecutionContext::builder().build();
        let approx = RpDbscan::new(ctx, eps, MIN_PTS)
            .detect(&store)
            .expect("rp-dbscan run")
            .outlier_mask;
        let m = ConfusionMatrix::from_masks(&approx, &exact);
        let rp_total = m.tp + m.fp;
        t.row(&[
            format!("{eps:e}"),
            (m.tp + m.fn_).to_string(),
            rp_total.to_string(),
            m.tp.to_string(),
            m.fp.to_string(),
            m.fn_.to_string(),
            if rp_total > 0 {
                format!("{:.1}%", 100.0 * m.fp as f64 / rp_total as f64)
            } else {
                "-".into()
            },
        ]);
    }
    println!("{}", t.render());
}
