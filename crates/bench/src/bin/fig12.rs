//! Fig. 12: runtime vs ε on the OSM-like dataset (minPts = 100).
//!
//! Paper finding: both algorithms get faster as ε grows (fewer cells);
//! DBSCOUT wins almost everywhere, with the largest gap at the smallest ε
//! (4.5× at the lowest value).
//!
//! Run: `cargo run --release -p dbscout-bench --bin fig12
//!       [--n 400000] [--reps 3]`

// Experiment binaries panic on setup failure: there is no caller to
// recover, and a partial table is worse than no table.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic
)]

use dbscout_baselines::RpDbscan;
use dbscout_bench::args::Args;
use dbscout_bench::workloads::{self, MIN_PTS, OSM_EPS_SWEEP};
use dbscout_core::{DbscoutParams, DistributedDbscout};
use dbscout_dataflow::ExecutionContext;
use dbscout_metrics::plot::{LineChart, Series};
use dbscout_metrics::table::Table;
use dbscout_metrics::time_runs;

fn main() {
    let args = Args::parse();
    let n: usize = args.get("n", workloads::OSM_DEFAULT_N);
    let reps: usize = args.get("reps", 3);
    let svg: String = args.get("svg", "results/fig12.svg".to_string());
    let store = workloads::osm(n);

    println!("Fig. 12 — OSM-like: runtime vs eps (n = {n}, minPts = {MIN_PTS}, reps = {reps})\n");
    let mut t = Table::new(&["eps", "DBSCOUT (s)", "RP-DBSCAN-A (s)", "ratio"]);
    let mut scout_series = Vec::new();
    let mut rp_series = Vec::new();
    for eps in OSM_EPS_SWEEP {
        let params = DbscoutParams::new(eps, MIN_PTS).expect("valid params");
        let scout = time_runs(reps, || {
            let ctx = ExecutionContext::builder().build();
            DistributedDbscout::new(ctx, params)
                .detect(&store)
                .expect("dbscout run")
        });
        let rp = time_runs(reps, || {
            let ctx = ExecutionContext::builder().build();
            RpDbscan::new(ctx, eps, MIN_PTS)
                .detect(&store)
                .expect("rp-dbscan run")
        });
        scout_series.push((eps, scout.mean_secs()));
        rp_series.push((eps, rp.mean_secs()));
        t.row(&[
            format!("{eps:e}"),
            scout.summary_cell(),
            rp.summary_cell(),
            format!("{:.1}x", rp.mean_secs() / scout.mean_secs().max(1e-9)),
        ]);
    }
    println!("{}", t.render());

    let chart = LineChart::new(
        format!("Fig. 12 — OSM-like: runtime vs eps (n = {n})"),
        "eps",
        "seconds",
    )
    .log_x()
    .series(Series::new("DBSCOUT", scout_series))
    .series(Series::new("RP-DBSCAN-A", rp_series));
    dbscout_bench::figures::write_svg(&svg, &chart);
}
