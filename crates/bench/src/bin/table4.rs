//! Table IV: RP-DBSCAN detection accuracy vs exact DBSCOUT on the
//! Geolife-like dataset, over the ε sweep {25, 50, 100, 200}
//! (minPts = 100, ρ = 0.01).
//!
//! Paper reference (Geolife, 24.9M points):
//!
//! | eps | DBSCOUT | RP-DBSCAN | TP    | FP   | FN |
//! |-----|---------|-----------|-------|------|----|
//! | 25  | 25652   | 30297     | 25632 | 4665 | 20 |
//! | 50  | 14829   | 17143     | 14829 | 2314 | 0  |
//! | 100 | 6750    | 8536      | 6750  | 1786 | 0  |
//! | 200 | 2498    | 3096      | 2498  | 598  | 0  |
//!
//! Shape to verify: RP-DBSCAN finds a **superset** — sizable FP
//! (7–19% of its output), FN ≈ 0.
//!
//! Run: `cargo run --release -p dbscout-bench --bin table4 [--n 200000]`

// Experiment binaries panic on setup failure: there is no caller to
// recover, and a partial table is worse than no table.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic
)]

use dbscout_baselines::RpDbscan;
use dbscout_bench::args::Args;
use dbscout_bench::workloads::{self, GEOLIFE_EPS_SWEEP, MIN_PTS};
use dbscout_core::{detect_outliers, DbscoutParams};
use dbscout_dataflow::ExecutionContext;
use dbscout_metrics::table::Table;
use dbscout_metrics::ConfusionMatrix;

fn main() {
    let args = Args::parse();
    let n: usize = args.get("n", workloads::GEOLIFE_DEFAULT_N);
    let store = workloads::geolife(n);

    println!("Table IV — RP-DBSCAN-A accuracy on Geolife-like (n = {n}, minPts = {MIN_PTS}, rho = 0.01)\n");
    let mut t = Table::new(&[
        "eps",
        "DBSCOUT",
        "RP-DBSCAN-A",
        "TP",
        "FP",
        "FN",
        "FP/output",
    ]);
    for eps in GEOLIFE_EPS_SWEEP {
        let params = DbscoutParams::new(eps, MIN_PTS).expect("valid params");
        let exact = detect_outliers(&store, params)
            .expect("dbscout run")
            .outlier_mask();
        let ctx = ExecutionContext::builder().build();
        let approx = RpDbscan::new(ctx, eps, MIN_PTS)
            .detect(&store)
            .expect("rp-dbscan run")
            .outlier_mask;
        // "Actual" class = the exact DBSCOUT outliers (the paper compares
        // RP-DBSCAN's output against DBSCOUT's exact Definition-3 set).
        let m = ConfusionMatrix::from_masks(&approx, &exact);
        let rp_total = m.tp + m.fp;
        t.row(&[
            format!("{eps}"),
            (m.tp + m.fn_).to_string(),
            rp_total.to_string(),
            m.tp.to_string(),
            m.fp.to_string(),
            m.fn_.to_string(),
            if rp_total > 0 {
                format!("{:.1}%", 100.0 * m.fp as f64 / rp_total as f64)
            } else {
                "-".into()
            },
        ]);
    }
    println!("{}", t.render());
}
