//! Table II + Fig. 10: running time of DBSCOUT, RP-DBSCAN-A and DDLOF vs
//! the number of input points, on the Geolife-like dataset and the
//! OSM-like size ladder (1% … 1000%).
//!
//! Paper reference values (seconds, 100-core cluster):
//!
//! | dataset    | DBSCOUT | RP-DBSCAN | DDLOF |
//! |------------|---------|-----------|-------|
//! | Geolife    | 40.0    | 44.0      | -     |
//! | OSM 1%     | 104.6   | 214.8     | 788.0 |
//! | OSM 25%    | 205.0   | 713.4     | 8993.0|
//! | OSM 50%    | 302.0   | 820.0     | -     |
//! | OSM 75%    | 434.6   | 1070.0    | -     |
//! | OSM 100%   | 747.0   | 1129.4    | -     |
//! | OSM 200%   | 1382.2  | 14362.2   | -     |
//! | OSM 500%   | 3367.6  | -         | -     |
//! | OSM 1000%  | 6835.4  | -         | -     |
//!
//! "-" = out of memory or over the time limit. The reproduction runs the
//! same ladder at laptop scale (`--osm-n` base size, default 400k) with a
//! per-run budget standing in for the paper's 4-hour limit. The *shape*
//! to verify: DBSCOUT linear in n and fastest everywhere; RP-DBSCAN-A
//! slower with a widening gap; DDLOF an order of magnitude behind and
//! dropping out first.
//!
//! Run: `cargo run --release -p dbscout-bench --bin table2_fig10
//!       [--osm-n 400000] [--geolife-n 200000] [--reps 3] [--budget 180]`

// Experiment binaries panic on setup failure: there is no caller to
// recover, and a partial table is worse than no table.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic
)]

use std::time::Duration;

use dbscout_baselines::{Ddlof, RpDbscan};
use dbscout_bench::args::Args;
use dbscout_bench::runner::BudgetedRunner;
use dbscout_bench::workloads::{
    self, GEOLIFE_EPS_CENTRAL, MIN_PTS, OSM_EPS_CENTRAL, OSM_PERCENT_LADDER,
};
use dbscout_core::{DbscoutParams, DistributedDbscout};
use dbscout_dataflow::ExecutionContext;
use dbscout_metrics::plot::{LineChart, Series};
use dbscout_metrics::table::{stats_or_dash, Table};

fn ctx() -> std::sync::Arc<ExecutionContext> {
    ExecutionContext::builder().build()
}

fn main() {
    let args = Args::parse();
    let osm_n: usize = args.get("osm-n", workloads::OSM_DEFAULT_N);
    let geolife_n: usize = args.get("geolife-n", workloads::GEOLIFE_DEFAULT_N);
    let reps: usize = args.get("reps", 3);
    let budget = Duration::from_secs(args.get("budget", 180));
    // DDLOF gets a tighter budget: the paper's DDLOF drops out after the
    // 25% sample, and LOF work at minPts-scale k is far heavier.
    let ddlof_budget = Duration::from_secs(args.get("ddlof-budget", 60));

    println!(
        "Table II / Fig. 10 — runtime vs input size (osm base n = {osm_n}, geolife n = {geolife_n}, reps = {reps})\n"
    );
    let mut table = Table::new(&[
        "dataset",
        "n",
        "DBSCOUT (s)",
        "RP-DBSCAN-A (s)",
        "DDLOF (s)",
    ]);

    let mut scout = BudgetedRunner::new(budget, reps);
    let mut rp = BudgetedRunner::new(budget, reps);
    let mut ddlof = BudgetedRunner::new(ddlof_budget, reps);

    // Geolife row.
    {
        let store = workloads::geolife(geolife_n);
        let params = DbscoutParams::new(GEOLIFE_EPS_CENTRAL, MIN_PTS).expect("valid params");
        let s = scout.measure(|| {
            DistributedDbscout::new(ctx(), params)
                .detect(&store)
                .expect("dbscout run")
        });
        let r = rp.measure(|| {
            RpDbscan::new(ctx(), GEOLIFE_EPS_CENTRAL, MIN_PTS)
                .detect(&store)
                .expect("rp-dbscan run")
        });
        let d = ddlof.measure(|| Ddlof::new(ctx(), 6).score(&store).expect("ddlof run"));
        table.row(&[
            "geolife-like".into(),
            store.len().to_string(),
            stats_or_dash(s.as_ref()),
            stats_or_dash(r.as_ref()),
            stats_or_dash(d.as_ref()),
        ]);
    }

    // OSM ladder. Budgets reset so the Geolife skew cannot pre-trip them.
    let mut scout = BudgetedRunner::new(budget, reps);
    let mut rp = BudgetedRunner::new(budget, reps);
    let mut ddlof = BudgetedRunner::new(ddlof_budget, reps);
    let base = workloads::osm(osm_n);
    let params = DbscoutParams::new(OSM_EPS_CENTRAL, MIN_PTS).expect("valid params");
    let mut scout_series = Vec::new();
    let mut rp_series = Vec::new();
    let mut ddlof_series = Vec::new();
    for percent in OSM_PERCENT_LADDER {
        let store = workloads::osm_at_percent(&base, percent);
        let s = scout.measure(|| {
            DistributedDbscout::new(ctx(), params)
                .detect(&store)
                .expect("dbscout run")
        });
        let r = rp.measure(|| {
            RpDbscan::new(ctx(), OSM_EPS_CENTRAL, MIN_PTS)
                .detect(&store)
                .expect("rp-dbscan run")
        });
        // The paper only attempts DDLOF on the two smallest samples.
        let d = if percent <= 25 {
            ddlof.measure(|| Ddlof::new(ctx(), 6).score(&store).expect("ddlof run"))
        } else {
            None
        };
        let n = store.len() as f64;
        if let Some(s) = &s {
            scout_series.push((n, s.mean_secs().max(1e-3)));
        }
        if let Some(r) = &r {
            rp_series.push((n, r.mean_secs().max(1e-3)));
        }
        if let Some(d) = &d {
            ddlof_series.push((n, d.mean_secs().max(1e-3)));
        }
        table.row(&[
            format!("osm-like ({percent}%)"),
            store.len().to_string(),
            stats_or_dash(s.as_ref()),
            stats_or_dash(r.as_ref()),
            stats_or_dash(d.as_ref()),
        ]);
    }

    println!("{}", table.render());

    let svg: String = args.get("svg", "results/fig10.svg".to_string());
    let chart = LineChart::new(
        format!("Fig. 10 — OSM-like: runtime vs input size (base n = {osm_n})"),
        "points",
        "seconds",
    )
    .log_x()
    .log_y()
    .series(Series::new("DBSCOUT", scout_series))
    .series(Series::new("RP-DBSCAN-A", rp_series))
    .series(Series::new("DDLOF", ddlof_series));
    dbscout_bench::figures::write_svg(&svg, &chart);
    println!("\n(-: skipped after a run exceeded the per-run budget, the laptop stand-in for the paper's 4h/OOM cutoffs)");
}
