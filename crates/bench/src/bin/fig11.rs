//! Fig. 11: runtime vs ε on the Geolife-like dataset (minPts = 100).
//!
//! Paper finding: on this heavily skewed dataset neither algorithm
//! dominates — depending on ε either DBSCOUT or RP-DBSCAN is slightly
//! faster, because nearly all points fall into a handful of cells (at
//! ε = 200, 40% in the most populous one), which suits RP-DBSCAN's
//! cell-level summarisation and hurts DBSCOUT's joins.
//!
//! Run: `cargo run --release -p dbscout-bench --bin fig11
//!       [--n 200000] [--reps 3]`

// Experiment binaries panic on setup failure: there is no caller to
// recover, and a partial table is worse than no table.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic
)]

use dbscout_baselines::RpDbscan;
use dbscout_bench::args::Args;
use dbscout_bench::workloads::{self, GEOLIFE_EPS_SWEEP, MIN_PTS};
use dbscout_core::{DbscoutParams, DistributedDbscout};
use dbscout_dataflow::ExecutionContext;
use dbscout_metrics::plot::{LineChart, Series};
use dbscout_metrics::table::Table;
use dbscout_metrics::time_runs;
use dbscout_spatial::Grid;

fn main() {
    let args = Args::parse();
    let n: usize = args.get("n", workloads::GEOLIFE_DEFAULT_N);
    let reps: usize = args.get("reps", 3);
    let svg: String = args.get("svg", "results/fig11.svg".to_string());
    let store = workloads::geolife(n);

    println!(
        "Fig. 11 — Geolife-like: runtime vs eps (n = {n}, minPts = {MIN_PTS}, reps = {reps})\n"
    );
    let mut t = Table::new(&["eps", "DBSCOUT (s)", "RP-DBSCAN-A (s)", "top-cell share"]);
    let mut scout_series = Vec::new();
    let mut rp_series = Vec::new();
    for eps in GEOLIFE_EPS_SWEEP {
        let params = DbscoutParams::new(eps, MIN_PTS).expect("valid params");
        let scout = time_runs(reps, || {
            let ctx = ExecutionContext::builder().build();
            DistributedDbscout::new(ctx, params)
                .detect(&store)
                .expect("dbscout run")
        });
        let rp = time_runs(reps, || {
            let ctx = ExecutionContext::builder().build();
            RpDbscan::new(ctx, eps, MIN_PTS)
                .detect(&store)
                .expect("rp-dbscan run")
        });
        let skew = Grid::build(&store, eps).expect("valid eps").skew();
        scout_series.push((eps, scout.mean_secs()));
        rp_series.push((eps, rp.mean_secs()));
        t.row(&[
            format!("{eps}"),
            scout.summary_cell(),
            rp.summary_cell(),
            format!("{:.0}%", skew * 100.0),
        ]);
    }
    println!("{}", t.render());

    let chart = LineChart::new(
        format!("Fig. 11 — Geolife-like: runtime vs eps (n = {n})"),
        "eps",
        "seconds",
    )
    .log_x()
    .series(Series::new("DBSCOUT", scout_series))
    .series(Series::new("RP-DBSCAN-A", rp_series));
    dbscout_bench::figures::write_svg(&svg, &chart);
}
