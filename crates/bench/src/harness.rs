//! A minimal `std::time`-based stand-in for the criterion benchmark
//! harness (unavailable offline). It mirrors the small API surface the
//! bench targets use — `Criterion::benchmark_group`, `sample_size`,
//! `bench_function`, `bench_with_input`, `BenchmarkId` — and reports
//! min/mean/max wall-clock per benchmark.
//!
//! Under `cargo test` (the `--test` flag cargo passes to harnessless
//! targets) each benchmark body runs exactly once as a smoke check.

use std::fmt;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Re-exported so bench targets can import everything from this module.
pub use crate::{criterion_group, criterion_main};

/// Identifier of a single benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A two-part id rendered as `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id consisting of the parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_string(),
        }
    }
}

/// Top-level driver, one per bench target.
pub struct Criterion {
    test_mode: bool,
}

impl Criterion {
    /// Builds a driver from the process arguments cargo passed us:
    /// `--test` means "run once per benchmark and exit".
    pub fn from_args() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Self { test_mode }
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group: {name}");
        BenchmarkGroup {
            samples: 10,
            test_mode: self.test_mode,
        }
    }
}

/// A named set of benchmarks sharing a sample count.
pub struct BenchmarkGroup {
    samples: usize,
    test_mode: bool,
}

impl BenchmarkGroup {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: if self.test_mode { 1 } else { self.samples },
            durations: Vec::new(),
        };
        f(&mut b);
        report(&id.label, &b.durations);
        self
    }

    /// Runs one benchmark parameterized by an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (held for criterion API parity).
    pub fn finish(self) {}
}

/// Timer handed to each benchmark body.
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, recording one duration per sample. The closure runs
    /// once untimed as warm-up.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.durations.push(start.elapsed());
        }
    }
}

fn report(label: &str, durations: &[Duration]) {
    let n = durations.len().max(1) as u32;
    let total: Duration = durations.iter().sum();
    let mean = total / n;
    let min = durations.iter().min().copied().unwrap_or_default();
    let max = durations.iter().max().copied().unwrap_or_default();
    let stats = dbscout_metrics::TimingStats::new(durations.to_vec());
    println!(
        "  {label}: mean {mean:?}  min {min:?}  max {max:?}  \
         p50 {:.6}s  p95 {:.6}s  p99 {:.6}s  ({} samples)",
        stats.p50_secs(),
        stats.p95_secs(),
        stats.p99_secs(),
        durations.len()
    );
}

/// Collects benchmark functions under a name, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::harness::Criterion::from_args();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running every group, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("a", 3).label, "a/3");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
        assert_eq!(BenchmarkId::from("plain").label, "plain");
    }

    #[test]
    fn bencher_records_requested_samples() {
        let mut b = Bencher {
            samples: 4,
            durations: Vec::new(),
        };
        let mut runs = 0u32;
        b.iter(|| runs += 1);
        assert_eq!(b.durations.len(), 4);
        assert_eq!(runs, 5); // 4 samples + 1 warm-up
    }
}
