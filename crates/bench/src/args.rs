//! A tiny `--key value` argument parser for the experiment binaries (no
//! external CLI crate is available offline).

use std::collections::HashMap;

/// Parsed `--key value` pairs from `std::env::args`.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
}

impl Args {
    /// Parses the process arguments. Flags must come in `--key value`
    /// pairs; anything else is ignored.
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses an explicit iterator (testable entry point).
    pub fn from_args(args: impl IntoIterator<Item = String>) -> Self {
        let mut values = HashMap::new();
        let mut iter = args.into_iter().peekable();
        while let Some(a) = iter.next() {
            if let Some(key) = a.strip_prefix("--") {
                match iter.peek() {
                    Some(v) if !v.starts_with("--") => {
                        let v = iter.next().unwrap_or_default();
                        values.insert(key.to_string(), v);
                    }
                    _ => {
                        values.insert(key.to_string(), String::from("true"));
                    }
                }
            }
        }
        Self { values }
    }

    /// A typed value, or `default` when absent/unparsable.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.values
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Args {
        Args::from_args(s.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_pairs() {
        let a = args(&["--n", "5000", "--reps", "3"]);
        assert_eq!(a.get("n", 0usize), 5000);
        assert_eq!(a.get("reps", 0usize), 3);
    }

    #[test]
    fn defaults_apply() {
        let a = args(&[]);
        assert_eq!(a.get("n", 42usize), 42);
        assert_eq!(a.get("eps", 1.5f64), 1.5);
    }

    #[test]
    fn bare_flags_become_true() {
        let a = args(&["--verbose", "--n", "10"]);
        assert!(a.get("verbose", false));
        assert_eq!(a.get("n", 0usize), 10);
    }

    #[test]
    fn unparsable_values_fall_back() {
        let a = args(&["--n", "abc"]);
        assert_eq!(a.get("n", 7usize), 7);
    }
}
