// Bench targets are exempt from the panic-freedom policy (see DESIGN.md).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic
)]

//! Thread-and-kernel scaling grid: 1/2/4/8 in-process threads ×
//! {hashed, cell-major, streaming cell-major} × {scalar, unrolled}
//! distance kernels, all on the same uniform 2-D workload. Labels and
//! kernel-counter totals are identical across every cell of the grid
//! (see `kernel_equivalence.rs` / `layout_equivalence.rs`); only
//! wall-clock differs. The streaming rows drive `detect_source` through
//! a [`StoreSource`], so they time the parallel two-pass builder as
//! well as the phase kernels.
//!
//! Full size is 200k points; under `--test` (CI smoke) it drops to 5k
//! and the thread ladder to {1, 2} so the target finishes in seconds.

use dbscout_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbscout_bench::workloads;
use dbscout_core::{Dbscout, DbscoutParams, ExecutionLayout, KernelKind};
use dbscout_data::StoreSource;

const STREAM_BATCH: usize = 4096;

fn bench_scaling(c: &mut Criterion) {
    let test_mode = std::env::args().any(|a| a == "--test");
    let n = if test_mode { 5_000 } else { 200_000 };
    let threads: &[usize] = if test_mode { &[1, 2] } else { &[1, 2, 4, 8] };
    let store = workloads::uniform2d(n, 0xCE11);
    let params = DbscoutParams::new(workloads::UNIFORM2D_EPS, workloads::UNIFORM2D_MIN_PTS)
        .expect("valid params");

    let mut g = c.benchmark_group(&format!("scaling_uniform2d_{n}"));
    g.sample_size(5);
    for &t in threads {
        for kernel in [KernelKind::Scalar, KernelKind::Unrolled] {
            for mode in ["hashed", "cell_major", "streaming"] {
                g.bench_with_input(
                    BenchmarkId::new(format!("{mode}/{}", kernel.as_str()), format!("t{t}")),
                    &(t, kernel, mode),
                    |b, &(t, kernel, mode)| {
                        b.iter(|| {
                            let d = Dbscout::new(params).with_kernel(kernel).with_threads(t);
                            match mode {
                                "hashed" => d
                                    .with_layout(ExecutionLayout::Hashed)
                                    .detect(&store)
                                    .expect("run"),
                                "cell_major" => d
                                    .with_layout(ExecutionLayout::CellMajor)
                                    .detect(&store)
                                    .expect("run"),
                                _ => {
                                    let mut src = StoreSource::new(&store, STREAM_BATCH);
                                    d.detect_source(&mut src).expect("run")
                                }
                            }
                        })
                    },
                );
            }
        }
    }
    g.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
