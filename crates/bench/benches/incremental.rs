// Bench targets are exempt from the panic-freedom policy (see DESIGN.md).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic
)]

//! Warm-state throughput of the two incremental engines on the uniform
//! 2-D workload:
//!
//! * `bulk_load/<layout>` — building the warm state from a cold store
//!   (one insert per point; the one-shot batch engine stays the fast
//!   path for cold detection);
//! * `churn1k/<layout>` — 1000 (insert new point, remove random live
//!   point) pairs against the warm state, the steady serving mix;
//! * `probe/<layout>` and `outliers/<layout>` — single warm `dbscout
//!   serve` queries, sampled individually so p50/p95/p99 are per-query
//!   latencies.
//!
//! minPts is deliberately lower than the batch uniform-2d benchmarks
//! (10 vs 50) so the expected ε-neighborhood size (~8 at 100k points)
//! straddles the core threshold and every churn step can flip labels.
//!
//! Full size is 100k points; under `--test` (CI smoke) it drops to 2k
//! so the target finishes in seconds.

use dbscout_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbscout_bench::workloads;
use dbscout_core::{DbscoutParams, ExecutionLayout, IncrementalDbscout, KernelKind};
use dbscout_rng::Rng;
use dbscout_spatial::PointStore;

const EPS: f64 = workloads::UNIFORM2D_EPS;
const MIN_PTS: usize = 10;
const SEED: u64 = 0x1C2;

const LAYOUTS: [(&str, ExecutionLayout); 2] = [
    ("hashed", ExecutionLayout::Hashed),
    ("cell-major", ExecutionLayout::CellMajor),
];

fn warm(store: &PointStore, layout: ExecutionLayout) -> IncrementalDbscout {
    let params = DbscoutParams::new(EPS, MIN_PTS).expect("valid params");
    IncrementalDbscout::from_store_with(store, params, layout, KernelKind::Auto)
        .expect("warm load succeeds")
}

fn random_point(rng: &mut Rng) -> [f64; 2] {
    [
        rng.gen_range(0.0..workloads::UNIFORM2D_SIDE),
        rng.gen_range(0.0..workloads::UNIFORM2D_SIDE),
    ]
}

fn bench_incremental(c: &mut Criterion) {
    let test_mode = std::env::args().any(|a| a == "--test");
    let n = if test_mode { 2_000 } else { 100_000 };
    let store = workloads::uniform2d(n, SEED);

    let mut g = c.benchmark_group(&format!("incremental_uniform2d_{n}"));
    g.sample_size(10);
    for (name, layout) in LAYOUTS {
        g.bench_with_input(BenchmarkId::new("bulk_load", name), &layout, |b, &l| {
            b.iter(|| warm(&store, l))
        });
    }
    for (name, layout) in LAYOUTS {
        let mut inc = warm(&store, layout);
        let mut alive: Vec<u32> = (0..n as u32).collect();
        let mut rng = Rng::seed_from_u64(SEED ^ 0xC4);
        g.bench_with_input(BenchmarkId::new("churn1k", name), &layout, |b, _| {
            b.iter(|| {
                for _ in 0..1000 {
                    let p = random_point(&mut rng);
                    alive.push(inc.insert(&p).expect("finite point"));
                    let id = alive.swap_remove(rng.gen_range(0..alive.len()));
                    inc.remove(id);
                }
                inc.len()
            })
        });
    }
    g.finish();

    // Per-query serve latency: one warm query per sample, so the
    // reported p50/p95/p99 are individual query latencies.
    let mut g = c.benchmark_group(&format!("serve_query_uniform2d_{n}"));
    g.sample_size(if test_mode { 1 } else { 200 });
    for (name, layout) in LAYOUTS {
        let mut inc = warm(&store, layout);
        let mut rng = Rng::seed_from_u64(SEED ^ 0x9B);
        g.bench_with_input(BenchmarkId::new("probe", name), &layout, |b, _| {
            b.iter(|| {
                let p = random_point(&mut rng);
                inc.probe(&p).expect("finite point")
            })
        });
        g.bench_with_input(BenchmarkId::new("outliers", name), &layout, |b, _| {
            b.iter(|| inc.outliers().len())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_incremental);
criterion_main!(benches);
