// Bench targets are exempt from the panic-freedom policy (see DESIGN.md).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic
)]

//! Criterion microbenchmarks of DBSCOUT's five phases and end-to-end
//! native detection (the per-phase costs behind Lemmas 4–8).

use dbscout_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbscout_bench::workloads;
use dbscout_core::{Dbscout, DbscoutParams};
use dbscout_spatial::Grid;

fn bench_phases(c: &mut Criterion) {
    let store = workloads::osm(50_000);
    let params =
        DbscoutParams::new(workloads::OSM_EPS_CENTRAL, workloads::MIN_PTS).expect("valid params");

    let mut g = c.benchmark_group("phases");
    g.sample_size(10);

    g.bench_function("grid_build", |b| {
        b.iter(|| Grid::build(&store, params.eps).expect("valid eps"))
    });

    g.bench_function("native_detect_total", |b| {
        b.iter(|| Dbscout::new(params).detect(&store).expect("run"))
    });

    // Linearity probe: detection time at three sizes (shape check — the
    // full sweep is the table2_fig10 binary).
    for n in [12_500usize, 25_000, 50_000] {
        let sub = workloads::osm(n);
        g.bench_with_input(BenchmarkId::new("native_detect_n", n), &sub, |b, s| {
            b.iter(|| Dbscout::new(params).detect(s).expect("run"))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_phases);
criterion_main!(benches);
