// Bench targets are exempt from the panic-freedom policy (see DESIGN.md).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic
)]

//! Criterion microbenchmarks of the dataflow substrate itself: the
//! shuffle, join and broadcast primitives every DBSCOUT phase is built
//! from.

use dbscout_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbscout_dataflow::ExecutionContext;

fn bench_dataflow(c: &mut Criterion) {
    let mut g = c.benchmark_group("dataflow");
    g.sample_size(10);

    g.bench_function("reduce_by_key_1m_records_1k_keys", |b| {
        b.iter(|| {
            let ctx = ExecutionContext::builder().default_partitions(8).build();
            let ds = ctx.parallelize(
                (0..1_000_000u64)
                    .map(|i| (i % 1000, 1u64))
                    .collect::<Vec<_>>(),
                8,
            );
            ds.reduce_by_key(|a, b| a + b).expect("run").count()
        })
    });

    g.bench_function("join_100k_x_100k", |b| {
        b.iter(|| {
            let ctx = ExecutionContext::builder().default_partitions(8).build();
            let left = ctx.parallelize(
                (0..100_000u64).map(|i| (i % 10_000, i)).collect::<Vec<_>>(),
                8,
            );
            let right = ctx.parallelize(
                (0..100_000u64)
                    .map(|i| (i % 10_000, i * 2))
                    .collect::<Vec<_>>(),
                8,
            );
            left.join(&right).expect("run").count()
        })
    });

    g.bench_function("group_by_key_500k", |b| {
        b.iter(|| {
            let ctx = ExecutionContext::builder().default_partitions(8).build();
            let ds = ctx.parallelize(
                (0..500_000u64).map(|i| (i % 5_000, i)).collect::<Vec<_>>(),
                8,
            );
            ds.group_by_key().expect("run").count()
        })
    });

    for parts in [2usize, 8, 32] {
        g.bench_with_input(
            BenchmarkId::new("map_filter_pipeline_500k", parts),
            &parts,
            |b, &parts| {
                b.iter(|| {
                    let ctx = ExecutionContext::builder().build();
                    let ds = ctx.parallelize((0..500_000u64).collect::<Vec<_>>(), parts);
                    ds.map(|&x| x.wrapping_mul(2654435761))
                        .expect("run")
                        .filter(|&x| x % 3 == 0)
                        .expect("run")
                        .count()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_dataflow);
criterion_main!(benches);
