// Bench targets are exempt from the panic-freedom policy (see DESIGN.md).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic
)]

//! Criterion microbenchmarks of the spatial substrate: grid construction,
//! neighbor-offset enumeration (k_d), and KD-tree queries.

use dbscout_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbscout_bench::workloads;
use dbscout_spatial::neighbors::count_k_d;
use dbscout_spatial::{Grid, KdTree, NeighborOffsets};

fn bench_spatial(c: &mut Criterion) {
    let store = workloads::osm(50_000);

    let mut g = c.benchmark_group("spatial");
    g.sample_size(10);

    g.bench_function("grid_build_50k", |b| {
        b.iter(|| Grid::build(&store, workloads::OSM_EPS_CENTRAL).expect("valid eps"))
    });

    g.bench_function("kdtree_build_50k", |b| b.iter(|| KdTree::build(&store)));

    let tree = KdTree::build(&store);
    g.bench_function("kdtree_knn100_50k", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for i in (0..store.len()).step_by(5000) {
                acc += tree.knn(store.point(i), 100).len();
            }
            acc
        })
    });

    for d in [2usize, 3, 4, 5] {
        g.bench_with_input(BenchmarkId::new("neighbor_offsets", d), &d, |b, &d| {
            b.iter(|| NeighborOffsets::new(d).expect("valid dims"))
        });
    }
    g.bench_function("count_kd_d6", |b| b.iter(|| count_k_d(6).expect("valid")));
    g.finish();
}

criterion_group!(benches, bench_spatial);
criterion_main!(benches);
