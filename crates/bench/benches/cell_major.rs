// Bench targets are exempt from the panic-freedom policy (see DESIGN.md).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic
)]

//! Criterion head-to-head of the native engine's two execution layouts —
//! hashed (per-point map probes) vs. cell-major (columnar, bbox-pruned) —
//! on uniform 2-D data, where every grid cell is occupied and neighbor
//! lookups dominate. Labels are identical by construction (see
//! `layout_equivalence.rs`); only wall-clock differs.
//!
//! Full size is 1M points; under `--test` (CI smoke) it drops to 5k so
//! the target finishes in seconds.

use dbscout_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbscout_bench::workloads;
use dbscout_core::{Dbscout, DbscoutParams, ExecutionLayout};

fn bench_layouts(c: &mut Criterion) {
    let test_mode = std::env::args().any(|a| a == "--test");
    let n = if test_mode { 5_000 } else { 1_000_000 };
    let store = workloads::uniform2d(n, 0xCE11);
    let params = DbscoutParams::new(workloads::UNIFORM2D_EPS, workloads::UNIFORM2D_MIN_PTS)
        .expect("valid params");

    let mut g = c.benchmark_group(&format!("layout_uniform2d_{n}"));
    g.sample_size(10);
    for threads in [1usize, 0] {
        // 0 = all cores (the engine default).
        let tag = if threads == 0 {
            "all_cores".to_string()
        } else {
            format!("t{threads}")
        };
        for layout in [ExecutionLayout::Hashed, ExecutionLayout::CellMajor] {
            let name = match layout {
                ExecutionLayout::Hashed => "hashed",
                ExecutionLayout::CellMajor => "cell_major",
            };
            g.bench_with_input(
                BenchmarkId::new(name, &tag),
                &(layout, threads),
                |b, &(layout, threads)| {
                    b.iter(|| {
                        let mut d = Dbscout::new(params).with_layout(layout);
                        if threads > 0 {
                            d = d.with_threads(threads);
                        }
                        d.detect(&store).expect("run")
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_layouts);
criterion_main!(benches);
