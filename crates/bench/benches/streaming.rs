// Bench targets are exempt from the panic-freedom policy (see DESIGN.md).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic
)]

//! Wall-clock head-to-head of the two routes from a binary dataset file
//! to an outlier result:
//!
//! * `materialized` — read the whole file into a `PointStore`, then
//!   `detect` (the pre-streaming shape: raw bytes, the store, and the
//!   cell-major layout all resident at once);
//! * `streaming/b<batch>` — `detect_source` over a `BinarySource`,
//!   which builds the cell-major layout in two passes over the file and
//!   never materializes the store.
//!
//! Labels and stats are identical by construction (see
//! `crates/core/tests/streaming_equivalence.rs`); the interesting axes
//! are wall-clock (the second file pass vs. the extra copy) and peak
//! memory (reported by the CLI's `--report-json`, exercised by the CI
//! `ulimit -v` smoke run).
//!
//! Full size is 1M points; under `--test` (CI smoke) it drops to 5k so
//! the target finishes in seconds.

use dbscout_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbscout_bench::workloads;
use dbscout_core::{Dbscout, DbscoutParams, ExecutionLayout};
use dbscout_data::io::read_binary;
use dbscout_data::BinarySource;

fn bench_streaming(c: &mut Criterion) {
    let test_mode = std::env::args().any(|a| a == "--test");
    let n = if test_mode {
        5_000
    } else {
        workloads::STREAMING1M_N
    };
    let path = std::env::temp_dir().join(format!("dbscout-bench-streaming-{n}.bin"));
    let _store = workloads::streaming1m(n, &path);
    let params = DbscoutParams::new(workloads::STREAMING1M_EPS, workloads::STREAMING1M_MIN_PTS)
        .expect("valid params");
    let detector = Dbscout::new(params).with_layout(ExecutionLayout::CellMajor);

    let mut g = c.benchmark_group(&format!("streaming_uniform2d_{n}"));
    g.sample_size(10);
    g.bench_function("materialized", |b| {
        b.iter(|| {
            let store = read_binary(&path).expect("read");
            detector.detect(&store).expect("run")
        })
    });
    for batch in [8_192usize, 65_536] {
        g.bench_with_input(
            BenchmarkId::new("streaming", format!("b{batch}")),
            &batch,
            |b, &batch| {
                b.iter(|| {
                    let mut source = BinarySource::open(&path, batch).expect("open");
                    detector.detect_source(&mut source).expect("run")
                })
            },
        );
    }
    g.finish();
    let _ = std::fs::remove_file(&path);
}

criterion_group!(benches, bench_streaming);
criterion_main!(benches);
