// Bench targets are exempt from the panic-freedom policy (see DESIGN.md).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic
)]

//! Criterion head-to-head of all detectors at equal input — the
//! micro-scale echo of Table II.

use dbscout_baselines::{Dbscan, Ddlof, IsolationForest, Lof, RpDbscan};
use dbscout_bench::harness::{criterion_group, criterion_main, Criterion};
use dbscout_bench::workloads;
use dbscout_core::{Dbscout, DbscoutParams, DistributedDbscout};
use dbscout_dataflow::ExecutionContext;

fn bench_detectors(c: &mut Criterion) {
    let store = workloads::osm(20_000);
    let eps = workloads::OSM_EPS_CENTRAL;
    let min_pts = workloads::MIN_PTS;
    let params = DbscoutParams::new(eps, min_pts).expect("valid params");

    let mut g = c.benchmark_group("detectors_20k");
    g.sample_size(10);

    g.bench_function("dbscout_native", |b| {
        b.iter(|| Dbscout::new(params).detect(&store).expect("run"))
    });
    g.bench_function("dbscout_distributed", |b| {
        b.iter(|| {
            let ctx = ExecutionContext::builder().build();
            DistributedDbscout::new(ctx, params)
                .detect(&store)
                .expect("run")
        })
    });
    g.bench_function("dbscan_grid", |b| {
        b.iter(|| Dbscan::new(eps, min_pts).fit(&store).expect("run"))
    });
    g.bench_function("rp_dbscan", |b| {
        b.iter(|| {
            let ctx = ExecutionContext::builder().build();
            RpDbscan::new(ctx, eps, min_pts)
                .detect(&store)
                .expect("run")
        })
    });
    g.bench_function("ddlof_k6", |b| {
        b.iter(|| {
            let ctx = ExecutionContext::builder().build();
            Ddlof::new(ctx, 6).score(&store).expect("run")
        })
    });
    g.bench_function("lof_k6", |b| b.iter(|| Lof::new(6).score(&store)));
    g.bench_function("isolation_forest", |b| {
        b.iter(|| IsolationForest::new(0).score(&store))
    });
    g.finish();
}

criterion_group!(benches, bench_detectors);
criterion_main!(benches);
