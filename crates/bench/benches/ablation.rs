// Bench targets are exempt from the panic-freedom policy (see DESIGN.md).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic
)]

//! Criterion ablation of the native engine's design choices: the Lemma-1
//! dense-cell shortcut and the §III-G early-exit rules. Results are
//! identical across configurations; only the distance work changes.

use dbscout_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbscout_bench::workloads;
use dbscout_core::{Dbscout, DbscoutParams, NativeOptions};

fn bench_ablation(c: &mut Criterion) {
    let store = workloads::osm(50_000);
    let params =
        DbscoutParams::new(workloads::OSM_EPS_CENTRAL, workloads::MIN_PTS).expect("valid params");

    let configs = [
        (
            "full",
            NativeOptions {
                dense_cell_shortcut: true,
                early_exit: true,
            },
        ),
        (
            "no_dense_shortcut",
            NativeOptions {
                dense_cell_shortcut: false,
                early_exit: true,
            },
        ),
        (
            "no_early_exit",
            NativeOptions {
                dense_cell_shortcut: true,
                early_exit: false,
            },
        ),
        (
            "neither",
            NativeOptions {
                dense_cell_shortcut: false,
                early_exit: false,
            },
        ),
    ];

    let mut g = c.benchmark_group("native_ablation");
    g.sample_size(10);
    for (label, options) in configs {
        g.bench_with_input(BenchmarkId::from_parameter(label), &options, |b, &o| {
            b.iter(|| {
                Dbscout::new(params)
                    .with_options(o)
                    .detect(&store)
                    .expect("run")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
