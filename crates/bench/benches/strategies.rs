// Bench targets are exempt from the panic-freedom policy (see DESIGN.md).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic
)]

//! Criterion ablation of the §III-G join strategies: plain shuffle join
//! vs grouping-before-joining vs broadcast join, on the distributed
//! engine. The paper reports up to 5× speedups from grouping at low ε.

use dbscout_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbscout_bench::workloads;
use dbscout_core::{DbscoutParams, DistributedDbscout, JoinStrategy};
use dbscout_dataflow::ExecutionContext;

fn bench_strategies(c: &mut Criterion) {
    let store = workloads::osm(20_000);
    let mut g = c.benchmark_group("join_strategies");
    g.sample_size(10);

    for (label, eps) in [("low_eps", 250_000.0), ("high_eps", 2_000_000.0)] {
        let params = DbscoutParams::new(eps, workloads::MIN_PTS).expect("valid params");
        for strategy in [
            JoinStrategy::Shuffle,
            JoinStrategy::GroupedShuffle,
            JoinStrategy::Broadcast,
        ] {
            g.bench_with_input(
                BenchmarkId::new(format!("{strategy:?}"), label),
                &params,
                |b, p| {
                    b.iter(|| {
                        let ctx = ExecutionContext::builder().build();
                        DistributedDbscout::new(ctx, *p)
                            .with_strategy(strategy)
                            .detect(&store)
                            .expect("run")
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
