//! A self-contained deterministic PRNG for DBSCOUT.
//!
//! The container this repo builds in has no network access, so the `rand`
//! crate family is unavailable; this crate supplies the small slice of its
//! API the workspace actually uses, backed by xoshiro256++ seeded via
//! SplitMix64. Determinism across platforms is a feature: every generator,
//! baseline and test in the workspace derives its data from a fixed `u64`
//! seed, so experiment tables are bit-reproducible.

// Unit tests may panic freely; library code is held to the panic-freedom
// gates in `[workspace.lints]` and `cargo xtask lint`.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::indexing_slicing,
        clippy::panic,
        clippy::float_cmp
    )
)]
use std::ops::{Range, RangeInclusive};

/// A deterministic xoshiro256++ generator.
///
/// Construct with [`Rng::seed_from_u64`]; the four 64-bit lanes are
/// expanded from the seed with SplitMix64 so that nearby seeds yield
/// uncorrelated streams.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// The next raw 64-bit output (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// A sample from the "standard" distribution of `T`: uniform on
    /// `[0, 1)` for floats, uniform over the full domain for integers and
    /// `bool`.
    pub fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform sample from `range` (half-open or inclusive; float or
    /// integer). Empty ranges are clamped to their start rather than
    /// panicking, keeping callers panic-free by construction.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(0..=i);
            xs.swap(i, j);
        }
    }

    fn uniform_f64(&mut self) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` below `bound` (Lemire-style rejection, unbiased).
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Rejection zone keeps the multiply-shift reduction unbiased.
        let zone = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= zone || zone == 0 {
                return (m >> 64) as u64;
            }
        }
    }
}

/// Types samplable from their "standard" distribution.
pub trait Standard: Sized {
    /// Draws one sample from `rng`.
    fn sample(rng: &mut Rng) -> Self;
}

impl Standard for f64 {
    fn sample(rng: &mut Rng) -> Self {
        rng.uniform_f64()
    }
}

impl Standard for f32 {
    fn sample(rng: &mut Rng) -> Self {
        rng.uniform_f64() as f32
    }
}

impl Standard for u64 {
    fn sample(rng: &mut Rng) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample(rng: &mut Rng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample(rng: &mut Rng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// Element type produced by sampling.
    type Output;
    /// Draws one uniform sample from the range.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut Rng) -> f64 {
        if self.end <= self.start {
            return self.start;
        }
        self.start + (self.end - self.start) * rng.uniform_f64()
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                if self.end <= self.start {
                    return self.start;
                }
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.bounded_u64(span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = self.into_inner();
                if hi <= lo {
                    return lo;
                }
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return (lo as i128 + rng.next_u64() as i128) as $t;
                }
                (lo as i128 + rng.bounded_u64(span + 1) as i128) as $t
            }
        }
    )*};
}

int_range!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_constructions() {
        let a: Vec<u64> = {
            let mut r = Rng::seed_from_u64(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::seed_from_u64(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn f64_samples_in_unit_interval() {
        let mut r = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut r = Rng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = r.gen_range(-3.5..9.25);
            assert!((-3.5..9.25).contains(&x));
        }
    }

    #[test]
    fn int_range_is_roughly_uniform() {
        let mut r = Rng::seed_from_u64(11);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[r.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut r = Rng::seed_from_u64(13);
        let (mut lo_hit, mut hi_hit) = (false, false);
        for _ in 0..10_000 {
            match r.gen_range(0..=3) {
                0 => lo_hit = true,
                3 => hi_hit = true,
                _ => {}
            }
        }
        assert!(lo_hit && hi_hit);
    }

    #[test]
    fn empty_ranges_clamp_to_start() {
        let mut r = Rng::seed_from_u64(17);
        assert_eq!(r.gen_range(5usize..5), 5);
        assert_eq!(r.gen_range(2.0..2.0), 2.0);
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut r = Rng::seed_from_u64(19);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::seed_from_u64(23);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
