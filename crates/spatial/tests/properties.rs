//! Randomized property tests for the spatial substrate.
//!
//! Each test draws many cases from a seeded [`dbscout_rng::Rng`], so runs
//! are deterministic and reproducible while still sweeping a broad input
//! space (the offline stand-in for `proptest`).

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic,
    clippy::float_cmp
)]

use dbscout_rng::Rng;
use dbscout_spatial::cell::{cell_side, max_sq_dist_to_cell, min_sq_dist_to_cell};
use dbscout_spatial::distance::{dist, sq_dist};
use dbscout_spatial::{Grid, KdTree, PointStore};

fn points_2d(rng: &mut Rng, max_n: usize) -> Vec<Vec<f64>> {
    let n = rng.gen_range(1..max_n);
    (0..n)
        .map(|_| (0..2).map(|_| rng.gen_range(-100.0..100.0)).collect())
        .collect()
}

#[test]
fn grid_partitions_completely() {
    let mut rng = Rng::seed_from_u64(0xA001);
    for _ in 0..48 {
        let rows = points_2d(&mut rng, 200);
        let eps = rng.gen_range(0.01..50.0);
        let store = PointStore::from_rows(2, rows).unwrap();
        let grid = Grid::build(&store, eps).unwrap();
        // Every point in exactly one cell.
        let mut count = 0usize;
        for (cell, ids) in grid.cells() {
            for &id in ids {
                assert_eq!(&grid.cell_for(store.point(id)), cell);
                count += 1;
            }
        }
        assert_eq!(count, store.len() as usize);
    }
}

#[test]
fn same_cell_implies_within_eps() {
    // The geometric premise of Lemma 1.
    let mut rng = Rng::seed_from_u64(0xA002);
    for _ in 0..48 {
        let rows = points_2d(&mut rng, 150);
        let eps = rng.gen_range(0.1..50.0);
        let store = PointStore::from_rows(2, rows).unwrap();
        let grid = Grid::build(&store, eps).unwrap();
        for (_, ids) in grid.cells() {
            for &a in ids {
                for &b in ids {
                    assert!(dist(store.point(a), store.point(b)) <= eps);
                }
            }
        }
    }
}

#[test]
fn pairs_within_eps_are_in_neighboring_cells() {
    // The completeness direction: any pair at distance ≤ ε must be
    // discoverable through the neighbor-offset enumeration.
    use dbscout_spatial::NeighborOffsets;
    let mut rng = Rng::seed_from_u64(0xA003);
    for _ in 0..48 {
        let rows = points_2d(&mut rng, 80);
        let eps = rng.gen_range(0.1..50.0);
        let store = PointStore::from_rows(2, rows).unwrap();
        let grid = Grid::build(&store, eps).unwrap();
        let offsets = NeighborOffsets::new(2).unwrap();
        let eps_sq = eps * eps;
        for (ia, pa) in store.iter() {
            for (ib, pb) in store.iter() {
                if ia >= ib || sq_dist(pa, pb) > eps_sq {
                    continue;
                }
                let ca = grid.cell_for(pa);
                let cb = grid.cell_for(pb);
                let found = offsets.iter().any(|o| NeighborOffsets::apply(&ca, o) == cb);
                assert!(
                    found,
                    "pair at dist {} not in neighboring cells",
                    dist(pa, pb)
                );
            }
        }
    }
}

#[test]
fn kdtree_knn_matches_linear() {
    let mut rng = Rng::seed_from_u64(0xA004);
    for _ in 0..48 {
        let rows = points_2d(&mut rng, 200);
        let k = rng.gen_range(1usize..10);
        let store = PointStore::from_rows(2, rows).unwrap();
        let tree = KdTree::build(&store);
        let query = store.point(0).to_vec();
        let got = tree.knn(&query, k);
        let mut all: Vec<f64> = store.iter().map(|(_, p)| sq_dist(&query, p)).collect();
        all.sort_by(f64::total_cmp);
        all.truncate(k);
        let got_d: Vec<f64> = got.iter().map(|n| n.sq_dist).collect();
        assert_eq!(got_d, all);
    }
}

#[test]
fn kdtree_radius_matches_linear() {
    let mut rng = Rng::seed_from_u64(0xA005);
    for _ in 0..48 {
        let rows = points_2d(&mut rng, 200);
        let eps = rng.gen_range(0.1..40.0);
        let store = PointStore::from_rows(2, rows).unwrap();
        let tree = KdTree::build(&store);
        let query = store.point(0).to_vec();
        let mut got: Vec<u32> = tree
            .within_radius(&query, eps)
            .iter()
            .map(|n| n.id)
            .collect();
        got.sort_unstable();
        let mut expected: Vec<u32> = store
            .iter()
            .filter(|(_, p)| sq_dist(&query, p) <= eps * eps)
            .map(|(id, _)| id)
            .collect();
        expected.sort_unstable();
        assert_eq!(got, expected);
    }
}

#[test]
fn min_max_cell_distance_bracket_actual() {
    // For any point q, the distance from p to q is bracketed by the
    // min/max distance from p to q's cell box.
    let mut rng = Rng::seed_from_u64(0xA006);
    for _ in 0..200 {
        let px = rng.gen_range(-50.0..50.0);
        let py = rng.gen_range(-50.0..50.0);
        let qx = rng.gen_range(-50.0..50.0);
        let qy = rng.gen_range(-50.0..50.0);
        let eps = rng.gen_range(0.5..20.0);
        let side = cell_side(eps, 2);
        let q = [qx, qy];
        let cell = dbscout_spatial::cell::cell_of(&q, side);
        let p = [px, py];
        let d2 = sq_dist(&p, &q);
        let lo = min_sq_dist_to_cell(&p, &cell, side);
        let hi = max_sq_dist_to_cell(&p, &cell, side);
        assert!(lo <= d2 + 1e-9, "lo {lo} > d2 {d2}");
        assert!(hi >= d2 - 1e-9, "hi {hi} < d2 {d2}");
    }
}

#[test]
fn store_gather_preserves_coords() {
    let mut rng = Rng::seed_from_u64(0xA007);
    for _ in 0..48 {
        let rows = points_2d(&mut rng, 50);
        let store = PointStore::from_rows(2, rows).unwrap();
        let ids: Vec<u32> = (0..store.len()).rev().collect();
        let g = store.gather(&ids);
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(g.point(i as u32), store.point(id));
        }
    }
}
