//! Property-based tests for the spatial substrate.

use dbscout_spatial::cell::{cell_side, max_sq_dist_to_cell, min_sq_dist_to_cell};
use dbscout_spatial::distance::{dist, sq_dist};
use dbscout_spatial::{Grid, KdTree, PointStore};
use proptest::prelude::*;

fn points_2d(n: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(
        prop::collection::vec(-100.0f64..100.0, 2),
        1..n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn grid_partitions_completely(rows in points_2d(200), eps in 0.01f64..50.0) {
        let store = PointStore::from_rows(2, rows).unwrap();
        let grid = Grid::build(&store, eps).unwrap();
        // Every point in exactly one cell.
        let mut count = 0usize;
        for (cell, ids) in grid.cells() {
            for &id in ids {
                prop_assert_eq!(&grid.cell_for(store.point(id)), cell);
                count += 1;
            }
        }
        prop_assert_eq!(count, store.len() as usize);
    }

    #[test]
    fn same_cell_implies_within_eps(rows in points_2d(150), eps in 0.1f64..50.0) {
        // The geometric premise of Lemma 1.
        let store = PointStore::from_rows(2, rows).unwrap();
        let grid = Grid::build(&store, eps).unwrap();
        for (_, ids) in grid.cells() {
            for &a in ids {
                for &b in ids {
                    prop_assert!(dist(store.point(a), store.point(b)) <= eps);
                }
            }
        }
    }

    #[test]
    fn pairs_within_eps_are_in_neighboring_cells(
        rows in points_2d(80),
        eps in 0.1f64..50.0,
    ) {
        // The completeness direction: any pair at distance ≤ ε must be
        // discoverable through the neighbor-offset enumeration.
        use dbscout_spatial::NeighborOffsets;
        let store = PointStore::from_rows(2, rows).unwrap();
        let grid = Grid::build(&store, eps).unwrap();
        let offsets = NeighborOffsets::new(2).unwrap();
        let eps_sq = eps * eps;
        for (ia, pa) in store.iter() {
            for (ib, pb) in store.iter() {
                if ia >= ib || sq_dist(pa, pb) > eps_sq {
                    continue;
                }
                let ca = grid.cell_for(pa);
                let cb = grid.cell_for(pb);
                let found = offsets
                    .iter()
                    .any(|o| NeighborOffsets::apply(&ca, o) == cb);
                prop_assert!(found, "pair at dist {} not in neighboring cells", dist(pa, pb));
            }
        }
    }

    #[test]
    fn kdtree_knn_matches_linear(rows in points_2d(200), k in 1usize..10) {
        let store = PointStore::from_rows(2, rows).unwrap();
        let tree = KdTree::build(&store);
        let query = store.point(0).to_vec();
        let got = tree.knn(&query, k);
        let mut all: Vec<f64> = store.iter().map(|(_, p)| sq_dist(&query, p)).collect();
        all.sort_by(f64::total_cmp);
        all.truncate(k);
        let got_d: Vec<f64> = got.iter().map(|n| n.sq_dist).collect();
        prop_assert_eq!(got_d, all);
    }

    #[test]
    fn kdtree_radius_matches_linear(rows in points_2d(200), eps in 0.1f64..40.0) {
        let store = PointStore::from_rows(2, rows).unwrap();
        let tree = KdTree::build(&store);
        let query = store.point(0).to_vec();
        let mut got: Vec<u32> = tree.within_radius(&query, eps).iter().map(|n| n.id).collect();
        got.sort_unstable();
        let mut expected: Vec<u32> = store
            .iter()
            .filter(|(_, p)| sq_dist(&query, p) <= eps * eps)
            .map(|(id, _)| id)
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn min_max_cell_distance_bracket_actual(
        px in -50.0f64..50.0,
        py in -50.0f64..50.0,
        qx in -50.0f64..50.0,
        qy in -50.0f64..50.0,
        eps in 0.5f64..20.0,
    ) {
        // For any point q, the distance from p to q is bracketed by the
        // min/max distance from p to q's cell box.
        let side = cell_side(eps, 2);
        let q = [qx, qy];
        let cell = dbscout_spatial::cell::cell_of(&q, side);
        let p = [px, py];
        let d2 = sq_dist(&p, &q);
        let lo = min_sq_dist_to_cell(&p, &cell, side);
        let hi = max_sq_dist_to_cell(&p, &cell, side);
        prop_assert!(lo <= d2 + 1e-9, "lo {lo} > d2 {d2}");
        prop_assert!(hi >= d2 - 1e-9, "hi {hi} < d2 {d2}");
    }

    #[test]
    fn store_gather_preserves_coords(rows in points_2d(50)) {
        let store = PointStore::from_rows(2, rows).unwrap();
        let ids: Vec<u32> = (0..store.len()).rev().collect();
        let g = store.gather(&ids);
        for (i, &id) in ids.iter().enumerate() {
            prop_assert_eq!(g.point(i as u32), store.point(id));
        }
    }
}
