//! Flat structure-of-arrays point storage.
//!
//! Points are stored row-major in one contiguous `Vec<f64>` (point `i`
//! occupies `coords[i*d .. (i+1)*d]`). For the 2–3 dimensional GPS data
//! DBSCOUT targets, this keeps every distance computation on a dense cache
//! line and avoids one allocation per point.

use crate::error::SpatialError;

/// An index into a [`PointStore`]. 32 bits suffice for the laptop-scale
/// experiments and halve the size of per-cell point lists.
pub type PointId = u32;

/// A dense, append-only collection of `d`-dimensional points.
#[derive(Debug, Clone, PartialEq)]
pub struct PointStore {
    dims: usize,
    coords: Vec<f64>,
}

impl PointStore {
    /// Creates an empty store for `dims`-dimensional points.
    ///
    /// # Errors
    ///
    /// Fails if `dims` is zero or exceeds [`crate::MAX_DIMS`].
    pub fn new(dims: usize) -> Result<Self, SpatialError> {
        if dims == 0 {
            return Err(SpatialError::ZeroDims);
        }
        if dims > crate::MAX_DIMS {
            return Err(SpatialError::TooManyDims { requested: dims });
        }
        Ok(Self {
            dims,
            coords: Vec::new(),
        })
    }

    /// Creates an empty store with capacity for `n` points.
    pub fn with_capacity(dims: usize, n: usize) -> Result<Self, SpatialError> {
        let mut s = Self::new(dims)?;
        s.coords.reserve(n * dims);
        Ok(s)
    }

    /// Builds a store from row-major point rows.
    ///
    /// # Errors
    ///
    /// Fails on dimension mismatches or non-finite coordinates.
    pub fn from_rows(
        dims: usize,
        rows: impl IntoIterator<Item = Vec<f64>>,
    ) -> Result<Self, SpatialError> {
        let mut s = Self::new(dims)?;
        for row in rows {
            s.push(&row)?;
        }
        Ok(s)
    }

    /// Builds a store from a flat row-major coordinate buffer.
    ///
    /// # Errors
    ///
    /// Fails if the buffer length is not a multiple of `dims` or any
    /// coordinate is non-finite.
    pub fn from_flat(dims: usize, coords: Vec<f64>) -> Result<Self, SpatialError> {
        Self::new(dims)?; // validate dimensionality
        if !coords.len().is_multiple_of(dims) {
            return Err(SpatialError::DimensionMismatch {
                expected: dims,
                got: coords.len() % dims,
            });
        }
        for (i, &c) in coords.iter().enumerate() {
            if !c.is_finite() {
                return Err(SpatialError::NonFiniteCoordinate {
                    point: i / dims,
                    dim: i % dims,
                });
            }
        }
        Ok(Self { dims, coords })
    }

    /// Appends one point; returns its id.
    ///
    /// # Errors
    ///
    /// Fails on dimension mismatch or non-finite coordinates.
    pub fn push(&mut self, point: &[f64]) -> Result<PointId, SpatialError> {
        if point.len() != self.dims {
            return Err(SpatialError::DimensionMismatch {
                expected: self.dims,
                got: point.len(),
            });
        }
        let id = self.len();
        for (dim, &c) in point.iter().enumerate() {
            if !c.is_finite() {
                return Err(SpatialError::NonFiniteCoordinate {
                    point: id as usize,
                    dim,
                });
            }
        }
        self.coords.extend_from_slice(point);
        Ok(id)
    }

    /// Number of points.
    pub fn len(&self) -> PointId {
        (self.coords.len() / self.dims) as PointId
    }

    /// Whether the store holds no points.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Dimensionality of the stored points.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Borrows the coordinates of point `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (indexing bug, not a data error).
    #[inline]
    #[allow(clippy::indexing_slicing)]
    pub fn point(&self, id: PointId) -> &[f64] {
        let i = id as usize * self.dims;
        // ids come from this store's own iteration; out-of-range is a caller bug
        // xtask-lint: allow(XL001) -- documented `# Panics` contract on `point`
        &self.coords[i..i + self.dims]
    }

    /// The raw row-major coordinate buffer.
    pub fn flat(&self) -> &[f64] {
        &self.coords
    }

    /// Iterates over `(id, coordinates)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (PointId, &[f64])> + '_ {
        self.coords
            .chunks_exact(self.dims)
            .enumerate()
            .map(|(i, p)| (i as PointId, p))
    }

    /// Copies the selected points into a new store (used to slice datasets
    /// into samples and partitions).
    pub fn gather(&self, ids: &[PointId]) -> PointStore {
        let mut coords = Vec::with_capacity(ids.len() * self.dims);
        for &id in ids {
            coords.extend_from_slice(self.point(id));
        }
        PointStore {
            dims: self.dims,
            coords,
        }
    }

    /// Appends all points of `other`.
    ///
    /// # Errors
    ///
    /// Fails on dimensionality mismatch.
    pub fn extend_from(&mut self, other: &PointStore) -> Result<(), SpatialError> {
        if other.dims != self.dims {
            return Err(SpatialError::DimensionMismatch {
                expected: self.dims,
                got: other.dims,
            });
        }
        self.coords.extend_from_slice(&other.coords);
        Ok(())
    }

    /// Axis-aligned bounding box as `(min, max)` per dimension, or `None`
    /// for an empty store.
    pub fn bounding_box(&self) -> Option<(Vec<f64>, Vec<f64>)> {
        if self.is_empty() {
            return None;
        }
        let mut min = self.point(0).to_vec();
        let mut max = min.clone();
        for (_, p) in self.iter().skip(1) {
            for ((mn, mx), &x) in min.iter_mut().zip(max.iter_mut()).zip(p) {
                *mn = mn.min(x);
                *mx = mx.max(x);
            }
        }
        Some((min, max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back() {
        let mut s = PointStore::new(3).unwrap();
        let a = s.push(&[1.0, 2.0, 3.0]).unwrap();
        let b = s.push(&[4.0, 5.0, 6.0]).unwrap();
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(s.len(), 2);
        assert_eq!(s.point(0), &[1.0, 2.0, 3.0]);
        assert_eq!(s.point(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn zero_dims_rejected() {
        assert_eq!(PointStore::new(0).unwrap_err(), SpatialError::ZeroDims);
    }

    #[test]
    fn too_many_dims_rejected() {
        assert!(matches!(
            PointStore::new(crate::MAX_DIMS + 1),
            Err(SpatialError::TooManyDims { .. })
        ));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut s = PointStore::new(2).unwrap();
        assert!(matches!(
            s.push(&[1.0]),
            Err(SpatialError::DimensionMismatch {
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    fn nan_rejected() {
        let mut s = PointStore::new(2).unwrap();
        s.push(&[0.0, 0.0]).unwrap();
        assert_eq!(
            s.push(&[1.0, f64::NAN]),
            Err(SpatialError::NonFiniteCoordinate { point: 1, dim: 1 })
        );
        // The failed push must not leave a partial row behind.
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn from_flat_validates_shape() {
        assert!(PointStore::from_flat(2, vec![1.0, 2.0, 3.0]).is_err());
        let s = PointStore::from_flat(2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn from_flat_rejects_infinity() {
        assert!(matches!(
            PointStore::from_flat(1, vec![f64::INFINITY]),
            Err(SpatialError::NonFiniteCoordinate { point: 0, dim: 0 })
        ));
    }

    #[test]
    fn from_rows_round_trip() {
        let rows = vec![vec![0.0, 1.0], vec![2.0, 3.0]];
        let s = PointStore::from_rows(2, rows.clone()).unwrap();
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(s.point(i as u32), row.as_slice());
        }
    }

    #[test]
    fn iter_yields_all_points() {
        let s = PointStore::from_rows(1, (0..5).map(|i| vec![i as f64])).unwrap();
        let ids: Vec<_> = s.iter().map(|(i, _)| i).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn gather_selects() {
        let s = PointStore::from_rows(1, (0..5).map(|i| vec![i as f64])).unwrap();
        let g = s.gather(&[4, 0, 2]);
        assert_eq!(g.point(0), &[4.0]);
        assert_eq!(g.point(1), &[0.0]);
        assert_eq!(g.point(2), &[2.0]);
    }

    #[test]
    fn extend_from_checks_dims() {
        let mut a = PointStore::new(2).unwrap();
        let b = PointStore::new(3).unwrap();
        assert!(a.extend_from(&b).is_err());
        let c = PointStore::from_rows(2, vec![vec![1.0, 2.0]]).unwrap();
        a.extend_from(&c).unwrap();
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn bounding_box() {
        let s = PointStore::from_rows(2, vec![vec![1.0, -5.0], vec![-2.0, 7.0], vec![0.0, 0.0]])
            .unwrap();
        let (min, max) = s.bounding_box().unwrap();
        assert_eq!(min, vec![-2.0, -5.0]);
        assert_eq!(max, vec![1.0, 7.0]);
        assert!(PointStore::new(2).unwrap().bounding_box().is_none());
    }
}
