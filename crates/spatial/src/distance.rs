//! Euclidean distance kernels.
//!
//! All comparisons in DBSCOUT are of the form `dist(p, q) ≤ ε`, so the
//! kernels work on *squared* distances and never take a square root in the
//! hot path.
//!
//! Two kernel families are provided, selected by [`KernelKind`]:
//!
//! * **scalar** — one point per loop iteration ([`sq_dist`] and the
//!   straight-line loops in `cell_major`);
//! * **unrolled** — portable lane-unrolled loops that compute a block of
//!   squared distances at once ([`sq_dists_2d_x8`], [`sq_dists_3d_x4`],
//!   [`accumulate_sq_dists_x4`]), written so the optimizer can keep each
//!   lane in a vector register. Per-lane arithmetic is the *same
//!   expression tree* as the scalar kernel (differences squared,
//!   accumulated in dimension order), so both kernels produce bit-equal
//!   squared distances and therefore identical ≤ ε² verdicts.
//!
//! Lane-unrolled code is confined to this file and `cell_major.rs` by the
//! `XL010` lint, so any future `std::arch` specialization has exactly two
//! places to live.

/// Which squared-distance kernel the cell-major hot loops run.
///
/// The choice never changes *results*: labels and [`KernelCounters`]
/// totals are kernel-invariant by construction (the unrolled kernels
/// drain their lane blocks in slot order when deciding counts and early
/// exits, so they tally exactly the comparisons the scalar loop makes).
///
/// [`KernelCounters`]: https://docs.rs/dbscout-core
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelKind {
    /// One point per iteration; the reference kernel.
    Scalar,
    /// Portable 8-lane (d = 2) / 4-lane (d ≥ 3) unrolled loops.
    Unrolled,
    /// Resolve to the best kernel for the build (currently `Unrolled`).
    #[default]
    Auto,
}

impl KernelKind {
    /// Resolves `Auto` to the concrete kernel the engine will run.
    #[inline]
    pub fn resolve(self) -> KernelKind {
        match self {
            KernelKind::Auto => KernelKind::Unrolled,
            k => k,
        }
    }

    /// The CLI / report spelling of this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            KernelKind::Scalar => "scalar",
            KernelKind::Unrolled => "unrolled",
            KernelKind::Auto => "auto",
        }
    }
}

impl std::str::FromStr for KernelKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "scalar" => Ok(KernelKind::Scalar),
            "unrolled" => Ok(KernelKind::Unrolled),
            "auto" => Ok(KernelKind::Auto),
            other => Err(format!(
                "unknown kernel {other:?} (expected scalar, unrolled, or auto)"
            )),
        }
    }
}

impl std::fmt::Display for KernelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Lane width of the unrolled d = 2 kernel.
pub const LANES_2D: usize = 8;
/// Lane width of the unrolled d = 3 and generic kernels.
pub const LANES_ND: usize = 4;

/// Eight squared distances from `(qx, qy)` to the column block
/// `(xs[i], ys[i])`, one per lane. Per-lane arithmetic matches the
/// scalar d = 2 kernel exactly (`dx·dx + dy·dy`).
#[inline]
pub fn sq_dists_2d_x8(
    qx: f64,
    qy: f64,
    xs: &[f64; LANES_2D],
    ys: &[f64; LANES_2D],
) -> [f64; LANES_2D] {
    let mut out = [0.0f64; LANES_2D];
    for ((o, &x), &y) in out.iter_mut().zip(xs).zip(ys) {
        let (dx, dy) = (x - qx, y - qy);
        *o = dx * dx + dy * dy;
    }
    out
}

/// Four squared distances from `(qx, qy, qz)` to the column block
/// `(xs[i], ys[i], zs[i])`, one per lane.
#[inline]
pub fn sq_dists_3d_x4(
    qx: f64,
    qy: f64,
    qz: f64,
    xs: &[f64; LANES_ND],
    ys: &[f64; LANES_ND],
    zs: &[f64; LANES_ND],
) -> [f64; LANES_ND] {
    let mut out = [0.0f64; LANES_ND];
    for (((o, &x), &y), &z) in out.iter_mut().zip(xs).zip(ys).zip(zs) {
        let (dx, dy, dz) = (x - qx, y - qy, z - qz);
        *o = dx * dx + dy * dy + dz * dz;
    }
    out
}

/// Accumulates one dimension's squared differences into four running
/// lane totals: `acc[i] += (col[i] - qk)²`. Calling this for `k = 0..d`
/// in order reproduces the scalar accumulation order per lane, keeping
/// the generic unrolled kernel bit-equal to the scalar one.
#[inline]
pub fn accumulate_sq_dists_x4(acc: &mut [f64; LANES_ND], qk: f64, col: &[f64; LANES_ND]) {
    for (a, &x) in acc.iter_mut().zip(col) {
        let d = x - qk;
        *a += d * d;
    }
}

/// Squared Euclidean distance between two equal-length slices.
///
/// Written as a `zip` fold so the compiler can fully unroll it for
/// d = 2 and 3 without emitting bounds checks.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Euclidean distance.
#[inline]
pub fn dist(a: &[f64], b: &[f64]) -> f64 {
    sq_dist(a, b).sqrt()
}

/// `true` iff `dist(a, b) ≤ ε`, given `eps_sq = ε²` (Definition 2 uses a
/// closed ball).
#[inline]
pub fn within(a: &[f64], b: &[f64], eps_sq: f64) -> bool {
    sq_dist(a, b) <= eps_sq
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sq_dist_basics() {
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(sq_dist(&[1.0], &[1.0]), 0.0);
        assert_eq!(sq_dist(&[-1.0, -1.0], &[1.0, 1.0]), 8.0);
    }

    #[test]
    fn dist_is_sqrt_of_sq_dist() {
        assert_eq!(dist(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    fn within_is_closed_ball() {
        // Boundary case: dist == eps must count as within (Definition 2).
        assert!(within(&[0.0], &[2.0], 4.0));
        assert!(!within(&[0.0], &[2.0 + 1e-9], 4.0));
        assert!(within(&[0.0], &[0.0], 0.0));
    }

    #[test]
    fn higher_dims() {
        let a = [1.0; 9];
        let b = [2.0; 9];
        assert_eq!(sq_dist(&a, &b), 9.0);
        assert_eq!(dist(&a, &b), 3.0);
    }

    #[test]
    fn kernel_kind_round_trips_and_resolves() {
        for (name, kind) in [
            ("scalar", KernelKind::Scalar),
            ("unrolled", KernelKind::Unrolled),
            ("auto", KernelKind::Auto),
        ] {
            assert_eq!(name.parse::<KernelKind>().unwrap(), kind);
            assert_eq!(kind.as_str(), name);
            assert_eq!(kind.to_string(), name);
        }
        assert!("avx512".parse::<KernelKind>().is_err());
        assert_eq!(KernelKind::Auto.resolve(), KernelKind::Unrolled);
        assert_eq!(KernelKind::Scalar.resolve(), KernelKind::Scalar);
        assert_eq!(KernelKind::Unrolled.resolve(), KernelKind::Unrolled);
        assert_eq!(KernelKind::default(), KernelKind::Auto);
    }

    #[test]
    fn unrolled_lanes_are_bit_equal_to_the_scalar_kernel() {
        let qx = 0.3125;
        let qy = -1.75;
        let qz = 2.015625;
        let xs: [f64; LANES_2D] = core::array::from_fn(|i| i as f64 * 0.37 - 1.1);
        let ys: [f64; LANES_2D] = core::array::from_fn(|i| 2.4 - i as f64 * 0.73);
        let d2 = sq_dists_2d_x8(qx, qy, &xs, &ys);
        for i in 0..LANES_2D {
            assert_eq!(d2[i], sq_dist(&[xs[i], ys[i]], &[qx, qy]), "lane {i}");
        }
        let x4: [f64; LANES_ND] = core::array::from_fn(|i| xs[i]);
        let y4: [f64; LANES_ND] = core::array::from_fn(|i| ys[i]);
        let z4: [f64; LANES_ND] = core::array::from_fn(|i| i as f64 * 0.19 + 0.05);
        let d3 = sq_dists_3d_x4(qx, qy, qz, &x4, &y4, &z4);
        let mut acc = [0.0f64; LANES_ND];
        accumulate_sq_dists_x4(&mut acc, qx, &x4);
        accumulate_sq_dists_x4(&mut acc, qy, &y4);
        accumulate_sq_dists_x4(&mut acc, qz, &z4);
        for i in 0..LANES_ND {
            let scalar = sq_dist(&[x4[i], y4[i], z4[i]], &[qx, qy, qz]);
            assert_eq!(d3[i], scalar, "3d lane {i}");
            assert_eq!(acc[i], scalar, "generic lane {i}");
        }
    }
}
