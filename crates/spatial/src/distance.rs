//! Euclidean distance kernels.
//!
//! All comparisons in DBSCOUT are of the form `dist(p, q) ≤ ε`, so the
//! kernels work on *squared* distances and never take a square root in the
//! hot path.

/// Squared Euclidean distance between two equal-length slices.
///
/// Written as a `zip` fold so the compiler can fully unroll it for
/// d = 2 and 3 without emitting bounds checks.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Euclidean distance.
#[inline]
pub fn dist(a: &[f64], b: &[f64]) -> f64 {
    sq_dist(a, b).sqrt()
}

/// `true` iff `dist(a, b) ≤ ε`, given `eps_sq = ε²` (Definition 2 uses a
/// closed ball).
#[inline]
pub fn within(a: &[f64], b: &[f64], eps_sq: f64) -> bool {
    sq_dist(a, b) <= eps_sq
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sq_dist_basics() {
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(sq_dist(&[1.0], &[1.0]), 0.0);
        assert_eq!(sq_dist(&[-1.0, -1.0], &[1.0, 1.0]), 8.0);
    }

    #[test]
    fn dist_is_sqrt_of_sq_dist() {
        assert_eq!(dist(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    fn within_is_closed_ball() {
        // Boundary case: dist == eps must count as within (Definition 2).
        assert!(within(&[0.0], &[2.0], 4.0));
        assert!(!within(&[0.0], &[2.0 + 1e-9], 4.0));
        assert!(within(&[0.0], &[0.0], 0.0));
    }

    #[test]
    fn higher_dims() {
        let a = [1.0; 9];
        let b = [2.0; 9];
        assert_eq!(sq_dist(&a, &b), 9.0);
        assert_eq!(dist(&a, &b), 3.0);
    }
}
