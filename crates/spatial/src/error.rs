//! Error type for spatial operations.

use std::fmt;

/// Errors from constructing or querying spatial structures.
#[derive(Debug, Clone, PartialEq)]
pub enum SpatialError {
    /// A point's dimensionality did not match the store's.
    DimensionMismatch {
        /// Dimensionality the structure was built with.
        expected: usize,
        /// Dimensionality of the offending input.
        got: usize,
    },
    /// Requested dimensionality exceeds [`crate::MAX_DIMS`].
    TooManyDims {
        /// The requested dimensionality.
        requested: usize,
    },
    /// Dimensionality must be at least 1.
    ZeroDims,
    /// ε must be a finite positive number.
    InvalidEpsilon {
        /// The offending value.
        value: f64,
    },
    /// `minPts` must be at least 1.
    InvalidMinPts,
    /// A coordinate was NaN or infinite.
    NonFiniteCoordinate {
        /// Index of the offending point.
        point: usize,
        /// Offending dimension.
        dim: usize,
    },
    /// A streaming source replayed different points on its second pass
    /// than it produced on the first (the two-pass cell-major builder
    /// requires byte-identical replay).
    StreamMismatch,
}

impl fmt::Display for SpatialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpatialError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            SpatialError::TooManyDims { requested } => {
                write!(
                    f,
                    "dimensionality {requested} exceeds maximum supported ({})",
                    crate::MAX_DIMS
                )
            }
            SpatialError::ZeroDims => write!(f, "dimensionality must be at least 1"),
            SpatialError::InvalidEpsilon { value } => {
                write!(f, "epsilon must be finite and positive, got {value}")
            }
            SpatialError::InvalidMinPts => write!(f, "minPts must be at least 1"),
            SpatialError::NonFiniteCoordinate { point, dim } => {
                write!(f, "point {point} has a non-finite coordinate in dim {dim}")
            }
            SpatialError::StreamMismatch => write!(
                f,
                "streaming source did not replay the same points on its second pass"
            ),
        }
    }
}

impl std::error::Error for SpatialError {}

// Compile-time proof of the XL004 contract: the error type is
// `Display + std::error::Error + Send + Sync`.
const fn _assert_error_bounds<T: std::error::Error + Send + Sync + 'static>() {}
const _: () = _assert_error_bounds::<SpatialError>();

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(SpatialError::DimensionMismatch {
            expected: 2,
            got: 3
        }
        .to_string()
        .contains("expected 2, got 3"));
        assert!(SpatialError::TooManyDims { requested: 99 }
            .to_string()
            .contains("99"));
        assert!(SpatialError::InvalidEpsilon { value: -1.0 }
            .to_string()
            .contains("-1"));
        assert!(SpatialError::ZeroDims.to_string().contains("at least 1"));
        assert!(SpatialError::InvalidMinPts.to_string().contains("minPts"));
        assert!(SpatialError::NonFiniteCoordinate { point: 7, dim: 1 }
            .to_string()
            .contains("point 7"));
    }
}
