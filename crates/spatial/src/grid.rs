//! The grid: a complete, non-overlapping partition of a dataset into
//! ε-cells (paper Definition 5, Algorithm 1).

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::BuildHasherDefault;

use crate::cell::{cell_of, cell_side, CellCoord};
use crate::error::SpatialError;
use crate::points::{PointId, PointStore};

type DetState = BuildHasherDefault<DefaultHasher>;

/// Per-cell point lists for one dataset and one ε.
///
/// The number of non-empty cells is O(n); each point belongs to exactly
/// one cell. Iteration order is deterministic for a given dataset (the
/// map uses a fixed-key hasher), which keeps parallel runs reproducible.
#[derive(Debug, Clone)]
pub struct Grid {
    eps: f64,
    side: f64,
    dims: usize,
    cells: HashMap<CellCoord, Vec<PointId>, DetState>,
}

impl Grid {
    /// Assigns every point of `store` to its ε-cell (paper Algorithm 1;
    /// O(n)).
    ///
    /// # Errors
    ///
    /// Fails if `eps` is not finite and positive.
    pub fn build(store: &PointStore, eps: f64) -> Result<Self, SpatialError> {
        if !eps.is_finite() || eps <= 0.0 {
            return Err(SpatialError::InvalidEpsilon { value: eps });
        }
        let dims = store.dims();
        let side = cell_side(eps, dims);
        let mut cells: HashMap<CellCoord, Vec<PointId>, DetState> = HashMap::default();
        for (id, p) in store.iter() {
            cells.entry(cell_of(p, side)).or_default().push(id);
        }
        Ok(Self {
            eps,
            side,
            dims,
            cells,
        })
    }

    /// [`build`](Self::build) parallelised over `threads` worker threads
    /// (chunked point ranges, per-thread partial maps, ordered merge).
    /// Produces a grid **identical** to the sequential build — per-cell
    /// id lists stay in ascending order — which a property test pins.
    ///
    /// # Errors
    ///
    /// Fails if `eps` is not finite and positive.
    pub fn build_parallel(
        store: &PointStore,
        eps: f64,
        threads: usize,
    ) -> Result<Self, SpatialError> {
        if !eps.is_finite() || eps <= 0.0 {
            return Err(SpatialError::InvalidEpsilon { value: eps });
        }
        let n = store.len() as usize;
        let threads = threads.max(1).min(n.max(1));
        if threads == 1 {
            return Self::build(store, eps);
        }
        let dims = store.dims();
        let side = cell_side(eps, dims);
        let chunk = n.div_ceil(threads);
        let partials: Vec<HashMap<CellCoord, Vec<PointId>, DetState>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|t| {
                        let lo = t * chunk;
                        let hi = ((t + 1) * chunk).min(n);
                        scope.spawn(move || {
                            let mut local: HashMap<CellCoord, Vec<PointId>, DetState> =
                                HashMap::default();
                            for id in lo..hi {
                                let p = store.point(id as PointId);
                                local
                                    .entry(cell_of(p, side))
                                    .or_default()
                                    .push(id as PointId);
                            }
                            local
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| match h.join() {
                        Ok(local) => local,
                        // Re-raise a worker panic on the caller thread
                        // instead of discarding partial results.
                        Err(payload) => std::panic::resume_unwind(payload),
                    })
                    .collect()
            });
        let mut cells: HashMap<CellCoord, Vec<PointId>, DetState> = HashMap::default();
        // Merge in chunk order so per-cell ids stay ascending.
        for partial in partials {
            for (cell, ids) in partial {
                cells.entry(cell).or_default().extend(ids);
            }
        }
        Ok(Self {
            eps,
            side,
            dims,
            cells,
        })
    }

    /// The ε this grid was built with.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Cell side length `l = ε/√d`.
    pub fn side(&self) -> f64 {
        self.side
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of non-empty cells.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Total number of points across all cells.
    pub fn num_points(&self) -> usize {
        // xlint: ordered -- summing lengths is order-insensitive
        self.cells.values().map(Vec::len).sum()
    }

    /// The cell a coordinate vector falls into.
    pub fn cell_for(&self, point: &[f64]) -> CellCoord {
        cell_of(point, self.side)
    }

    /// The point ids of one cell, if non-empty.
    pub fn points_in(&self, cell: &CellCoord) -> Option<&[PointId]> {
        self.cells.get(cell).map(Vec::as_slice)
    }

    /// Iterates over `(cell, point ids)` for every non-empty cell, in
    /// unspecified order. Callers whose output depends on order must
    /// canonicalize (the native engine sorts by coordinate; the
    /// cell-major builder sorts its scatter plan).
    pub fn cells(&self) -> impl Iterator<Item = (&CellCoord, &[PointId])> + '_ {
        // xlint: ordered -- documented order-free; order-sensitive callers sort
        self.cells.iter().map(|(c, v)| (c, v.as_slice()))
    }

    /// Population of the most populous cell (the skew measure the paper
    /// discusses for Geolife, §IV-B2).
    pub fn max_cell_population(&self) -> usize {
        // xlint: ordered -- max over lengths is order-insensitive
        self.cells.values().map(Vec::len).max().unwrap_or(0)
    }

    /// Fraction of points living in the most populous cell.
    pub fn skew(&self) -> f64 {
        let n = self.num_points();
        if n == 0 {
            0.0
        } else {
            self.max_cell_population() as f64 / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_2d(points: &[[f64; 2]]) -> PointStore {
        PointStore::from_rows(2, points.iter().map(|p| p.to_vec())).unwrap()
    }

    #[test]
    fn build_assigns_every_point_once() {
        let s = store_2d(&[[0.1, 0.1], [0.9, 0.9], [5.0, 5.0], [-3.0, 2.0]]);
        let g = Grid::build(&s, 2f64.sqrt()).unwrap();
        assert_eq!(g.num_points(), 4);
        let mut seen = std::collections::HashSet::new();
        for (_, ids) in g.cells() {
            for &id in ids {
                assert!(seen.insert(id), "point {id} in two cells");
            }
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn paper_example_grid() {
        // §III-B: ε = √2 in 2-D gives unit cells; points sharing a unit
        // square share a cell.
        let s = store_2d(&[[0.2, 0.2], [0.8, 0.8], [1.1, -0.3], [1.9, -0.9]]);
        let g = Grid::build(&s, 2f64.sqrt()).unwrap();
        assert_eq!(g.num_cells(), 2);
        let c00 = g.cell_for(&[0.5, 0.5]);
        let c1m1 = g.cell_for(&[1.5, -0.5]);
        assert_eq!(g.points_in(&c00).unwrap().len(), 2);
        assert_eq!(g.points_in(&c1m1).unwrap().len(), 2);
    }

    #[test]
    fn invalid_eps_rejected() {
        let s = store_2d(&[[0.0, 0.0]]);
        for eps in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                Grid::build(&s, eps),
                Err(SpatialError::InvalidEpsilon { .. })
            ));
        }
    }

    #[test]
    fn empty_store_builds_empty_grid() {
        let s = PointStore::new(2).unwrap();
        let g = Grid::build(&s, 1.0).unwrap();
        assert_eq!(g.num_cells(), 0);
        assert_eq!(g.num_points(), 0);
        assert_eq!(g.max_cell_population(), 0);
        assert_eq!(g.skew(), 0.0);
    }

    #[test]
    fn points_within_one_cell_are_within_eps() {
        // Lemma 1's geometric premise: same cell ⇒ dist ≤ ε.
        let eps = 0.7;
        let s = store_2d(&[[0.0, 0.0], [0.1, 0.2], [0.3, 0.1], [0.45, 0.45]]);
        let g = Grid::build(&s, eps).unwrap();
        for (_, ids) in g.cells() {
            for &a in ids {
                for &b in ids {
                    let d = crate::distance::dist(s.point(a), s.point(b));
                    assert!(d <= eps, "same-cell points at distance {d} > {eps}");
                }
            }
        }
    }

    #[test]
    fn skew_measures_heaviest_cell() {
        let mut pts = vec![[0.1, 0.1]; 8];
        pts.push([100.0, 100.0]);
        pts.push([-100.0, -100.0]);
        let s = store_2d(&pts);
        let g = Grid::build(&s, 1.0).unwrap();
        assert_eq!(g.max_cell_population(), 8);
        assert!((g.skew() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn parallel_build_equals_sequential() {
        let s = store_2d(
            &(0..200)
                .map(|i| [((i * 37) % 50) as f64 * 0.3, ((i * 53) % 40) as f64 * 0.3])
                .collect::<Vec<_>>(),
        );
        let seq = Grid::build(&s, 1.5).unwrap();
        for threads in [1, 2, 3, 8, 300] {
            let par = Grid::build_parallel(&s, 1.5, threads).unwrap();
            assert_eq!(par.num_cells(), seq.num_cells(), "threads {threads}");
            for (cell, ids) in seq.cells() {
                assert_eq!(
                    par.points_in(cell),
                    Some(ids),
                    "cell {cell:?} differs at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn parallel_build_empty_and_invalid() {
        let empty = PointStore::new(2).unwrap();
        assert_eq!(Grid::build_parallel(&empty, 1.0, 4).unwrap().num_cells(), 0);
        let s = store_2d(&[[0.0, 0.0]]);
        assert!(Grid::build_parallel(&s, -1.0, 4).is_err());
    }

    #[test]
    fn grid_3d() {
        let s =
            PointStore::from_rows(3, vec![vec![0.0, 0.0, 0.0], vec![10.0, 10.0, 10.0]]).unwrap();
        let g = Grid::build(&s, 1.0).unwrap();
        assert_eq!(g.num_cells(), 2);
        assert_eq!(g.dims(), 3);
    }
}
