//! Mutable slack-slot companion of the cell-major store.
//!
//! [`crate::CellMajorStore`] is built once, tightly packed, and never
//! changes — ideal for batch detection, useless for a long-running
//! service that inserts and removes points. [`MutableCellMajor`] keeps
//! the *same physical contract* (column-major coordinates with a fixed
//! stride, a cell → slot-range index, per-cell bounding boxes) while
//! allowing point churn, so the audited counted kernels
//! ([`CellMajorStore::count_within_kernel`],
//! [`CellMajorStore::any_flagged_within_kernel`],
//! [`CellMajorStore::collect_within_kernel`]) run unchanged over the
//! live slot ranges. The mutability scheme:
//!
//! * **slack slots** — every cell's run is allocated with spare capacity
//!   (`cap ≥ len`); an insert into a cell with slack writes one slot and
//!   bumps the run's `end`, O(d);
//! * **swap-remove** — a removal moves the run's last live slot into the
//!   hole and shrinks the run; the freed slot stays inside the cell's
//!   capacity and is reused by the next insert into that cell;
//! * **amortized run relocation** — when a cell overflows its capacity,
//!   its run is copied to the buffer tail with doubled capacity
//!   (geometric growth ⇒ amortized O(1) slots moved per insert); the old
//!   run's slots become *tombstones*;
//! * **compaction** — when tombstones outnumber `max(64, live)`, the
//!   whole layout is rebuilt tightly (canonical cell order, fresh slack,
//!   tight bounding boxes), reclaiming every dead slot.
//!
//! Invariants the property tests pin:
//!
//! 1. **bbox containment** — every live point of a cell lies inside the
//!    cell's stored box. Inserts *widen* the box and removals leave it
//!    untouched, so the box may be looser than the tight batch box —
//!    pruning stays sound (a lower bound stays a lower bound), it only
//!    prunes less until the next relocation/compaction re-tightens it.
//! 2. **run disjointness** — live runs (and their capacity extents)
//!    never overlap, so a kernel scan over one cell's range touches no
//!    other cell's points.
//! 3. **id ↔ slot bijection** — `slot_of` maps every live id to the slot
//!    holding its coordinates and `orig_ids` inverts it; tombstoned
//!    slots hold [`TOMBSTONE`].

use std::ops::Range;

use crate::cell::{cell_of, cell_side, CellCoord, MAX_DIMS};
use crate::cell_major::{CellMajorStore, CellRecord};
use crate::error::SpatialError;
use crate::points::{PointId, PointStore};

/// The `orig_ids` marker for a slot holding no live point.
pub const TOMBSTONE: PointId = PointId::MAX;

/// Per-cell slack granted on (re)layout: a quarter of the occupancy
/// plus a small constant, so small cells can absorb a few inserts and
/// large cells do not double the footprint.
fn slack_for(len: usize) -> usize {
    len / 4 + 2
}

/// A [`CellMajorStore`] that supports exact insert/remove churn.
///
/// The wrapped store's `n` is the *slot capacity* (column stride), not
/// the live point count — use [`MutableCellMajor::live`] for the latter
/// and trust only slots inside a [`CellRecord`] run.
#[derive(Debug, Clone)]
pub struct MutableCellMajor {
    store: CellMajorStore,
    /// Per-cell allocated run end: cell `i` owns slots
    /// `cells[i].start .. caps[i]`, of which `cells[i].start ..
    /// cells[i].end` are live.
    caps: Vec<u32>,
    /// Point id → slot, [`TOMBSTONE`] when the id is not live. Indexed
    /// by every id ever passed to [`Self::insert`].
    slot_of: Vec<u32>,
    live: usize,
    /// First never-allocated slot (`≤ store.n`); new and relocated runs
    /// are carved from here.
    tail: usize,
    /// Slots abandoned by run relocations, reclaimed on compaction.
    dead_slots: usize,
    rebuilds: u64,
    compactions: u64,
}

impl MutableCellMajor {
    /// An empty mutable layout for `dims`-dimensional points at radius
    /// `eps`.
    ///
    /// # Errors
    ///
    /// Fails if `eps` is not finite and positive, `dims` is zero, or
    /// `dims` exceeds [`MAX_DIMS`].
    pub fn new(dims: usize, eps: f64) -> Result<Self, SpatialError> {
        if !eps.is_finite() || eps <= 0.0 {
            return Err(SpatialError::InvalidEpsilon { value: eps });
        }
        if dims == 0 {
            return Err(SpatialError::ZeroDims);
        }
        if dims > MAX_DIMS {
            return Err(SpatialError::TooManyDims { requested: dims });
        }
        Ok(Self {
            store: CellMajorStore {
                dims,
                eps,
                side: cell_side(eps, dims),
                n: 0,
                cols: Vec::new(),
                orig_ids: Vec::new(),
                cells: Vec::new(),
                index: Default::default(),
                bbox_min: Vec::new(),
                bbox_max: Vec::new(),
            },
            caps: Vec::new(),
            slot_of: Vec::new(),
            live: 0,
            tail: 0,
            dead_slots: 0,
            rebuilds: 0,
            compactions: 0,
        })
    }

    /// Bulk-loads `points` (id `i` = row `i`) into a fresh slacked
    /// layout — the warm-start path of the serving daemon. Equivalent to
    /// inserting every point in id order, but laid out in one pass.
    ///
    /// # Errors
    ///
    /// Fails on invalid `eps` or dimensionality (coordinates were
    /// already validated by the [`PointStore`]).
    pub fn from_store(points: &PointStore, eps: f64) -> Result<Self, SpatialError> {
        let mut m = Self::new(points.dims(), eps)?;
        let pts: Vec<(PointId, [f64; MAX_DIMS])> = points
            .iter()
            .map(|(id, p)| {
                let mut buf = [0.0; MAX_DIMS];
                for (o, &x) in buf.iter_mut().zip(p) {
                    *o = x;
                }
                (id, buf)
            })
            .collect();
        m.relayout(&pts);
        Ok(m)
    }

    /// The read-only view the kernels consume. The wrapped store's
    /// `len()` is the slot capacity; only slots inside a cell record's
    /// live range hold points.
    pub fn store(&self) -> &CellMajorStore {
        &self.store
    }

    /// Number of live points.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Whether the layout holds no live points.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Dimensionality of the stored points.
    pub fn dims(&self) -> usize {
        self.store.dims
    }

    /// The ε this layout was built with.
    pub fn eps(&self) -> f64 {
        self.store.eps
    }

    /// Allocated slot capacity (the column stride).
    pub fn capacity(&self) -> usize {
        self.store.n
    }

    /// Slots abandoned by run relocations and not yet compacted away.
    pub fn dead_slots(&self) -> usize {
        self.dead_slots
    }

    /// Cell-run relocations performed so far (overflow grows).
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Whole-layout compactions performed so far.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// The slot currently holding live point `id`, if any.
    pub fn slot_of(&self, id: PointId) -> Option<usize> {
        match self.slot_of.get(id as usize).copied() {
            Some(TOMBSTONE) | None => None,
            Some(slot) => Some(slot as usize),
        }
    }

    /// Whether `id` is live in this layout.
    pub fn contains(&self, id: PointId) -> bool {
        self.slot_of(id).is_some()
    }

    /// Copies the coordinates of live point `id` into `out` (first
    /// `dims` entries); `false` when `id` is not live.
    pub fn point_of(&self, id: PointId, out: &mut [f64; MAX_DIMS]) -> bool {
        match self.slot_of(id) {
            Some(slot) => {
                self.store.point_into(slot, out);
                true
            }
            None => false,
        }
    }

    /// Inserts point `id`; returns `false` (and changes nothing) when
    /// the id is already live. Ids may arrive in any order but are never
    /// recycled by the callers (the incremental engine issues fresh ids
    /// monotonically).
    ///
    /// # Errors
    ///
    /// Fails on dimension mismatch or non-finite coordinates.
    pub fn insert(&mut self, id: PointId, point: &[f64]) -> Result<bool, SpatialError> {
        if point.len() != self.store.dims {
            return Err(SpatialError::DimensionMismatch {
                expected: self.store.dims,
                got: point.len(),
            });
        }
        for (dim, &x) in point.iter().enumerate() {
            if !x.is_finite() {
                return Err(SpatialError::NonFiniteCoordinate {
                    point: id as usize,
                    dim,
                });
            }
        }
        if self.contains(id) {
            return Ok(false);
        }
        let coord = cell_of(point, self.store.side);
        match self.store.index.get(&coord).copied() {
            Some(ci) => self.insert_into_cell(ci as usize, id, point),
            None => self.insert_new_cell(coord, id, point),
        }
        self.live += 1;
        if self.dead_slots > 64.max(self.live) {
            self.compact();
        }
        Ok(true)
    }

    /// Removes live point `id` by swap-remove within its cell run;
    /// returns `false` when the id is not live. The freed slot stays
    /// inside the cell's capacity and is reused by the next insert into
    /// the same cell; the cell's bounding box is left untouched (still
    /// containing, merely looser).
    pub fn remove(&mut self, id: PointId) -> bool {
        let Some(slot) = self.slot_of(id) else {
            return false;
        };
        let mut buf = [0.0; MAX_DIMS];
        self.store.point_into(slot, &mut buf);
        let coord = cell_of(buf.get(..self.store.dims).unwrap_or(&[]), self.store.side);
        let Some(&ci) = self.store.index.get(&coord) else {
            return false; // unreachable for a live id; stay panic-free
        };
        let Some(rec) = self.store.cells.get(ci as usize) else {
            return false;
        };
        let last = rec.end as usize - 1;
        if slot != last {
            let n = self.store.n;
            for k in 0..self.store.dims {
                let v = self.store.cols.get(k * n + last).copied().unwrap_or(0.0);
                if let Some(dst) = self.store.cols.get_mut(k * n + slot) {
                    *dst = v;
                }
            }
            let moved = self.store.orig_ids.get(last).copied().unwrap_or(TOMBSTONE);
            if let Some(dst) = self.store.orig_ids.get_mut(slot) {
                *dst = moved;
            }
            if let Some(s) = self.slot_of.get_mut(moved as usize) {
                *s = slot as u32;
            }
        }
        if let Some(dst) = self.store.orig_ids.get_mut(last) {
            *dst = TOMBSTONE;
        }
        if let Some(rec) = self.store.cells.get_mut(ci as usize) {
            rec.end -= 1;
        }
        if let Some(s) = self.slot_of.get_mut(id as usize) {
            *s = TOMBSTONE;
        }
        self.live -= 1;
        true
    }

    /// Live slot ranges, one per non-empty cell, paired with the cell
    /// index (for bbox lookups). Emptied cells keep their record (their
    /// capacity is reusable) but are skipped here.
    pub fn live_ranges(&self) -> impl Iterator<Item = (usize, Range<usize>)> + '_ {
        self.store
            .cells
            .iter()
            .enumerate()
            .filter(|(_, rec)| !rec.is_empty())
            .map(|(ci, rec)| (ci, rec.range()))
    }

    /// Number of non-empty cells.
    pub fn num_live_cells(&self) -> usize {
        self.store.cells.iter().filter(|r| !r.is_empty()).count()
    }

    // ---- internals ------------------------------------------------------

    /// Writes `point`/`id` into `slot` (no bookkeeping besides the
    /// columns, the id maps, and nothing else).
    fn write_slot(&mut self, slot: usize, id: PointId, point: &[f64]) {
        let n = self.store.n;
        for (k, &x) in point.iter().enumerate() {
            if let Some(dst) = self.store.cols.get_mut(k * n + slot) {
                *dst = x;
            }
        }
        if let Some(dst) = self.store.orig_ids.get_mut(slot) {
            *dst = id;
        }
        if self.slot_of.len() <= id as usize {
            self.slot_of.resize(id as usize + 1, TOMBSTONE);
        }
        if let Some(s) = self.slot_of.get_mut(id as usize) {
            *s = slot as u32;
        }
    }

    /// Widens cell `ci`'s bounding box to contain `point`; when `reset`,
    /// the box is set to the point exactly (first point of an emptied or
    /// fresh run — the stale box of an emptied cell must not leak).
    fn grow_bbox(&mut self, ci: usize, point: &[f64], reset: bool) {
        let base = ci * self.store.dims;
        for (k, &x) in point.iter().enumerate() {
            if let Some(mn) = self.store.bbox_min.get_mut(base + k) {
                *mn = if reset { x } else { mn.min(x) };
            }
            if let Some(mx) = self.store.bbox_max.get_mut(base + k) {
                *mx = if reset { x } else { mx.max(x) };
            }
        }
    }

    /// Insert into an existing cell: use slack when available, otherwise
    /// relocate the run to the tail with doubled capacity.
    fn insert_into_cell(&mut self, ci: usize, id: PointId, point: &[f64]) {
        let (start, end) = match self.store.cells.get(ci) {
            Some(rec) => (rec.start as usize, rec.end as usize),
            None => return,
        };
        let cap = self.caps.get(ci).copied().unwrap_or(end as u32) as usize;
        if end < cap {
            self.write_slot(end, id, point);
            self.grow_bbox(ci, point, start == end);
            if let Some(rec) = self.store.cells.get_mut(ci) {
                rec.end += 1;
            }
            return;
        }
        // Overflow: relocate the run to the tail, geometrically grown.
        let len = end - start;
        let new_cap = len * 2 + 2;
        self.reserve_tail(new_cap);
        let (new_start, n) = (self.tail, self.store.n);
        for k in 0..self.store.dims {
            let src = k * n + start;
            let dst = k * n + new_start;
            // Runs never overlap: the tail lies beyond every allocated run.
            self.store.cols.copy_within(src..src + len, dst);
        }
        for i in 0..len {
            let moved = self
                .store
                .orig_ids
                .get(start + i)
                .copied()
                .unwrap_or(TOMBSTONE);
            if let Some(dst) = self.store.orig_ids.get_mut(new_start + i) {
                *dst = moved;
            }
            if let Some(s) = self.slot_of.get_mut(moved as usize) {
                *s = (new_start + i) as u32;
            }
        }
        for slot in start..cap {
            if let Some(dst) = self.store.orig_ids.get_mut(slot) {
                *dst = TOMBSTONE;
            }
        }
        self.dead_slots += cap - start;
        if let Some(rec) = self.store.cells.get_mut(ci) {
            rec.start = new_start as u32;
            rec.end = (new_start + len) as u32;
        }
        if let Some(c) = self.caps.get_mut(ci) {
            *c = (new_start + new_cap) as u32;
        }
        self.tail = new_start + new_cap;
        self.rebuilds += 1;
        self.write_slot(new_start + len, id, point);
        if let Some(rec) = self.store.cells.get_mut(ci) {
            rec.end += 1;
        }
        self.retighten_bbox(ci);
    }

    /// Insert into a coordinate with no cell yet: carve a small fresh
    /// run from the tail.
    fn insert_new_cell(&mut self, coord: CellCoord, id: PointId, point: &[f64]) {
        let new_cap = slack_for(1).max(2);
        self.reserve_tail(new_cap);
        let start = self.tail;
        let ci = self.store.cells.len();
        self.store.cells.push(CellRecord {
            coord,
            start: start as u32,
            end: start as u32 + 1,
        });
        self.caps.push((start + new_cap) as u32);
        self.store.index.insert(coord, ci as u32);
        self.store.bbox_min.extend_from_slice(point);
        self.store.bbox_max.extend_from_slice(point);
        self.tail = start + new_cap;
        self.write_slot(start, id, point);
    }

    /// Recomputes the tight bounding box of cell `ci` from its live run
    /// (used after relocation, when the run is being rewritten anyway).
    fn retighten_bbox(&mut self, ci: usize) {
        let Some(rec) = self.store.cells.get(ci).copied() else {
            return;
        };
        let mut buf = [0.0; MAX_DIMS];
        let mut first = true;
        for slot in rec.range() {
            self.store.point_into(slot, &mut buf);
            let point = buf;
            self.grow_bbox(ci, point.get(..self.store.dims).unwrap_or(&[]), first);
            first = false;
        }
    }

    /// Ensures at least `extra` slots exist past the tail, growing the
    /// column stride geometrically (a re-stride copies every column —
    /// O(capacity), amortized by the geometric growth).
    fn reserve_tail(&mut self, extra: usize) {
        let need = self.tail + extra;
        if need <= self.store.n {
            return;
        }
        let old_n = self.store.n;
        let new_n = need.max(old_n + old_n / 2).max(64);
        let mut cols = vec![0.0; self.store.dims * new_n];
        for k in 0..self.store.dims {
            let src = k * old_n;
            let dst = k * new_n;
            if let (Some(s), Some(d)) = (
                self.store.cols.get(src..src + old_n),
                cols.get_mut(dst..dst + old_n),
            ) {
                d.copy_from_slice(s);
            }
        }
        self.store.cols = cols;
        self.store.orig_ids.resize(new_n, TOMBSTONE);
        self.store.n = new_n;
    }

    /// Rebuilds the whole layout tightly from scratch: canonical cell
    /// order (ascending coordinate), fresh slack, tight bounding boxes,
    /// zero tombstones.
    fn compact(&mut self) {
        let mut pts: Vec<(PointId, [f64; MAX_DIMS])> = Vec::with_capacity(self.live);
        let mut buf = [0.0; MAX_DIMS];
        for id in 0..self.slot_of.len() as PointId {
            if self.point_of(id, &mut buf) {
                pts.push((id, buf));
            }
        }
        self.relayout(&pts);
        self.compactions += 1;
    }

    /// Lays out `pts` (ascending id) from scratch into this layout.
    fn relayout(&mut self, pts: &[(PointId, [f64; MAX_DIMS])]) {
        let dims = self.store.dims;
        let side = self.store.side;
        // Tally per-cell occupancy, then fix the canonical cell order.
        let mut counts: std::collections::HashMap<CellCoord, u32> =
            std::collections::HashMap::new();
        for (_, p) in pts {
            *counts
                .entry(cell_of(p.get(..dims).unwrap_or(&[]), side))
                .or_insert(0) += 1;
        }
        let mut keyed: Vec<(CellCoord, u32)> = Vec::with_capacity(counts.len());
        // xlint: ordered -- entries are sorted by coordinate just below
        keyed.extend(counts.iter().map(|(&c, &k)| (c, k)));
        keyed.sort_unstable_by_key(|&(c, _)| c);

        let mut cells = Vec::with_capacity(keyed.len());
        let mut caps = Vec::with_capacity(keyed.len());
        let mut index =
            std::collections::HashMap::with_capacity_and_hasher(keyed.len(), Default::default());
        let mut cursor = 0usize;
        for (ci, &(coord, k)) in keyed.iter().enumerate() {
            let len = k as usize;
            cells.push(CellRecord {
                coord,
                start: cursor as u32,
                end: cursor as u32, // filled below
            });
            index.insert(coord, ci as u32);
            cursor += len + slack_for(len);
            caps.push(cursor as u32);
        }
        let n = cursor + 16.max(cursor / 8);
        let mut cols = vec![0.0; dims * n];
        let mut orig_ids = vec![TOMBSTONE; n];
        let mut bbox_min = vec![f64::INFINITY; dims * keyed.len()];
        let mut bbox_max = vec![f64::NEG_INFINITY; dims * keyed.len()];
        let max_id = pts.last().map(|&(id, _)| id as usize + 1).unwrap_or(0);
        let mut slot_of = vec![TOMBSTONE; max_id.max(self.slot_of.len())];
        for (id, p) in pts {
            let coord = cell_of(p.get(..dims).unwrap_or(&[]), side);
            let Some(&ci) = index.get(&coord) else {
                continue;
            };
            let ci = ci as usize;
            let slot = match cells.get_mut(ci) {
                Some(rec) => {
                    let s = rec.end as usize;
                    rec.end += 1;
                    s
                }
                None => continue,
            };
            for (k, &x) in p.iter().take(dims).enumerate() {
                if let Some(dst) = cols.get_mut(k * n + slot) {
                    *dst = x;
                }
                let base = ci * dims + k;
                if let Some(mn) = bbox_min.get_mut(base) {
                    *mn = mn.min(x);
                }
                if let Some(mx) = bbox_max.get_mut(base) {
                    *mx = mx.max(x);
                }
            }
            if let Some(dst) = orig_ids.get_mut(slot) {
                *dst = *id;
            }
            if let Some(s) = slot_of.get_mut(*id as usize) {
                *s = slot as u32;
            }
        }
        self.store.n = n;
        self.store.cols = cols;
        self.store.orig_ids = orig_ids;
        self.store.cells = cells;
        self.store.index = index;
        self.store.bbox_min = bbox_min;
        self.store.bbox_max = bbox_max;
        self.caps = caps;
        self.slot_of = slot_of;
        self.live = pts.len();
        self.tail = cursor;
        self.dead_slots = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::{sq_dist, KernelKind};
    use crate::neighbors::NeighborOffsets;

    fn store_2d(points: &[[f64; 2]]) -> PointStore {
        PointStore::from_rows(2, points.iter().map(|p| p.to_vec())).unwrap()
    }

    /// Every live id maps to a slot holding its coordinates, runs are
    /// disjoint, and every live point sits inside its cell's bbox.
    fn check_invariants(m: &MutableCellMajor, reference: &[(PointId, Vec<f64>)]) {
        let live: Vec<_> = reference.iter().collect();
        assert_eq!(m.live(), live.len());
        let s = m.store();
        let mut buf = [0.0; MAX_DIMS];
        for (id, p) in &live {
            let slot = m.slot_of(*id).expect("live id has a slot");
            s.point_into(slot, &mut buf);
            assert_eq!(&buf[..s.dims()], p.as_slice(), "id {id} coords");
            assert_eq!(s.orig_ids()[slot], *id);
            // The slot lies in exactly one live run, and that run's cell
            // bbox contains the point.
            let (ci, _) = m
                .live_ranges()
                .find(|(_, r)| r.contains(&slot))
                .expect("slot inside a live run");
            assert_eq!(s.min_sq_dist_to_bbox(p, ci), 0.0, "bbox lost id {id}");
        }
        // Runs and their capacity extents are disjoint.
        let mut extents: Vec<(usize, usize)> = s
            .cells()
            .iter()
            .enumerate()
            .map(|(ci, rec)| (rec.start as usize, m.caps[ci] as usize))
            .collect();
        extents.sort_unstable();
        for w in extents.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlapping runs {:?}", w);
        }
        // Tombstone bookkeeping: slots outside every capacity extent or
        // past a run's end are never live ids.
        let live_slots: std::collections::HashSet<usize> =
            live.iter().map(|(id, _)| m.slot_of(*id).unwrap()).collect();
        for slot in 0..m.capacity() {
            let in_run = s
                .cells()
                .iter()
                .any(|rec| (rec.start as usize..rec.end as usize).contains(&slot));
            if in_run {
                assert!(live_slots.contains(&slot), "run slot {slot} not live");
            } else {
                assert_eq!(s.orig_ids()[slot], TOMBSTONE, "slot {slot}");
            }
        }
    }

    /// Kernel query over the mutable layout = brute force over the
    /// reference set.
    fn check_queries(m: &MutableCellMajor, reference: &[(PointId, Vec<f64>)], eps: f64) {
        let s = m.store();
        let offsets = NeighborOffsets::new(s.dims()).unwrap();
        let eps_sq = eps * eps;
        let queries: Vec<Vec<f64>> = reference.iter().take(8).map(|(_, p)| p.clone()).collect();
        for q in &queries {
            let coord = cell_of(q, s.side());
            let mut got: Vec<PointId> = Vec::new();
            for off in offsets.iter() {
                let ncoord = NeighborOffsets::apply(&coord, off);
                let Some(ci) = s.cell_index(&ncoord) else {
                    continue;
                };
                if s.min_sq_dist_to_bbox(q, ci as usize) > eps_sq {
                    continue;
                }
                let rec = s.cells()[ci as usize];
                for kernel in [KernelKind::Scalar, KernelKind::Unrolled] {
                    let mut slots = Vec::new();
                    s.collect_within_kernel(q, rec.range(), eps_sq, kernel, &mut slots);
                    let ids: Vec<PointId> =
                        slots.iter().map(|&sl| s.orig_ids()[sl as usize]).collect();
                    if kernel == KernelKind::Scalar {
                        got.extend(ids);
                    } else {
                        let mut scalar = Vec::new();
                        s.collect_within_kernel(
                            q,
                            rec.range(),
                            eps_sq,
                            KernelKind::Scalar,
                            &mut scalar,
                        );
                        assert_eq!(slots, scalar, "kernels disagree");
                    }
                }
            }
            got.sort_unstable();
            let mut want: Vec<PointId> = reference
                .iter()
                .filter(|(_, p)| sq_dist(p, q) <= eps_sq)
                .map(|(id, _)| *id)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "neighbors of {q:?}");
        }
    }

    #[test]
    fn bulk_load_matches_batch_layout_contents() {
        let pts: Vec<[f64; 2]> = (0..60)
            .map(|i| [((i * 7) % 13) as f64 * 0.3, ((i * 11) % 9) as f64 * 0.3])
            .collect();
        let s = store_2d(&pts);
        let eps = 1.0;
        let m = MutableCellMajor::from_store(&s, eps).unwrap();
        let reference: Vec<(PointId, Vec<f64>)> =
            s.iter().map(|(id, p)| (id, p.to_vec())).collect();
        check_invariants(&m, &reference);
        check_queries(&m, &reference, eps);
        // Same cell decomposition as the immutable batch build.
        let batch = CellMajorStore::build(&s, eps).unwrap();
        assert_eq!(m.num_live_cells(), batch.num_cells());
        for rec in batch.cells() {
            let ci = m.store().cell_index(&rec.coord).expect("cell present");
            assert_eq!(
                m.store().cells()[ci as usize].len(),
                rec.len(),
                "occupancy of {:?}",
                rec.coord
            );
        }
    }

    #[test]
    fn churn_preserves_invariants_and_queries() {
        let eps = 0.8;
        let mut m = MutableCellMajor::new(2, eps).unwrap();
        let mut reference: Vec<(PointId, Vec<f64>)> = Vec::new();
        let mut next_id = 0u32;
        // Deterministic pseudo-random churn without an RNG dependency.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for step in 0..400 {
            let r = rand();
            if reference.is_empty() || r % 100 < 70 {
                let p = vec![
                    ((r >> 8) % 1000) as f64 * 0.01,
                    ((r >> 24) % 1000) as f64 * 0.01,
                ];
                assert!(m.insert(next_id, &p).unwrap());
                reference.push((next_id, p));
                next_id += 1;
            } else {
                let victim = (r >> 16) as usize % reference.len();
                let (id, _) = reference.swap_remove(victim);
                assert!(m.remove(id));
                assert!(!m.remove(id), "double remove");
            }
            if step % 57 == 0 {
                reference.sort_unstable_by_key(|&(id, _)| id);
                check_invariants(&m, &reference);
                check_queries(&m, &reference, eps);
            }
        }
        reference.sort_unstable_by_key(|&(id, _)| id);
        check_invariants(&m, &reference);
        check_queries(&m, &reference, eps);
        assert!(m.rebuilds() > 0, "churn must exercise run relocation");
    }

    #[test]
    fn overflow_relocates_run_and_compaction_reclaims() {
        let mut m = MutableCellMajor::new(2, 1.0).unwrap();
        // Hammer one cell so its run overflows repeatedly.
        for i in 0..200u32 {
            m.insert(i, &[0.1 + (i as f64) * 1e-6, 0.1]).unwrap();
        }
        assert!(m.rebuilds() > 2, "one hot cell must relocate repeatedly");
        assert!(m.dead_slots() > 0 || m.compactions() > 0);
        let dead_before = m.dead_slots();
        // Spread inserts over fresh cells until compaction triggers (it
        // fires when tombstones exceed max(64, live); removals shrink
        // live, so remove most points first).
        for i in 0..190u32 {
            assert!(m.remove(i));
        }
        for i in 200..280u32 {
            m.insert(i, &[(i as f64) * 3.0, 0.0]).unwrap();
            m.remove(i);
        }
        // Force the hot cell to overflow again and push tombstones past
        // the threshold.
        for i in 300..400u32 {
            m.insert(i, &[0.1, 0.1 + (i as f64) * 1e-6]).unwrap();
        }
        let _ = dead_before;
        if m.compactions() == 0 {
            // Depending on thresholds compaction may not have fired yet;
            // force the condition by churning the hot cell further.
            for i in 400..800u32 {
                m.insert(i, &[0.1, 0.2]).unwrap();
            }
        }
        assert!(m.compactions() > 0, "tombstones must eventually compact");
        // After compaction the layout is tight again.
        let reference: Vec<(PointId, Vec<f64>)> = (0..m.slot_of.len() as u32)
            .filter_map(|id| {
                let mut buf = [0.0; MAX_DIMS];
                m.point_of(id, &mut buf).then(|| (id, buf[..2].to_vec()))
            })
            .collect();
        check_invariants(&m, &reference);
    }

    #[test]
    fn emptied_cell_is_reusable_and_bbox_resets() {
        let mut m = MutableCellMajor::new(2, 1.0).unwrap();
        m.insert(0, &[0.3, 0.3]).unwrap();
        m.insert(1, &[0.05, 0.05]).unwrap();
        m.remove(0);
        m.remove(1);
        assert_eq!(m.live(), 0);
        // Re-insert far inside the same cell: the stale wide bbox must
        // reset to the new point, or pruning would stay needlessly loose.
        m.insert(2, &[0.2, 0.2]).unwrap();
        let s = m.store();
        let ci = s.cell_index(&cell_of(&[0.2, 0.2], s.side())).unwrap() as usize;
        assert_eq!(s.min_sq_dist_to_bbox(&[0.2, 0.2], ci), 0.0);
        // A probe at the cell corner sees a positive lower bound again
        // (tight box around the single point, not the stale wide one).
        let d = s.min_sq_dist_to_bbox(&[0.05, 0.05], ci);
        assert!(d > 0.0, "bbox did not reset: {d}");
    }

    #[test]
    fn insert_validates_and_rejects_duplicates() {
        let mut m = MutableCellMajor::new(2, 1.0).unwrap();
        assert!(matches!(
            m.insert(0, &[1.0]),
            Err(SpatialError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            m.insert(0, &[f64::NAN, 0.0]),
            Err(SpatialError::NonFiniteCoordinate { .. })
        ));
        assert!(m.insert(0, &[0.0, 0.0]).unwrap());
        assert!(
            !m.insert(0, &[5.0, 5.0]).unwrap(),
            "duplicate id is a no-op"
        );
        let mut buf = [0.0; MAX_DIMS];
        assert!(m.point_of(0, &mut buf));
        assert_eq!(&buf[..2], &[0.0, 0.0]);
    }

    #[test]
    fn empty_layout_answers_queries() {
        let m = MutableCellMajor::new(3, 0.5).unwrap();
        assert!(m.is_empty());
        assert_eq!(m.num_live_cells(), 0);
        assert_eq!(m.slot_of(7), None);
        assert!(!m.contains(7));
    }
}
