//! An exact KD-tree for k-nearest-neighbor and radius queries.
//!
//! Used by the LOF / DDLOF baselines (which need exact k-NN) and by the
//! k-dist-graph ε-selection procedure (paper §IV-C1). DBSCOUT itself never
//! touches this structure — its whole point is that the ε-cell grid makes
//! tree indexes unnecessary.

use crate::distance::sq_dist;
use crate::points::{PointId, PointStore};

/// Bounds-safe coordinate access. Split axes are `depth % dims`, so the
/// index is always in range; the fallback keeps panic branches out of the
/// query hot path.
#[inline]
fn coord(p: &[f64], dim: usize) -> f64 {
    p.get(dim).copied().unwrap_or(0.0)
}

/// A balanced KD-tree over the points of a [`PointStore`].
///
/// Built by recursive median partitioning (`select_nth_unstable`), giving
/// O(n log n) construction and a perfectly balanced implicit tree stored
/// as a permutation of point ids: the root of a segment `[lo, hi)` is its
/// middle element, split on dimension `depth % d`.
#[derive(Debug)]
pub struct KdTree<'s> {
    store: &'s PointStore,
    ids: Vec<PointId>,
}

/// One k-NN result: squared distance and point id.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Squared Euclidean distance to the query.
    pub sq_dist: f64,
    /// Id of the neighbor point.
    pub id: PointId,
}

impl<'s> KdTree<'s> {
    /// Builds a tree over all points in `store`.
    pub fn build(store: &'s PointStore) -> Self {
        let mut ids: Vec<PointId> = (0..store.len()).collect();
        if !ids.is_empty() {
            build_segment(store, &mut ids, 0);
        }
        Self { store, ids }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the tree indexes no points.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The `k` nearest neighbors of `query`, sorted by ascending distance.
    ///
    /// Includes any indexed point at distance zero — callers that query
    /// with a point *in* the tree and want "other" neighbors should ask
    /// for `k + 1` and drop the self match.
    pub fn knn(&self, query: &[f64], k: usize) -> Vec<Neighbor> {
        assert_eq!(query.len(), self.store.dims(), "query dimensionality");
        if k == 0 || self.ids.is_empty() {
            return Vec::new();
        }
        let mut heap = BoundedMaxHeap::new(k);
        self.knn_segment(query, 0, self.ids.len(), 0, &mut heap);
        heap.into_sorted()
    }

    /// All indexed points within Euclidean distance `eps` of `query`
    /// (closed ball), in arbitrary order.
    pub fn within_radius(&self, query: &[f64], eps: f64) -> Vec<Neighbor> {
        assert_eq!(query.len(), self.store.dims(), "query dimensionality");
        let mut out = Vec::new();
        if !self.ids.is_empty() {
            self.radius_segment(query, eps * eps, 0, self.ids.len(), 0, &mut out);
        }
        out
    }

    fn knn_segment(
        &self,
        query: &[f64],
        lo: usize,
        hi: usize,
        depth: usize,
        heap: &mut BoundedMaxHeap,
    ) {
        if lo >= hi {
            return;
        }
        let mid = lo + (hi - lo) / 2;
        let Some(&id) = self.ids.get(mid) else { return };
        let p = self.store.point(id);
        heap.push(Neighbor {
            sq_dist: sq_dist(query, p),
            id,
        });
        let dim = depth % self.store.dims();
        let delta = coord(query, dim) - coord(p, dim);
        let (near, far) = if delta < 0.0 {
            ((lo, mid), (mid + 1, hi))
        } else {
            ((mid + 1, hi), (lo, mid))
        };
        self.knn_segment(query, near.0, near.1, depth + 1, heap);
        // Visit the far side only if the splitting plane is closer than the
        // current k-th best.
        if delta * delta <= heap.worst() {
            self.knn_segment(query, far.0, far.1, depth + 1, heap);
        }
    }

    fn radius_segment(
        &self,
        query: &[f64],
        eps_sq: f64,
        lo: usize,
        hi: usize,
        depth: usize,
        out: &mut Vec<Neighbor>,
    ) {
        if lo >= hi {
            return;
        }
        let mid = lo + (hi - lo) / 2;
        let Some(&id) = self.ids.get(mid) else { return };
        let p = self.store.point(id);
        let d2 = sq_dist(query, p);
        if d2 <= eps_sq {
            out.push(Neighbor { sq_dist: d2, id });
        }
        let dim = depth % self.store.dims();
        let delta = coord(query, dim) - coord(p, dim);
        let (near, far) = if delta < 0.0 {
            ((lo, mid), (mid + 1, hi))
        } else {
            ((mid + 1, hi), (lo, mid))
        };
        self.radius_segment(query, eps_sq, near.0, near.1, depth + 1, out);
        if delta * delta <= eps_sq {
            self.radius_segment(query, eps_sq, far.0, far.1, depth + 1, out);
        }
    }
}

fn build_segment(store: &PointStore, ids: &mut [PointId], depth: usize) {
    if ids.len() <= 1 {
        return;
    }
    let dim = depth % store.dims();
    let mid = ids.len() / 2;
    ids.select_nth_unstable_by(mid, |&a, &b| {
        coord(store.point(a), dim).total_cmp(&coord(store.point(b), dim))
    });
    let (left, right) = ids.split_at_mut(mid);
    build_segment(store, left, depth + 1);
    if let Some(rest) = right.get_mut(1..) {
        build_segment(store, rest, depth + 1);
    }
}

/// A fixed-capacity max-heap keeping the k smallest squared distances.
struct BoundedMaxHeap {
    k: usize,
    items: Vec<Neighbor>,
}

impl BoundedMaxHeap {
    fn new(k: usize) -> Self {
        Self {
            k,
            items: Vec::with_capacity(k + 1),
        }
    }

    /// Squared distance of the current k-th best (∞ while under capacity).
    fn worst(&self) -> f64 {
        if self.items.len() < self.k {
            f64::INFINITY
        } else {
            self.items.first().map_or(f64::INFINITY, |n| n.sq_dist)
        }
    }

    fn push(&mut self, n: Neighbor) {
        if self.items.len() < self.k {
            self.items.push(n);
            self.sift_up(self.items.len() - 1);
        } else if let Some(root) = self.items.first_mut() {
            if n.sq_dist < root.sq_dist {
                *root = n;
                self.sift_down(0);
            }
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            let (Some(child), Some(par)) = (self.items.get(i), self.items.get(parent)) else {
                break;
            };
            if child.sq_dist > par.sq_dist {
                self.items.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut largest = i;
            let dist_at = |j: usize, items: &[Neighbor]| items.get(j).map(|n| n.sq_dist);
            if let (Some(a), Some(b)) = (dist_at(l, &self.items), dist_at(largest, &self.items)) {
                if a > b {
                    largest = l;
                }
            }
            if let (Some(a), Some(b)) = (dist_at(r, &self.items), dist_at(largest, &self.items)) {
                if a > b {
                    largest = r;
                }
            }
            if largest == i {
                break;
            }
            self.items.swap(i, largest);
            i = largest;
        }
    }

    fn into_sorted(self) -> Vec<Neighbor> {
        let mut v = self.items;
        v.sort_by(|a, b| a.sq_dist.total_cmp(&b.sq_dist).then(a.id.cmp(&b.id)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_store(n_side: usize) -> PointStore {
        let mut rows = Vec::new();
        for i in 0..n_side {
            for j in 0..n_side {
                rows.push(vec![i as f64, j as f64]);
            }
        }
        PointStore::from_rows(2, rows).unwrap()
    }

    /// Brute-force k-NN reference.
    fn linear_knn(store: &PointStore, query: &[f64], k: usize) -> Vec<Neighbor> {
        let mut all: Vec<Neighbor> = store
            .iter()
            .map(|(id, p)| Neighbor {
                sq_dist: sq_dist(query, p),
                id,
            })
            .collect();
        all.sort_by(|a, b| a.sq_dist.total_cmp(&b.sq_dist).then(a.id.cmp(&b.id)));
        all.truncate(k);
        all
    }

    #[test]
    fn knn_on_grid_matches_linear_scan() {
        let store = grid_store(10);
        let tree = KdTree::build(&store);
        for query in [[0.0, 0.0], [4.5, 4.5], [9.2, 0.1], [-3.0, 12.0]] {
            for k in [1, 3, 7, 20] {
                let got = tree.knn(&query, k);
                let expected = linear_knn(&store, &query, k);
                let gd: Vec<f64> = got.iter().map(|n| n.sq_dist).collect();
                let ed: Vec<f64> = expected.iter().map(|n| n.sq_dist).collect();
                assert_eq!(gd, ed, "query {query:?} k {k}");
            }
        }
    }

    #[test]
    fn knn_k_larger_than_n() {
        let store = grid_store(2);
        let tree = KdTree::build(&store);
        let got = tree.knn(&[0.0, 0.0], 100);
        assert_eq!(got.len(), 4);
    }

    #[test]
    fn knn_k_zero_and_empty_tree() {
        let store = grid_store(3);
        let tree = KdTree::build(&store);
        assert!(tree.knn(&[0.0, 0.0], 0).is_empty());
        let empty = PointStore::new(2).unwrap();
        let tree = KdTree::build(&empty);
        assert!(tree.is_empty());
        assert!(tree.knn(&[0.0, 0.0], 3).is_empty());
    }

    #[test]
    fn within_radius_closed_ball() {
        let store = grid_store(5);
        let tree = KdTree::build(&store);
        // Radius exactly 1 from (2,2): the point itself plus 4 axis
        // neighbors (closed ball includes the boundary).
        let mut got = tree.within_radius(&[2.0, 2.0], 1.0);
        got.sort_by_key(|n| n.id);
        assert_eq!(got.len(), 5);
    }

    #[test]
    fn within_radius_matches_linear_scan_random() {
        let mut rng = dbscout_rng::Rng::seed_from_u64(7);
        let rows: Vec<Vec<f64>> = (0..500)
            .map(|_| vec![rng.gen_range(-10.0..10.0), rng.gen_range(-10.0..10.0)])
            .collect();
        let store = PointStore::from_rows(2, rows).unwrap();
        let tree = KdTree::build(&store);
        for _ in 0..20 {
            let q = [rng.gen_range(-10.0..10.0), rng.gen_range(-10.0..10.0)];
            let eps = rng.gen_range(0.1..5.0);
            let mut got: Vec<PointId> = tree.within_radius(&q, eps).iter().map(|n| n.id).collect();
            got.sort_unstable();
            let mut expected: Vec<PointId> = store
                .iter()
                .filter(|(_, p)| sq_dist(&q, p) <= eps * eps)
                .map(|(id, _)| id)
                .collect();
            expected.sort_unstable();
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn knn_3d_matches_linear_scan_random() {
        let mut rng = dbscout_rng::Rng::seed_from_u64(11);
        let rows: Vec<Vec<f64>> = (0..300)
            .map(|_| (0..3).map(|_| rng.gen_range(-5.0..5.0)).collect())
            .collect();
        let store = PointStore::from_rows(3, rows).unwrap();
        let tree = KdTree::build(&store);
        for _ in 0..20 {
            let q: Vec<f64> = (0..3).map(|_| rng.gen_range(-5.0..5.0)).collect();
            let got = tree.knn(&q, 5);
            let expected = linear_knn(&store, &q, 5);
            for (g, e) in got.iter().zip(&expected) {
                assert!((g.sq_dist - e.sq_dist).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn duplicate_points_are_all_reported() {
        let store = PointStore::from_rows(2, vec![vec![1.0, 1.0]; 5]).unwrap();
        let tree = KdTree::build(&store);
        assert_eq!(tree.knn(&[1.0, 1.0], 5).len(), 5);
        assert_eq!(tree.within_radius(&[1.0, 1.0], 0.0).len(), 5);
    }
}
