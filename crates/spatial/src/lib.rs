//! Spatial substrate for DBSCOUT: point storage, ε-cells, grids,
//! neighbor-offset enumeration, and a KD-tree.
//!
//! DBSCOUT's machinery (paper §II) lives here:
//!
//! * [`PointStore`] — flat structure-of-arrays storage for n points in
//!   d-dimensional space (d small, typically 2–3);
//! * [`CellCoord`] / [`cell::cell_of`] — the ε-cell a point belongs to
//!   (Definition 4: hypercube of diagonal ε, i.e. side ε/√d);
//! * [`NeighborOffsets`] — the constant set of cell offsets that can hold
//!   points within ε (Definition 8); its size is the paper's k_d constant
//!   (Table I);
//! * [`Grid`] — the complete non-overlapping partition of a dataset into
//!   cells (Definition 5), with per-cell point lists;
//! * [`KdTree`] — exact k-NN used by the LOF/DDLOF baselines and by
//!   k-dist-graph parameter selection.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
// Unit tests may panic freely; library code is held to the panic-freedom
// gates in `[workspace.lints]` and `cargo xtask lint`.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::indexing_slicing,
        clippy::panic,
        clippy::float_cmp
    )
)]
pub mod cell;
pub mod cell_major;
pub mod distance;
pub mod error;
pub mod grid;
pub mod kdtree;
pub mod mutable;
pub mod neighbors;
pub mod points;

pub use cell::{CellCoord, MAX_DIMS};
pub use cell_major::{
    CellMajorBuilder, CellMajorScatter, CellMajorStore, CellRecord, ScatterShard,
};
pub use distance::KernelKind;
pub use error::SpatialError;
pub use grid::Grid;
pub use kdtree::KdTree;
pub use mutable::MutableCellMajor;
pub use neighbors::NeighborOffsets;
pub use points::PointStore;
