//! Cell-major columnar point storage — the hot-path layout of the native
//! engine.
//!
//! [`crate::Grid`] keeps one heap-allocated id list per cell behind a hash
//! map, so every neighbor-cell visit in the core-point and outlier phases
//! costs a hash probe plus a pointer chase into a scattered allocation.
//! [`CellMajorStore`] instead *permutes* the points once so that each
//! cell's points occupy one contiguous run of a single columnar buffer:
//!
//! * coordinates are stored column-major (`col(k)[slot]` is dimension `k`
//!   of the point in `slot`), so a distance scan over a cell streams
//!   `d` dense `f64` slices instead of hopping between point rows;
//! * cells are sorted by [`CellCoord`], each described by a
//!   [`CellRecord`] `(coord, start..end)` — neighbor cells of a query
//!   cell tend to be nearby in the record table and in the buffer;
//! * `orig_ids` maps a slot back to the [`PointId`] of the source
//!   [`PointStore`], so per-point labels can be scattered back;
//! * every cell carries the tight bounding box of its *actual* points
//!   (tighter than the ε-cell box), enabling the pruned kernels below to
//!   skip whole cells whose contents provably cannot lie within ε.
//!
//! The layout is canonical for a given dataset and ε: cells ascend in
//! `CellCoord` order and slots within a cell ascend in original id, so
//! any two builds — whatever the thread count — produce byte-identical
//! buffers. Exactness of the pruning rests on two invariants that the
//! property tests pin:
//!
//! 1. **bbox containment** — every point of a cell lies inside the cell's
//!    stored bounding box, so `min_sq_dist_to_bbox(q, c) > ε²` implies no
//!    point of `c` is within ε of `q` (closed-ball semantics keep the
//!    `= ε²` case);
//! 2. **prune soundness** — a cell skipped by the bbox-to-bbox test can
//!    contain no point within ε of *any* point of the query cell, because
//!    box-to-box minimum distance lower-bounds every point pair.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::BuildHasherDefault;
use std::ops::Range;

use crate::cell::{cell_of, cell_side, CellCoord, MAX_DIMS};
use crate::error::SpatialError;
use crate::neighbors::NeighborOffsets;
use crate::points::{PointId, PointStore};

type DetState = BuildHasherDefault<DefaultHasher>;

/// One cell of a [`CellMajorStore`]: its coordinate and the slot range
/// its points occupy in the columnar buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellRecord {
    /// The ε-cell coordinate.
    pub coord: CellCoord,
    /// First slot of the cell's run (inclusive).
    pub start: u32,
    /// One past the last slot of the cell's run.
    pub end: u32,
}

impl CellRecord {
    /// The slot range of this cell.
    #[inline]
    pub fn range(&self) -> Range<usize> {
        self.start as usize..self.end as usize
    }

    /// Number of points in this cell.
    #[inline]
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether the cell is empty (never true for stored records).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Cell-contiguous columnar storage for one dataset and one ε.
#[derive(Debug, Clone)]
pub struct CellMajorStore {
    dims: usize,
    eps: f64,
    side: f64,
    n: usize,
    /// Column-major coordinates: dimension `k` of slot `j` lives at
    /// `cols[k * n + j]`.
    cols: Vec<f64>,
    /// Slot → original [`PointId`] (a permutation of `0..n`).
    orig_ids: Vec<PointId>,
    /// Non-empty cells, ascending by coordinate.
    cells: Vec<CellRecord>,
    /// Cell coordinate → index into `cells`.
    index: HashMap<CellCoord, u32, DetState>,
    /// Tight per-cell bounding boxes: cell `c`'s box spans
    /// `bbox_min[c*dims..(c+1)*dims]` .. `bbox_max[..]`.
    bbox_min: Vec<f64>,
    bbox_max: Vec<f64>,
}

impl CellMajorStore {
    /// Permutes `store` into cell-major layout for radius `eps`
    /// (paper Algorithm 1 plus the physical reorder).
    ///
    /// O(n log n) for the sort; the result is identical for any thread
    /// count because the order is fully determined by `(cell, id)`.
    ///
    /// # Errors
    ///
    /// Fails if `eps` is not finite and positive.
    pub fn build(store: &PointStore, eps: f64) -> Result<Self, SpatialError> {
        if !eps.is_finite() || eps <= 0.0 {
            return Err(SpatialError::InvalidEpsilon { value: eps });
        }
        let dims = store.dims();
        let side = cell_side(eps, dims);
        let n = store.len() as usize;

        // Assign and sort: (cell, id) pairs; ids ascend within a cell
        // because the assignment pass emits them in order and the sort is
        // on the full pair.
        let mut order: Vec<(CellCoord, PointId)> =
            store.iter().map(|(id, p)| (cell_of(p, side), id)).collect();
        order.sort_unstable();

        // Fill the columnar buffer, the permutation, the cell records and
        // the per-cell bounding boxes in one pass over the sorted order.
        let mut cols = vec![0.0f64; n * dims];
        let mut orig_ids = Vec::with_capacity(n);
        let mut cells: Vec<CellRecord> = Vec::new();
        let mut bbox_min: Vec<f64> = Vec::new();
        let mut bbox_max: Vec<f64> = Vec::new();
        for (slot, &(coord, id)) in order.iter().enumerate() {
            let p = store.point(id);
            for (k, &x) in p.iter().enumerate() {
                if let Some(out) = cols.get_mut(k * n + slot) {
                    *out = x;
                }
            }
            orig_ids.push(id);
            let open_new = match cells.last() {
                Some(last) => last.coord != coord,
                None => true,
            };
            if open_new {
                cells.push(CellRecord {
                    coord,
                    start: slot as u32,
                    end: slot as u32,
                });
                bbox_min.extend_from_slice(p);
                bbox_max.extend_from_slice(p);
            } else {
                let base = (cells.len() - 1) * dims;
                for (k, &x) in p.iter().enumerate() {
                    if let Some(mn) = bbox_min.get_mut(base + k) {
                        *mn = mn.min(x);
                    }
                    if let Some(mx) = bbox_max.get_mut(base + k) {
                        *mx = mx.max(x);
                    }
                }
            }
            if let Some(last) = cells.last_mut() {
                last.end = slot as u32 + 1;
            }
        }

        let index = cells
            .iter()
            .enumerate()
            .map(|(i, c)| (c.coord, i as u32))
            .collect();
        Ok(Self {
            dims,
            eps,
            side,
            n,
            cols,
            orig_ids,
            cells,
            index,
            bbox_min,
            bbox_max,
        })
    }

    /// Dimensionality of the stored points.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The ε this store was built with.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Cell side length `l = ε/√d`.
    pub fn side(&self) -> f64 {
        self.side
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the store holds no points.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of non-empty cells.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// The cell records, ascending by coordinate.
    pub fn cells(&self) -> &[CellRecord] {
        &self.cells
    }

    /// The record of cell `idx`, if in range.
    pub fn cell(&self, idx: usize) -> Option<&CellRecord> {
        self.cells.get(idx)
    }

    /// Index of the cell with coordinate `coord`, if non-empty.
    pub fn cell_index(&self, coord: &CellCoord) -> Option<u32> {
        self.index.get(coord).copied()
    }

    /// Slot → original point id permutation.
    pub fn orig_ids(&self) -> &[PointId] {
        &self.orig_ids
    }

    /// One coordinate column: dimension `k` of every slot, cell-major.
    pub fn col(&self, k: usize) -> &[f64] {
        self.cols.get(k * self.n..(k + 1) * self.n).unwrap_or(&[])
    }

    /// Copies the coordinates of `slot` into `out` (first `dims`
    /// entries); a gather across the columns.
    #[inline]
    pub fn point_into(&self, slot: usize, out: &mut [f64; MAX_DIMS]) {
        for (k, o) in out.iter_mut().take(self.dims).enumerate() {
            *o = self.cols.get(k * self.n + slot).copied().unwrap_or(0.0);
        }
    }

    /// Squared minimum distance from `q` to the tight bounding box of
    /// cell `idx` (0 when `q` lies inside). Lower-bounds the distance
    /// from `q` to every point of the cell — the per-point prune.
    #[inline]
    pub fn min_sq_dist_to_bbox(&self, q: &[f64], idx: usize) -> f64 {
        let base = idx * self.dims;
        let mut acc = 0.0;
        for (k, &x) in q.iter().enumerate().take(self.dims) {
            let lo = self.bbox_min.get(base + k).copied().unwrap_or(x);
            let hi = self.bbox_max.get(base + k).copied().unwrap_or(x);
            let gap = if x < lo {
                lo - x
            } else if x > hi {
                x - hi
            } else {
                0.0
            };
            acc += gap * gap;
        }
        acc
    }

    /// Squared minimum distance between the tight bounding boxes of
    /// cells `a` and `b`. Lower-bounds every point pair across the two
    /// cells — the per-cell prune.
    #[inline]
    pub fn min_sq_dist_between_bboxes(&self, a: usize, b: usize) -> f64 {
        let (ab, bb) = (a * self.dims, b * self.dims);
        let mut acc = 0.0;
        for k in 0..self.dims {
            let alo = self.bbox_min.get(ab + k).copied().unwrap_or(0.0);
            let ahi = self.bbox_max.get(ab + k).copied().unwrap_or(0.0);
            let blo = self.bbox_min.get(bb + k).copied().unwrap_or(0.0);
            let bhi = self.bbox_max.get(bb + k).copied().unwrap_or(0.0);
            let gap = if ahi < blo {
                blo - ahi
            } else if bhi < alo {
                alo - bhi
            } else {
                0.0
            };
            acc += gap * gap;
        }
        acc
    }

    /// Resolves the non-empty neighbor cells of cell `idx` into `out`
    /// (cleared first), as indices into [`Self::cells`]. With
    /// `prune_eps_sq = Some(ε²)`, neighbor cells whose bounding box lies
    /// strictly farther than ε from this cell's bounding box are dropped
    /// — sound because the box distance lower-bounds every point pair.
    ///
    /// One hash probe per offset, amortized over every point of the cell
    /// (the hashed path paid this per *point*).
    pub fn neighbors_into(
        &self,
        idx: usize,
        offsets: &NeighborOffsets,
        prune_eps_sq: Option<f64>,
        out: &mut Vec<u32>,
    ) {
        out.clear();
        let Some(rec) = self.cells.get(idx) else {
            return;
        };
        for off in offsets.iter() {
            let ncoord = NeighborOffsets::apply(&rec.coord, off);
            let Some(&nidx) = self.index.get(&ncoord) else {
                continue;
            };
            if let Some(eps_sq) = prune_eps_sq {
                if self.min_sq_dist_between_bboxes(idx, nidx as usize) > eps_sq {
                    continue;
                }
            }
            out.push(nidx);
        }
    }

    /// Counts slots of `range` within `ε` of `q` (closed ball, given
    /// `eps_sq = ε²`), stopping as soon as the count would reach `limit`.
    /// Returns `(count, comparisons)`; the comparison tally feeds the
    /// Lemma 6/8 accounting.
    #[inline]
    pub fn count_within(
        &self,
        q: &[f64],
        range: Range<usize>,
        eps_sq: f64,
        limit: usize,
    ) -> (usize, u64) {
        let mut count = 0usize;
        let mut comps = 0u64;
        match self.dims {
            2 => {
                let (qx, qy) = (
                    q.first().copied().unwrap_or(0.0),
                    q.get(1).copied().unwrap_or(0.0),
                );
                let xs = self.col(0).get(range.clone()).unwrap_or(&[]);
                let ys = self.col(1).get(range).unwrap_or(&[]);
                for (&x, &y) in xs.iter().zip(ys) {
                    comps += 1;
                    let (dx, dy) = (x - qx, y - qy);
                    if dx * dx + dy * dy <= eps_sq {
                        count += 1;
                        if count >= limit {
                            break;
                        }
                    }
                }
            }
            3 => {
                let (qx, qy, qz) = (
                    q.first().copied().unwrap_or(0.0),
                    q.get(1).copied().unwrap_or(0.0),
                    q.get(2).copied().unwrap_or(0.0),
                );
                let xs = self.col(0).get(range.clone()).unwrap_or(&[]);
                let ys = self.col(1).get(range.clone()).unwrap_or(&[]);
                let zs = self.col(2).get(range).unwrap_or(&[]);
                for ((&x, &y), &z) in xs.iter().zip(ys).zip(zs) {
                    comps += 1;
                    let (dx, dy, dz) = (x - qx, y - qy, z - qz);
                    if dx * dx + dy * dy + dz * dz <= eps_sq {
                        count += 1;
                        if count >= limit {
                            break;
                        }
                    }
                }
            }
            _ => {
                for slot in range {
                    comps += 1;
                    if self.sq_dist_to_slot(q, slot) <= eps_sq {
                        count += 1;
                        if count >= limit {
                            break;
                        }
                    }
                }
            }
        }
        (count, comps)
    }

    /// Whether any *flagged* slot of `range` lies within ε of `q`
    /// (`flags` is slot-indexed — the phase-5 "is this a core point"
    /// mask). With `early`, returns at the first hit; otherwise scans the
    /// whole range (the ablation mode). Returns `(hit, comparisons)`.
    #[inline]
    pub fn any_flagged_within(
        &self,
        q: &[f64],
        range: Range<usize>,
        eps_sq: f64,
        flags: &[bool],
        early: bool,
    ) -> (bool, u64) {
        let mut hit = false;
        let mut comps = 0u64;
        for slot in range {
            if !flags.get(slot).copied().unwrap_or(false) {
                continue;
            }
            comps += 1;
            if self.sq_dist_to_slot(q, slot) <= eps_sq {
                hit = true;
                if early {
                    break;
                }
            }
        }
        (hit, comps)
    }

    /// Squared distance from `q` to the point in `slot`.
    #[inline]
    fn sq_dist_to_slot(&self, q: &[f64], slot: usize) -> f64 {
        let mut acc = 0.0;
        for (k, &x) in q.iter().enumerate().take(self.dims) {
            let c = self.cols.get(k * self.n + slot).copied().unwrap_or(x);
            let d = c - x;
            acc += d * d;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::sq_dist;

    fn store_2d(points: &[[f64; 2]]) -> PointStore {
        PointStore::from_rows(2, points.iter().map(|p| p.to_vec())).unwrap()
    }

    fn gather_point(cm: &CellMajorStore, slot: usize) -> Vec<f64> {
        let mut buf = [0.0; MAX_DIMS];
        cm.point_into(slot, &mut buf);
        buf[..cm.dims()].to_vec()
    }

    #[test]
    fn permutation_is_a_bijection_preserving_coordinates() {
        let s = store_2d(&[[0.1, 0.1], [5.0, 5.0], [0.9, 0.9], [-3.0, 2.0], [5.1, 5.1]]);
        let cm = CellMajorStore::build(&s, 2f64.sqrt()).unwrap();
        assert_eq!(cm.len(), 5);
        let mut seen = [false; 5];
        for slot in 0..cm.len() {
            let id = cm.orig_ids()[slot];
            assert!(!seen[id as usize], "id {id} mapped twice");
            seen[id as usize] = true;
            assert_eq!(gather_point(&cm, slot), s.point(id));
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn cells_are_sorted_and_partition_the_slots() {
        let s = store_2d(&[[0.2, 0.2], [9.0, 9.0], [0.8, 0.8], [1.1, -0.3], [1.9, -0.9]]);
        let cm = CellMajorStore::build(&s, 2f64.sqrt()).unwrap();
        let mut next = 0u32;
        for w in cm.cells().windows(2) {
            assert!(w[0].coord < w[1].coord, "cells out of order");
        }
        for rec in cm.cells() {
            assert_eq!(rec.start, next, "gap before {:?}", rec.coord);
            assert!(rec.end > rec.start);
            next = rec.end;
        }
        assert_eq!(next as usize, cm.len());
    }

    #[test]
    fn ids_ascend_within_each_cell() {
        let s = store_2d(&[[0.3, 0.3], [0.1, 0.1], [0.2, 0.2], [7.0, 7.0]]);
        let cm = CellMajorStore::build(&s, 2f64.sqrt()).unwrap();
        for rec in cm.cells() {
            let ids = &cm.orig_ids()[rec.range()];
            for w in ids.windows(2) {
                assert!(w[0] < w[1], "ids not ascending in {:?}", rec.coord);
            }
        }
    }

    #[test]
    fn index_round_trips() {
        let s = store_2d(&[[0.5, 0.5], [10.0, -3.0]]);
        let cm = CellMajorStore::build(&s, 1.0).unwrap();
        for (i, rec) in cm.cells().iter().enumerate() {
            assert_eq!(cm.cell_index(&rec.coord), Some(i as u32));
        }
        assert_eq!(cm.cell_index(&CellCoord::from_slice(&[999, 999])), None);
    }

    #[test]
    fn bbox_contains_every_point_of_its_cell() {
        let s = store_2d(&[
            [0.11, 0.42],
            [0.35, 0.02],
            [0.21, 0.33],
            [4.0, 4.0],
            [4.2, 4.1],
        ]);
        let cm = CellMajorStore::build(&s, 2f64.sqrt()).unwrap();
        for (idx, rec) in cm.cells().iter().enumerate() {
            for slot in rec.range() {
                let p = gather_point(&cm, slot);
                assert_eq!(
                    cm.min_sq_dist_to_bbox(&p, idx),
                    0.0,
                    "point {p:?} escapes bbox of {:?}",
                    rec.coord
                );
            }
        }
    }

    #[test]
    fn point_to_bbox_lower_bounds_every_point_distance() {
        let s = store_2d(&[[0.1, 0.1], [0.4, 0.4], [2.0, 2.0], [2.3, 1.9]]);
        let cm = CellMajorStore::build(&s, 1.0).unwrap();
        let q = [5.0, -1.0];
        for (idx, rec) in cm.cells().iter().enumerate() {
            let lb = cm.min_sq_dist_to_bbox(&q, idx);
            for slot in rec.range() {
                let p = gather_point(&cm, slot);
                assert!(lb <= sq_dist(&q, &p) + 1e-12);
            }
        }
    }

    #[test]
    fn bbox_to_bbox_lower_bounds_every_point_pair() {
        let s = store_2d(&[[0.1, 0.1], [0.4, 0.4], [2.0, 2.0], [2.3, 1.9], [-3.0, 0.2]]);
        let cm = CellMajorStore::build(&s, 1.0).unwrap();
        for a in 0..cm.num_cells() {
            for b in 0..cm.num_cells() {
                let lb = cm.min_sq_dist_between_bboxes(a, b);
                for sa in cm.cells()[a].range() {
                    for sb in cm.cells()[b].range() {
                        let pa = gather_point(&cm, sa);
                        let pb = gather_point(&cm, sb);
                        assert!(lb <= sq_dist(&pa, &pb) + 1e-12);
                    }
                }
            }
        }
    }

    #[test]
    fn pruned_neighbors_are_a_subset_losing_nothing_within_eps() {
        // Points in adjacent cells but far apart inside them: the pruned
        // list may drop cells, but never one holding a point within eps
        // of any point of the query cell.
        let eps = 0.5;
        let s = store_2d(&[
            [0.01, 0.01],
            [0.30, 0.30],
            [0.34, 0.01], // next cell over, within eps of [0.30, 0.30]
            [0.69, 0.69], // diagonal cell, corner region
            [3.0, 3.0],
        ]);
        let cm = CellMajorStore::build(&s, eps).unwrap();
        let offsets = NeighborOffsets::new(2).unwrap();
        let eps_sq = eps * eps;
        for idx in 0..cm.num_cells() {
            let mut all = Vec::new();
            let mut pruned = Vec::new();
            cm.neighbors_into(idx, &offsets, None, &mut all);
            cm.neighbors_into(idx, &offsets, Some(eps_sq), &mut pruned);
            assert!(pruned.iter().all(|n| all.contains(n)));
            // Soundness: every dropped neighbor has no point within eps
            // of any point of the query cell.
            for dropped in all.iter().filter(|n| !pruned.contains(n)) {
                for sa in cm.cells()[idx].range() {
                    let pa = gather_point(&cm, sa);
                    for sb in cm.cells()[*dropped as usize].range() {
                        let pb = gather_point(&cm, sb);
                        assert!(
                            sq_dist(&pa, &pb) > eps_sq,
                            "prune dropped a reachable pair {pa:?} {pb:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn count_within_matches_brute_force_and_respects_limit() {
        let s = store_2d(&[[0.0, 0.0], [0.1, 0.0], [0.2, 0.0], [0.3, 0.0], [0.9, 0.0]]);
        let cm = CellMajorStore::build(&s, 10.0).unwrap(); // all one cell
        assert_eq!(cm.num_cells(), 1);
        let range = cm.cells()[0].range();
        let q = [0.0, 0.0];
        let (count, comps) = cm.count_within(&q, range.clone(), 0.25 * 0.25 + 1e-12, usize::MAX);
        assert_eq!(count, 3); // 0.0, 0.1, 0.2
        assert_eq!(comps, 5);
        let (count, comps) = cm.count_within(&q, range, 1.0, 2);
        assert_eq!(count, 2);
        assert!(comps <= 2, "early exit must stop scanning");
    }

    #[test]
    fn any_flagged_within_honors_flags_and_early_exit() {
        let s = store_2d(&[[0.0, 0.0], [0.1, 0.0], [0.2, 0.0]]);
        let cm = CellMajorStore::build(&s, 10.0).unwrap();
        let range = cm.cells()[0].range();
        let q = [0.0, 0.0];
        // No flags set: never a hit, zero comparisons.
        let (hit, comps) = cm.any_flagged_within(&q, range.clone(), 1.0, &[false; 3], true);
        assert!(!hit);
        assert_eq!(comps, 0);
        // Only the far slot flagged and out of range.
        let slot_of_02 = (0..3)
            .find(|&s| {
                let p = gather_point(&cm, s);
                (p[0] - 0.2).abs() < 1e-12
            })
            .unwrap();
        let mut flags = vec![false; 3];
        flags[slot_of_02] = true;
        let (hit, _) = cm.any_flagged_within(&q, range.clone(), 0.01, &flags, true);
        assert!(!hit);
        let (hit, _) = cm.any_flagged_within(&q, range, 0.05, &flags, true);
        assert!(hit);
    }

    #[test]
    fn three_d_and_generic_kernels_agree() {
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| {
                vec![
                    (i % 4) as f64 * 0.3,
                    (i % 5) as f64 * 0.2,
                    (i % 3) as f64 * 0.4,
                ]
            })
            .collect();
        let s = PointStore::from_rows(3, rows).unwrap();
        let cm = CellMajorStore::build(&s, 10.0).unwrap();
        let range = cm.cells()[0].range();
        let q = [0.3, 0.2, 0.4];
        let (fast, _) = cm.count_within(&q, range.clone(), 0.3, usize::MAX);
        // Brute-force recount through the gathered rows.
        let slow = range
            .clone()
            .filter(|&slot| sq_dist(&gather_point(&cm, slot), &q) <= 0.3)
            .count();
        assert_eq!(fast, slow);
    }

    #[test]
    fn empty_store_builds_empty_layout() {
        let s = PointStore::new(2).unwrap();
        let cm = CellMajorStore::build(&s, 1.0).unwrap();
        assert!(cm.is_empty());
        assert_eq!(cm.num_cells(), 0);
        assert!(cm.cells().is_empty());
        assert!(cm.orig_ids().is_empty());
    }

    #[test]
    fn invalid_eps_rejected() {
        let s = store_2d(&[[0.0, 0.0]]);
        for eps in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                CellMajorStore::build(&s, eps),
                Err(SpatialError::InvalidEpsilon { .. })
            ));
        }
    }

    #[test]
    fn layout_agrees_with_grid() {
        // Same cells, same per-cell id sets as the hashed grid.
        let pts: Vec<[f64; 2]> = (0..60)
            .map(|i| [((i * 37) % 50) as f64 * 0.3, ((i * 53) % 40) as f64 * 0.3])
            .collect();
        let s = store_2d(&pts);
        let eps = 1.5;
        let grid = crate::Grid::build(&s, eps).unwrap();
        let cm = CellMajorStore::build(&s, eps).unwrap();
        assert_eq!(cm.num_cells(), grid.num_cells());
        for rec in cm.cells() {
            let ids = &cm.orig_ids()[rec.range()];
            assert_eq!(grid.points_in(&rec.coord), Some(ids));
        }
    }
}
