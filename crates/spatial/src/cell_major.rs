//! Cell-major columnar point storage — the hot-path layout of the native
//! engine.
//!
//! [`crate::Grid`] keeps one heap-allocated id list per cell behind a hash
//! map, so every neighbor-cell visit in the core-point and outlier phases
//! costs a hash probe plus a pointer chase into a scattered allocation.
//! [`CellMajorStore`] instead *permutes* the points once so that each
//! cell's points occupy one contiguous run of a single columnar buffer:
//!
//! * coordinates are stored column-major (`col(k)[slot]` is dimension `k`
//!   of the point in `slot`), so a distance scan over a cell streams
//!   `d` dense `f64` slices instead of hopping between point rows;
//! * cells are sorted by [`CellCoord`], each described by a
//!   [`CellRecord`] `(coord, start..end)` — neighbor cells of a query
//!   cell tend to be nearby in the record table and in the buffer;
//! * `orig_ids` maps a slot back to the [`PointId`] of the source
//!   [`PointStore`], so per-point labels can be scattered back;
//! * every cell carries the tight bounding box of its *actual* points
//!   (tighter than the ε-cell box), enabling the pruned kernels below to
//!   skip whole cells whose contents provably cannot lie within ε.
//!
//! The layout is canonical for a given dataset and ε: cells ascend in
//! `CellCoord` order and slots within a cell ascend in original id, so
//! any two builds — whatever the thread count — produce byte-identical
//! buffers. Exactness of the pruning rests on two invariants that the
//! property tests pin:
//!
//! 1. **bbox containment** — every point of a cell lies inside the cell's
//!    stored bounding box, so `min_sq_dist_to_bbox(q, c) > ε²` implies no
//!    point of `c` is within ε of `q` (closed-ball semantics keep the
//!    `= ε²` case);
//! 2. **prune soundness** — a cell skipped by the bbox-to-bbox test can
//!    contain no point within ε of *any* point of the query cell, because
//!    box-to-box minimum distance lower-bounds every point pair.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::BuildHasherDefault;
use std::ops::Range;

use crate::cell::{cell_of, cell_side, CellCoord, MAX_DIMS};
use crate::distance::{
    accumulate_sq_dists_x4, sq_dists_2d_x8, sq_dists_3d_x4, KernelKind, LANES_2D, LANES_ND,
};
use crate::error::SpatialError;
use crate::neighbors::NeighborOffsets;
use crate::points::{PointId, PointStore};

pub(crate) type DetState = BuildHasherDefault<DefaultHasher>;

/// One cell of a [`CellMajorStore`]: its coordinate and the slot range
/// its points occupy in the columnar buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellRecord {
    /// The ε-cell coordinate.
    pub coord: CellCoord,
    /// First slot of the cell's run (inclusive).
    pub start: u32,
    /// One past the last slot of the cell's run.
    pub end: u32,
}

impl CellRecord {
    /// The slot range of this cell.
    #[inline]
    pub fn range(&self) -> Range<usize> {
        self.start as usize..self.end as usize
    }

    /// Number of points in this cell.
    #[inline]
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether the cell is empty (never true for stored records).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Cell-contiguous columnar storage for one dataset and one ε.
///
/// Fields are `pub(crate)` so [`crate::mutable::MutableCellMajor`] can
/// maintain a slack-slot variant of the same layout in place; outside
/// this crate the store is immutable.
#[derive(Debug, Clone)]
pub struct CellMajorStore {
    pub(crate) dims: usize,
    pub(crate) eps: f64,
    pub(crate) side: f64,
    /// Slot count — the column stride. For a store built by
    /// [`CellMajorStore::build`] this equals the point count; a mutable
    /// wrapper may hold spare (non-live) slots, in which case only the
    /// slots inside some [`CellRecord`] run are meaningful.
    pub(crate) n: usize,
    /// Column-major coordinates: dimension `k` of slot `j` lives at
    /// `cols[k * n + j]`.
    pub(crate) cols: Vec<f64>,
    /// Slot → original [`PointId`] (a permutation of `0..n` for a batch
    /// build; spare slots of a mutable layout hold `PointId::MAX`).
    pub(crate) orig_ids: Vec<PointId>,
    /// Non-empty cells, ascending by coordinate (batch builds; a mutable
    /// layout may append cells out of order).
    pub(crate) cells: Vec<CellRecord>,
    /// Cell coordinate → index into `cells`.
    pub(crate) index: HashMap<CellCoord, u32, DetState>,
    /// Tight per-cell bounding boxes: cell `c`'s box spans
    /// `bbox_min[c*dims..(c+1)*dims]` .. `bbox_max[..]`.
    pub(crate) bbox_min: Vec<f64>,
    pub(crate) bbox_max: Vec<f64>,
}

/// Pass 1 of the two-pass streaming build: tallies how many points fall
/// in each ε-cell. Feed every batch of the stream through
/// [`CellMajorBuilder::count_batch`], then call
/// [`CellMajorBuilder::begin_scatter`] and replay the stream into the
/// resulting [`CellMajorScatter`].
///
/// The two passes are a counting sort by cell: pass 1 sizes the
/// cell-contiguous runs, pass 2 places each point directly into its
/// final slot. Because points are replayed in id order and each cell's
/// cursor advances monotonically, slots within a cell ascend in original
/// id — the exact canonical layout [`CellMajorStore::build`] defines —
/// while peak memory is the finished layout plus one batch, never the
/// whole raw input plus a sort buffer.
#[derive(Debug)]
pub struct CellMajorBuilder {
    dims: usize,
    eps: f64,
    side: f64,
    n: usize,
    counts: HashMap<CellCoord, u32, DetState>,
}

impl CellMajorBuilder {
    /// Starts a streaming build for `dims`-dimensional points at radius
    /// `eps`.
    ///
    /// # Errors
    ///
    /// Fails if `eps` is not finite and positive, `dims` is zero, or
    /// `dims` exceeds [`MAX_DIMS`].
    pub fn new(dims: usize, eps: f64) -> Result<Self, SpatialError> {
        if !eps.is_finite() || eps <= 0.0 {
            return Err(SpatialError::InvalidEpsilon { value: eps });
        }
        if dims == 0 {
            return Err(SpatialError::ZeroDims);
        }
        if dims > MAX_DIMS {
            return Err(SpatialError::TooManyDims { requested: dims });
        }
        Ok(Self {
            dims,
            eps,
            side: cell_side(eps, dims),
            n: 0,
            counts: HashMap::default(),
        })
    }

    /// Number of points counted so far.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether no points have been counted yet.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of distinct non-empty ε-cells counted so far.
    pub fn num_cells(&self) -> usize {
        self.counts.len()
    }

    /// Per-cell point counts in the canonical cell-table order (records
    /// ascending by cell coordinate) — exactly the order
    /// [`Self::begin_scatter`] lays the cells out in, so a driver can
    /// plan per-cell shards from pass 1 alone, before (or without) ever
    /// running the scatter pass itself.
    pub fn cell_counts_sorted(&self) -> Vec<u32> {
        let mut keyed: Vec<(CellCoord, u32)> = Vec::with_capacity(self.counts.len());
        // xlint: ordered -- entries are sorted by coordinate just below
        keyed.extend(self.counts.iter().map(|(&coord, &k)| (coord, k)));
        keyed.sort_unstable_by_key(|&(coord, _)| coord);
        keyed.into_iter().map(|(_, k)| k).collect()
    }

    /// Tallies one flat row-major batch (`len * dims` coordinates) into
    /// the per-cell counts. Coordinates are validated here — the batch
    /// must be a whole number of points and every value finite — so the
    /// scatter pass can trust the replayed stream.
    pub fn count_batch(&mut self, coords: &[f64]) -> Result<(), SpatialError> {
        if !coords.len().is_multiple_of(self.dims) {
            return Err(SpatialError::DimensionMismatch {
                expected: self.dims,
                got: coords.len() % self.dims,
            });
        }
        for (i, p) in coords.chunks_exact(self.dims).enumerate() {
            for (k, &x) in p.iter().enumerate() {
                if !x.is_finite() {
                    return Err(SpatialError::NonFiniteCoordinate {
                        point: self.n + i,
                        dim: k,
                    });
                }
            }
            *self.counts.entry(cell_of(p, self.side)).or_insert(0) += 1;
        }
        self.n += coords.len() / self.dims;
        Ok(())
    }

    /// Folds another pass-1 tally into this one. Cell counts are sums, so
    /// the merge is order-insensitive: counting batch shards on separate
    /// workers and merging yields exactly the tally of one sequential
    /// pass, whatever the shard split — the count half of the parallel
    /// two-pass build.
    ///
    /// # Errors
    ///
    /// Fails with [`SpatialError::DimensionMismatch`] when the builders
    /// disagree on dimensionality, or [`SpatialError::StreamMismatch`]
    /// when they were configured with different ε (their cell tilings are
    /// incompatible).
    pub fn merge(&mut self, other: CellMajorBuilder) -> Result<(), SpatialError> {
        if other.dims != self.dims {
            return Err(SpatialError::DimensionMismatch {
                expected: self.dims,
                got: other.dims,
            });
        }
        if other.eps.to_bits() != self.eps.to_bits() {
            return Err(SpatialError::StreamMismatch);
        }
        // xlint: ordered -- additive merge into a map is order-insensitive
        for (coord, k) in other.counts {
            *self.counts.entry(coord).or_insert(0) += k;
        }
        self.n += other.n;
        Ok(())
    }

    /// Finishes pass 1: lays out the cell table (records ascending by
    /// coordinate, prefix-summed slot ranges) and allocates the columnar
    /// buffers at their final size, returning the pass-2 scatter state.
    pub fn begin_scatter(self) -> CellMajorScatter {
        let Self {
            dims,
            eps,
            side,
            n,
            counts,
        } = self;
        // xlint: ordered -- drained entries are sorted by coordinate just below
        let mut keyed: Vec<(CellCoord, u32)> = counts.into_iter().collect();
        keyed.sort_unstable_by_key(|&(coord, _)| coord);
        let mut cells = Vec::with_capacity(keyed.len());
        let mut cursors = Vec::with_capacity(keyed.len());
        let mut next = 0u32;
        for (coord, count) in keyed {
            cells.push(CellRecord {
                coord,
                start: next,
                end: next + count,
            });
            cursors.push(next);
            next += count;
        }
        let index = cells
            .iter()
            .enumerate()
            .map(|(i, c)| (c.coord, i as u32))
            .collect();
        CellMajorScatter {
            dims,
            eps,
            side,
            n,
            cols: vec![0.0f64; n * dims],
            orig_ids: vec![0; n],
            cells,
            index,
            bbox_min: Vec::new(),
            bbox_max: Vec::new(),
            cursors,
            filled: 0,
        }
    }
}

/// Pass 2 of the two-pass streaming build: scatters the replayed stream
/// into the cell-contiguous columns sized by [`CellMajorBuilder`].
///
/// Any disagreement with pass 1 — a point landing in a cell that was
/// never counted, a cell receiving more points than counted, or the
/// stream ending short — yields [`SpatialError::StreamMismatch`] instead
/// of a corrupt layout.
#[derive(Debug)]
pub struct CellMajorScatter {
    dims: usize,
    eps: f64,
    side: f64,
    n: usize,
    cols: Vec<f64>,
    orig_ids: Vec<PointId>,
    cells: Vec<CellRecord>,
    index: HashMap<CellCoord, u32, DetState>,
    bbox_min: Vec<f64>,
    bbox_max: Vec<f64>,
    cursors: Vec<u32>,
    filled: usize,
}

impl CellMajorScatter {
    /// Places one flat row-major batch into the layout. Points are
    /// assigned ids by arrival order across the whole pass, so the
    /// stream must replay in the same order as the counting pass.
    pub fn scatter_batch(&mut self, coords: &[f64]) -> Result<(), SpatialError> {
        if !coords.len().is_multiple_of(self.dims) {
            return Err(SpatialError::DimensionMismatch {
                expected: self.dims,
                got: coords.len() % self.dims,
            });
        }
        if self.bbox_min.is_empty() && !self.cells.is_empty() {
            // Deferred so a mismatching replay fails before the big
            // bbox allocation, not after.
            self.bbox_min = vec![0.0f64; self.cells.len() * self.dims];
            self.bbox_max = vec![0.0f64; self.cells.len() * self.dims];
        }
        for p in coords.chunks_exact(self.dims) {
            for (k, &x) in p.iter().enumerate() {
                if !x.is_finite() {
                    return Err(SpatialError::NonFiniteCoordinate {
                        point: self.filled,
                        dim: k,
                    });
                }
            }
            let coord = cell_of(p, self.side);
            let ci = *self.index.get(&coord).ok_or(SpatialError::StreamMismatch)? as usize;
            let rec = *self.cells.get(ci).ok_or(SpatialError::StreamMismatch)?;
            let cursor = self
                .cursors
                .get_mut(ci)
                .ok_or(SpatialError::StreamMismatch)?;
            if *cursor >= rec.end {
                return Err(SpatialError::StreamMismatch);
            }
            let slot = *cursor as usize;
            *cursor += 1;
            for (k, &x) in p.iter().enumerate() {
                if let Some(out) = self.cols.get_mut(k * self.n + slot) {
                    *out = x;
                }
            }
            if let Some(id) = self.orig_ids.get_mut(slot) {
                *id = self.filled as PointId;
            }
            let base = ci * self.dims;
            if slot == rec.start as usize {
                for (k, &x) in p.iter().enumerate() {
                    if let Some(mn) = self.bbox_min.get_mut(base + k) {
                        *mn = x;
                    }
                    if let Some(mx) = self.bbox_max.get_mut(base + k) {
                        *mx = x;
                    }
                }
            } else {
                for (k, &x) in p.iter().enumerate() {
                    if let Some(mn) = self.bbox_min.get_mut(base + k) {
                        *mn = mn.min(x);
                    }
                    if let Some(mx) = self.bbox_max.get_mut(base + k) {
                        *mx = mx.max(x);
                    }
                }
            }
            self.filled += 1;
        }
        Ok(())
    }

    /// Number of points scattered so far.
    pub fn filled(&self) -> usize {
        self.filled
    }

    /// Carves the scatter pass into `parts` independent shards, each
    /// owning a disjoint contiguous range of cells (and therefore a
    /// disjoint contiguous slot range of every output buffer). Shard
    /// boundaries are balanced by slot count, never splitting a cell.
    ///
    /// Every shard must replay the *entire* stream, in the same order as
    /// the counting pass; each shard writes only the points that land in
    /// its cells and skips the rest (tracking ids with a private replay
    /// cursor). Because a point's final slot is a pure function of its
    /// `(cell, arrival id)` — independent of which shard writes it — the
    /// assembled store is byte-identical to a sequential scatter for any
    /// `parts`. Finish with [`Self::finish_sharded`] after dropping the
    /// shards.
    ///
    /// Fewer than `parts` shards are returned when the store has fewer
    /// cells than `parts`; zero shards for an empty layout.
    pub fn shards(&mut self, parts: usize) -> Vec<ScatterShard<'_>> {
        if self.bbox_min.is_empty() && !self.cells.is_empty() {
            self.bbox_min = vec![0.0f64; self.cells.len() * self.dims];
            self.bbox_max = vec![0.0f64; self.cells.len() * self.dims];
        }
        // Greedy slot-balanced cell boundaries: cut after a cell once the
        // shard holds its fair share of slots.
        let parts = parts.max(1).min(self.cells.len());
        let mut cell_bounds: Vec<usize> = Vec::with_capacity(parts.saturating_sub(1));
        if parts > 1 {
            let target = (self.n as f64 / parts as f64).max(1.0);
            let mut next_cut = target;
            for (ci, rec) in self.cells.iter().enumerate().take(self.cells.len() - 1) {
                if f64::from(rec.end) >= next_cut && cell_bounds.len() + 1 < parts {
                    cell_bounds.push(ci + 1);
                    next_cut = (cell_bounds.len() + 1) as f64 * target;
                }
            }
        }
        let slot_cuts: Vec<usize> = cell_bounds
            .iter()
            .map(|&ci| self.cells.get(ci).map_or(self.n, |r| r.start as usize))
            .collect();

        let n = self.n;
        // Split each coordinate column at the slot cuts; regroup the
        // per-dimension pieces into per-shard column sets below.
        let mut col_pieces: Vec<Vec<&mut [f64]>> = Vec::with_capacity(self.dims);
        for col in self.cols.chunks_mut(n.max(1)).take(self.dims) {
            col_pieces.push(split_at_cuts(col, &slot_cuts));
        }
        let id_pieces = split_at_cuts(self.orig_ids.as_mut_slice(), &slot_cuts);
        let cursor_pieces = split_at_cuts(self.cursors.as_mut_slice(), &cell_bounds);
        let bbox_cuts: Vec<usize> = cell_bounds.iter().map(|&ci| ci * self.dims).collect();
        let bbox_min_pieces = split_at_cuts(self.bbox_min.as_mut_slice(), &bbox_cuts);
        let bbox_max_pieces = split_at_cuts(self.bbox_max.as_mut_slice(), &bbox_cuts);

        let mut shards = Vec::with_capacity(parts);
        let mut cell_start = 0usize;
        let mut slot_start = 0usize;
        let mut cols: Vec<std::vec::IntoIter<&mut [f64]>> =
            col_pieces.into_iter().map(Vec::into_iter).collect();
        let zipped = id_pieces
            .into_iter()
            .zip(cursor_pieces)
            .zip(bbox_min_pieces.into_iter().zip(bbox_max_pieces));
        for (i, ((orig_ids, cursors), (bbox_min, bbox_max))) in zipped.enumerate() {
            let cell_end = cell_bounds.get(i).copied().unwrap_or(self.cells.len());
            let slot_end = slot_start + orig_ids.len();
            if self.cells.is_empty() {
                break;
            }
            shards.push(ScatterShard {
                dims: self.dims,
                side: self.side,
                cell_range: cell_start..cell_end,
                slot_start,
                cells: &self.cells,
                index: &self.index,
                cols: cols.iter_mut().filter_map(Iterator::next).collect(),
                orig_ids,
                bbox_min,
                bbox_max,
                cursors,
                seen: 0,
                filled: 0,
            });
            cell_start = cell_end;
            slot_start = slot_end;
        }
        shards
    }

    /// Completes a sharded scatter pass. Instead of the sequential
    /// `filled == n` check (shards tally their own fills), this validates
    /// that every cell's cursor reached the end of its slot run — the
    /// cursors are the per-cell proof that each shard placed exactly the
    /// points pass 1 counted.
    pub fn finish_sharded(mut self) -> Result<CellMajorStore, SpatialError> {
        for (cursor, rec) in self.cursors.iter().zip(&self.cells) {
            if *cursor != rec.end {
                return Err(SpatialError::StreamMismatch);
            }
        }
        self.filled = self.n;
        self.finish()
    }

    /// Completes the build. Fails with [`SpatialError::StreamMismatch`]
    /// when the replay delivered fewer points than the counting pass.
    pub fn finish(self) -> Result<CellMajorStore, SpatialError> {
        if self.filled != self.n {
            return Err(SpatialError::StreamMismatch);
        }
        Ok(CellMajorStore {
            dims: self.dims,
            eps: self.eps,
            side: self.side,
            n: self.n,
            cols: self.cols,
            orig_ids: self.orig_ids,
            cells: self.cells,
            index: self.index,
            bbox_min: self.bbox_min,
            bbox_max: self.bbox_max,
        })
    }
}

/// Splits `buf` at the given ascending absolute offsets, yielding
/// `cuts.len() + 1` contiguous exclusive pieces that cover it. Offsets
/// are clamped to the buffer, so malformed cuts shift coverage rather
/// than panic (the callers derive cuts from the cell table, which keeps
/// them consistent by construction).
fn split_at_cuts<'a, T>(mut buf: &'a mut [T], cuts: &[usize]) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(cuts.len() + 1);
    let mut prev = 0usize;
    for &cut in cuts {
        let mid = cut.saturating_sub(prev).min(buf.len());
        let (head, tail) = buf.split_at_mut(mid);
        out.push(head);
        buf = tail;
        prev = cut;
    }
    out.push(buf);
    out
}

/// One worker's slice of a partitioned scatter pass: a contiguous range
/// of cells plus exclusive `&mut` views of exactly the output buffer
/// segments those cells own. Produced by [`CellMajorScatter::shards`];
/// shards are `Send`, so a driver can run one per thread with no locks —
/// the cell ranges are disjoint, so there is nothing to contend on.
#[derive(Debug)]
pub struct ScatterShard<'a> {
    dims: usize,
    side: f64,
    /// The cells this shard owns, as indices into the full table.
    cell_range: Range<usize>,
    /// First slot of the shard's buffer segments (`cells[cell_range.start].start`).
    slot_start: usize,
    /// The full cell table (shared, read-only).
    cells: &'a [CellRecord],
    /// The full coordinate → cell index (shared, read-only).
    index: &'a HashMap<CellCoord, u32, DetState>,
    /// Per-dimension column segments covering the shard's slots.
    cols: Vec<&'a mut [f64]>,
    orig_ids: &'a mut [PointId],
    bbox_min: &'a mut [f64],
    bbox_max: &'a mut [f64],
    /// Cursors of the owned cells (absolute slot values).
    cursors: &'a mut [u32],
    /// Points seen across the replay (the global arrival-id counter).
    seen: usize,
    /// Points this shard placed.
    filled: usize,
}

impl ScatterShard<'_> {
    /// The cell indices this shard owns.
    pub fn cell_range(&self) -> Range<usize> {
        self.cell_range.clone()
    }

    /// Number of points this shard has placed so far.
    pub fn filled(&self) -> usize {
        self.filled
    }

    /// Replays one flat row-major batch through this shard. Every shard
    /// must see every batch, in counting-pass order; points outside the
    /// shard's cell range only advance the arrival-id cursor.
    pub fn scatter_batch(&mut self, coords: &[f64]) -> Result<(), SpatialError> {
        if !coords.len().is_multiple_of(self.dims) {
            return Err(SpatialError::DimensionMismatch {
                expected: self.dims,
                got: coords.len() % self.dims,
            });
        }
        for p in coords.chunks_exact(self.dims) {
            let id = self.seen;
            self.seen += 1;
            for (k, &x) in p.iter().enumerate() {
                if !x.is_finite() {
                    return Err(SpatialError::NonFiniteCoordinate { point: id, dim: k });
                }
            }
            let coord = cell_of(p, self.side);
            let ci = *self.index.get(&coord).ok_or(SpatialError::StreamMismatch)? as usize;
            if !self.cell_range.contains(&ci) {
                continue;
            }
            let rec = *self.cells.get(ci).ok_or(SpatialError::StreamMismatch)?;
            let local_cell = ci - self.cell_range.start;
            let cursor = self
                .cursors
                .get_mut(local_cell)
                .ok_or(SpatialError::StreamMismatch)?;
            if *cursor >= rec.end {
                return Err(SpatialError::StreamMismatch);
            }
            let slot = *cursor as usize;
            *cursor += 1;
            let local_slot = slot - self.slot_start;
            for (col, &x) in self.cols.iter_mut().zip(p) {
                if let Some(out) = col.get_mut(local_slot) {
                    *out = x;
                }
            }
            if let Some(out) = self.orig_ids.get_mut(local_slot) {
                *out = id as PointId;
            }
            let base = local_cell * self.dims;
            if slot == rec.start as usize {
                for (k, &x) in p.iter().enumerate() {
                    if let Some(mn) = self.bbox_min.get_mut(base + k) {
                        *mn = x;
                    }
                    if let Some(mx) = self.bbox_max.get_mut(base + k) {
                        *mx = x;
                    }
                }
            } else {
                for (k, &x) in p.iter().enumerate() {
                    if let Some(mn) = self.bbox_min.get_mut(base + k) {
                        *mn = mn.min(x);
                    }
                    if let Some(mx) = self.bbox_max.get_mut(base + k) {
                        *mx = mx.max(x);
                    }
                }
            }
            self.filled += 1;
        }
        Ok(())
    }
}

impl CellMajorStore {
    /// Permutes `store` into cell-major layout for radius `eps`
    /// (paper Algorithm 1 plus the physical reorder).
    ///
    /// This is the materialized entry point over the two-pass streaming
    /// builder ([`CellMajorBuilder`] → [`CellMajorScatter`]) with the
    /// whole store as one batch, so the streaming and in-memory paths
    /// produce identical layouts by construction. The layout is fully
    /// determined by `(cell, id)` and therefore identical for any thread
    /// count: cells ascend by coordinate, slots within a cell ascend by
    /// original id.
    ///
    /// # Errors
    ///
    /// Fails if `eps` is not finite and positive.
    pub fn build(store: &PointStore, eps: f64) -> Result<Self, SpatialError> {
        let mut builder = CellMajorBuilder::new(store.dims(), eps)?;
        builder.count_batch(store.flat())?;
        let mut scatter = builder.begin_scatter();
        scatter.scatter_batch(store.flat())?;
        scatter.finish()
    }

    /// Dimensionality of the stored points.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The ε this store was built with.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Cell side length `l = ε/√d`.
    pub fn side(&self) -> f64 {
        self.side
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the store holds no points.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of non-empty cells.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// The cell records, ascending by coordinate.
    pub fn cells(&self) -> &[CellRecord] {
        &self.cells
    }

    /// The record of cell `idx`, if in range.
    pub fn cell(&self, idx: usize) -> Option<&CellRecord> {
        self.cells.get(idx)
    }

    /// Index of the cell with coordinate `coord`, if non-empty.
    pub fn cell_index(&self, coord: &CellCoord) -> Option<u32> {
        self.index.get(coord).copied()
    }

    /// Slot → original point id permutation.
    pub fn orig_ids(&self) -> &[PointId] {
        &self.orig_ids
    }

    /// One coordinate column: dimension `k` of every slot, cell-major.
    pub fn col(&self, k: usize) -> &[f64] {
        self.cols.get(k * self.n..(k + 1) * self.n).unwrap_or(&[])
    }

    /// Copies the coordinates of `slot` into `out` (first `dims`
    /// entries); a gather across the columns.
    #[inline]
    pub fn point_into(&self, slot: usize, out: &mut [f64; MAX_DIMS]) {
        for (k, o) in out.iter_mut().take(self.dims).enumerate() {
            *o = self.cols.get(k * self.n + slot).copied().unwrap_or(0.0);
        }
    }

    /// Squared minimum distance from `q` to the tight bounding box of
    /// cell `idx` (0 when `q` lies inside). Lower-bounds the distance
    /// from `q` to every point of the cell — the per-point prune.
    #[inline]
    pub fn min_sq_dist_to_bbox(&self, q: &[f64], idx: usize) -> f64 {
        let base = idx * self.dims;
        let mut acc = 0.0;
        for (k, &x) in q.iter().enumerate().take(self.dims) {
            let lo = self.bbox_min.get(base + k).copied().unwrap_or(x);
            let hi = self.bbox_max.get(base + k).copied().unwrap_or(x);
            let gap = if x < lo {
                lo - x
            } else if x > hi {
                x - hi
            } else {
                0.0
            };
            acc += gap * gap;
        }
        acc
    }

    /// Squared minimum distance between the tight bounding boxes of
    /// cells `a` and `b`. Lower-bounds every point pair across the two
    /// cells — the per-cell prune.
    #[inline]
    pub fn min_sq_dist_between_bboxes(&self, a: usize, b: usize) -> f64 {
        let (ab, bb) = (a * self.dims, b * self.dims);
        let mut acc = 0.0;
        for k in 0..self.dims {
            let alo = self.bbox_min.get(ab + k).copied().unwrap_or(0.0);
            let ahi = self.bbox_max.get(ab + k).copied().unwrap_or(0.0);
            let blo = self.bbox_min.get(bb + k).copied().unwrap_or(0.0);
            let bhi = self.bbox_max.get(bb + k).copied().unwrap_or(0.0);
            let gap = if ahi < blo {
                blo - ahi
            } else if bhi < alo {
                alo - bhi
            } else {
                0.0
            };
            acc += gap * gap;
        }
        acc
    }

    /// Resolves the non-empty neighbor cells of cell `idx` into `out`
    /// (cleared first), as indices into [`Self::cells`]. With
    /// `prune_eps_sq = Some(ε²)`, neighbor cells whose bounding box lies
    /// strictly farther than ε from this cell's bounding box are dropped
    /// — sound because the box distance lower-bounds every point pair.
    ///
    /// One hash probe per offset, amortized over every point of the cell
    /// (the hashed path paid this per *point*).
    pub fn neighbors_into(
        &self,
        idx: usize,
        offsets: &NeighborOffsets,
        prune_eps_sq: Option<f64>,
        out: &mut Vec<u32>,
    ) {
        out.clear();
        let Some(rec) = self.cells.get(idx) else {
            return;
        };
        for off in offsets.iter() {
            let ncoord = NeighborOffsets::apply(&rec.coord, off);
            let Some(&nidx) = self.index.get(&ncoord) else {
                continue;
            };
            if let Some(eps_sq) = prune_eps_sq {
                if self.min_sq_dist_between_bboxes(idx, nidx as usize) > eps_sq {
                    continue;
                }
            }
            out.push(nidx);
        }
    }

    /// Counts slots of `range` within `ε` of `q` (closed ball, given
    /// `eps_sq = ε²`), stopping as soon as the count would reach `limit`.
    /// Returns `(count, comparisons)`; the comparison tally feeds the
    /// Lemma 6/8 accounting.
    #[inline]
    pub fn count_within(
        &self,
        q: &[f64],
        range: Range<usize>,
        eps_sq: f64,
        limit: usize,
    ) -> (usize, u64) {
        let mut count = 0usize;
        let mut comps = 0u64;
        match self.dims {
            2 => {
                let (qx, qy) = (
                    q.first().copied().unwrap_or(0.0),
                    q.get(1).copied().unwrap_or(0.0),
                );
                let xs = self.col(0).get(range.clone()).unwrap_or(&[]);
                let ys = self.col(1).get(range).unwrap_or(&[]);
                for (&x, &y) in xs.iter().zip(ys) {
                    comps += 1;
                    let (dx, dy) = (x - qx, y - qy);
                    if dx * dx + dy * dy <= eps_sq {
                        count += 1;
                        if count >= limit {
                            break;
                        }
                    }
                }
            }
            3 => {
                let (qx, qy, qz) = (
                    q.first().copied().unwrap_or(0.0),
                    q.get(1).copied().unwrap_or(0.0),
                    q.get(2).copied().unwrap_or(0.0),
                );
                let xs = self.col(0).get(range.clone()).unwrap_or(&[]);
                let ys = self.col(1).get(range.clone()).unwrap_or(&[]);
                let zs = self.col(2).get(range).unwrap_or(&[]);
                for ((&x, &y), &z) in xs.iter().zip(ys).zip(zs) {
                    comps += 1;
                    let (dx, dy, dz) = (x - qx, y - qy, z - qz);
                    if dx * dx + dy * dy + dz * dz <= eps_sq {
                        count += 1;
                        if count >= limit {
                            break;
                        }
                    }
                }
            }
            _ => {
                for slot in range {
                    comps += 1;
                    if self.sq_dist_to_slot(q, slot) <= eps_sq {
                        count += 1;
                        if count >= limit {
                            break;
                        }
                    }
                }
            }
        }
        (count, comps)
    }

    /// Whether any *flagged* slot of `range` lies within ε of `q`
    /// (`flags` is slot-indexed — the phase-5 "is this a core point"
    /// mask). With `early`, returns at the first hit; otherwise scans the
    /// whole range (the ablation mode). Returns `(hit, comparisons)`.
    #[inline]
    pub fn any_flagged_within(
        &self,
        q: &[f64],
        range: Range<usize>,
        eps_sq: f64,
        flags: &[bool],
        early: bool,
    ) -> (bool, u64) {
        let mut hit = false;
        let mut comps = 0u64;
        for slot in range {
            if !flags.get(slot).copied().unwrap_or(false) {
                continue;
            }
            comps += 1;
            if self.sq_dist_to_slot(q, slot) <= eps_sq {
                hit = true;
                if early {
                    break;
                }
            }
        }
        (hit, comps)
    }

    /// [`Self::count_within`] routed through the selected kernel.
    ///
    /// `Scalar` is the reference loop above; `Unrolled` computes squared
    /// distances in 8-lane (d = 2) / 4-lane (d ≥ 3) blocks, then *drains
    /// the block in slot order* when the count could reach `limit` inside
    /// it — so the `(count, comparisons)` pair is exactly what the scalar
    /// kernel returns, for every input. `Auto` resolves via
    /// [`KernelKind::resolve`]. Counter invariance across kernels is what
    /// keeps [`KernelCounters`]-style tallies comparable between runs.
    ///
    /// [`KernelCounters`]: https://docs.rs/dbscout-core
    #[inline]
    pub fn count_within_kernel(
        &self,
        q: &[f64],
        range: Range<usize>,
        eps_sq: f64,
        limit: usize,
        kernel: KernelKind,
    ) -> (usize, u64) {
        match kernel.resolve() {
            KernelKind::Unrolled => match self.dims {
                2 => self.count_within_2d_unrolled(q, range, eps_sq, limit),
                3 => self.count_within_3d_unrolled(q, range, eps_sq, limit),
                _ => self.count_within_generic_unrolled(q, range, eps_sq, limit),
            },
            _ => self.count_within(q, range, eps_sq, limit),
        }
    }

    /// [`Self::any_flagged_within`] routed through the selected kernel.
    /// The unrolled variant computes 4-lane distance blocks for any
    /// dimensionality but consults the flags (and tallies comparisons)
    /// per slot in order, so hits, early exits, and comparison counts
    /// match the scalar loop exactly.
    #[inline]
    pub fn any_flagged_within_kernel(
        &self,
        q: &[f64],
        range: Range<usize>,
        eps_sq: f64,
        flags: &[bool],
        early: bool,
        kernel: KernelKind,
    ) -> (bool, u64) {
        match kernel.resolve() {
            KernelKind::Unrolled => {
                self.any_flagged_within_unrolled(q, range, eps_sq, flags, early)
            }
            _ => self.any_flagged_within(q, range, eps_sq, flags, early),
        }
    }

    /// Appends every slot of `range` within ε of `q` (closed ball, given
    /// `eps_sq = ε²`) to `out`, in ascending slot order, returning the
    /// comparison tally. Unlike [`Self::count_within`] this reports the
    /// neighbor *identities* — what the incremental engine needs to bump
    /// per-point counts — and therefore never exits early: the tally is
    /// always `range.len()`, identical across kernels.
    #[inline]
    pub fn collect_within_kernel(
        &self,
        q: &[f64],
        range: Range<usize>,
        eps_sq: f64,
        kernel: KernelKind,
        out: &mut Vec<u32>,
    ) -> u64 {
        match kernel.resolve() {
            KernelKind::Unrolled => self.collect_within_unrolled(q, range, eps_sq, out),
            _ => self.collect_within(q, range, eps_sq, out),
        }
    }

    /// Scalar reference loop for [`Self::collect_within_kernel`].
    fn collect_within(
        &self,
        q: &[f64],
        range: Range<usize>,
        eps_sq: f64,
        out: &mut Vec<u32>,
    ) -> u64 {
        let comps = range.len() as u64;
        for slot in range {
            if self.sq_dist_to_slot(q, slot) <= eps_sq {
                out.push(slot as u32);
            }
        }
        comps
    }

    /// 4-lane unrolled collecting kernel: squared distances are computed
    /// per block, hits are pushed in slot order, so the output and the
    /// comparison tally are exactly the scalar loop's.
    fn collect_within_unrolled(
        &self,
        q: &[f64],
        range: Range<usize>,
        eps_sq: f64,
        out: &mut Vec<u32>,
    ) -> u64 {
        let comps = range.len() as u64;
        let mut slot = range.start;
        while slot + LANES_ND <= range.end {
            let d = self.sq_dists_x4_at(q, slot);
            for (i, &v) in d.iter().enumerate() {
                if v <= eps_sq {
                    out.push((slot + i) as u32);
                }
            }
            slot += LANES_ND;
        }
        for s in slot..range.end {
            if self.sq_dist_to_slot(q, s) <= eps_sq {
                out.push(s as u32);
            }
        }
        comps
    }

    /// 8-lane unrolled d = 2 counting kernel. The lane fast path accepts
    /// a whole block only when the count provably stays below `limit`
    /// (`count + hits < limit`); otherwise the block is drained in slot
    /// order so the early exit lands on the same comparison the scalar
    /// loop stops at.
    fn count_within_2d_unrolled(
        &self,
        q: &[f64],
        range: Range<usize>,
        eps_sq: f64,
        limit: usize,
    ) -> (usize, u64) {
        let (qx, qy) = (
            q.first().copied().unwrap_or(0.0),
            q.get(1).copied().unwrap_or(0.0),
        );
        let xs = self.col(0).get(range.clone()).unwrap_or(&[]);
        let ys = self.col(1).get(range).unwrap_or(&[]);
        let mut count = 0usize;
        let mut comps = 0u64;
        let mut xit = xs.chunks_exact(LANES_2D);
        let mut yit = ys.chunks_exact(LANES_2D);
        for (cx, cy) in xit.by_ref().zip(yit.by_ref()) {
            let (Ok(ax), Ok(ay)) = (
                <&[f64; LANES_2D]>::try_from(cx),
                <&[f64; LANES_2D]>::try_from(cy),
            ) else {
                break;
            };
            let d = sq_dists_2d_x8(qx, qy, ax, ay);
            let hits = d.iter().filter(|&&v| v <= eps_sq).count();
            if count + hits < limit {
                count += hits;
                comps += LANES_2D as u64;
            } else {
                for &v in &d {
                    comps += 1;
                    if v <= eps_sq {
                        count += 1;
                        if count >= limit {
                            return (count, comps);
                        }
                    }
                }
            }
        }
        for (&x, &y) in xit.remainder().iter().zip(yit.remainder()) {
            comps += 1;
            let (dx, dy) = (x - qx, y - qy);
            if dx * dx + dy * dy <= eps_sq {
                count += 1;
                if count >= limit {
                    break;
                }
            }
        }
        (count, comps)
    }

    /// 4-lane unrolled d = 3 counting kernel; same block/drain contract
    /// as the d = 2 kernel.
    fn count_within_3d_unrolled(
        &self,
        q: &[f64],
        range: Range<usize>,
        eps_sq: f64,
        limit: usize,
    ) -> (usize, u64) {
        let (qx, qy, qz) = (
            q.first().copied().unwrap_or(0.0),
            q.get(1).copied().unwrap_or(0.0),
            q.get(2).copied().unwrap_or(0.0),
        );
        let xs = self.col(0).get(range.clone()).unwrap_or(&[]);
        let ys = self.col(1).get(range.clone()).unwrap_or(&[]);
        let zs = self.col(2).get(range).unwrap_or(&[]);
        let mut count = 0usize;
        let mut comps = 0u64;
        let mut xit = xs.chunks_exact(LANES_ND);
        let mut yit = ys.chunks_exact(LANES_ND);
        let mut zit = zs.chunks_exact(LANES_ND);
        for ((cx, cy), cz) in xit.by_ref().zip(yit.by_ref()).zip(zit.by_ref()) {
            let (Ok(ax), Ok(ay), Ok(az)) = (
                <&[f64; LANES_ND]>::try_from(cx),
                <&[f64; LANES_ND]>::try_from(cy),
                <&[f64; LANES_ND]>::try_from(cz),
            ) else {
                break;
            };
            let d = sq_dists_3d_x4(qx, qy, qz, ax, ay, az);
            let hits = d.iter().filter(|&&v| v <= eps_sq).count();
            if count + hits < limit {
                count += hits;
                comps += LANES_ND as u64;
            } else {
                for &v in &d {
                    comps += 1;
                    if v <= eps_sq {
                        count += 1;
                        if count >= limit {
                            return (count, comps);
                        }
                    }
                }
            }
        }
        for ((&x, &y), &z) in xit
            .remainder()
            .iter()
            .zip(yit.remainder())
            .zip(zit.remainder())
        {
            comps += 1;
            let (dx, dy, dz) = (x - qx, y - qy, z - qz);
            if dx * dx + dy * dy + dz * dz <= eps_sq {
                count += 1;
                if count >= limit {
                    break;
                }
            }
        }
        (count, comps)
    }

    /// 4-lane unrolled counting kernel for any dimensionality:
    /// accumulates each dimension into four running lane totals, then
    /// applies the same block/drain contract as the specialized kernels.
    fn count_within_generic_unrolled(
        &self,
        q: &[f64],
        range: Range<usize>,
        eps_sq: f64,
        limit: usize,
    ) -> (usize, u64) {
        let mut count = 0usize;
        let mut comps = 0u64;
        let mut slot = range.start;
        while slot + LANES_ND <= range.end {
            let acc = self.sq_dists_x4_at(q, slot);
            let hits = acc.iter().filter(|&&v| v <= eps_sq).count();
            if count + hits < limit {
                count += hits;
                comps += LANES_ND as u64;
            } else {
                for &v in &acc {
                    comps += 1;
                    if v <= eps_sq {
                        count += 1;
                        if count >= limit {
                            return (count, comps);
                        }
                    }
                }
            }
            slot += LANES_ND;
        }
        for s in slot..range.end {
            comps += 1;
            if self.sq_dist_to_slot(q, s) <= eps_sq {
                count += 1;
                if count >= limit {
                    break;
                }
            }
        }
        (count, comps)
    }

    /// 4-lane unrolled flagged-scan kernel. Distances are computed per
    /// block (cheap, branch-free) but flags gate the per-slot verdicts in
    /// order, so the comparison tally and the `early` exit point are the
    /// scalar loop's exactly; blocks with no flagged slot are skipped
    /// without touching the columns, as the scalar loop skips them.
    fn any_flagged_within_unrolled(
        &self,
        q: &[f64],
        range: Range<usize>,
        eps_sq: f64,
        flags: &[bool],
        early: bool,
    ) -> (bool, u64) {
        let mut hit = false;
        let mut comps = 0u64;
        let mut slot = range.start;
        while slot + LANES_ND <= range.end {
            let flagged = (0..LANES_ND).any(|i| flags.get(slot + i).copied().unwrap_or(false));
            if flagged {
                let d = self.sq_dists_x4_at(q, slot);
                for (i, &v) in d.iter().enumerate() {
                    if !flags.get(slot + i).copied().unwrap_or(false) {
                        continue;
                    }
                    comps += 1;
                    if v <= eps_sq {
                        hit = true;
                        if early {
                            return (true, comps);
                        }
                    }
                }
            }
            slot += LANES_ND;
        }
        for s in slot..range.end {
            if !flags.get(s).copied().unwrap_or(false) {
                continue;
            }
            comps += 1;
            if self.sq_dist_to_slot(q, s) <= eps_sq {
                hit = true;
                if early {
                    break;
                }
            }
        }
        (hit, comps)
    }

    /// Squared distances from `q` to the four slots starting at `slot`,
    /// accumulated dimension-by-dimension in the scalar order (bit-equal
    /// to four [`Self::sq_dist_to_slot`] calls).
    #[inline]
    fn sq_dists_x4_at(&self, q: &[f64], slot: usize) -> [f64; LANES_ND] {
        let mut acc = [0.0f64; LANES_ND];
        for (k, &qk) in q.iter().enumerate().take(self.dims) {
            let base = k * self.n + slot;
            if let Ok(block) =
                <&[f64; LANES_ND]>::try_from(self.cols.get(base..base + LANES_ND).unwrap_or(&[]))
            {
                accumulate_sq_dists_x4(&mut acc, qk, block);
            }
        }
        acc
    }

    /// Squared distance from `q` to the point in `slot`.
    #[inline]
    fn sq_dist_to_slot(&self, q: &[f64], slot: usize) -> f64 {
        let mut acc = 0.0;
        for (k, &x) in q.iter().enumerate().take(self.dims) {
            let c = self.cols.get(k * self.n + slot).copied().unwrap_or(x);
            let d = c - x;
            acc += d * d;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::sq_dist;

    fn store_2d(points: &[[f64; 2]]) -> PointStore {
        PointStore::from_rows(2, points.iter().map(|p| p.to_vec())).unwrap()
    }

    fn gather_point(cm: &CellMajorStore, slot: usize) -> Vec<f64> {
        let mut buf = [0.0; MAX_DIMS];
        cm.point_into(slot, &mut buf);
        buf[..cm.dims()].to_vec()
    }

    #[test]
    fn permutation_is_a_bijection_preserving_coordinates() {
        let s = store_2d(&[[0.1, 0.1], [5.0, 5.0], [0.9, 0.9], [-3.0, 2.0], [5.1, 5.1]]);
        let cm = CellMajorStore::build(&s, 2f64.sqrt()).unwrap();
        assert_eq!(cm.len(), 5);
        let mut seen = [false; 5];
        for slot in 0..cm.len() {
            let id = cm.orig_ids()[slot];
            assert!(!seen[id as usize], "id {id} mapped twice");
            seen[id as usize] = true;
            assert_eq!(gather_point(&cm, slot), s.point(id));
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn cells_are_sorted_and_partition_the_slots() {
        let s = store_2d(&[[0.2, 0.2], [9.0, 9.0], [0.8, 0.8], [1.1, -0.3], [1.9, -0.9]]);
        let cm = CellMajorStore::build(&s, 2f64.sqrt()).unwrap();
        let mut next = 0u32;
        for w in cm.cells().windows(2) {
            assert!(w[0].coord < w[1].coord, "cells out of order");
        }
        for rec in cm.cells() {
            assert_eq!(rec.start, next, "gap before {:?}", rec.coord);
            assert!(rec.end > rec.start);
            next = rec.end;
        }
        assert_eq!(next as usize, cm.len());
    }

    #[test]
    fn ids_ascend_within_each_cell() {
        let s = store_2d(&[[0.3, 0.3], [0.1, 0.1], [0.2, 0.2], [7.0, 7.0]]);
        let cm = CellMajorStore::build(&s, 2f64.sqrt()).unwrap();
        for rec in cm.cells() {
            let ids = &cm.orig_ids()[rec.range()];
            for w in ids.windows(2) {
                assert!(w[0] < w[1], "ids not ascending in {:?}", rec.coord);
            }
        }
    }

    #[test]
    fn index_round_trips() {
        let s = store_2d(&[[0.5, 0.5], [10.0, -3.0]]);
        let cm = CellMajorStore::build(&s, 1.0).unwrap();
        for (i, rec) in cm.cells().iter().enumerate() {
            assert_eq!(cm.cell_index(&rec.coord), Some(i as u32));
        }
        assert_eq!(cm.cell_index(&CellCoord::from_slice(&[999, 999])), None);
    }

    #[test]
    fn bbox_contains_every_point_of_its_cell() {
        let s = store_2d(&[
            [0.11, 0.42],
            [0.35, 0.02],
            [0.21, 0.33],
            [4.0, 4.0],
            [4.2, 4.1],
        ]);
        let cm = CellMajorStore::build(&s, 2f64.sqrt()).unwrap();
        for (idx, rec) in cm.cells().iter().enumerate() {
            for slot in rec.range() {
                let p = gather_point(&cm, slot);
                assert_eq!(
                    cm.min_sq_dist_to_bbox(&p, idx),
                    0.0,
                    "point {p:?} escapes bbox of {:?}",
                    rec.coord
                );
            }
        }
    }

    #[test]
    fn point_to_bbox_lower_bounds_every_point_distance() {
        let s = store_2d(&[[0.1, 0.1], [0.4, 0.4], [2.0, 2.0], [2.3, 1.9]]);
        let cm = CellMajorStore::build(&s, 1.0).unwrap();
        let q = [5.0, -1.0];
        for (idx, rec) in cm.cells().iter().enumerate() {
            let lb = cm.min_sq_dist_to_bbox(&q, idx);
            for slot in rec.range() {
                let p = gather_point(&cm, slot);
                assert!(lb <= sq_dist(&q, &p) + 1e-12);
            }
        }
    }

    #[test]
    fn bbox_to_bbox_lower_bounds_every_point_pair() {
        let s = store_2d(&[[0.1, 0.1], [0.4, 0.4], [2.0, 2.0], [2.3, 1.9], [-3.0, 0.2]]);
        let cm = CellMajorStore::build(&s, 1.0).unwrap();
        for a in 0..cm.num_cells() {
            for b in 0..cm.num_cells() {
                let lb = cm.min_sq_dist_between_bboxes(a, b);
                for sa in cm.cells()[a].range() {
                    for sb in cm.cells()[b].range() {
                        let pa = gather_point(&cm, sa);
                        let pb = gather_point(&cm, sb);
                        assert!(lb <= sq_dist(&pa, &pb) + 1e-12);
                    }
                }
            }
        }
    }

    #[test]
    fn pruned_neighbors_are_a_subset_losing_nothing_within_eps() {
        // Points in adjacent cells but far apart inside them: the pruned
        // list may drop cells, but never one holding a point within eps
        // of any point of the query cell.
        let eps = 0.5;
        let s = store_2d(&[
            [0.01, 0.01],
            [0.30, 0.30],
            [0.34, 0.01], // next cell over, within eps of [0.30, 0.30]
            [0.69, 0.69], // diagonal cell, corner region
            [3.0, 3.0],
        ]);
        let cm = CellMajorStore::build(&s, eps).unwrap();
        let offsets = NeighborOffsets::new(2).unwrap();
        let eps_sq = eps * eps;
        for idx in 0..cm.num_cells() {
            let mut all = Vec::new();
            let mut pruned = Vec::new();
            cm.neighbors_into(idx, &offsets, None, &mut all);
            cm.neighbors_into(idx, &offsets, Some(eps_sq), &mut pruned);
            assert!(pruned.iter().all(|n| all.contains(n)));
            // Soundness: every dropped neighbor has no point within eps
            // of any point of the query cell.
            for dropped in all.iter().filter(|n| !pruned.contains(n)) {
                for sa in cm.cells()[idx].range() {
                    let pa = gather_point(&cm, sa);
                    for sb in cm.cells()[*dropped as usize].range() {
                        let pb = gather_point(&cm, sb);
                        assert!(
                            sq_dist(&pa, &pb) > eps_sq,
                            "prune dropped a reachable pair {pa:?} {pb:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn count_within_matches_brute_force_and_respects_limit() {
        let s = store_2d(&[[0.0, 0.0], [0.1, 0.0], [0.2, 0.0], [0.3, 0.0], [0.9, 0.0]]);
        let cm = CellMajorStore::build(&s, 10.0).unwrap(); // all one cell
        assert_eq!(cm.num_cells(), 1);
        let range = cm.cells()[0].range();
        let q = [0.0, 0.0];
        let (count, comps) = cm.count_within(&q, range.clone(), 0.25 * 0.25 + 1e-12, usize::MAX);
        assert_eq!(count, 3); // 0.0, 0.1, 0.2
        assert_eq!(comps, 5);
        let (count, comps) = cm.count_within(&q, range, 1.0, 2);
        assert_eq!(count, 2);
        assert!(comps <= 2, "early exit must stop scanning");
    }

    #[test]
    fn collect_within_matches_scalar_across_kernels_and_dims() {
        for dims in 2..=4usize {
            let rows: Vec<Vec<f64>> = (0..37)
                .map(|i| {
                    (0..dims)
                        .map(|k| ((i * (k + 3)) % 11) as f64 * 0.17)
                        .collect()
                })
                .collect();
            let s = PointStore::from_rows(dims, rows).unwrap();
            let cm = CellMajorStore::build(&s, 10.0).unwrap();
            let q: Vec<f64> = (0..dims).map(|k| 0.2 * k as f64).collect();
            for rec in cm.cells() {
                let eps_sq = 0.45;
                let mut scalar = Vec::new();
                let cs = cm.collect_within_kernel(
                    &q,
                    rec.range(),
                    eps_sq,
                    KernelKind::Scalar,
                    &mut scalar,
                );
                let mut unrolled = Vec::new();
                let cu = cm.collect_within_kernel(
                    &q,
                    rec.range(),
                    eps_sq,
                    KernelKind::Unrolled,
                    &mut unrolled,
                );
                assert_eq!(scalar, unrolled, "dims {dims} cell {:?}", rec.coord);
                assert_eq!(cs, cu);
                assert_eq!(cs, rec.len() as u64);
                // Hits ascend in slot order and match brute force.
                let brute: Vec<u32> = rec
                    .range()
                    .filter(|&slot| sq_dist(&gather_point(&cm, slot), &q) <= eps_sq)
                    .map(|slot| slot as u32)
                    .collect();
                assert_eq!(scalar, brute);
            }
        }
    }

    #[test]
    fn any_flagged_within_honors_flags_and_early_exit() {
        let s = store_2d(&[[0.0, 0.0], [0.1, 0.0], [0.2, 0.0]]);
        let cm = CellMajorStore::build(&s, 10.0).unwrap();
        let range = cm.cells()[0].range();
        let q = [0.0, 0.0];
        // No flags set: never a hit, zero comparisons.
        let (hit, comps) = cm.any_flagged_within(&q, range.clone(), 1.0, &[false; 3], true);
        assert!(!hit);
        assert_eq!(comps, 0);
        // Only the far slot flagged and out of range.
        let slot_of_02 = (0..3)
            .find(|&s| {
                let p = gather_point(&cm, s);
                (p[0] - 0.2).abs() < 1e-12
            })
            .unwrap();
        let mut flags = vec![false; 3];
        flags[slot_of_02] = true;
        let (hit, _) = cm.any_flagged_within(&q, range.clone(), 0.01, &flags, true);
        assert!(!hit);
        let (hit, _) = cm.any_flagged_within(&q, range, 0.05, &flags, true);
        assert!(hit);
    }

    #[test]
    fn three_d_and_generic_kernels_agree() {
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| {
                vec![
                    (i % 4) as f64 * 0.3,
                    (i % 5) as f64 * 0.2,
                    (i % 3) as f64 * 0.4,
                ]
            })
            .collect();
        let s = PointStore::from_rows(3, rows).unwrap();
        let cm = CellMajorStore::build(&s, 10.0).unwrap();
        let range = cm.cells()[0].range();
        let q = [0.3, 0.2, 0.4];
        let (fast, _) = cm.count_within(&q, range.clone(), 0.3, usize::MAX);
        // Brute-force recount through the gathered rows.
        let slow = range
            .clone()
            .filter(|&slot| sq_dist(&gather_point(&cm, slot), &q) <= 0.3)
            .count();
        assert_eq!(fast, slow);
    }

    #[test]
    fn empty_store_builds_empty_layout() {
        let s = PointStore::new(2).unwrap();
        let cm = CellMajorStore::build(&s, 1.0).unwrap();
        assert!(cm.is_empty());
        assert_eq!(cm.num_cells(), 0);
        assert!(cm.cells().is_empty());
        assert!(cm.orig_ids().is_empty());
    }

    #[test]
    fn invalid_eps_rejected() {
        let s = store_2d(&[[0.0, 0.0]]);
        for eps in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                CellMajorStore::build(&s, eps),
                Err(SpatialError::InvalidEpsilon { .. })
            ));
        }
    }

    fn assert_layout_identical(a: &CellMajorStore, b: &CellMajorStore) {
        assert_eq!(a.len(), b.len());
        assert_eq!(a.dims(), b.dims());
        assert_eq!(a.cells(), b.cells());
        assert_eq!(a.orig_ids(), b.orig_ids());
        for k in 0..a.dims() {
            assert_eq!(a.col(k), b.col(k), "column {k}");
        }
        assert_eq!(a.bbox_min, b.bbox_min);
        assert_eq!(a.bbox_max, b.bbox_max);
    }

    #[test]
    fn streaming_build_is_byte_identical_to_materialized_for_any_batching() {
        let pts: Vec<[f64; 2]> = (0..97)
            .map(|i| [((i * 37) % 50) as f64 * 0.3, ((i * 53) % 40) as f64 * 0.3])
            .collect();
        let s = store_2d(&pts);
        let eps = 1.5;
        let whole = CellMajorStore::build(&s, eps).unwrap();
        for batch in [1usize, 7, 16, 97, 1000] {
            let mut b = CellMajorBuilder::new(2, eps).unwrap();
            for chunk in s.flat().chunks(batch * 2) {
                b.count_batch(chunk).unwrap();
            }
            assert_eq!(b.len(), 97);
            let mut sc = b.begin_scatter();
            for chunk in s.flat().chunks(batch * 2) {
                sc.scatter_batch(chunk).unwrap();
            }
            assert_eq!(sc.filled(), 97);
            let streamed = sc.finish().unwrap();
            assert_layout_identical(&whole, &streamed);
        }
    }

    #[test]
    fn builder_validates_inputs() {
        assert!(matches!(
            CellMajorBuilder::new(0, 1.0),
            Err(SpatialError::ZeroDims)
        ));
        assert!(matches!(
            CellMajorBuilder::new(MAX_DIMS + 1, 1.0),
            Err(SpatialError::TooManyDims { .. })
        ));
        for eps in [0.0, -1.0, f64::NAN] {
            assert!(matches!(
                CellMajorBuilder::new(2, eps),
                Err(SpatialError::InvalidEpsilon { .. })
            ));
        }
        let mut b = CellMajorBuilder::new(2, 1.0).unwrap();
        assert!(matches!(
            b.count_batch(&[1.0, 2.0, 3.0]),
            Err(SpatialError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            b.count_batch(&[1.0, f64::NAN]),
            Err(SpatialError::NonFiniteCoordinate { point: 0, dim: 1 })
        ));
    }

    #[test]
    fn builder_counts_match_the_scattered_cell_table() {
        // The pass-1 accessors must describe exactly the cell table
        // `begin_scatter` will lay out: same cell count, same per-cell
        // counts, same canonical order.
        let pts: Vec<[f64; 2]> = (0..97)
            .map(|i| [((i * 37) % 50) as f64 * 0.3, ((i * 53) % 40) as f64 * 0.3])
            .collect();
        let s = store_2d(&pts);
        let mut b = CellMajorBuilder::new(2, 1.5).unwrap();
        for chunk in s.flat().chunks(16) {
            b.count_batch(chunk).unwrap();
        }
        let num_cells = b.num_cells();
        let counts = b.cell_counts_sorted();
        assert_eq!(counts.len(), num_cells);
        let mut sc = b.begin_scatter();
        for chunk in s.flat().chunks(16) {
            sc.scatter_batch(chunk).unwrap();
        }
        let cm = sc.finish().unwrap();
        assert_eq!(num_cells, cm.num_cells());
        let table_counts: Vec<u32> = cm.cells().iter().map(|r| r.len() as u32).collect();
        assert_eq!(counts, table_counts);
    }

    #[test]
    fn scatter_detects_replay_divergence() {
        // A point moving to a never-counted cell.
        let mut b = CellMajorBuilder::new(2, 1.0).unwrap();
        b.count_batch(&[0.1, 0.1, 0.2, 0.2]).unwrap();
        let mut sc = b.begin_scatter();
        assert!(matches!(
            sc.scatter_batch(&[50.0, 50.0]),
            Err(SpatialError::StreamMismatch)
        ));

        // A cell receiving more points than were counted.
        let mut b = CellMajorBuilder::new(2, 1.0).unwrap();
        b.count_batch(&[0.1, 0.1]).unwrap();
        let mut sc = b.begin_scatter();
        sc.scatter_batch(&[0.1, 0.1]).unwrap();
        assert!(matches!(
            sc.scatter_batch(&[0.15, 0.15]),
            Err(SpatialError::StreamMismatch)
        ));

        // The replay ending short.
        let mut b = CellMajorBuilder::new(2, 1.0).unwrap();
        b.count_batch(&[0.1, 0.1, 0.2, 0.2]).unwrap();
        let mut sc = b.begin_scatter();
        sc.scatter_batch(&[0.1, 0.1]).unwrap();
        assert!(matches!(sc.finish(), Err(SpatialError::StreamMismatch)));
    }

    #[test]
    fn empty_builder_finishes_into_an_empty_store() {
        let b = CellMajorBuilder::new(3, 1.0).unwrap();
        assert!(b.is_empty());
        let cm = b.begin_scatter().finish().unwrap();
        assert!(cm.is_empty());
        assert_eq!(cm.num_cells(), 0);
        assert_eq!(cm.dims(), 3);
    }

    #[test]
    fn merged_sharded_counts_build_the_same_layout() {
        let pts: Vec<[f64; 2]> = (0..61)
            .map(|i| [((i * 37) % 50) as f64 * 0.3, ((i * 53) % 40) as f64 * 0.3])
            .collect();
        let s = store_2d(&pts);
        let eps = 1.5;
        let whole = CellMajorStore::build(&s, eps).unwrap();
        for workers in [1usize, 2, 3, 5] {
            // Pass 1 on `workers` independent builders over batch shards,
            // merged in arbitrary (here: reverse) order.
            let batches: Vec<&[f64]> = s.flat().chunks(14).collect();
            let mut subs: Vec<CellMajorBuilder> = (0..workers)
                .map(|_| CellMajorBuilder::new(2, eps).unwrap())
                .collect();
            for (i, batch) in batches.iter().enumerate() {
                subs[i % workers].count_batch(batch).unwrap();
            }
            let mut merged = CellMajorBuilder::new(2, eps).unwrap();
            for sub in subs.into_iter().rev() {
                merged.merge(sub).unwrap();
            }
            assert_eq!(merged.len(), 61);
            let mut sc = merged.begin_scatter();
            for batch in &batches {
                sc.scatter_batch(batch).unwrap();
            }
            let streamed = sc.finish().unwrap();
            assert_layout_identical(&whole, &streamed);
        }
    }

    #[test]
    fn merge_rejects_incompatible_builders() {
        let mut b = CellMajorBuilder::new(2, 1.0).unwrap();
        assert!(matches!(
            b.merge(CellMajorBuilder::new(3, 1.0).unwrap()),
            Err(SpatialError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            b.merge(CellMajorBuilder::new(2, 2.0).unwrap()),
            Err(SpatialError::StreamMismatch)
        ));
    }

    #[test]
    fn sharded_scatter_is_byte_identical_to_sequential() {
        let pts: Vec<[f64; 2]> = (0..61)
            .map(|i| [((i * 37) % 50) as f64 * 0.3, ((i * 53) % 40) as f64 * 0.3])
            .collect();
        let s = store_2d(&pts);
        let eps = 1.5;
        let whole = CellMajorStore::build(&s, eps).unwrap();
        for parts in [1usize, 2, 3, 4, 7] {
            for batch in [1usize, 7, 61] {
                let mut b = CellMajorBuilder::new(2, eps).unwrap();
                for chunk in s.flat().chunks(batch * 2) {
                    b.count_batch(chunk).unwrap();
                }
                let mut sc = b.begin_scatter();
                let mut shards = sc.shards(parts);
                assert!(!shards.is_empty() && shards.len() <= parts);
                // Shards partition the cell table.
                let mut next = 0usize;
                for shard in &shards {
                    assert_eq!(shard.cell_range().start, next);
                    next = shard.cell_range().end;
                }
                // Every shard replays every batch (order per shard is the
                // stream order; shards themselves could run on threads).
                let mut placed = 0usize;
                for shard in &mut shards {
                    for chunk in s.flat().chunks(batch * 2) {
                        shard.scatter_batch(chunk).unwrap();
                    }
                    placed += shard.filled();
                }
                assert_eq!(placed, 61);
                drop(shards);
                let sharded = sc.finish_sharded().unwrap();
                assert_layout_identical(&whole, &sharded);
            }
        }
    }

    #[test]
    fn finish_sharded_detects_a_short_replay() {
        let mut b = CellMajorBuilder::new(2, 1.0).unwrap();
        b.count_batch(&[0.1, 0.1, 5.0, 5.0]).unwrap();
        let mut sc = b.begin_scatter();
        let mut shards = sc.shards(2);
        // Only the first shard replays: its cells fill, the rest don't.
        if let Some(first) = shards.first_mut() {
            first.scatter_batch(&[0.1, 0.1, 5.0, 5.0]).unwrap();
        }
        drop(shards);
        assert!(matches!(
            sc.finish_sharded(),
            Err(SpatialError::StreamMismatch)
        ));
    }

    #[test]
    fn empty_layout_yields_no_shards() {
        let b = CellMajorBuilder::new(2, 1.0).unwrap();
        let mut sc = b.begin_scatter();
        assert!(sc.shards(4).is_empty());
        assert!(sc.finish_sharded().unwrap().is_empty());
    }

    #[test]
    fn kernel_dispatch_matches_scalar_counts_and_comparisons() {
        for dims in [2usize, 3, 4] {
            let rows: Vec<Vec<f64>> = (0..37)
                .map(|i| {
                    (0..dims)
                        .map(|k| ((i * (k + 3)) % 11) as f64 * 0.21)
                        .collect()
                })
                .collect();
            let s = PointStore::from_rows(dims, rows).unwrap();
            let cm = CellMajorStore::build(&s, 25.0).unwrap(); // one big cell
            let range = cm.cells()[0].range();
            let q: Vec<f64> = (0..dims).map(|k| 0.21 * (k + 1) as f64).collect();
            for eps_sq in [0.0, 0.4, 1.0, 900.0] {
                for limit in [1usize, 3, 10, usize::MAX] {
                    let scalar = cm.count_within(&q, range.clone(), eps_sq, limit);
                    for kernel in [KernelKind::Scalar, KernelKind::Unrolled, KernelKind::Auto] {
                        let got = cm.count_within_kernel(&q, range.clone(), eps_sq, limit, kernel);
                        assert_eq!(got, scalar, "dims {dims} eps² {eps_sq} limit {limit}");
                    }
                }
            }
        }
    }

    #[test]
    fn flagged_kernel_dispatch_matches_scalar_hits_and_comparisons() {
        for dims in [2usize, 3, 4] {
            let rows: Vec<Vec<f64>> = (0..29)
                .map(|i| {
                    (0..dims)
                        .map(|k| ((i * (k + 2)) % 13) as f64 * 0.17)
                        .collect()
                })
                .collect();
            let s = PointStore::from_rows(dims, rows).unwrap();
            let cm = CellMajorStore::build(&s, 25.0).unwrap();
            let range = cm.cells()[0].range();
            let q: Vec<f64> = (0..dims).map(|_| 0.17).collect();
            for pattern in 0..4u32 {
                let flags: Vec<bool> = (0..cm.len())
                    .map(|slot| (slot as u32).wrapping_mul(pattern + 1).is_multiple_of(3))
                    .collect();
                for eps_sq in [0.0, 0.3, 900.0] {
                    for early in [true, false] {
                        let scalar =
                            cm.any_flagged_within(&q, range.clone(), eps_sq, &flags, early);
                        for kernel in [KernelKind::Scalar, KernelKind::Unrolled, KernelKind::Auto] {
                            let got = cm.any_flagged_within_kernel(
                                &q,
                                range.clone(),
                                eps_sq,
                                &flags,
                                early,
                                kernel,
                            );
                            assert_eq!(got, scalar, "dims {dims} pattern {pattern}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn layout_agrees_with_grid() {
        // Same cells, same per-cell id sets as the hashed grid.
        let pts: Vec<[f64; 2]> = (0..60)
            .map(|i| [((i * 37) % 50) as f64 * 0.3, ((i * 53) % 40) as f64 * 0.3])
            .collect();
        let s = store_2d(&pts);
        let eps = 1.5;
        let grid = crate::Grid::build(&s, eps).unwrap();
        let cm = CellMajorStore::build(&s, eps).unwrap();
        assert_eq!(cm.num_cells(), grid.num_cells());
        for rec in cm.cells() {
            let ids = &cm.orig_ids()[rec.range()];
            assert_eq!(grid.points_in(&rec.coord), Some(ids));
        }
    }
}
