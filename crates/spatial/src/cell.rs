//! ε-cells (paper Definition 4).
//!
//! An ε-cell is a d-dimensional hypercube whose **diagonal** is ε, i.e.
//! whose side is `l = ε/√d`; any two points inside one cell are therefore
//! at distance ≤ ε (the fact behind Lemma 1). A cell is identified by the
//! integer coordinates of its minimum vertex scaled by `l`:
//! `C_i = ⌊x_i / l⌋` (paper Algorithm 1).

/// Maximum supported dimensionality. The paper evaluates k_d for d ≤ 9
/// (Table I) and runs experiments on 2–3-dimensional data.
pub const MAX_DIMS: usize = 9;

/// Integer coordinates of an ε-cell.
///
/// Stored as a fixed-size array (zero-padded beyond `dims`) so the type is
/// `Copy` and hashes without heap traffic — cell ids are the shuffle keys
/// of every DBSCOUT phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellCoord {
    dims: u8,
    c: [i64; MAX_DIMS],
}

impl CellCoord {
    /// Builds a cell coordinate from a slice of per-dimension indices.
    ///
    /// # Panics
    ///
    /// Panics if `coords.len()` is 0 or exceeds [`MAX_DIMS`]; callers
    /// validate dimensionality when constructing stores and grids.
    pub fn from_slice(coords: &[i64]) -> Self {
        assert!(
            !coords.is_empty() && coords.len() <= MAX_DIMS,
            "cell dimensionality {} out of range 1..={}",
            coords.len(),
            MAX_DIMS
        );
        let mut c = [0i64; MAX_DIMS];
        for (out, &x) in c.iter_mut().zip(coords) {
            *out = x;
        }
        Self {
            dims: coords.len() as u8,
            c,
        }
    }

    /// Dimensionality of the cell.
    pub fn dims(&self) -> usize {
        self.dims as usize
    }

    /// The per-dimension integer coordinates.
    pub fn coords(&self) -> &[i64] {
        // `dims <= MAX_DIMS` is a constructor invariant, so the range is
        // always in bounds; fall back to the full array rather than panic.
        self.c.get(..self.dims as usize).unwrap_or(&self.c)
    }

    /// The cell displaced by `offset` (must have the same dimensionality).
    #[inline]
    pub fn offset_by(&self, offset: &CellCoord) -> CellCoord {
        debug_assert_eq!(self.dims, offset.dims);
        let mut c = [0i64; MAX_DIMS];
        for ((out, &a), &b) in c.iter_mut().zip(&self.c).zip(&offset.c) {
            *out = a + b;
        }
        CellCoord { dims: self.dims, c }
    }
}

/// Side length `l = ε/√d` of an ε-cell, nudged one ULP downward so that
/// the cell diagonal `l·√d` cannot exceed ε after rounding (keeps Lemma 1
/// exact in floating point).
pub fn cell_side(eps: f64, dims: usize) -> f64 {
    (eps / (dims as f64).sqrt()).next_down()
}

/// The cell containing `point`, for cells of side `side`.
#[inline]
pub fn cell_of(point: &[f64], side: f64) -> CellCoord {
    debug_assert!(point.len() <= MAX_DIMS);
    let mut c = [0i64; MAX_DIMS];
    for (out, &x) in c.iter_mut().zip(point) {
        *out = (x / side).floor() as i64;
    }
    CellCoord {
        dims: point.len() as u8,
        c,
    }
}

/// Squared minimum distance from `point` to the closed box of `cell`
/// (side `side`). Zero when the point lies inside the cell.
pub fn min_sq_dist_to_cell(point: &[f64], cell: &CellCoord, side: f64) -> f64 {
    let mut acc = 0.0;
    for (&x, &ci) in point.iter().zip(&cell.c) {
        let lo = ci as f64 * side;
        let hi = lo + side;
        let gap = if x < lo {
            lo - x
        } else if x > hi {
            x - hi
        } else {
            0.0
        };
        acc += gap * gap;
    }
    acc
}

/// Squared maximum distance from `point` to any point of `cell`'s box.
pub fn max_sq_dist_to_cell(point: &[f64], cell: &CellCoord, side: f64) -> f64 {
    let mut acc = 0.0;
    for (&x, &ci) in point.iter().zip(&cell.c) {
        let lo = ci as f64 * side;
        let hi = lo + side;
        let gap = (x - lo).abs().max((x - hi).abs());
        acc += gap * gap;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_slice_round_trip() {
        let c = CellCoord::from_slice(&[1, -2, 3]);
        assert_eq!(c.dims(), 3);
        assert_eq!(c.coords(), &[1, -2, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_slice_rejects_oversized() {
        CellCoord::from_slice(&[0; MAX_DIMS + 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_slice_rejects_empty() {
        CellCoord::from_slice(&[]);
    }

    #[test]
    fn zero_padding_makes_eq_and_hash_consistent() {
        let a = CellCoord::from_slice(&[1, 2]);
        let b = CellCoord::from_slice(&[1, 2]);
        assert_eq!(a, b);
        let mut set = std::collections::HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn offset_by_adds() {
        let c = CellCoord::from_slice(&[5, -3]);
        let o = CellCoord::from_slice(&[-1, 2]);
        assert_eq!(c.offset_by(&o).coords(), &[4, -1]);
    }

    #[test]
    fn paper_example_cell_assignment() {
        // Paper §III-B example: ε = √2, d = 2 gives side 1; point
        // (1.1, -0.3) lies in cell (1, -1).
        let side = cell_side(2f64.sqrt(), 2);
        let c = cell_of(&[1.1, -0.3], side);
        assert_eq!(c.coords(), &[1, -1]);
        // (0.5, 0.5) lies in cell (0, 0).
        assert_eq!(cell_of(&[0.5, 0.5], side).coords(), &[0, 0]);
        // (1.9, -0.9) lies in cell (1, -1).
        assert_eq!(cell_of(&[1.9, -0.9], side).coords(), &[1, -1]);
    }

    #[test]
    fn negative_coordinates_floor_correctly() {
        let c = cell_of(&[-0.1, -1.0], 1.0);
        assert_eq!(c.coords(), &[-1, -1]);
    }

    #[test]
    fn cell_diagonal_never_exceeds_eps() {
        for dims in 1..=MAX_DIMS {
            for &eps in &[0.1, 1.0, std::f64::consts::PI, 1e6] {
                let side = cell_side(eps, dims);
                let diagonal = side * (dims as f64).sqrt();
                assert!(
                    diagonal <= eps,
                    "diagonal {diagonal} > eps {eps} for d={dims}"
                );
            }
        }
    }

    #[test]
    fn min_max_dist_to_cell() {
        // Unit cell at (0,0): box [0,1]x[0,1].
        let cell = CellCoord::from_slice(&[0, 0]);
        // Point inside.
        assert_eq!(min_sq_dist_to_cell(&[0.5, 0.5], &cell, 1.0), 0.0);
        // Point left of the box at distance 2.
        assert_eq!(min_sq_dist_to_cell(&[-2.0, 0.5], &cell, 1.0), 4.0);
        // Max distance from origin corner is the far corner (1,1).
        assert_eq!(max_sq_dist_to_cell(&[0.0, 0.0], &cell, 1.0), 2.0);
        // Diagonal case.
        let d = min_sq_dist_to_cell(&[2.0, 2.0], &cell, 1.0);
        assert!((d - 2.0).abs() < 1e-12);
    }

    #[test]
    fn min_le_max_dist() {
        let cell = CellCoord::from_slice(&[3, -2, 1]);
        for p in [[0.0, 0.0, 0.0], [3.2, -1.7, 1.9], [100.0, -50.0, 0.1]] {
            assert!(min_sq_dist_to_cell(&p, &cell, 0.7) <= max_sq_dist_to_cell(&p, &cell, 0.7));
        }
    }
}
