//! Neighboring-cell offset enumeration (paper Definition 8, Lemma 3,
//! Table I).
//!
//! Two cells are *neighbors* iff the minimum possible distance between a
//! point of one and a point of the other is `< ε`. For cells of side
//! `l = ε/√d`, the offset vector `j ∈ ℤ^d` between two cells leaves a
//! per-dimension gap of `max(|j_i| − 1, 0)` cell sides, so the condition
//! becomes
//!
//! ```text
//! l · √( Σ_i max(|j_i| − 1, 0)² ) < ε   ⇔   Σ_i max(|j_i| − 1, 0)² < d
//! ```
//!
//! The number of such offsets is the paper's constant k_d; the loose bound
//! of Lemma 3 is `(2⌈√d⌉ + 1)^d`. This module reproduces the *actual k_d*
//! column of Table I exactly.

use crate::cell::{CellCoord, MAX_DIMS};
use crate::error::SpatialError;

/// The precomputed set of neighbor offsets for one dimensionality.
///
/// Offsets are stored as a flat `Vec<i8>` with stride `dims` (components
/// never exceed ⌈√d⌉ ≤ 3 for d ≤ 9), in lexicographic order; the zero
/// offset (a cell is its own neighbor) is always present.
#[derive(Debug, Clone)]
pub struct NeighborOffsets {
    dims: usize,
    flat: Vec<i8>,
}

impl NeighborOffsets {
    /// Enumerates all neighbor offsets for `dims`-dimensional cells.
    ///
    /// # Errors
    ///
    /// Fails if `dims` is zero or exceeds [`MAX_DIMS`].
    pub fn new(dims: usize) -> Result<Self, SpatialError> {
        if dims == 0 {
            return Err(SpatialError::ZeroDims);
        }
        if dims > MAX_DIMS {
            return Err(SpatialError::TooManyDims { requested: dims });
        }
        let r = (dims as f64).sqrt().ceil() as i64;
        let mut flat = Vec::new();
        let mut current = vec![0i8; dims];
        enumerate(dims, r as i8, dims as i64, 0, 0, &mut current, &mut |off| {
            flat.extend_from_slice(off)
        });
        Ok(Self { dims, flat })
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of offsets — the paper's k_d.
    pub fn len(&self) -> usize {
        self.flat.len() / self.dims
    }

    /// Always false: the zero offset is present for every valid `dims`.
    pub fn is_empty(&self) -> bool {
        self.flat.is_empty()
    }

    /// Iterates over the offsets as `&[i8]` slices of length `dims`.
    pub fn iter(&self) -> impl Iterator<Item = &[i8]> + '_ {
        self.flat.chunks_exact(self.dims)
    }

    /// The cell displaced from `cell` by offset `off`.
    #[inline]
    pub fn apply(cell: &CellCoord, off: &[i8]) -> CellCoord {
        let mut coords = [0i64; MAX_DIMS];
        let c = cell.coords();
        for ((out, &a), &o) in coords.iter_mut().zip(c).zip(off) {
            *out = a + o as i64;
        }
        CellCoord::from_slice(coords.get(..c.len()).unwrap_or(&coords))
    }
}

/// Counts k_d without materialising the offsets (Table I's "Actual k_d"
/// column; usable up to d = 9 where the candidate space is ~40M vectors).
pub fn count_k_d(dims: usize) -> Result<u64, SpatialError> {
    if dims == 0 {
        return Err(SpatialError::ZeroDims);
    }
    if dims > MAX_DIMS {
        return Err(SpatialError::TooManyDims { requested: dims });
    }
    let r = (dims as f64).sqrt().ceil() as i8;
    let mut count = 0u64;
    let mut current = vec![0i8; dims];
    enumerate(dims, r, dims as i64, 0, 0, &mut current, &mut |_| {
        count += 1
    });
    Ok(count)
}

/// The loose upper bound of Lemma 3: `(2⌈√d⌉ + 1)^d`.
pub fn loose_upper_bound(dims: usize) -> u64 {
    let r = (dims as f64).sqrt().ceil() as u64;
    (2 * r + 1).pow(dims as u32)
}

/// DFS over offset vectors with penalty pruning. `penalty` accumulates
/// `Σ max(|j_i|−1, 0)²`; a branch is cut as soon as it reaches `d`.
fn enumerate(
    dims: usize,
    r: i8,
    d: i64,
    dim: usize,
    penalty: i64,
    current: &mut Vec<i8>,
    emit: &mut impl FnMut(&[i8]),
) {
    if dim == dims {
        emit(current);
        return;
    }
    for j in -r..=r {
        let gap = (j.unsigned_abs() as i64).saturating_sub(1).max(0);
        let p = penalty + gap * gap;
        if p < d {
            if let Some(slot) = current.get_mut(dim) {
                *slot = j;
            }
            enumerate(dims, r, d, dim + 1, p, current, emit);
        }
    }
    if let Some(slot) = current.get_mut(dim) {
        *slot = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table I of the paper: (d, loose upper bound, actual k_d).
    const TABLE_I: &[(usize, u64, u64)] = &[
        (2, 25, 21),
        (3, 125, 117),
        (4, 625, 609),
        (5, 16807, 3903),
        (6, 117649, 28197),
    ];

    #[test]
    fn reproduces_table_i_actual_kd() {
        for &(d, _, expected) in TABLE_I {
            assert_eq!(count_k_d(d).unwrap(), expected, "k_d mismatch for d={d}");
            assert_eq!(
                NeighborOffsets::new(d).unwrap().len() as u64,
                expected,
                "materialised k_d mismatch for d={d}"
            );
        }
    }

    #[test]
    fn reproduces_table_i_upper_bound() {
        for &(d, bound, _) in TABLE_I {
            assert_eq!(loose_upper_bound(d), bound, "bound mismatch for d={d}");
        }
        assert_eq!(loose_upper_bound(7), 823543);
        assert_eq!(loose_upper_bound(8), 5764801);
        assert_eq!(loose_upper_bound(9), 40353607);
    }

    #[test]
    fn d1_is_adjacent_cells_only() {
        // For d = 1 the condition is max(|j|−1,0)² < 1, i.e. j ∈ {−1,0,1}.
        let offs = NeighborOffsets::new(1).unwrap();
        let got: Vec<i8> = offs.iter().map(|o| o[0]).collect();
        assert_eq!(got, vec![-1, 0, 1]);
    }

    #[test]
    fn zero_offset_present() {
        for d in 1..=4 {
            let offs = NeighborOffsets::new(d).unwrap();
            assert!(
                offs.iter().any(|o| o.iter().all(|&j| j == 0)),
                "zero offset missing for d={d}"
            );
        }
    }

    #[test]
    fn offsets_are_symmetric() {
        // If j is a neighbor offset, so is −j (Definition 8 is symmetric).
        for d in 1..=4 {
            let offs = NeighborOffsets::new(d).unwrap();
            let set: std::collections::HashSet<Vec<i8>> = offs.iter().map(|o| o.to_vec()).collect();
            for o in offs.iter() {
                let neg: Vec<i8> = o.iter().map(|&j| -j).collect();
                assert!(set.contains(&neg), "missing mirror of {o:?} for d={d}");
            }
        }
    }

    #[test]
    fn every_offset_satisfies_min_distance_condition() {
        for d in 2..=5 {
            let offs = NeighborOffsets::new(d).unwrap();
            for o in offs.iter() {
                let penalty: i64 = o
                    .iter()
                    .map(|&j| {
                        let g = (j.unsigned_abs() as i64).saturating_sub(1).max(0);
                        g * g
                    })
                    .sum();
                assert!(penalty < d as i64, "offset {o:?} violates condition, d={d}");
            }
        }
    }

    #[test]
    fn non_neighbors_really_cannot_be_within_eps() {
        // Geometric cross-check in 2-D: for each *excluded* offset, the
        // closest corners of the two cells are at distance ≥ ε — up to one
        // ULP, because `cell_side` nudges the side down so that Lemma 1
        // (same-cell diagonal ≤ ε) holds exactly in floating point. The
        // paper's own Definition 8 (strict `< ε`) excludes the same
        // measure-zero corner-touch configurations.
        let d = 2usize;
        let eps = 1.0;
        let side = crate::cell::cell_side(eps, d);
        let offs = NeighborOffsets::new(d).unwrap();
        let set: std::collections::HashSet<Vec<i8>> = offs.iter().map(|o| o.to_vec()).collect();
        let r = 3i8;
        for a in -r..=r {
            for b in -r..=r {
                if set.contains(&vec![a, b]) {
                    continue;
                }
                let gx = (a.unsigned_abs() as f64 - 1.0).max(0.0) * side;
                let gy = (b.unsigned_abs() as f64 - 1.0).max(0.0) * side;
                let min_dist = (gx * gx + gy * gy).sqrt();
                assert!(
                    min_dist >= eps * (1.0 - 1e-12),
                    "excluded offset ({a},{b}) has min dist {min_dist} < {eps}"
                );
            }
        }
    }

    #[test]
    fn apply_offsets() {
        let cell = CellCoord::from_slice(&[10, -5]);
        let got = NeighborOffsets::apply(&cell, &[-1, 2]);
        assert_eq!(got.coords(), &[9, -3]);
    }

    #[test]
    fn invalid_dims_rejected() {
        assert!(NeighborOffsets::new(0).is_err());
        assert!(NeighborOffsets::new(MAX_DIMS + 1).is_err());
        assert!(count_k_d(0).is_err());
    }
}
