//! Process peak-memory probe for the out-of-core ingest experiments.
//!
//! The streaming detection path exists to bound resident memory by the
//! grid layout rather than the raw input file; `peak_rss_bytes` in the
//! run report is the observable that claim is checked against (both by
//! the CI smoke run under `ulimit -v` and by the streaming benchmarks).

/// Peak resident set size of the current process in bytes.
///
/// On Linux this is `VmHWM` from `/proc/self/status` — the high-water
/// mark of physical pages the kernel has ever mapped for the process.
/// Returns 0 when the platform does not expose it (or the file cannot be
/// parsed); a report field of 0 therefore means "unknown", never "no
/// memory used".
pub fn peak_rss_bytes() -> u64 {
    imp::peak_rss_bytes()
}

#[cfg(target_os = "linux")]
mod imp {
    pub(super) fn peak_rss_bytes() -> u64 {
        let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
            return 0;
        };
        parse_vm_hwm(&status).unwrap_or(0)
    }

    /// Extracts `VmHWM: <n> kB` from a `/proc/<pid>/status` document.
    pub(super) fn parse_vm_hwm(status: &str) -> Option<u64> {
        let line = status
            .lines()
            .find(|line| line.starts_with("VmHWM:"))?
            .strip_prefix("VmHWM:")?;
        let kb: u64 = line.trim().strip_suffix("kB")?.trim().parse().ok()?;
        kb.checked_mul(1024)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn parses_a_real_looking_status_document() {
            let status =
                "Name:\tdbscout\nVmPeak:\t  123456 kB\nVmHWM:\t   98304 kB\nVmRSS:\t   65536 kB\n";
            assert_eq!(parse_vm_hwm(status), Some(98304 * 1024));
        }

        #[test]
        fn missing_or_malformed_lines_yield_none() {
            assert_eq!(parse_vm_hwm(""), None);
            assert_eq!(parse_vm_hwm("VmRSS:\t 10 kB\n"), None);
            assert_eq!(parse_vm_hwm("VmHWM:\t ten kB\n"), None);
            assert_eq!(parse_vm_hwm("VmHWM:\t 10\n"), None);
        }

        #[test]
        fn the_running_process_reports_a_positive_peak() {
            assert!(super::peak_rss_bytes() > 0);
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    pub(super) fn peak_rss_bytes() -> u64 {
        0
    }
}
