//! Process CPU-time probe for per-worker attribution.
//!
//! Worker processes report their consumed CPU time alongside `VmHWM` in
//! heartbeats, so a merged trace can attribute compute (not just
//! wall-clock, which overlaps across workers) to each child.

/// Total CPU time (user + system) consumed by the current process, in
/// microseconds.
///
/// On Linux this reads `utime` + `stime` from `/proc/self/stat` (clock
/// ticks at the kernel's `USER_HZ`, fixed at 100 on every supported
/// architecture, so one tick is 10 000 µs). Returns 0 when the platform
/// does not expose it or the file cannot be parsed — 0 means "unknown",
/// never "no CPU used".
pub fn cpu_time_us() -> u64 {
    imp::cpu_time_us()
}

#[cfg(target_os = "linux")]
mod imp {
    /// Microseconds per `USER_HZ` clock tick (100 Hz).
    const US_PER_TICK: u64 = 10_000;

    pub(super) fn cpu_time_us() -> u64 {
        let Ok(stat) = std::fs::read_to_string("/proc/self/stat") else {
            return 0;
        };
        parse_cpu_ticks(&stat).map_or(0, |t| t.saturating_mul(US_PER_TICK))
    }

    /// Extracts `utime + stime` (fields 14 and 15) from a
    /// `/proc/<pid>/stat` line. The command name (field 2) is wrapped in
    /// parentheses and may itself contain spaces or parentheses, so
    /// parsing starts after the *last* `)`.
    pub(super) fn parse_cpu_ticks(stat: &str) -> Option<u64> {
        let rest = stat.rsplit_once(')')?.1;
        // `rest` starts at field 3 (state); utime/stime are fields 14/15.
        let mut fields = rest.split_whitespace().skip(11);
        let utime: u64 = fields.next()?.parse().ok()?;
        let stime: u64 = fields.next()?.parse().ok()?;
        Some(utime.saturating_add(stime))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn parses_a_real_looking_stat_line() {
            let stat = "1234 (dbscout) S 1 1234 1234 0 -1 4194304 500 0 0 0 \
                        42 7 0 0 20 0 1 0 100 1000000 50 18446744073709551615";
            assert_eq!(parse_cpu_ticks(stat), Some(49));
        }

        #[test]
        fn a_parenthesized_space_laden_comm_does_not_break_parsing() {
            let stat = "99 (a (we) ird) R 1 99 99 0 -1 4194304 500 0 0 0 \
                        3 4 0 0 20 0 1 0 100 1000000 50 18446744073709551615";
            assert_eq!(parse_cpu_ticks(stat), Some(7));
        }

        #[test]
        fn malformed_lines_yield_none() {
            assert_eq!(parse_cpu_ticks(""), None);
            assert_eq!(parse_cpu_ticks("no parens here"), None);
            assert_eq!(parse_cpu_ticks("1 (x) S 1 2 3"), None);
        }

        #[test]
        fn the_running_process_reports_a_parseable_stat() {
            // CPU time may legitimately round to 0 ticks early in a
            // process's life; only assert the probe does not error.
            let _ = super::cpu_time_us();
            let stat = std::fs::read_to_string("/proc/self/stat").unwrap();
            assert!(parse_cpu_ticks(&stat).is_some());
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    pub(super) fn cpu_time_us() -> u64 {
        0
    }
}
