//! Kernel work counters: the schedule-invariant observables behind the
//! paper's pruning-efficiency claims.
//!
//! Wall-clock timings on a noisy shared container say little about how
//! much *work* the grid pruning avoided; these counters say it exactly.
//! Each is a plain sum over the cells a kernel visited, and every kernel
//! operates on a disjoint cell range — so the totals are a sum over a
//! partition of `0..num_cells` and therefore do not depend on thread
//! count, task schedule, or execution backend. That invariance is what
//! lets them live in the deterministic (non-stripped) section of run
//! reports and be pinned byte-identical across backends by test.

/// Canonical counter names, in the order they are reported. Trace
/// counter events and report fields both use exactly these strings, so
/// validators can check that an emitted counter was declared.
pub const KERNEL_COUNTER_NAMES: [&str; 4] = [
    "cells_visited",
    "bbox_prunes",
    "early_exit_hits",
    "distance_evals",
];

/// Work counters accumulated by the phase-3/phase-5 kernels.
///
/// All four are monotone sums over disjoint per-cell work, so merging
/// per-task values with [`merge`](KernelCounters::merge) in *any* order
/// yields the same totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelCounters {
    /// Cells a kernel iterated over (skipped-by-flag cells included:
    /// the loop still touched them).
    pub cells_visited: u64,
    /// Neighbor cells skipped because the query point's minimum squared
    /// distance to the cell's bounding box already exceeded ε².
    pub bbox_prunes: u64,
    /// Early terminations: a core-point count reached `minPts` (or an
    /// outlier query found a core neighbor) before the neighbor list was
    /// exhausted.
    pub early_exit_hits: u64,
    /// Point-to-point squared-distance evaluations (the quantity the
    /// linearity proof of Lemma 6/8 bounds).
    pub distance_evals: u64,
}

impl KernelCounters {
    /// All-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `other` into `self` (saturating; order-independent).
    pub fn merge(&mut self, other: &KernelCounters) {
        self.cells_visited = self.cells_visited.saturating_add(other.cells_visited);
        self.bbox_prunes = self.bbox_prunes.saturating_add(other.bbox_prunes);
        self.early_exit_hits = self.early_exit_hits.saturating_add(other.early_exit_hits);
        self.distance_evals = self.distance_evals.saturating_add(other.distance_evals);
    }

    /// The counters as `(name, value)` pairs in canonical order.
    pub fn named(&self) -> [(&'static str, u64); 4] {
        [
            ("cells_visited", self.cells_visited),
            ("bbox_prunes", self.bbox_prunes),
            ("early_exit_hits", self.early_exit_hits),
            ("distance_evals", self.distance_evals),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_order_independent() {
        let parts = [
            KernelCounters {
                cells_visited: 3,
                bbox_prunes: 1,
                early_exit_hits: 0,
                distance_evals: 10,
            },
            KernelCounters {
                cells_visited: 5,
                bbox_prunes: 0,
                early_exit_hits: 2,
                distance_evals: 7,
            },
            KernelCounters {
                cells_visited: 1,
                bbox_prunes: 4,
                early_exit_hits: 1,
                distance_evals: 0,
            },
        ];
        let mut forward = KernelCounters::new();
        for p in &parts {
            forward.merge(p);
        }
        let mut backward = KernelCounters::new();
        for p in parts.iter().rev() {
            backward.merge(p);
        }
        assert_eq!(forward, backward);
        assert_eq!(forward.cells_visited, 9);
        assert_eq!(forward.distance_evals, 17);
    }

    #[test]
    fn named_matches_the_canonical_name_list() {
        let c = KernelCounters {
            cells_visited: 1,
            bbox_prunes: 2,
            early_exit_hits: 3,
            distance_evals: 4,
        };
        let named = c.named();
        for (i, (name, _)) in named.iter().enumerate() {
            assert_eq!(*name, KERNEL_COUNTER_NAMES[i]);
        }
        assert_eq!(named[3], ("distance_evals", 4));
    }

    #[test]
    fn merge_saturates_instead_of_overflowing() {
        let mut a = KernelCounters {
            cells_visited: u64::MAX,
            ..KernelCounters::default()
        };
        a.merge(&KernelCounters {
            cells_visited: 1,
            ..KernelCounters::default()
        });
        assert_eq!(a.cells_visited, u64::MAX);
    }
}
