//! A [`Recorder`] that buffers spans and renders a Chrome Trace file.

use std::collections::BTreeMap;
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

use crate::json::JsonWriter;
use crate::span::{ArgValue, Recorder, Span};

/// Buffers spans (and counter totals) in memory and renders them as a
/// Chrome Trace Event Format JSON array — the format consumed by
/// `chrome://tracing` and [Perfetto](https://ui.perfetto.dev).
///
/// All timestamps are microsecond offsets from the collector's creation
/// instant, so traces from different runs line up at zero.
#[derive(Debug)]
pub struct TraceCollector {
    epoch: Instant,
    spans: Mutex<Vec<Span>>,
    counters: Mutex<BTreeMap<String, u64>>,
    counter_points: Mutex<Vec<(String, Instant, u64)>>,
}

impl Default for TraceCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceCollector {
    /// A collector whose time origin is "now".
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
            spans: Mutex::new(Vec::new()),
            counters: Mutex::new(BTreeMap::new()),
            counter_points: Mutex::new(Vec::new()),
        }
    }

    /// Number of buffered spans.
    pub fn span_count(&self) -> usize {
        self.spans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// A snapshot of the buffered spans, in recording order.
    pub fn spans(&self) -> Vec<Span> {
        self.spans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Counter totals accumulated via
    /// [`record_counter`](Recorder::record_counter), sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.counters
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Timestamped counter samples recorded via
    /// [`record_counter_point`](Recorder::record_counter_point), in
    /// recording order.
    pub fn counter_points(&self) -> Vec<(String, u64)> {
        self.counter_points
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(name, _, value)| (name.clone(), *value))
            .collect()
    }

    /// Renders the buffered spans as a Chrome Trace Event Format
    /// document: a JSON array of complete (`"ph": "X"`) events with
    /// microsecond `ts`/`dur`, the span kind as `cat`, the owning
    /// process as `pid`, and the span's key-value arguments under
    /// `args` — followed by one counter (`"ph": "C"`) event per
    /// recorded counter sample. Events are ordered by start time (ties
    /// broken by name) so concurrent recording order does not leak into
    /// the file.
    pub fn to_chrome_trace(&self) -> String {
        let mut spans = self.spans();
        spans.sort_by(|a, b| {
            a.start
                .cmp(&b.start)
                .then_with(|| a.name.cmp(&b.name))
                .then_with(|| a.pid.cmp(&b.pid))
                .then_with(|| a.lane.cmp(&b.lane))
        });
        let mut w = JsonWriter::new();
        w.begin_array();
        for span in &spans {
            let ts = span.start.saturating_duration_since(self.epoch).as_micros() as u64;
            let dur = span.duration.as_micros() as u64;
            w.begin_object();
            w.field_str("name", &span.name);
            w.field_str("cat", span.kind.category());
            w.field_str("ph", "X");
            w.field_u64("ts", ts);
            w.field_u64("dur", dur);
            w.field_u64("pid", span.pid);
            w.field_u64("tid", span.lane);
            w.begin_object_field("args");
            for (key, value) in &span.args {
                match value {
                    ArgValue::U64(v) => w.field_u64(key, *v),
                    ArgValue::Bool(v) => w.field_bool(key, *v),
                    ArgValue::Str(v) => w.field_str(key, v),
                };
            }
            w.end_object();
            w.end_object();
        }
        let mut points = self
            .counter_points
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        points.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        for (name, at, value) in &points {
            let ts = at.saturating_duration_since(self.epoch).as_micros() as u64;
            w.begin_object();
            w.field_str("name", name);
            w.field_str("ph", "C");
            w.field_u64("ts", ts);
            w.field_u64("pid", 1);
            w.begin_object_field("args");
            w.field_u64("value", *value);
            w.end_object();
            w.end_object();
        }
        w.end_array();
        w.finish()
    }
}

impl Recorder for TraceCollector {
    fn record_span(&self, span: Span) {
        self.spans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(span);
    }

    fn record_counter(&self, name: &str, delta: u64) {
        let mut counters = self.counters.lock().unwrap_or_else(PoisonError::into_inner);
        let slot = counters.entry(name.to_owned()).or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    fn record_counter_point(&self, name: &str, at: Instant, value: u64) {
        self.counter_points
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push((name.to_owned(), at, value));
        // The running total also lands in the totals map (cumulative
        // samples are monotone, so the max across points is the total).
        let mut counters = self.counters.lock().unwrap_or_else(PoisonError::into_inner);
        let slot = counters.entry(name.to_owned()).or_insert(0);
        *slot = (*slot).max(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Value};
    use crate::span::SpanKind;
    use std::time::Duration;

    #[test]
    fn chrome_trace_is_valid_json_with_required_fields() {
        let collector = TraceCollector::new();
        let t0 = collector.epoch;
        collector.record_span(
            Span::new(
                "grid partitioning",
                SpanKind::Phase,
                t0,
                Duration::from_millis(5),
            )
            .arg("cells", 16usize),
        );
        collector.record_span(
            Span::new(
                "map_partitions",
                SpanKind::Task,
                t0 + Duration::from_micros(100),
                Duration::from_micros(900),
            )
            .lane(3)
            .arg("partition", 2usize)
            .arg("outcome", "success"),
        );
        let doc = parse(&collector.to_chrome_trace()).unwrap();
        let events = doc.as_array().unwrap();
        assert_eq!(events.len(), 2);
        for ev in events {
            assert_eq!(ev.get("ph").unwrap().as_str(), Some("X"));
            assert!(ev.get("ts").unwrap().as_u64().is_some());
            assert!(ev.get("dur").unwrap().as_u64().is_some());
            assert!(ev.get("name").unwrap().as_str().is_some());
            assert!(matches!(ev.get("args"), Some(Value::Object(_))));
        }
        let phase = &events[0];
        assert_eq!(
            phase.get("name").unwrap().as_str(),
            Some("grid partitioning")
        );
        assert_eq!(phase.get("cat").unwrap().as_str(), Some("phase"));
        assert_eq!(phase.get("ts").unwrap().as_u64(), Some(0));
        let task = &events[1];
        assert_eq!(task.get("tid").unwrap().as_u64(), Some(3));
        assert_eq!(task.get("ts").unwrap().as_u64(), Some(100));
        assert_eq!(task.get("dur").unwrap().as_u64(), Some(900));
        assert_eq!(
            task.get("args").unwrap().get("partition").unwrap().as_u64(),
            Some(2)
        );
        assert_eq!(
            task.get("args").unwrap().get("outcome").unwrap().as_str(),
            Some("success")
        );
    }

    #[test]
    fn events_are_sorted_by_start_time() {
        let collector = TraceCollector::new();
        let t0 = collector.epoch;
        collector.record_span(Span::new(
            "later",
            SpanKind::Stage,
            t0 + Duration::from_millis(2),
            Duration::from_millis(1),
        ));
        collector.record_span(Span::new(
            "earlier",
            SpanKind::Stage,
            t0,
            Duration::from_millis(1),
        ));
        let doc = parse(&collector.to_chrome_trace()).unwrap();
        let events = doc.as_array().unwrap();
        assert_eq!(events[0].get("name").unwrap().as_str(), Some("earlier"));
        assert_eq!(events[1].get("name").unwrap().as_str(), Some("later"));
    }

    #[test]
    fn merged_spans_keep_their_worker_pid_lane() {
        let collector = TraceCollector::new();
        let t0 = collector.epoch;
        collector.record_span(Span::new(
            "driver",
            SpanKind::Stage,
            t0,
            Duration::from_millis(2),
        ));
        collector.record_span(
            Span::new("shard", SpanKind::Task, t0, Duration::from_millis(1)).pid(4242),
        );
        let doc = parse(&collector.to_chrome_trace()).unwrap();
        let events = doc.as_array().unwrap();
        let pid_of = |name: &str| {
            events
                .iter()
                .find(|e| e.get("name").unwrap().as_str() == Some(name))
                .unwrap()
                .get("pid")
                .unwrap()
                .as_u64()
                .unwrap()
        };
        assert_eq!(pid_of("driver"), 1);
        assert_eq!(pid_of("shard"), 4242);
    }

    #[test]
    fn counter_points_render_as_counter_events() {
        let collector = TraceCollector::new();
        let t0 = collector.epoch;
        collector.record_counter_point("distance_evals", t0 + Duration::from_micros(50), 120);
        collector.record_counter_point("distance_evals", t0 + Duration::from_micros(10), 40);
        let doc = parse(&collector.to_chrome_trace()).unwrap();
        let events = doc.as_array().unwrap();
        assert_eq!(events.len(), 2);
        // Counter events are sorted by timestamp and carry args.value.
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("C"));
        assert_eq!(events[0].get("ts").unwrap().as_u64(), Some(10));
        assert_eq!(
            events[0]
                .get("args")
                .unwrap()
                .get("value")
                .unwrap()
                .as_u64(),
            Some(40)
        );
        assert_eq!(events[1].get("ts").unwrap().as_u64(), Some(50));
        // The totals map holds the cumulative maximum, not the sum.
        assert_eq!(
            collector.counters(),
            vec![("distance_evals".to_owned(), 120)]
        );
    }

    #[test]
    fn counters_accumulate_by_name() {
        let collector = TraceCollector::new();
        collector.record_counter("shuffle_records", 5);
        collector.record_counter("shuffle_records", 7);
        collector.record_counter("broadcasts", 1);
        assert_eq!(
            collector.counters(),
            vec![
                ("broadcasts".to_owned(), 1),
                ("shuffle_records".to_owned(), 12)
            ]
        );
    }
}
