//! Fixed-bucket duration histograms.
//!
//! Task latencies span six orders of magnitude (microsecond-scale grid
//! tasks to multi-second straggler partitions), so the buckets are
//! log2-spaced over microseconds: bucket `i` holds durations whose
//! microsecond count has `i` significant bits (i.e. `[2^(i-1), 2^i)`,
//! with bucket 0 holding sub-microsecond durations). 48 buckets cover
//! everything up to ~8.9 years, in a fixed 400-byte structure that never
//! allocates after construction — cheap enough to keep one per stage.

use std::time::Duration;

/// Number of log2 buckets (covers durations up to `2^47` µs).
const BUCKETS: usize = 48;

/// A fixed-bucket (log2-spaced) histogram of durations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurationHistogram {
    counts: [u64; BUCKETS],
    total: u64,
    max: Duration,
}

impl Default for DurationHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl DurationHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: [0; BUCKETS],
            total: 0,
            max: Duration::ZERO,
        }
    }

    /// The bucket index of a duration: the number of significant bits of
    /// its microsecond count, clamped to the last bucket.
    fn bucket_of(d: Duration) -> usize {
        let us = d.as_micros().min(u128::from(u64::MAX)) as u64;
        let bits = (u64::BITS - us.leading_zeros()) as usize;
        bits.min(BUCKETS - 1)
    }

    /// Upper bound of bucket `i` (its durations are all `<=` this).
    fn bucket_upper(i: usize) -> Duration {
        if i == 0 {
            return Duration::from_micros(1);
        }
        Duration::from_micros(1u64 << i.min(62))
    }

    /// Records one duration.
    pub fn record(&mut self, d: Duration) {
        let i = Self::bucket_of(d);
        if let Some(c) = self.counts.get_mut(i) {
            *c = c.saturating_add(1);
        }
        self.total = self.total.saturating_add(1);
        if d > self.max {
            self.max = d;
        }
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &DurationHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a = a.saturating_add(*b);
        }
        self.total = self.total.saturating_add(other.total);
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// The exact maximum recorded duration.
    pub fn max(&self) -> Duration {
        self.max
    }

    /// The `q`-quantile (`0.0..=1.0`) as the upper bound of the bucket
    /// where the cumulative count crosses the rank, clamped to the exact
    /// maximum. Returns [`Duration::ZERO`] for an empty histogram.
    pub fn quantile(&self, q: f64) -> Duration {
        if self.total == 0 {
            return Duration::ZERO;
        }
        let q = q.clamp(0.0, 1.0);
        // 1-based rank of the requested quantile in the sorted series.
        let rank = ((self.total as f64 * q).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return Self::bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Median estimate (see [`quantile`](Self::quantile)).
    pub fn p50(&self) -> Duration {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate (see [`quantile`](Self::quantile)).
    pub fn p95(&self) -> Duration {
        self.quantile(0.95)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zero() {
        let h = DurationHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), Duration::ZERO);
        assert_eq!(h.p50(), Duration::ZERO);
        assert_eq!(h.p95(), Duration::ZERO);
    }

    #[test]
    fn quantiles_bracket_the_data() {
        let mut h = DurationHistogram::new();
        for ms in 1..=100u64 {
            h.record(Duration::from_millis(ms));
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.max(), Duration::from_millis(100));
        // Bucketed estimates are upper bounds: p50 of 1..=100 ms lies in
        // the bucket covering 50 ms, whose upper bound is ~65.5 ms.
        let p50 = h.p50();
        assert!(p50 >= Duration::from_millis(50), "{p50:?}");
        assert!(p50 <= Duration::from_millis(100), "{p50:?}");
        let p95 = h.p95();
        assert!(p95 >= Duration::from_millis(95), "{p95:?}");
        assert!(p95 <= Duration::from_millis(100), "{p95:?}");
        assert!(h.quantile(1.0) == h.max());
    }

    #[test]
    fn single_observation_dominates_every_quantile() {
        let mut h = DurationHistogram::new();
        h.record(Duration::from_micros(37));
        for q in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(h.quantile(q), Duration::from_micros(37), "q={q}");
        }
    }

    #[test]
    fn merge_adds_counts_and_keeps_max() {
        let mut a = DurationHistogram::new();
        a.record(Duration::from_millis(1));
        let mut b = DurationHistogram::new();
        b.record(Duration::from_secs(2));
        b.record(Duration::from_millis(1));
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), Duration::from_secs(2));
    }

    #[test]
    fn extreme_durations_are_clamped_not_lost() {
        let mut h = DurationHistogram::new();
        h.record(Duration::ZERO);
        h.record(Duration::from_secs(60 * 60 * 24 * 365));
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(1.0), h.max());
    }
}
