//! The machine-readable run report emitted by `dbscout detect
//! --report-json`.
//!
//! The report is plain data: the detector layers assemble it from their
//! own state (params, dataset shape, phase timings, per-stage engine
//! records) and [`RunReport::to_json`] renders it with a fixed field
//! order. Every wall-clock-derived field carries a `_us` key suffix, and
//! the only other environment-derived field is `peak_rss_bytes`; both are
//! dropped by [`strip_timing_lines`], which reduces the document to its
//! deterministic skeleton — that is what the chaos-seeded determinism
//! tests byte-compare.

use crate::json::JsonWriter;

/// Version stamped into every report as `schema_version`. Bump when the
/// field set changes; `cargo xtask check-report` validates against it.
///
/// History: v1 — initial field set; v2 — `totals.peak_rss_bytes`
/// (process peak resident set, for the out-of-core ingest experiments);
/// v3 — worker-failure counters (`worker_kills` / `worker_respawns` /
/// `task_reassignments` per stage and in totals), the optional
/// `process` section with per-worker attribution, and
/// `totals.child_peak_rss_bytes` (sum of worker `VmHWM`), for the
/// process-worker backend; v4 — kernel work counters (`cells_visited`,
/// `bbox_prunes`, `early_exit_hits`, `distance_evals` per stage and in
/// totals — schedule/thread/backend-invariant, so they live in the
/// deterministic skeleton) and per-worker CPU-time attribution
/// (`cpu_time_us` per worker, `child_cpu_time_us` in `process` and
/// `totals`); v5 — the resolved execution echo in `params`: `kernel`
/// (the concrete distance kernel the run used — `"scalar"` or
/// `"unrolled"`, never `"auto"`) and `threads` (the in-process
/// worker-thread count); v6 — the optional `serve` section emitted by
/// `dbscout serve` (per-op query counts, protocol errors, and the warm
/// mutable-store maintenance counters `rebuilds` / `compactions`).
pub const REPORT_SCHEMA_VERSION: u64 = 6;

/// Echo of the input dataset, so a report is self-describing.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DatasetEcho {
    /// Path (or generator description) the points came from.
    pub source: String,
    /// Number of points fed to the detector.
    pub points: u64,
    /// Point dimensionality.
    pub dimensions: u64,
}

/// Echo of the detection parameters, so a report is reproducible.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ParamsEcho {
    /// Which engine ran (`"native"` or `"distributed"`).
    pub engine: String,
    /// Neighborhood radius ε.
    pub eps: f64,
    /// Core-point threshold.
    pub min_pts: u64,
    /// Number of partitions (0 for the native engine).
    pub partitions: u64,
    /// Number of workers / threads.
    pub workers: u64,
    /// The resolved distance kernel the run used (`"scalar"` or
    /// `"unrolled"` — `Auto` is resolved before echoing).
    pub kernel: String,
    /// The in-process worker-thread count the run resolved to (0 when
    /// the engine runs no thread pool, e.g. the process backend driver).
    pub threads: u64,
    /// The `DBSCOUT_CHAOS_SEED` in effect, if any.
    pub chaos_seed: Option<u64>,
}

/// Wall-clock attribution for one paper phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseReport {
    /// Phase name (e.g. `"grid partitioning"`, `"core-point pass"`).
    pub name: String,
    /// Wall-clock spent in the phase, in microseconds.
    pub wall_clock_us: u64,
}

/// One executor stage's record: task counts, record/shuffle volumes,
/// fault-tolerance outcomes, and task-duration percentiles.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StageReport {
    /// Stage label (`"<phase>:<op>"` as set by the execution context).
    pub label: String,
    /// Completed tasks (one per partition; speculative losers excluded).
    pub tasks: u64,
    /// Records entering the stage's tasks.
    pub records_in: u64,
    /// Records produced by the stage's tasks.
    pub records_out: u64,
    /// Records moved through shuffle exchanges for this stage.
    pub shuffle_records: u64,
    /// Approximate bytes moved through shuffle exchanges.
    pub shuffle_bytes: u64,
    /// Records produced by join probes in this stage.
    pub join_output_records: u64,
    /// Failed attempts that were retried.
    pub task_retries: u64,
    /// Speculative duplicate attempts launched.
    pub speculative_launches: u64,
    /// Speculative duplicates that finished first.
    pub speculative_wins: u64,
    /// Faults injected by the chaos plan.
    pub injected_faults: u64,
    /// Worker processes that died (or were killed) during the stage.
    pub worker_kills: u64,
    /// Worker processes respawned during the stage.
    pub worker_respawns: u64,
    /// Tasks re-dispatched to a surviving worker after their host died.
    pub task_reassignments: u64,
    /// Cells the stage's kernels iterated over. Like the other three
    /// kernel counters this is a sum over a disjoint partition of the
    /// cell range, hence schedule/thread/backend-invariant.
    pub cells_visited: u64,
    /// Neighbor cells skipped by the bounding-box minimum-distance test.
    pub bbox_prunes: u64,
    /// Early kernel terminations (count reached `minPts`, or a core
    /// neighbor was found).
    pub early_exit_hits: u64,
    /// Point-to-point squared-distance evaluations.
    pub distance_evals: u64,
    /// Median task duration (bucketed estimate), microseconds.
    pub task_duration_p50_us: u64,
    /// 95th-percentile task duration (bucketed estimate), microseconds.
    pub task_duration_p95_us: u64,
    /// Maximum task duration (exact), microseconds.
    pub task_duration_max_us: u64,
}

/// Whole-run aggregates across every stage.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TotalsReport {
    /// Number of executor stages run.
    pub stages: u64,
    /// Total completed tasks.
    pub tasks: u64,
    /// Total records entering tasks.
    pub records_in: u64,
    /// Total records produced by tasks.
    pub records_out: u64,
    /// Total shuffled records.
    pub shuffle_records: u64,
    /// Total approximate shuffled bytes.
    pub shuffle_bytes: u64,
    /// Broadcast variables distributed.
    pub broadcasts: u64,
    /// Total join-probe output records.
    pub join_output_records: u64,
    /// Total retried attempts.
    pub task_retries: u64,
    /// Total speculative launches.
    pub speculative_launches: u64,
    /// Total speculative wins.
    pub speculative_wins: u64,
    /// Total injected faults.
    pub injected_faults: u64,
    /// Total worker-process deaths (process backend; 0 otherwise).
    pub worker_kills: u64,
    /// Total worker-process respawns.
    pub worker_respawns: u64,
    /// Total task reassignments to surviving workers.
    pub task_reassignments: u64,
    /// Total cells visited by the detection kernels (deterministic; see
    /// [`StageReport::cells_visited`]).
    pub cells_visited: u64,
    /// Total bounding-box prunes.
    pub bbox_prunes: u64,
    /// Total early kernel terminations.
    pub early_exit_hits: u64,
    /// Total squared-distance evaluations.
    pub distance_evals: u64,
    /// Outliers reported by the detector.
    pub outliers: u64,
    /// Peak resident set size of the process in bytes (`VmHWM`), 0 when
    /// the platform does not expose it. Environment-derived — varies run
    /// to run — so [`strip_timing_lines`] removes it alongside the
    /// `_us` timing fields.
    pub peak_rss_bytes: u64,
    /// Sum of the worker processes' peak resident sets (each worker's
    /// `VmHWM`, self-reported over IPC), 0 for in-process runs.
    /// Environment-derived, so stripped like `peak_rss_bytes`.
    pub child_peak_rss_bytes: u64,
    /// Sum of the worker processes' CPU time (utime + stime,
    /// self-reported over IPC), microseconds; 0 for in-process runs.
    /// The `_us` suffix keeps it out of the deterministic skeleton.
    pub child_cpu_time_us: u64,
    /// End-to-end detection wall-clock, microseconds.
    pub wall_clock_us: u64,
}

/// One worker slot's lifetime counters (process backend).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WorkerReport {
    /// Worker slot index.
    pub slot: u64,
    /// Processes spawned into the slot (1 + respawns).
    pub spawns: u64,
    /// Process deaths observed in the slot.
    pub kills: u64,
    /// Replacement processes spawned after a death.
    pub respawns: u64,
    /// Tasks the slot's processes completed.
    pub tasks_completed: u64,
    /// Largest `VmHWM` self-reported by any process of the slot, bytes.
    pub peak_rss_bytes: u64,
    /// Largest CPU time (utime + stime) self-reported by any process of
    /// the slot, microseconds.
    pub cpu_time_us: u64,
}

/// The process-worker pool's run summary (`--backend process` only).
///
/// Task→slot attribution depends on completion timing, so the whole
/// section is operational detail: [`strip_timing_lines`] removes it
/// from the deterministic skeleton. The plan-driven failure counters
/// (`worker_kills`, `task_reassignments`) also appear per stage and in
/// `totals`, which the skeleton keeps.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProcessReport {
    /// Configured pool width.
    pub workers: u64,
    /// Total processes spawned over the run.
    pub workers_spawned: u64,
    /// Total worker-process deaths.
    pub worker_kills: u64,
    /// Total respawns.
    pub worker_respawns: u64,
    /// Total task reassignments.
    pub task_reassignments: u64,
    /// Tasks quarantined after killing two distinct workers.
    pub poisoned_tasks: u64,
    /// Sum of per-slot peak resident sets, bytes.
    pub child_peak_rss_bytes: u64,
    /// Sum of per-slot CPU time, microseconds.
    pub child_cpu_time_us: u64,
    /// Per-slot attribution.
    pub per_worker: Vec<WorkerReport>,
}

/// A serving session's summary (`dbscout serve` only).
///
/// Pure operation counts — no wall-clock, no attribution — so the whole
/// section belongs to the deterministic skeleton: replaying the same
/// request script against the same dataset reproduces it byte for byte.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServeReport {
    /// Requests answered over the line protocol (errors included,
    /// `shutdown` included).
    pub queries: u64,
    /// Non-mutating `probe` classifications served.
    pub probes: u64,
    /// `insert` operations applied.
    pub inserts: u64,
    /// `remove` operations applied (misses — unknown or dead ids —
    /// count here too; they are answered, not errors).
    pub removes: u64,
    /// `outliers` snapshots served.
    pub outlier_queries: u64,
    /// `stats` summaries served.
    pub stats_queries: u64,
    /// Requests rejected (unparseable line, unknown op, bad payload).
    pub errors: u64,
    /// Cell-run relocations the warm mutable store performed while
    /// absorbing inserts (0 on the hashed layout).
    pub rebuilds: u64,
    /// Whole-layout compactions the warm mutable store performed (0 on
    /// the hashed layout).
    pub compactions: u64,
}

/// The complete run report.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunReport {
    /// Input dataset echo.
    pub dataset: DatasetEcho,
    /// Detection parameter echo.
    pub params: ParamsEcho,
    /// Per-phase wall-clock, in execution order.
    pub phases: Vec<PhaseReport>,
    /// Per-stage engine records, in execution order.
    pub stages: Vec<StageReport>,
    /// Process-worker pool summary; `None` for in-process runs (the
    /// key is then absent from the JSON).
    pub process: Option<ProcessReport>,
    /// Serving-session summary; `None` outside `dbscout serve` (the key
    /// is then absent from the JSON).
    pub serve: Option<ServeReport>,
    /// Whole-run aggregates.
    pub totals: TotalsReport,
}

impl RunReport {
    /// Renders the report as pretty-printed JSON with a fixed field
    /// order (see the module docs for the determinism contract).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_u64("schema_version", REPORT_SCHEMA_VERSION);
        w.begin_object_field("dataset");
        w.field_str("source", &self.dataset.source);
        w.field_u64("points", self.dataset.points);
        w.field_u64("dimensions", self.dataset.dimensions);
        w.end_object();
        w.begin_object_field("params");
        w.field_str("engine", &self.params.engine);
        w.field_f64("eps", self.params.eps);
        w.field_u64("min_pts", self.params.min_pts);
        w.field_u64("partitions", self.params.partitions);
        w.field_u64("workers", self.params.workers);
        w.field_str("kernel", &self.params.kernel);
        w.field_u64("threads", self.params.threads);
        match self.params.chaos_seed {
            Some(seed) => w.field_u64("chaos_seed", seed),
            None => w.field_str("chaos_seed", "none"),
        };
        w.end_object();
        w.begin_array_field("phases");
        for phase in &self.phases {
            w.begin_object();
            w.field_str("name", &phase.name);
            w.field_u64("wall_clock_us", phase.wall_clock_us);
            w.end_object();
        }
        w.end_array();
        w.begin_array_field("stages");
        for stage in &self.stages {
            w.begin_object();
            w.field_str("label", &stage.label);
            w.field_u64("tasks", stage.tasks);
            w.field_u64("records_in", stage.records_in);
            w.field_u64("records_out", stage.records_out);
            w.field_u64("shuffle_records", stage.shuffle_records);
            w.field_u64("shuffle_bytes", stage.shuffle_bytes);
            w.field_u64("join_output_records", stage.join_output_records);
            w.field_u64("task_retries", stage.task_retries);
            w.field_u64("speculative_launches", stage.speculative_launches);
            w.field_u64("speculative_wins", stage.speculative_wins);
            w.field_u64("injected_faults", stage.injected_faults);
            w.field_u64("worker_kills", stage.worker_kills);
            w.field_u64("worker_respawns", stage.worker_respawns);
            w.field_u64("task_reassignments", stage.task_reassignments);
            w.field_u64("cells_visited", stage.cells_visited);
            w.field_u64("bbox_prunes", stage.bbox_prunes);
            w.field_u64("early_exit_hits", stage.early_exit_hits);
            w.field_u64("distance_evals", stage.distance_evals);
            w.field_u64("task_duration_p50_us", stage.task_duration_p50_us);
            w.field_u64("task_duration_p95_us", stage.task_duration_p95_us);
            w.field_u64("task_duration_max_us", stage.task_duration_max_us);
            w.end_object();
        }
        w.end_array();
        if let Some(process) = &self.process {
            w.begin_object_field("process");
            w.field_u64("workers", process.workers);
            w.field_u64("workers_spawned", process.workers_spawned);
            w.field_u64("worker_kills", process.worker_kills);
            w.field_u64("worker_respawns", process.worker_respawns);
            w.field_u64("task_reassignments", process.task_reassignments);
            w.field_u64("poisoned_tasks", process.poisoned_tasks);
            w.field_u64("child_peak_rss_bytes", process.child_peak_rss_bytes);
            w.field_u64("child_cpu_time_us", process.child_cpu_time_us);
            w.begin_array_field("per_worker");
            for worker in &process.per_worker {
                w.begin_object();
                w.field_u64("slot", worker.slot);
                w.field_u64("spawns", worker.spawns);
                w.field_u64("kills", worker.kills);
                w.field_u64("respawns", worker.respawns);
                w.field_u64("tasks_completed", worker.tasks_completed);
                w.field_u64("peak_rss_bytes", worker.peak_rss_bytes);
                w.field_u64("cpu_time_us", worker.cpu_time_us);
                w.end_object();
            }
            w.end_array();
            w.end_object();
        }
        if let Some(serve) = &self.serve {
            w.begin_object_field("serve");
            w.field_u64("queries", serve.queries);
            w.field_u64("probes", serve.probes);
            w.field_u64("inserts", serve.inserts);
            w.field_u64("removes", serve.removes);
            w.field_u64("outlier_queries", serve.outlier_queries);
            w.field_u64("stats_queries", serve.stats_queries);
            w.field_u64("errors", serve.errors);
            w.field_u64("rebuilds", serve.rebuilds);
            w.field_u64("compactions", serve.compactions);
            w.end_object();
        }
        w.begin_object_field("totals");
        w.field_u64("stages", self.totals.stages);
        w.field_u64("tasks", self.totals.tasks);
        w.field_u64("records_in", self.totals.records_in);
        w.field_u64("records_out", self.totals.records_out);
        w.field_u64("shuffle_records", self.totals.shuffle_records);
        w.field_u64("shuffle_bytes", self.totals.shuffle_bytes);
        w.field_u64("broadcasts", self.totals.broadcasts);
        w.field_u64("join_output_records", self.totals.join_output_records);
        w.field_u64("task_retries", self.totals.task_retries);
        w.field_u64("speculative_launches", self.totals.speculative_launches);
        w.field_u64("speculative_wins", self.totals.speculative_wins);
        w.field_u64("injected_faults", self.totals.injected_faults);
        w.field_u64("worker_kills", self.totals.worker_kills);
        w.field_u64("worker_respawns", self.totals.worker_respawns);
        w.field_u64("task_reassignments", self.totals.task_reassignments);
        w.field_u64("cells_visited", self.totals.cells_visited);
        w.field_u64("bbox_prunes", self.totals.bbox_prunes);
        w.field_u64("early_exit_hits", self.totals.early_exit_hits);
        w.field_u64("distance_evals", self.totals.distance_evals);
        w.field_u64("outliers", self.totals.outliers);
        w.field_u64("peak_rss_bytes", self.totals.peak_rss_bytes);
        w.field_u64("child_peak_rss_bytes", self.totals.child_peak_rss_bytes);
        w.field_u64("child_cpu_time_us", self.totals.child_cpu_time_us);
        w.field_u64("wall_clock_us", self.totals.wall_clock_us);
        w.end_object();
        w.end_object();
        w.finish()
    }
}

/// Drops every environment-derived piece of a rendered report — the
/// wall-clock fields (key suffix `_us`), the RSS fields
/// (`peak_rss_bytes` / `child_peak_rss_bytes`), the `worker_respawns`
/// counters (whether a respawn lands inside a stage, or at all before
/// shutdown, depends on the backoff clock racing stage progress), and
/// the entire `process` section (task→worker attribution depends on
/// completion timing) — leaving the deterministic skeleton.
/// Chaos-seeded determinism tests byte-compare the result of two runs;
/// the plan-driven `worker_kills` and `task_reassignments` counters
/// survive in `stages` and `totals`.
pub fn strip_timing_lines(report_json: &str) -> String {
    let mut out = String::new();
    // Brace depth inside the skipped `process` block; 0 = not skipping.
    // The section holds no string values, so counting braces is safe.
    let mut skip_depth = 0usize;
    for line in report_json.lines() {
        if skip_depth > 0 {
            skip_depth += line.matches(['{', '[']).count();
            skip_depth = skip_depth.saturating_sub(line.matches(['}', ']']).count());
            continue;
        }
        let trimmed = line.trim_start();
        if trimmed.starts_with("\"process\": {") {
            skip_depth = 1;
            continue;
        }
        if trimmed.starts_with('"')
            && (line.contains("_us\":")
                || line.contains("peak_rss_bytes\":")
                || line.contains("\"worker_respawns\":"))
        {
            continue;
        }
        out.push_str(line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn sample(wall: u64) -> RunReport {
        RunReport {
            dataset: DatasetEcho {
                source: "synthetic:blobs".to_owned(),
                points: 1000,
                dimensions: 2,
            },
            params: ParamsEcho {
                engine: "distributed".to_owned(),
                eps: 0.25,
                min_pts: 4,
                partitions: 8,
                workers: 4,
                kernel: "unrolled".to_owned(),
                threads: 4,
                chaos_seed: Some(42),
            },
            phases: vec![
                PhaseReport {
                    name: "grid partitioning".to_owned(),
                    wall_clock_us: wall,
                },
                PhaseReport {
                    name: "outlier pass".to_owned(),
                    wall_clock_us: wall * 2,
                },
            ],
            stages: vec![StageReport {
                label: "core-point pass:map_partitions".to_owned(),
                tasks: 8,
                records_in: 1000,
                records_out: 900,
                worker_kills: 1,
                worker_respawns: 1,
                task_reassignments: 1,
                cells_visited: 64,
                bbox_prunes: 12,
                early_exit_hits: 3,
                distance_evals: 4096,
                task_duration_p50_us: wall,
                task_duration_p95_us: wall,
                task_duration_max_us: wall,
                ..StageReport::default()
            }],
            // Attribution varies run to run: the slot hosting the killed
            // task depends on completion timing, like `wall` does.
            process: Some(ProcessReport {
                workers: 4,
                workers_spawned: 5,
                worker_kills: 1,
                worker_respawns: 1,
                task_reassignments: 1,
                poisoned_tasks: 0,
                child_peak_rss_bytes: wall * 4096,
                child_cpu_time_us: wall * 7,
                per_worker: vec![WorkerReport {
                    slot: wall % 4,
                    spawns: 2,
                    kills: 1,
                    respawns: 1,
                    tasks_completed: 3,
                    peak_rss_bytes: wall * 1024,
                    cpu_time_us: wall * 7,
                }],
            }),
            serve: None,
            totals: TotalsReport {
                stages: 1,
                tasks: 8,
                records_in: 1000,
                records_out: 900,
                worker_kills: 1,
                worker_respawns: 1,
                task_reassignments: 1,
                cells_visited: 64,
                bbox_prunes: 12,
                early_exit_hits: 3,
                distance_evals: 4096,
                outliers: 17,
                peak_rss_bytes: wall * 1024,
                child_peak_rss_bytes: wall * 4096,
                child_cpu_time_us: wall * 7,
                wall_clock_us: wall * 3,
                ..TotalsReport::default()
            },
        }
    }

    #[test]
    fn report_round_trips_through_parser() {
        let doc = parse(&sample(120).to_json()).unwrap();
        assert_eq!(
            doc.get("schema_version").unwrap().as_u64(),
            Some(REPORT_SCHEMA_VERSION)
        );
        assert_eq!(
            doc.get("dataset").unwrap().get("points").unwrap().as_u64(),
            Some(1000)
        );
        assert_eq!(
            doc.get("params")
                .unwrap()
                .get("chaos_seed")
                .unwrap()
                .as_u64(),
            Some(42)
        );
        let params = doc.get("params").unwrap();
        assert_eq!(params.get("kernel").unwrap().as_str(), Some("unrolled"));
        assert_eq!(params.get("threads").unwrap().as_u64(), Some(4));
        let phases = doc.get("phases").unwrap().as_array().unwrap();
        assert_eq!(phases.len(), 2);
        assert_eq!(
            phases[0].get("name").unwrap().as_str(),
            Some("grid partitioning")
        );
        let stages = doc.get("stages").unwrap().as_array().unwrap();
        assert_eq!(stages[0].get("tasks").unwrap().as_u64(), Some(8));
        assert_eq!(
            doc.get("totals").unwrap().get("outliers").unwrap().as_u64(),
            Some(17)
        );
    }

    #[test]
    fn none_chaos_seed_serializes_as_string() {
        let mut report = sample(1);
        report.params.chaos_seed = None;
        let doc = parse(&report.to_json()).unwrap();
        assert_eq!(
            doc.get("params")
                .unwrap()
                .get("chaos_seed")
                .unwrap()
                .as_str(),
            Some("none")
        );
    }

    #[test]
    fn stripping_timing_lines_makes_reports_comparable() {
        let a = sample(100).to_json();
        let b = sample(999_999).to_json();
        assert_ne!(a, b);
        assert_eq!(strip_timing_lines(&a), strip_timing_lines(&b));
        // The skeleton still holds every deterministic field.
        let skeleton = strip_timing_lines(&a);
        assert!(skeleton.contains("\"outliers\": 17"));
        assert!(skeleton.contains("grid partitioning"));
        assert!(!skeleton.contains("wall_clock_us"));
        assert!(!skeleton.contains("task_duration_p50_us"));
        // peak_rss_bytes varies run to run like the timings do — it must
        // not survive into the comparable skeleton. Neither may the
        // process section (timing-dependent task→worker attribution),
        // while the deterministic stage/total failure counters stay.
        assert!(!skeleton.contains("peak_rss_bytes"));
        assert!(!skeleton.contains("per_worker"));
        assert!(!skeleton.contains("workers_spawned"));
        assert!(!skeleton.contains("worker_respawns"));
        assert!(skeleton.contains("\"worker_kills\": 1"));
        assert!(skeleton.contains("\"task_reassignments\": 1"));
        // Kernel work counters are schedule-invariant and survive; the
        // environment-derived CPU attribution does not (`_us` suffix).
        assert!(skeleton.contains("\"cells_visited\": 64"));
        assert!(skeleton.contains("\"distance_evals\": 4096"));
        assert!(!skeleton.contains("cpu_time_us"));
    }

    #[test]
    fn in_process_reports_omit_the_process_section() {
        let mut report = sample(3);
        report.process = None;
        let json = report.to_json();
        assert!(!json.contains("\"process\""), "{json}");
        assert!(parse(&json).is_ok());
    }

    #[test]
    fn process_section_round_trips_through_parser() {
        let doc = parse(&sample(9).to_json()).unwrap();
        let process = doc.get("process").unwrap();
        assert_eq!(process.get("workers").unwrap().as_u64(), Some(4));
        assert_eq!(process.get("worker_kills").unwrap().as_u64(), Some(1));
        let per_worker = process.get("per_worker").unwrap().as_array().unwrap();
        assert_eq!(per_worker.len(), 1);
        assert_eq!(per_worker[0].get("spawns").unwrap().as_u64(), Some(2));
        assert_eq!(
            doc.get("totals")
                .unwrap()
                .get("child_peak_rss_bytes")
                .unwrap()
                .as_u64(),
            Some(9 * 4096)
        );
    }

    #[test]
    fn serve_section_is_optional_and_round_trips() {
        // Absent by default: batch reports carry no `serve` key.
        let json = sample(2).to_json();
        assert!(!json.contains("\"serve\""), "{json}");

        let mut report = sample(2);
        report.serve = Some(ServeReport {
            queries: 12,
            probes: 4,
            inserts: 3,
            removes: 2,
            outlier_queries: 1,
            stats_queries: 1,
            errors: 1,
            rebuilds: 5,
            compactions: 1,
        });
        let doc = parse(&report.to_json()).unwrap();
        let serve = doc.get("serve").unwrap();
        assert_eq!(serve.get("queries").unwrap().as_u64(), Some(12));
        assert_eq!(serve.get("probes").unwrap().as_u64(), Some(4));
        assert_eq!(serve.get("removes").unwrap().as_u64(), Some(2));
        assert_eq!(serve.get("rebuilds").unwrap().as_u64(), Some(5));
        assert_eq!(serve.get("compactions").unwrap().as_u64(), Some(1));
        // The section is pure operation counts — it survives into the
        // deterministic skeleton untouched.
        let skeleton = strip_timing_lines(&report.to_json());
        assert!(skeleton.contains("\"serve\""));
        assert!(skeleton.contains("\"rebuilds\": 5"));
    }

    #[test]
    fn stripped_report_is_still_valid_json_free_of_dangling_commas() {
        // Stripping removes whole lines; the remaining document is not
        // guaranteed to be valid JSON (trailing commas), so the tests
        // compare bytes rather than re-parsing. This pin documents that.
        let stripped = strip_timing_lines(&sample(5).to_json());
        assert!(!stripped.is_empty());
    }
}
