//! Structured tracing and run reporting for the DBSCOUT stack.
//!
//! The paper's evaluation (§V) is entirely about *where time goes* —
//! grid partitioning, cell classification, the core-point pass, and the
//! outlier pass across executors. This crate is the substrate those
//! measurements flow through:
//!
//! * a [`Recorder`] trait behind which producers (the dataflow executor,
//!   the detectors) emit [`Span`]s and counters. The default is **no
//!   recorder at all**: every producer holds an `Option<&dyn Recorder>`
//!   and the disabled path is a single branch — no allocation, no
//!   locking, no clock reads beyond what the engine already does;
//! * [`DurationHistogram`] — fixed-bucket (log-spaced) duration
//!   histograms for task-latency percentiles without unbounded memory;
//! * [`TraceCollector`] — a [`Recorder`] that buffers spans and renders
//!   them as a Chrome Trace Event Format JSON array loadable in
//!   `chrome://tracing` / [Perfetto](https://ui.perfetto.dev);
//! * [`RunReport`] — the machine-readable run report emitted by
//!   `dbscout detect --report-json`, with a deterministic field order so
//!   chaos-seeded tests can assert byte-identical structure
//!   (timestamp-bearing fields are isolated; see
//!   [`strip_timing_lines`]).
//!
//! The crate is dependency-free (std only) so every other crate in the
//! workspace can depend on it without widening the build.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
// Unit tests may panic freely; library code is held to the panic-freedom
// gates in `[workspace.lints]` and `cargo xtask lint`.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::indexing_slicing,
        clippy::panic,
        clippy::float_cmp
    )
)]

pub mod counters;
pub mod cpu;
pub mod histogram;
pub mod json;
pub mod report;
pub mod rss;
pub mod span;
pub mod trace;

pub use counters::{KernelCounters, KERNEL_COUNTER_NAMES};
pub use cpu::cpu_time_us;
pub use histogram::DurationHistogram;
pub use report::{
    strip_timing_lines, DatasetEcho, ParamsEcho, PhaseReport, ProcessReport, RunReport,
    ServeReport, StageReport, TotalsReport, WorkerReport, REPORT_SCHEMA_VERSION,
};
pub use rss::peak_rss_bytes;
pub use span::{ArgValue, Recorder, Span, SpanKind};
pub use trace::TraceCollector;
