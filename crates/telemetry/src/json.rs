//! Minimal JSON support: a deterministic writer and a small parser.
//!
//! The workspace is std-only, so both the Chrome Trace renderer and the
//! run-report serializer hand-roll their JSON through [`JsonWriter`],
//! which emits one key per line in insertion order — the property the
//! report-determinism tests rely on. The companion [`parse`] function is
//! a strict little recursive-descent parser used by `cargo xtask
//! check-report` and by tests that validate emitted artifacts.

use std::fmt::Write as _;

/// Escapes a string for inclusion in a JSON document (without quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A pretty-printing JSON writer: two-space indent, one key or element
/// per line, fields emitted in call order.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    // One entry per open container: whether it already has an element.
    stack: Vec<bool>,
}

impl JsonWriter {
    /// A fresh writer.
    pub fn new() -> Self {
        Self::default()
    }

    fn pad(&mut self) {
        for _ in 0..self.stack.len() {
            self.out.push_str("  ");
        }
    }

    // Starts a new element: comma after a previous sibling, newline,
    // indentation, and the key (inside objects).
    fn element(&mut self, key: Option<&str>) {
        if let Some(seen) = self.stack.last_mut() {
            if *seen {
                self.out.push(',');
            }
            *seen = true;
        }
        if !self.stack.is_empty() {
            self.out.push('\n');
            self.pad();
        }
        if let Some(k) = key {
            let _ = write!(self.out, "\"{}\": ", escape(k));
        }
    }

    fn close(&mut self, delim: char) {
        let had_elements = self.stack.pop().unwrap_or(false);
        if had_elements {
            self.out.push('\n');
            self.pad();
        }
        self.out.push(delim);
    }

    /// Opens an object (as a value inside an array, or the root).
    pub fn begin_object(&mut self) -> &mut Self {
        self.element(None);
        self.out.push('{');
        self.stack.push(false);
        self
    }

    /// Opens an object under `key`.
    pub fn begin_object_field(&mut self, key: &str) -> &mut Self {
        self.element(Some(key));
        self.out.push('{');
        self.stack.push(false);
        self
    }

    /// Closes the innermost object.
    pub fn end_object(&mut self) -> &mut Self {
        self.close('}');
        self
    }

    /// Opens an array under `key`.
    pub fn begin_array_field(&mut self, key: &str) -> &mut Self {
        self.element(Some(key));
        self.out.push('[');
        self.stack.push(false);
        self
    }

    /// Opens an array (as a value inside an array, or the root).
    pub fn begin_array(&mut self) -> &mut Self {
        self.element(None);
        self.out.push('[');
        self.stack.push(false);
        self
    }

    /// Closes the innermost array.
    pub fn end_array(&mut self) -> &mut Self {
        self.close(']');
        self
    }

    /// Writes a string field.
    pub fn field_str(&mut self, key: &str, value: &str) -> &mut Self {
        self.element(Some(key));
        let _ = write!(self.out, "\"{}\"", escape(value));
        self
    }

    /// Writes an unsigned integer field.
    pub fn field_u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.element(Some(key));
        let _ = write!(self.out, "{value}");
        self
    }

    /// Writes a boolean field.
    pub fn field_bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.element(Some(key));
        let _ = write!(self.out, "{value}");
        self
    }

    /// Writes a float field with full round-trip precision.
    pub fn field_f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.element(Some(key));
        if value.is_finite() {
            let _ = write!(self.out, "{value}");
        } else {
            self.out.push_str("null");
        }
        self
    }

    /// Writes a bare string element (inside an array).
    pub fn string(&mut self, value: &str) -> &mut Self {
        self.element(None);
        let _ = write!(self.out, "\"{}\"", escape(value));
        self
    }

    /// Consumes the writer and returns the document with a trailing
    /// newline.
    pub fn finish(mut self) -> String {
        self.out.push('\n');
        self.out
    }
}

/// A parsed JSON value. Object keys keep document order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; our values fit exactly).
    Number(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in document order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items.as_slice()),
            _ => None,
        }
    }

    /// The object's fields in document order, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields.as_slice()),
            _ => None,
        }
    }
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What the parser expected or found.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document. Rejects trailing garbage.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        let rest = self.bytes.get(self.pos..).unwrap_or(&[]);
        if rest.starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs don't appear in our own
                            // output; map them to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let tail = self.bytes.get(start..).unwrap_or(&[]);
                    let s = std::str::from_utf8(tail)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty sequence"))?;
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let digits = self.bytes.get(start..self.pos).unwrap_or(&[]);
        let text = std::str::from_utf8(digits).map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_emits_one_key_per_line() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("name", "dbscout");
        w.field_u64("points", 1000);
        w.begin_array_field("phases");
        w.begin_object();
        w.field_str("phase", "core-point pass");
        w.end_object();
        w.end_array();
        w.end_object();
        let text = w.finish();
        let expected = "{\n  \"name\": \"dbscout\",\n  \"points\": 1000,\n  \"phases\": [\n    {\n      \"phase\": \"core-point pass\"\n    }\n  ]\n}\n";
        assert_eq!(text, expected);
    }

    #[test]
    fn writer_output_round_trips_through_parser() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("quoted", "a \"b\"\nc\\d");
        w.field_u64("n", u64::from(u32::MAX));
        w.field_bool("flag", true);
        w.field_f64("eps", 0.25);
        w.begin_array_field("empty");
        w.end_array();
        w.end_object();
        let text = w.finish();
        let v = parse(&text).unwrap();
        assert_eq!(v.get("quoted").unwrap().as_str(), Some("a \"b\"\nc\\d"));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(u64::from(u32::MAX)));
        assert_eq!(v.get("flag"), Some(&Value::Bool(true)));
        assert_eq!(v.get("eps").unwrap().as_f64(), Some(0.25));
        assert_eq!(v.get("empty").unwrap().as_array(), Some(&[][..]));
    }

    #[test]
    fn parser_accepts_standard_documents() {
        let v = parse("[1, 2.5, -3, \"x\", null, true, {\"k\": []}]").unwrap();
        let items = v.as_array().unwrap();
        assert_eq!(items.len(), 7);
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(items[1].as_f64(), Some(2.5));
        assert_eq!(items[2].as_f64(), Some(-3.0));
        assert_eq!(items[3].as_str(), Some("x"));
        assert_eq!(items[4], Value::Null);
        assert_eq!(items[5], Value::Bool(true));
        assert_eq!(items[6].get("k").unwrap().as_array(), Some(&[][..]));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "[1] tail", "\"open"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parser_decodes_escapes() {
        let v = parse(r#""aA\n\t\"""#).unwrap();
        assert_eq!(v.as_str(), Some("aA\n\t\""));
    }

    #[test]
    fn object_keys_keep_document_order() {
        let v = parse(r#"{"z": 1, "a": 2}"#).unwrap();
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a"]);
    }
}
