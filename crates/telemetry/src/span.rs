//! The span model and the [`Recorder`] trait producers emit into.

use std::time::{Duration, Instant};

/// What layer of the stack a span describes. Rendered as the Chrome
/// Trace `cat` field, so Perfetto can filter by layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// One paper phase of a detector run (e.g. `"core-point pass"`).
    Phase,
    /// One executor stage (all tasks of one transformation step).
    Stage,
    /// One task attempt on one partition.
    Task,
}

impl SpanKind {
    /// The Chrome Trace `cat` string.
    pub fn category(self) -> &'static str {
        match self {
            SpanKind::Phase => "phase",
            SpanKind::Stage => "stage",
            SpanKind::Task => "task",
        }
    }
}

/// A typed span argument value (rendered into the trace `args` object).
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// An unsigned counter (partition index, record count, …).
    U64(u64),
    /// A flag (e.g. `speculative`).
    Bool(bool),
    /// A short string (e.g. a task outcome).
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}

impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::Bool(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_owned())
    }
}

/// One completed span: a named interval with a kind, a lane, and
/// key-value arguments.
///
/// Spans are only constructed when a recorder is installed; the disabled
/// path never allocates one.
#[derive(Debug, Clone)]
pub struct Span {
    /// Human-readable name (stage label, phase name, …).
    pub name: String,
    /// Which layer of the stack this span describes.
    pub kind: SpanKind,
    /// When the interval started.
    pub start: Instant,
    /// How long the interval lasted.
    pub duration: Duration,
    /// Rendering lane (worker index for tasks, 0 for driver-side spans).
    /// Becomes the Chrome Trace `tid`.
    pub lane: u64,
    /// Process the span ran in (Chrome Trace `pid`): 1 for the driver,
    /// the worker's OS pid for spans merged from child processes.
    pub pid: u64,
    /// Extra key-value arguments (partition, attempt, outcome, volumes).
    pub args: Vec<(&'static str, ArgValue)>,
}

impl Span {
    /// A completed span that started at `start` and lasted `duration`.
    pub fn new(
        name: impl Into<String>,
        kind: SpanKind,
        start: Instant,
        duration: Duration,
    ) -> Self {
        Self {
            name: name.into(),
            kind,
            start,
            duration,
            lane: 0,
            pid: 1,
            args: Vec::new(),
        }
    }

    /// Sets the rendering lane (Chrome Trace `tid`).
    #[must_use]
    pub fn lane(mut self, lane: u64) -> Self {
        self.lane = lane;
        self
    }

    /// Sets the owning process (Chrome Trace `pid`). The default, 1, is
    /// the driver process.
    #[must_use]
    pub fn pid(mut self, pid: u64) -> Self {
        self.pid = pid;
        self
    }

    /// Attaches one key-value argument.
    #[must_use]
    pub fn arg(mut self, key: &'static str, value: impl Into<ArgValue>) -> Self {
        self.args.push((key, value.into()));
        self
    }
}

/// The sink spans and counters are emitted into.
///
/// Implementations must be cheap and thread-safe: the dataflow executor
/// calls [`record_span`](Recorder::record_span) once per task attempt
/// from every worker thread. Producers hold `Option<&dyn Recorder>` —
/// when no recorder is installed nothing is allocated or locked.
pub trait Recorder: Send + Sync {
    /// Records one completed span.
    fn record_span(&self, span: Span);

    /// Records a named monotonic counter increment. The default discards
    /// it; collectors that only care about spans need not override.
    fn record_counter(&self, _name: &str, _delta: u64) {}

    /// Records a timestamped *cumulative* sample of a named counter
    /// (rendered as a Chrome Trace `"ph": "C"` event). Unlike
    /// [`record_counter`](Recorder::record_counter), `value` is the
    /// counter's running total at `at`, not a delta. The default
    /// discards it.
    fn record_counter_point(&self, _name: &str, _at: Instant, _value: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_builder_sets_fields() {
        let t = Instant::now();
        let s = Span::new(
            "core-point pass",
            SpanKind::Phase,
            t,
            Duration::from_millis(3),
        )
        .lane(7)
        .pid(4242)
        .arg("partition", 4usize)
        .arg("speculative", true)
        .arg("outcome", "success");
        assert_eq!(s.name, "core-point pass");
        assert_eq!(s.kind.category(), "phase");
        assert_eq!(s.lane, 7);
        assert_eq!(s.pid, 4242);
        assert_eq!(s.args.len(), 3);
        assert_eq!(s.args[0], ("partition", ArgValue::U64(4)));
        assert_eq!(s.args[1], ("speculative", ArgValue::Bool(true)));
        assert_eq!(s.args[2], ("outcome", ArgValue::Str("success".into())));
    }

    #[test]
    fn kind_categories_are_distinct() {
        assert_eq!(SpanKind::Phase.category(), "phase");
        assert_eq!(SpanKind::Stage.category(), "stage");
        assert_eq!(SpanKind::Task.category(), "task");
    }
}
