//! Randomized tests for dataset generation, IO, sampling and scaling,
//! driven by a seeded [`dbscout_rng::Rng`] for reproducibility.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic,
    clippy::float_cmp
)]

use dbscout_data::generators::{blobs, enlarge, moons, osm_like};
use dbscout_data::io::{decode_binary, encode_binary};
use dbscout_data::kdist::{elbow_eps, kdist_graph};
use dbscout_data::sampling::{sample_exact, sample_fraction};
use dbscout_data::transform::Scaler;
use dbscout_rng::Rng;
use dbscout_spatial::PointStore;

fn random_store(rng: &mut Rng, max_n: usize) -> PointStore {
    let dims = rng.gen_range(1usize..=3);
    let n = rng.gen_range(1..max_n);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..dims).map(|_| rng.gen_range(-1e6..1e6)).collect())
        .collect();
    PointStore::from_rows(dims, rows).expect("finite rows")
}

#[test]
fn binary_round_trip_any_store() {
    let mut rng = Rng::seed_from_u64(0xD001);
    for _ in 0..32 {
        let store = random_store(&mut rng, 200);
        let decoded = decode_binary(&encode_binary(&store)).unwrap();
        assert_eq!(decoded, store);
    }
}

#[test]
fn sample_exact_size_and_provenance() {
    let mut rng = Rng::seed_from_u64(0xD002);
    for _ in 0..32 {
        let store = random_store(&mut rng, 150);
        let k = rng.gen_range(0usize..200);
        let seed = rng.gen_range(0u64..100);
        let sub = sample_exact(&store, k, seed);
        assert_eq!(sub.len() as usize, k.min(store.len() as usize));
        assert_eq!(sub.dims(), store.dims());
    }
}

#[test]
fn sample_fraction_within_bernoulli_bounds() {
    let mut rng = Rng::seed_from_u64(0xD003);
    for _ in 0..32 {
        let frac = rng.gen_range(0.0..1.0f64);
        let seed = rng.gen_range(0u64..50);
        let store = osm_like(2_000, 1);
        let sub = sample_fraction(&store, frac, seed);
        let expected = 2_000.0 * frac;
        // 5-sigma Bernoulli bound.
        let sigma = (2_000.0 * frac * (1.0 - frac)).sqrt();
        assert!(
            ((sub.len() as f64) - expected).abs() <= 5.0 * sigma + 1.0,
            "{} vs {expected}",
            sub.len()
        );
    }
}

#[test]
fn enlarge_scales_cardinality() {
    let mut rng = Rng::seed_from_u64(0xD004);
    for _ in 0..32 {
        let factor = rng.gen_range(1usize..5);
        let seed = rng.gen_range(0u64..20);
        let base = osm_like(300, seed);
        let big = enlarge(&base, factor, 100.0, seed);
        assert_eq!(big.len() as usize, 300 * factor);
    }
}

#[test]
fn generators_hit_requested_contamination() {
    let mut rng = Rng::seed_from_u64(0xD005);
    for _ in 0..32 {
        let n_in = rng.gen_range(100usize..800);
        let n_out = rng.gen_range(1usize..30);
        let seed = rng.gen_range(0u64..30);
        for ds in [
            blobs(n_in, n_out, 2, 0.5, seed),
            moons(n_in, n_out, 0.05, seed),
        ] {
            assert_eq!(ds.len(), n_in + n_out, "{}", ds.name);
            assert_eq!(ds.num_outliers(), n_out, "{}", ds.name);
        }
    }
}

#[test]
fn kdist_graph_sorted_and_elbow_in_range() {
    let mut rng = Rng::seed_from_u64(0xD006);
    for _ in 0..32 {
        let store = random_store(&mut rng, 120);
        let k = rng.gen_range(1usize..5);
        let g = kdist_graph(&store, k);
        for w in g.windows(2) {
            assert!(w[0] >= w[1]);
        }
        if let Some(eps) = elbow_eps(&g) {
            assert!(eps >= g[g.len() - 1] && eps <= g[0]);
        }
    }
}

#[test]
fn scalers_round_trip() {
    let mut rng = Rng::seed_from_u64(0xD007);
    for _ in 0..32 {
        let store = random_store(&mut rng, 100);
        for scaler in [
            Scaler::fit_min_max(&store).unwrap(),
            Scaler::fit_standard(&store).unwrap(),
        ] {
            let back = scaler
                .inverse_transform(&scaler.transform(&store).unwrap())
                .unwrap();
            for ((_, a), (_, b)) in store.iter().zip(back.iter()) {
                for (x, y) in a.iter().zip(b) {
                    assert!((x - y).abs() < 1e-6 * (1.0 + x.abs()), "{x} vs {y}");
                }
            }
        }
    }
}
