//! Property-based tests for dataset generation, IO, sampling and
//! scaling.

use dbscout_data::generators::{blobs, enlarge, moons, osm_like};
use dbscout_data::io::{decode_binary, encode_binary};
use dbscout_data::kdist::{elbow_eps, kdist_graph};
use dbscout_data::sampling::{sample_exact, sample_fraction};
use dbscout_data::transform::Scaler;
use dbscout_spatial::PointStore;
use proptest::prelude::*;

fn arb_store(max_n: usize) -> impl Strategy<Value = PointStore> {
    (1usize..=3).prop_flat_map(move |dims| {
        prop::collection::vec(prop::collection::vec(-1e6f64..1e6, dims), 1..max_n)
            .prop_map(move |rows| PointStore::from_rows(dims, rows).expect("finite rows"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn binary_round_trip_any_store(store in arb_store(200)) {
        let decoded = decode_binary(&encode_binary(&store)).unwrap();
        prop_assert_eq!(decoded, store);
    }

    #[test]
    fn sample_exact_size_and_provenance(store in arb_store(150), k in 0usize..200, seed in 0u64..100) {
        let sub = sample_exact(&store, k, seed);
        prop_assert_eq!(sub.len() as usize, k.min(store.len() as usize));
        prop_assert_eq!(sub.dims(), store.dims());
    }

    #[test]
    fn sample_fraction_within_bernoulli_bounds(frac in 0.0f64..=1.0, seed in 0u64..50) {
        let store = osm_like(2_000, 1);
        let sub = sample_fraction(&store, frac, seed);
        let expected = 2_000.0 * frac;
        // 5-sigma Bernoulli bound.
        let sigma = (2_000.0 * frac * (1.0 - frac)).sqrt();
        prop_assert!(
            ((sub.len() as f64) - expected).abs() <= 5.0 * sigma + 1.0,
            "{} vs {expected}",
            sub.len()
        );
    }

    #[test]
    fn enlarge_scales_cardinality(factor in 1usize..5, seed in 0u64..20) {
        let base = osm_like(300, seed);
        let big = enlarge(&base, factor, 100.0, seed);
        prop_assert_eq!(big.len() as usize, 300 * factor);
    }

    #[test]
    fn generators_hit_requested_contamination(
        n_in in 100usize..800,
        n_out in 1usize..30,
        seed in 0u64..30,
    ) {
        for ds in [blobs(n_in, n_out, 2, 0.5, seed), moons(n_in, n_out, 0.05, seed)] {
            prop_assert_eq!(ds.len(), n_in + n_out, "{}", ds.name);
            prop_assert_eq!(ds.num_outliers(), n_out, "{}", ds.name);
        }
    }

    #[test]
    fn kdist_graph_sorted_and_elbow_in_range(store in arb_store(120), k in 1usize..5) {
        let g = kdist_graph(&store, k);
        for w in g.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
        if let Some(eps) = elbow_eps(&g) {
            prop_assert!(eps >= g[g.len() - 1] && eps <= g[0]);
        }
    }

    #[test]
    fn scalers_round_trip(store in arb_store(100)) {
        for scaler in [
            Scaler::fit_min_max(&store).unwrap(),
            Scaler::fit_standard(&store).unwrap(),
        ] {
            let back = scaler
                .inverse_transform(&scaler.transform(&store).unwrap())
                .unwrap();
            for ((_, a), (_, b)) in store.iter().zip(back.iter()) {
                for (x, y) in a.iter().zip(b) {
                    prop_assert!((x - y).abs() < 1e-6 * (1.0 + x.abs()), "{x} vs {y}");
                }
            }
        }
    }
}
