//! Labelled datasets: points plus ground-truth outlier flags.

use dbscout_spatial::PointStore;

/// A dataset whose points carry a ground-truth outlier label, used for
/// the quality experiments (paper Table III).
#[derive(Debug, Clone)]
pub struct LabeledDataset {
    /// Human-readable dataset name (e.g. `"blobs"`).
    pub name: String,
    /// The points.
    pub points: PointStore,
    /// `true` = ground-truth outlier; indexed by point id.
    pub labels: Vec<bool>,
}

impl LabeledDataset {
    /// Creates a labelled dataset.
    ///
    /// # Panics
    ///
    /// Panics if the label count does not match the point count —
    /// generators construct both together, so a mismatch is a bug.
    pub fn new(name: impl Into<String>, points: PointStore, labels: Vec<bool>) -> Self {
        assert_eq!(
            points.len() as usize,
            labels.len(),
            "labels must cover every point"
        );
        Self {
            name: name.into(),
            points,
            labels,
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of ground-truth outliers.
    pub fn num_outliers(&self) -> usize {
        self.labels.iter().filter(|&&l| l).count()
    }

    /// Fraction of outliers (the contamination factor ν of Table III).
    pub fn contamination(&self) -> f64 {
        if self.labels.is_empty() {
            0.0
        } else {
            self.num_outliers() as f64 / self.labels.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_contamination() {
        let points = PointStore::from_rows(2, vec![vec![0.0, 0.0]; 10]).unwrap();
        let mut labels = vec![false; 10];
        labels[3] = true;
        labels[7] = true;
        let ds = LabeledDataset::new("t", points, labels);
        assert_eq!(ds.len(), 10);
        assert_eq!(ds.num_outliers(), 2);
        assert!((ds.contamination() - 0.2).abs() < 1e-12);
        assert!(!ds.is_empty());
    }

    #[test]
    #[should_panic(expected = "labels must cover")]
    fn mismatched_labels_panic() {
        let points = PointStore::from_rows(2, vec![vec![0.0, 0.0]; 3]).unwrap();
        LabeledDataset::new("t", points, vec![false; 2]);
    }

    #[test]
    fn empty_dataset() {
        let ds = LabeledDataset::new("e", PointStore::new(2).unwrap(), vec![]);
        assert!(ds.is_empty());
        assert_eq!(ds.contamination(), 0.0);
    }
}
