//! Feature scaling. DBSCOUT's single global ε assumes axes are
//! commensurable — GPS data already is, but mixed-unit feature spaces
//! (e.g. the sensor-telemetry example's value/delta axes) need scaling
//! first, exactly as scikit-learn pipelines standardize before OC-SVM.

use dbscout_spatial::{PointStore, SpatialError};

/// A fitted per-dimension affine transform `x' = (x − shift) / scale`.
#[derive(Debug, Clone, PartialEq)]
pub struct Scaler {
    shift: Vec<f64>,
    scale: Vec<f64>,
}

impl Scaler {
    /// Fits a min–max scaler mapping each dimension onto [0, 1]
    /// (constant dimensions map to 0).
    pub fn fit_min_max(store: &PointStore) -> Option<Scaler> {
        let (min, max) = store.bounding_box()?;
        let scale = min
            .iter()
            .zip(&max)
            .map(|(lo, hi)| if hi > lo { hi - lo } else { 1.0 })
            .collect();
        Some(Scaler { shift: min, scale })
    }

    /// Fits a z-score standardizer (mean 0, standard deviation 1;
    /// constant dimensions map to 0).
    pub fn fit_standard(store: &PointStore) -> Option<Scaler> {
        if store.is_empty() {
            return None;
        }
        let d = store.dims();
        let n = store.len() as f64;
        let mut mean = vec![0.0; d];
        for (_, p) in store.iter() {
            for (m, &x) in mean.iter_mut().zip(p) {
                *m += x;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0; d];
        for (_, p) in store.iter() {
            for (v, (&x, &m)) in var.iter_mut().zip(p.iter().zip(&mean)) {
                *v += (x - m) * (x - m);
            }
        }
        let scale = var
            .iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s > 0.0 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        Some(Scaler { shift: mean, scale })
    }

    /// Applies the transform to every point.
    ///
    /// # Errors
    ///
    /// Fails on dimensionality mismatch.
    pub fn transform(&self, store: &PointStore) -> Result<PointStore, SpatialError> {
        if store.dims() != self.shift.len() {
            return Err(SpatialError::DimensionMismatch {
                expected: self.shift.len(),
                got: store.dims(),
            });
        }
        let mut out = PointStore::with_capacity(store.dims(), store.len() as usize)?;
        let mut buf = vec![0.0; store.dims()];
        for (_, p) in store.iter() {
            for (b, (&x, (&sh, &sc))) in buf
                .iter_mut()
                .zip(p.iter().zip(self.shift.iter().zip(&self.scale)))
            {
                *b = (x - sh) / sc;
            }
            out.push(&buf)?;
        }
        Ok(out)
    }

    /// Undoes the transform.
    ///
    /// # Errors
    ///
    /// Fails on dimensionality mismatch.
    pub fn inverse_transform(&self, store: &PointStore) -> Result<PointStore, SpatialError> {
        if store.dims() != self.shift.len() {
            return Err(SpatialError::DimensionMismatch {
                expected: self.shift.len(),
                got: store.dims(),
            });
        }
        let mut out = PointStore::with_capacity(store.dims(), store.len() as usize)?;
        let mut buf = vec![0.0; store.dims()];
        for (_, p) in store.iter() {
            for (b, (&x, (&sh, &sc))) in buf
                .iter_mut()
                .zip(p.iter().zip(self.shift.iter().zip(&self.scale)))
            {
                *b = x * sc + sh;
            }
            out.push(&buf)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PointStore {
        PointStore::from_rows(
            2,
            vec![vec![0.0, 100.0], vec![10.0, 200.0], vec![5.0, 150.0]],
        )
        .unwrap()
    }

    #[test]
    fn min_max_maps_to_unit_box() {
        let store = sample();
        let scaler = Scaler::fit_min_max(&store).unwrap();
        let out = scaler.transform(&store).unwrap();
        let (min, max) = out.bounding_box().unwrap();
        assert_eq!(min, vec![0.0, 0.0]);
        assert_eq!(max, vec![1.0, 1.0]);
    }

    #[test]
    fn standard_centers_and_scales() {
        let store = sample();
        let scaler = Scaler::fit_standard(&store).unwrap();
        let out = scaler.transform(&store).unwrap();
        for d in 0..2 {
            let vals: Vec<f64> = out.iter().map(|(_, p)| p[d]).collect();
            let mean: f64 = vals.iter().sum::<f64>() / vals.len() as f64;
            let var: f64 =
                vals.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / vals.len() as f64;
            assert!(mean.abs() < 1e-12, "dim {d} mean {mean}");
            assert!((var - 1.0).abs() < 1e-12, "dim {d} var {var}");
        }
    }

    #[test]
    fn inverse_round_trips() {
        let store = sample();
        for scaler in [
            Scaler::fit_min_max(&store).unwrap(),
            Scaler::fit_standard(&store).unwrap(),
        ] {
            let there = scaler.transform(&store).unwrap();
            let back = scaler.inverse_transform(&there).unwrap();
            for ((_, a), (_, b)) in store.iter().zip(back.iter()) {
                for (x, y) in a.iter().zip(b) {
                    assert!((x - y).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn constant_dimension_does_not_explode() {
        let store = PointStore::from_rows(2, vec![vec![5.0, 1.0], vec![5.0, 2.0]]).unwrap();
        for scaler in [
            Scaler::fit_min_max(&store).unwrap(),
            Scaler::fit_standard(&store).unwrap(),
        ] {
            let out = scaler.transform(&store).unwrap();
            assert!(out.flat().iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn empty_store_yields_none() {
        let empty = PointStore::new(2).unwrap();
        assert!(Scaler::fit_min_max(&empty).is_none());
        assert!(Scaler::fit_standard(&empty).is_none());
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let scaler = Scaler::fit_min_max(&sample()).unwrap();
        let wrong = PointStore::from_rows(3, vec![vec![1.0, 2.0, 3.0]]).unwrap();
        assert!(scaler.transform(&wrong).is_err());
        assert!(scaler.inverse_transform(&wrong).is_err());
    }
}
