//! Dataset IO: a plain CSV codec (for interchange with the scikit-learn
//! tooling the paper compares against) and a compact binary format (for
//! caching the multi-million-point GPS workloads between experiment
//! runs).

use std::fmt;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use dbscout_spatial::PointStore;

/// A bounds-checked little-endian reader over a byte slice.
///
/// Stands in for the `bytes::Buf` trait (unavailable offline); every read
/// returns `None` past the end instead of panicking.
struct ByteReader<'a> {
    data: &'a [u8],
}

impl<'a> ByteReader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Self { data }
    }

    fn remaining(&self) -> usize {
        self.data.len()
    }

    fn take<const N: usize>(&mut self) -> Option<[u8; N]> {
        let head = self.data.get(..N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(head);
        self.data = self.data.get(N..)?;
        Some(out)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take::<1>().map(|[b]| b)
    }

    fn u64_le(&mut self) -> Option<u64> {
        self.take::<8>().map(u64::from_le_bytes)
    }

    fn f64_le(&mut self) -> Option<f64> {
        self.take::<8>().map(f64::from_le_bytes)
    }
}

/// Magic bytes of the binary point format.
const MAGIC: &[u8; 4] = b"DBSC";
/// Current binary format version.
const VERSION: u8 = 1;

/// IO and decoding errors.
#[derive(Debug)]
pub enum DataIoError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// A CSV field failed to parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The binary header is not a DBSC file or has a wrong version.
    BadHeader,
    /// The binary payload was truncated.
    Truncated,
    /// The decoded points were structurally invalid.
    Spatial(dbscout_spatial::SpatialError),
}

impl fmt::Display for DataIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataIoError::Io(e) => write!(f, "io error: {e}"),
            DataIoError::Parse { line, message } => {
                write!(f, "csv parse error at line {line}: {message}")
            }
            DataIoError::BadHeader => write!(f, "not a DBSC binary file (bad magic/version)"),
            DataIoError::Truncated => write!(f, "binary payload truncated"),
            DataIoError::Spatial(e) => write!(f, "invalid point data: {e}"),
        }
    }
}

impl std::error::Error for DataIoError {}

impl From<std::io::Error> for DataIoError {
    fn from(e: std::io::Error) -> Self {
        DataIoError::Io(e)
    }
}

impl From<dbscout_spatial::SpatialError> for DataIoError {
    fn from(e: dbscout_spatial::SpatialError) -> Self {
        DataIoError::Spatial(e)
    }
}

/// Writes points as CSV: one row per point, coordinates then (optionally)
/// a `0`/`1` outlier label column.
pub fn write_csv(
    path: impl AsRef<Path>,
    store: &PointStore,
    labels: Option<&[bool]>,
) -> Result<(), DataIoError> {
    if let Some(labels) = labels {
        assert_eq!(labels.len(), store.len() as usize, "label count");
    }
    let mut w = BufWriter::new(File::create(path)?);
    for (id, p) in store.iter() {
        let mut first = true;
        for c in p {
            if !first {
                w.write_all(b",")?;
            }
            first = false;
            write!(w, "{c}")?;
        }
        if let Some(labels) = labels {
            let flag = labels.get(id as usize).copied().unwrap_or(false);
            write!(w, ",{}", u8::from(flag))?;
        }
        w.write_all(b"\n")?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a CSV of points. With `labeled = true` the last column is
/// decoded as a `0`/`1` outlier label; otherwise every column is a
/// coordinate. Dimensionality is inferred from the first row; empty files
/// yield an error.
pub fn read_csv(
    path: impl AsRef<Path>,
    labeled: bool,
) -> Result<(PointStore, Option<Vec<bool>>), DataIoError> {
    let r = BufReader::new(File::open(path)?);
    let mut store: Option<PointStore> = None;
    let mut labels = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut fields: Vec<&str> = line.split(',').collect();
        let label = if labeled {
            let f = fields.pop().ok_or(DataIoError::Parse {
                line: i + 1,
                message: "missing label column".into(),
            })?;
            match f.trim() {
                "0" => false,
                "1" => true,
                other => {
                    return Err(DataIoError::Parse {
                        line: i + 1,
                        message: format!("label must be 0/1, got {other:?}"),
                    })
                }
            }
        } else {
            false
        };
        let mut coords = Vec::with_capacity(fields.len());
        for f in &fields {
            coords.push(f.trim().parse::<f64>().map_err(|e| DataIoError::Parse {
                line: i + 1,
                message: format!("bad coordinate {f:?}: {e}"),
            })?);
        }
        let store = match &mut store {
            Some(s) => s,
            None => store.insert(PointStore::new(coords.len())?),
        };
        store.push(&coords).map_err(|e| DataIoError::Parse {
            line: i + 1,
            message: e.to_string(),
        })?;
        if labeled {
            labels.push(label);
        }
    }
    let store = store.ok_or(DataIoError::Parse {
        line: 0,
        message: "empty file".into(),
    })?;
    Ok((store, labeled.then_some(labels)))
}

/// Encodes a point store into the compact binary format.
pub fn encode_binary(store: &PointStore) -> Vec<u8> {
    let n = store.len() as u64;
    let mut buf = Vec::with_capacity(16 + store.flat().len() * 8);
    buf.extend_from_slice(MAGIC);
    buf.push(VERSION);
    buf.push(store.dims() as u8);
    buf.extend_from_slice(&n.to_le_bytes());
    for &c in store.flat() {
        buf.extend_from_slice(&c.to_le_bytes());
    }
    buf
}

/// Decodes the compact binary format.
pub fn decode_binary(data: &[u8]) -> Result<PointStore, DataIoError> {
    let mut r = ByteReader::new(data);
    let magic = r.take::<4>().ok_or(DataIoError::BadHeader)?;
    let version = r.u8().ok_or(DataIoError::BadHeader)?;
    if &magic != MAGIC || version != VERSION {
        return Err(DataIoError::BadHeader);
    }
    let dims = r.u8().ok_or(DataIoError::BadHeader)? as usize;
    let n = r.u64_le().ok_or(DataIoError::BadHeader)? as usize;
    let want = n
        .checked_mul(dims)
        .and_then(|x| x.checked_mul(8))
        .ok_or(DataIoError::Truncated)?;
    if r.remaining() < want {
        return Err(DataIoError::Truncated);
    }
    let mut coords = Vec::with_capacity(n * dims);
    for _ in 0..n * dims {
        coords.push(r.f64_le().ok_or(DataIoError::Truncated)?);
    }
    Ok(PointStore::from_flat(dims, coords)?)
}

/// Writes the binary format to a file.
pub fn write_binary(path: impl AsRef<Path>, store: &PointStore) -> Result<(), DataIoError> {
    let mut f = BufWriter::new(File::create(path)?);
    f.write_all(&encode_binary(store))?;
    f.flush()?;
    Ok(())
}

/// Reads the binary format from a file.
pub fn read_binary(path: impl AsRef<Path>) -> Result<PointStore, DataIoError> {
    let mut data = Vec::new();
    File::open(path)?.read_to_end(&mut data)?;
    decode_binary(&data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> PointStore {
        PointStore::from_rows(
            3,
            vec![
                vec![1.5, -2.25, 0.0],
                vec![1e-12, 9e9, -3.5],
                vec![0.1, 0.2, 0.3],
            ],
        )
        .unwrap()
    }

    #[test]
    fn csv_round_trip_with_labels() {
        let dir = std::env::temp_dir().join("dbscout-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("labeled.csv");
        let store = sample_store();
        let labels = vec![false, true, false];
        write_csv(&path, &store, Some(&labels)).unwrap();
        let (got, got_labels) = read_csv(&path, true).unwrap();
        assert_eq!(got, store);
        assert_eq!(got_labels.unwrap(), labels);
    }

    #[test]
    fn csv_round_trip_unlabeled() {
        let dir = std::env::temp_dir().join("dbscout-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plain.csv");
        let store = sample_store();
        write_csv(&path, &store, None).unwrap();
        let (got, labels) = read_csv(&path, false).unwrap();
        assert_eq!(got, store);
        assert!(labels.is_none());
    }

    #[test]
    fn csv_rejects_garbage() {
        let dir = std::env::temp_dir().join("dbscout-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.csv");
        std::fs::write(&path, "1.0,abc\n").unwrap();
        assert!(matches!(
            read_csv(&path, false),
            Err(DataIoError::Parse { line: 1, .. })
        ));
        std::fs::write(&path, "1.0,2.0,7\n").unwrap();
        assert!(matches!(
            read_csv(&path, true),
            Err(DataIoError::Parse { .. })
        ));
    }

    #[test]
    fn binary_round_trip() {
        let store = sample_store();
        let buf = encode_binary(&store);
        let got = decode_binary(&buf).unwrap();
        assert_eq!(got, store);
    }

    #[test]
    fn binary_rejects_bad_magic_and_truncation() {
        let store = sample_store();
        let mut buf = encode_binary(&store);
        assert!(matches!(
            decode_binary(&buf[..10]),
            Err(DataIoError::BadHeader)
        ));
        assert!(matches!(
            decode_binary(&buf[..20]),
            Err(DataIoError::Truncated)
        ));
        buf[0] = b'X';
        assert!(matches!(decode_binary(&buf), Err(DataIoError::BadHeader)));
    }

    #[test]
    fn binary_file_round_trip() {
        let dir = std::env::temp_dir().join("dbscout-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("points.dbsc");
        let store = sample_store();
        write_binary(&path, &store).unwrap();
        assert_eq!(read_binary(&path).unwrap(), store);
    }

    #[test]
    fn empty_csv_is_an_error() {
        let dir = std::env::temp_dir().join("dbscout-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.csv");
        std::fs::write(&path, "").unwrap();
        assert!(read_csv(&path, false).is_err());
    }
}
