//! Dataset IO: a plain CSV codec (for interchange with the scikit-learn
//! tooling the paper compares against) and a compact binary format (for
//! caching the multi-million-point GPS workloads between experiment
//! runs).

use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

use dbscout_spatial::PointStore;

use crate::source::{materialize, BinarySource, CsvSource, DEFAULT_BATCH_SIZE};

/// A bounds-checked little-endian reader over a byte slice.
///
/// Stands in for the `bytes::Buf` trait (unavailable offline); every read
/// returns `None` past the end instead of panicking.
struct ByteReader<'a> {
    data: &'a [u8],
}

impl<'a> ByteReader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Self { data }
    }

    fn remaining(&self) -> usize {
        self.data.len()
    }

    fn take<const N: usize>(&mut self) -> Option<[u8; N]> {
        let head = self.data.get(..N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(head);
        self.data = self.data.get(N..)?;
        Some(out)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take::<1>().map(|[b]| b)
    }

    fn u64_le(&mut self) -> Option<u64> {
        self.take::<8>().map(u64::from_le_bytes)
    }

    fn f64_le(&mut self) -> Option<f64> {
        self.take::<8>().map(f64::from_le_bytes)
    }
}

/// Magic bytes of the binary point format.
pub(crate) const MAGIC: &[u8; 4] = b"DBSC";
/// Current binary format version.
pub(crate) const VERSION: u8 = 1;
/// Size of the binary header: magic, version byte, dims byte, point
/// count as little-endian `u64`.
pub(crate) const BINARY_HEADER_LEN: usize = MAGIC.len() + 1 + 1 + 8;

/// IO and decoding errors.
#[derive(Debug)]
pub enum DataIoError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// A CSV field failed to parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The file does not start with the `DBSC` magic bytes — it is not a
    /// DBSC binary file at all.
    BadMagic,
    /// The magic matched but the version byte is one this build does not
    /// read — the diagnostic that makes format/frame version skew
    /// debuggable across processes.
    UnsupportedVersion {
        /// The version byte found in the header.
        found: u8,
    },
    /// The binary payload was truncated.
    Truncated,
    /// The binary payload has bytes past the declared `n * dims`
    /// coordinates — a corrupt or mislabeled file, not ours.
    TrailingBytes {
        /// How many unexpected bytes follow the declared payload.
        extra: u64,
    },
    /// The decoded points were structurally invalid.
    Spatial(dbscout_spatial::SpatialError),
}

impl fmt::Display for DataIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataIoError::Io(e) => write!(f, "io error: {e}"),
            DataIoError::Parse { line, message } => {
                write!(f, "csv parse error at line {line}: {message}")
            }
            DataIoError::BadMagic => write!(f, "not a DBSC binary file (bad magic)"),
            DataIoError::UnsupportedVersion { found } => write!(
                f,
                "unsupported DBSC binary version {found} (this build reads version {VERSION})"
            ),
            DataIoError::Truncated => write!(f, "binary payload truncated"),
            DataIoError::TrailingBytes { extra } => write!(
                f,
                "binary payload has {extra} trailing byte(s) after the declared points"
            ),
            DataIoError::Spatial(e) => write!(f, "invalid point data: {e}"),
        }
    }
}

impl std::error::Error for DataIoError {}

impl From<std::io::Error> for DataIoError {
    fn from(e: std::io::Error) -> Self {
        DataIoError::Io(e)
    }
}

impl From<dbscout_spatial::SpatialError> for DataIoError {
    fn from(e: dbscout_spatial::SpatialError) -> Self {
        DataIoError::Spatial(e)
    }
}

/// Writes points as CSV: one row per point, coordinates then (optionally)
/// a `0`/`1` outlier label column.
pub fn write_csv(
    path: impl AsRef<Path>,
    store: &PointStore,
    labels: Option<&[bool]>,
) -> Result<(), DataIoError> {
    if let Some(labels) = labels {
        assert_eq!(labels.len(), store.len() as usize, "label count");
    }
    let mut w = BufWriter::new(File::create(path)?);
    for (id, p) in store.iter() {
        let mut first = true;
        for c in p {
            if !first {
                w.write_all(b",")?;
            }
            first = false;
            write!(w, "{c}")?;
        }
        if let Some(labels) = labels {
            let flag = labels.get(id as usize).copied().unwrap_or(false);
            write!(w, ",{}", u8::from(flag))?;
        }
        w.write_all(b"\n")?;
    }
    w.flush()?;
    Ok(())
}

/// How CSV ingest treats malformed rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IngestMode {
    /// The first bad row (unparseable field, non-finite coordinate,
    /// dimension mismatch) fails the whole load.
    #[default]
    Strict,
    /// Bad rows are quarantined (counted, first samples kept) and the
    /// rest of the file still loads — graceful degradation for dirty GPS
    /// dumps.
    Permissive,
}

/// How many quarantined rows keep their full reason text in a
/// [`QuarantineReport`].
pub const QUARANTINE_SAMPLE_LIMIT: usize = 5;

/// One quarantined CSV row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedRow {
    /// 1-based line number in the source file.
    pub line: usize,
    /// Why the row was rejected.
    pub reason: String,
}

/// Summary of rows dropped by a permissive ingest.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QuarantineReport {
    /// Total number of quarantined rows.
    pub quarantined: usize,
    /// The first [`QUARANTINE_SAMPLE_LIMIT`] quarantined rows, in file
    /// order.
    pub samples: Vec<QuarantinedRow>,
}

impl QuarantineReport {
    /// Whether every row of the file was ingested.
    pub fn is_clean(&self) -> bool {
        self.quarantined == 0
    }

    pub(crate) fn record(&mut self, line: usize, reason: String) {
        self.quarantined += 1;
        if self.samples.len() < QUARANTINE_SAMPLE_LIMIT {
            self.samples.push(QuarantinedRow { line, reason });
        }
    }
}

/// A successfully ingested CSV dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct CsvIngest {
    /// The loaded points.
    pub store: PointStore,
    /// Outlier ground-truth labels, when the file was read as labeled.
    pub labels: Option<Vec<bool>>,
    /// Rows dropped in [`IngestMode::Permissive`] (always clean under
    /// [`IngestMode::Strict`], which errors instead).
    pub quarantine: QuarantineReport,
}

/// Parses one non-empty CSV row into coordinates plus optional label.
/// `dims`, when known, is the dimensionality established by the first
/// accepted row. Errors are rendered with the 1-based `line` number and
/// the 1-based coordinate column so dirty rows are findable in the file.
pub(crate) fn parse_row(
    row: &str,
    line: usize,
    labeled: bool,
    dims: Option<usize>,
) -> Result<(Vec<f64>, bool), String> {
    let mut fields: Vec<&str> = row.split(',').collect();
    let label = if labeled {
        let f = fields
            .pop()
            .ok_or_else(|| "missing label column".to_owned())?;
        match f.trim() {
            "0" => false,
            "1" => true,
            other => return Err(format!("label must be 0/1, got {other:?}")),
        }
    } else {
        false
    };
    let mut coords = Vec::with_capacity(fields.len());
    for (col, f) in fields.iter().enumerate() {
        let value = f.trim().parse::<f64>().map_err(|e| {
            format!(
                "bad coordinate {f:?} at line {line} column {}: {e}",
                col + 1
            )
        })?;
        if !value.is_finite() {
            return Err(format!(
                "non-finite coordinate {value} at line {line} column {}",
                col + 1
            ));
        }
        coords.push(value);
    }
    if let Some(dims) = dims {
        if coords.len() != dims {
            return Err(format!(
                "expected {dims} coordinates, got {} at line {line}",
                coords.len()
            ));
        }
    }
    Ok((coords, label))
}

/// Reads a CSV of points under the given [`IngestMode`]. With
/// `labeled = true` the last column is decoded as a `0`/`1` outlier
/// label; otherwise every column is a coordinate. Dimensionality is
/// inferred from the first accepted row; files with no usable rows yield
/// an error in either mode.
///
/// This is the materializing wrapper over [`CsvSource`]; streaming
/// consumers should take the source directly.
pub fn read_csv_with(
    path: impl AsRef<Path>,
    labeled: bool,
    mode: IngestMode,
) -> Result<CsvIngest, DataIoError> {
    let mut source = CsvSource::open(path, labeled, mode, DEFAULT_BATCH_SIZE)?;
    let store = materialize(&mut source)?;
    let labels = source.take_labels();
    Ok(CsvIngest {
        store,
        labels,
        quarantine: source.quarantine().clone(),
    })
}

/// Reads a CSV of points in [`IngestMode::Strict`]. With `labeled = true`
/// the last column is decoded as a `0`/`1` outlier label; otherwise every
/// column is a coordinate. Dimensionality is inferred from the first row;
/// empty files yield an error.
pub fn read_csv(
    path: impl AsRef<Path>,
    labeled: bool,
) -> Result<(PointStore, Option<Vec<bool>>), DataIoError> {
    let ingest = read_csv_with(path, labeled, IngestMode::Strict)?;
    Ok((ingest.store, ingest.labels))
}

/// Encodes a point store into the compact binary format.
pub fn encode_binary(store: &PointStore) -> Vec<u8> {
    let n = store.len() as u64;
    let mut buf = Vec::with_capacity(16 + store.flat().len() * 8);
    buf.extend_from_slice(MAGIC);
    buf.push(VERSION);
    buf.push(store.dims() as u8);
    buf.extend_from_slice(&n.to_le_bytes());
    for &c in store.flat() {
        buf.extend_from_slice(&c.to_le_bytes());
    }
    buf
}

/// Parses the 14-byte binary header, distinguishing the three failure
/// modes: not a DBSC file at all ([`DataIoError::BadMagic`]), a DBSC file
/// from an incompatible format revision
/// ([`DataIoError::UnsupportedVersion`]), and a header cut short
/// ([`DataIoError::Truncated`]). Returns `(dims, point count)`.
pub(crate) fn parse_binary_header(data: &[u8]) -> Result<(usize, u64), DataIoError> {
    let mut r = ByteReader::new(data);
    let magic = r.take::<4>().ok_or(DataIoError::BadMagic)?;
    if &magic != MAGIC {
        return Err(DataIoError::BadMagic);
    }
    let version = r.u8().ok_or(DataIoError::Truncated)?;
    if version != VERSION {
        return Err(DataIoError::UnsupportedVersion { found: version });
    }
    let dims = r.u8().ok_or(DataIoError::Truncated)? as usize;
    let n = r.u64_le().ok_or(DataIoError::Truncated)?;
    Ok((dims, n))
}

/// Decodes the compact binary format.
pub fn decode_binary(data: &[u8]) -> Result<PointStore, DataIoError> {
    let (dims, n) = parse_binary_header(data)?;
    let n = n as usize;
    let mut r = ByteReader::new(data.get(BINARY_HEADER_LEN..).unwrap_or(&[]));
    let want = n
        .checked_mul(dims)
        .and_then(|x| x.checked_mul(8))
        .ok_or(DataIoError::Truncated)?;
    if r.remaining() < want {
        return Err(DataIoError::Truncated);
    }
    let mut coords = Vec::with_capacity(n * dims);
    for _ in 0..n * dims {
        coords.push(r.f64_le().ok_or(DataIoError::Truncated)?);
    }
    if r.remaining() > 0 {
        return Err(DataIoError::TrailingBytes {
            extra: r.remaining() as u64,
        });
    }
    Ok(PointStore::from_flat(dims, coords)?)
}

/// Writes the binary format to a file.
pub fn write_binary(path: impl AsRef<Path>, store: &PointStore) -> Result<(), DataIoError> {
    let mut f = BufWriter::new(File::create(path)?);
    f.write_all(&encode_binary(store))?;
    f.flush()?;
    Ok(())
}

/// Reads the binary format from a file in batch-sized chunks (the
/// materializing wrapper over [`BinarySource`]).
pub fn read_binary(path: impl AsRef<Path>) -> Result<PointStore, DataIoError> {
    let mut source = BinarySource::open(path, DEFAULT_BATCH_SIZE)?;
    materialize(&mut source)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> PointStore {
        PointStore::from_rows(
            3,
            vec![
                vec![1.5, -2.25, 0.0],
                vec![1e-12, 9e9, -3.5],
                vec![0.1, 0.2, 0.3],
            ],
        )
        .unwrap()
    }

    #[test]
    fn csv_round_trip_with_labels() {
        let dir = std::env::temp_dir().join("dbscout-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("labeled.csv");
        let store = sample_store();
        let labels = vec![false, true, false];
        write_csv(&path, &store, Some(&labels)).unwrap();
        let (got, got_labels) = read_csv(&path, true).unwrap();
        assert_eq!(got, store);
        assert_eq!(got_labels.unwrap(), labels);
    }

    #[test]
    fn csv_round_trip_unlabeled() {
        let dir = std::env::temp_dir().join("dbscout-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plain.csv");
        let store = sample_store();
        write_csv(&path, &store, None).unwrap();
        let (got, labels) = read_csv(&path, false).unwrap();
        assert_eq!(got, store);
        assert!(labels.is_none());
    }

    #[test]
    fn csv_rejects_garbage() {
        let dir = std::env::temp_dir().join("dbscout-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.csv");
        std::fs::write(&path, "1.0,abc\n").unwrap();
        assert!(matches!(
            read_csv(&path, false),
            Err(DataIoError::Parse { line: 1, .. })
        ));
        std::fs::write(&path, "1.0,2.0,7\n").unwrap();
        assert!(matches!(
            read_csv(&path, true),
            Err(DataIoError::Parse { .. })
        ));
    }

    #[test]
    fn strict_rejects_non_finite_with_row_and_column() {
        let dir = std::env::temp_dir().join("dbscout-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("nonfinite.csv");
        std::fs::write(&path, "1.0,2.0\n3.0,NaN\n5.0,6.0\n").unwrap();
        let err = read_csv(&path, false).unwrap_err();
        match err {
            DataIoError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("non-finite coordinate"), "{message}");
                assert!(message.contains("line 2"), "{message}");
                assert!(message.contains("column 2"), "{message}");
            }
            other => panic!("unexpected error: {other}"),
        }
        std::fs::write(&path, "inf,2.0\n").unwrap();
        let err = read_csv(&path, false).unwrap_err();
        assert!(err.to_string().contains("column 1"), "{err}");
        std::fs::write(&path, "1.0,-inf\n").unwrap();
        assert!(read_csv(&path, false).is_err());
    }

    #[test]
    fn finite_rows_round_trip_after_strict_validation() {
        let dir = std::env::temp_dir().join("dbscout-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("finite-roundtrip.csv");
        let store = sample_store();
        write_csv(&path, &store, None).unwrap();
        let ingest = read_csv_with(&path, false, IngestMode::Strict).unwrap();
        assert_eq!(ingest.store, store);
        assert!(ingest.quarantine.is_clean());
    }

    #[test]
    fn permissive_quarantines_bad_rows_and_keeps_the_rest() {
        let dir = std::env::temp_dir().join("dbscout-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dirty.csv");
        std::fs::write(
            &path,
            "1.0,2.0\nnope,2.0\n3.0,NaN\n5.0,6.0\n7.0\n9.0,10.0\n",
        )
        .unwrap();
        let ingest = read_csv_with(&path, false, IngestMode::Permissive).unwrap();
        assert_eq!(ingest.store.len(), 3);
        assert_eq!(ingest.quarantine.quarantined, 3);
        let lines: Vec<usize> = ingest.quarantine.samples.iter().map(|s| s.line).collect();
        assert_eq!(lines, vec![2, 3, 5]);
        assert!(ingest.quarantine.samples[1]
            .reason
            .contains("non-finite coordinate"));
        assert!(ingest.quarantine.samples[2].reason.contains("expected 2"));
    }

    #[test]
    fn permissive_caps_quarantine_samples() {
        let dir = std::env::temp_dir().join("dbscout-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("very-dirty.csv");
        let mut content = String::from("1.0,2.0\n");
        for _ in 0..10 {
            content.push_str("bad,row\n");
        }
        std::fs::write(&path, content).unwrap();
        let ingest = read_csv_with(&path, false, IngestMode::Permissive).unwrap();
        assert_eq!(ingest.quarantine.quarantined, 10);
        assert_eq!(ingest.quarantine.samples.len(), QUARANTINE_SAMPLE_LIMIT);
    }

    #[test]
    fn permissive_with_no_usable_rows_is_an_error() {
        let dir = std::env::temp_dir().join("dbscout-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("all-bad.csv");
        std::fs::write(&path, "x\ny\n").unwrap();
        let err = read_csv_with(&path, false, IngestMode::Permissive).unwrap_err();
        assert!(err.to_string().contains("2 quarantined"), "{err}");
    }

    #[test]
    fn permissive_respects_labels() {
        let dir = std::env::temp_dir().join("dbscout-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dirty-labeled.csv");
        std::fs::write(&path, "1.0,2.0,0\n3.0,4.0,7\n5.0,6.0,1\n").unwrap();
        let ingest = read_csv_with(&path, true, IngestMode::Permissive).unwrap();
        assert_eq!(ingest.store.len(), 2);
        assert_eq!(ingest.labels.unwrap(), vec![false, true]);
        assert_eq!(ingest.quarantine.quarantined, 1);
        assert!(ingest.quarantine.samples[0].reason.contains("label"));
    }

    #[test]
    fn binary_round_trip() {
        let store = sample_store();
        let buf = encode_binary(&store);
        let got = decode_binary(&buf).unwrap();
        assert_eq!(got, store);
    }

    #[test]
    fn binary_rejects_bad_magic_and_truncation() {
        let store = sample_store();
        let mut buf = encode_binary(&store);
        // 10 bytes: valid magic+version, but the count field is cut short.
        assert!(matches!(
            decode_binary(&buf[..10]),
            Err(DataIoError::Truncated)
        ));
        assert!(matches!(
            decode_binary(&buf[..20]),
            Err(DataIoError::Truncated)
        ));
        assert!(matches!(
            decode_binary(&buf[..3]),
            Err(DataIoError::BadMagic)
        ));
        buf[0] = b'X';
        assert!(matches!(decode_binary(&buf), Err(DataIoError::BadMagic)));
    }

    #[test]
    fn binary_rejects_bad_version() {
        let mut buf = encode_binary(&sample_store());
        buf[4] = VERSION + 1;
        assert!(matches!(
            decode_binary(&buf),
            Err(DataIoError::UnsupportedVersion { found }) if found == VERSION + 1
        ));
    }

    #[test]
    fn header_diagnostics_name_the_cause() {
        // Bad magic and version skew must be distinguishable from the
        // Display text alone — the property IPC debugging leans on.
        assert_eq!(
            DataIoError::BadMagic.to_string(),
            "not a DBSC binary file (bad magic)"
        );
        let skew = DataIoError::UnsupportedVersion { found: 9 };
        assert!(skew.to_string().contains("version 9"), "{skew}");
        assert!(
            skew.to_string().contains(&format!("version {VERSION}")),
            "{skew}"
        );
    }

    #[test]
    fn binary_rejects_trailing_bytes() {
        let mut buf = encode_binary(&sample_store());
        buf.extend_from_slice(&[0xAA, 0xBB]);
        assert!(matches!(
            decode_binary(&buf),
            Err(DataIoError::TrailingBytes { extra: 2 })
        ));
        let dir = std::env::temp_dir().join("dbscout-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trailing.dbsc");
        std::fs::write(&path, &buf).unwrap();
        assert!(matches!(
            read_binary(&path),
            Err(DataIoError::TrailingBytes { extra: 2 })
        ));
    }

    #[test]
    fn binary_file_round_trip() {
        let dir = std::env::temp_dir().join("dbscout-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("points.dbsc");
        let store = sample_store();
        write_binary(&path, &store).unwrap();
        assert_eq!(read_binary(&path).unwrap(), store);
    }

    #[test]
    fn empty_csv_is_an_error() {
        let dir = std::env::temp_dir().join("dbscout-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.csv");
        std::fs::write(&path, "").unwrap();
        assert!(read_csv(&path, false).is_err());
    }
}
