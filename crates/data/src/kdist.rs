//! The k-dist graph: the ε-selection heuristic the paper uses for
//! Table III (§IV-C1): "we fixed the value of minPts, then drew the graph
//! of the distance to the minPts-th neighbor against the number of
//! points. The value of ε was then chosen in the uppermost part of the
//! elbow zone of such graph."

use dbscout_spatial::{KdTree, PointStore};

/// For every point, the distance to its `k`-th nearest *other* neighbor,
/// sorted descending — the classic DBSCAN k-dist graph.
pub fn kdist_graph(store: &PointStore, k: usize) -> Vec<f64> {
    assert!(k >= 1, "k must be >= 1");
    let tree = KdTree::build(store);
    let mut dists: Vec<f64> = store
        .iter()
        .map(|(_, p)| {
            // k+1 because the query point itself is always returned at
            // distance zero.
            let nn = tree.knn(p, k + 1);
            nn.last().map(|n| n.sq_dist.sqrt()).unwrap_or(0.0)
        })
        .collect();
    dists.sort_by(|a, b| b.total_cmp(a));
    dists
}

/// Picks ε in the **uppermost part of the elbow zone** of the
/// (descending) k-dist graph, as the paper prescribes (§IV-C1): find the
/// maximum distance-to-chord (the knee), then walk back toward the head
/// of the curve while the distance-to-chord stays within 90% of the
/// maximum — the first such index is the upper edge of the elbow zone.
///
/// Returns `None` for graphs with fewer than 3 points.
pub fn elbow_eps(kdist: &[f64]) -> Option<f64> {
    if kdist.len() < 3 {
        return None;
    }
    let n = kdist.len() as f64;
    let head = kdist.first().copied()?;
    let tail = kdist.last().copied()?;
    let (x0, y0) = (0.0, head);
    let (x1, y1) = (n - 1.0, tail);
    let dx = x1 - x0;
    let dy = y1 - y0;
    let norm = (dx * dx + dy * dy).sqrt();
    if norm == 0.0 {
        return Some(head);
    }
    let chord_dist = |i: usize| -> f64 {
        let (x, y) = (i as f64, kdist.get(i).copied().unwrap_or(0.0));
        ((dy * x - dx * y + x1 * y0 - y1 * x0) / norm).abs()
    };
    let mut best = (0usize, f64::MIN);
    for i in 0..kdist.len() {
        let d = chord_dist(i);
        if d > best.1 {
            best = (i, d);
        }
    }
    // Upper edge of the elbow zone: smallest index (largest k-dist) whose
    // chord distance is still within 90% of the knee's.
    let threshold = 0.9 * best.1;
    let upper = (0..=best.0)
        .find(|&i| chord_dist(i) >= threshold)
        .unwrap_or(best.0);
    kdist.get(upper).copied()
}

/// End-to-end ε suggestion: build the k-dist graph for `k = min_pts` and
/// take the elbow.
pub fn suggest_eps(store: &PointStore, min_pts: usize) -> Option<f64> {
    elbow_eps(&kdist_graph(store, min_pts))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kdist_is_sorted_descending() {
        let store =
            PointStore::from_rows(2, (0..100).map(|i| vec![(i % 10) as f64, (i / 10) as f64]))
                .unwrap();
        let g = kdist_graph(&store, 4);
        assert_eq!(g.len(), 100);
        for w in g.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn kdist_excludes_self() {
        // Two points at distance 5: each one's 1-dist is 5, not 0.
        let store = PointStore::from_rows(2, vec![vec![0.0, 0.0], vec![5.0, 0.0]]).unwrap();
        let g = kdist_graph(&store, 1);
        assert_eq!(g, vec![5.0, 5.0]);
    }

    #[test]
    fn elbow_finds_knee_of_hockey_stick() {
        // A flat tail with a sharp rise at the head: elbow near the bend.
        let mut g = vec![0.5f64; 100];
        for (i, v) in [50.0, 25.0, 12.0, 6.0, 3.0, 1.5].iter().enumerate() {
            g[i] = *v;
        }
        let eps = elbow_eps(&g).unwrap();
        assert!(eps < 13.0 && eps > 0.4, "eps {eps}");
    }

    #[test]
    fn elbow_degenerate_inputs() {
        assert_eq!(elbow_eps(&[]), None);
        assert_eq!(elbow_eps(&[1.0, 2.0]), None);
        // Constant graph: any value works; must not panic.
        assert_eq!(elbow_eps(&[2.0, 2.0, 2.0, 2.0]), Some(2.0));
    }

    #[test]
    fn suggest_eps_separates_cluster_from_noise() {
        // Tight cluster + a few distant points: suggested eps should be
        // around the cluster's internal spacing, far below the outlier
        // distances.
        let mut rows: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![(i % 20) as f64 * 0.1, (i / 20) as f64 * 0.1])
            .collect();
        rows.push(vec![100.0, 100.0]);
        rows.push(vec![-80.0, 40.0]);
        let store = PointStore::from_rows(2, rows).unwrap();
        let eps = suggest_eps(&store, 4).unwrap();
        assert!(eps < 10.0, "eps {eps} should be near cluster spacing");
        assert!(eps > 0.05, "eps {eps} should be positive");
    }
}
