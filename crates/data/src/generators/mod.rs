//! Seeded synthetic dataset generators.
//!
//! * [`blobs`], [`blobs_varied_density`], [`circles`], [`moons`] — the
//!   scikit-learn-style labelled 2-D shapes of paper Table III;
//! * [`cluto_t4_like`] … [`cure_t2_like`] — shape-matched stand-ins for
//!   the Cluto/Cure benchmark files (same cardinalities and contamination
//!   factors as the paper's Table III rows);
//! * [`geolife_like`], [`osm_like`], [`enlarge`] — structural stand-ins
//!   for the Geolife and OpenStreetMap GPS datasets and the paper's
//!   duplicate-with-noise scaling scheme.

mod blobs;
mod cluto;
mod gps;
mod shapes;

pub use blobs::{blobs, blobs_varied_density};
pub use cluto::{cluto_t4_like, cluto_t5_like, cluto_t7_like, cluto_t8_like, cure_t2_like};
pub use gps::{enlarge, geolife_like, geolife_trajectories, osm_like, osm_like_with};
pub use shapes::{circles, moons};

use dbscout_rng::Rng;
use dbscout_spatial::{KdTree, PointStore};

/// Point-store constructors that cannot fail for generator output:
/// dimensionalities are literal (2 or 3, well under `MAX_DIMS`) and every
/// coordinate is built from finite arithmetic on finite samples. A failure
/// here is a generator bug, and in this non-library data crate the right
/// response is a loud panic — concentrated behind one audited allow
/// instead of scattered `expect`s.
#[allow(clippy::expect_used)]
pub(crate) mod must {
    use dbscout_spatial::PointStore;

    pub(crate) fn store(dims: usize, capacity: usize) -> PointStore {
        PointStore::with_capacity(dims, capacity).expect("generator dims are within MAX_DIMS")
    }

    pub(crate) fn from_rows(dims: usize, rows: impl IntoIterator<Item = Vec<f64>>) -> PointStore {
        PointStore::from_rows(dims, rows).expect("generator rows are finite by construction")
    }

    pub(crate) fn push(store: &mut PointStore, row: &[f64]) {
        store
            .push(row)
            .expect("generator rows are finite by construction");
    }
}

/// A uniformly random element of a non-empty slice (the first element if
/// the slice is somehow empty — callers pass compile-time non-empty sets).
pub(crate) fn pick<T: Copy + Default>(rng: &mut Rng, items: &[T]) -> T {
    items
        .get(rng.gen_range(0..items.len().max(1)))
        .copied()
        .unwrap_or_default()
}

/// Scatters `count` labelled outliers uniformly in the inlier bounding
/// box expanded by `expand` on each side, rejecting candidates closer
/// than `margin` to any inlier (so ground-truth labels stay meaningful).
pub(crate) fn scatter_outliers(
    inliers: &PointStore,
    count: usize,
    margin: f64,
    expand: f64,
    rng: &mut Rng,
) -> Vec<Vec<f64>> {
    let Some((min, max)) = inliers.bounding_box() else {
        return Vec::new();
    };
    let tree = KdTree::build(inliers);
    let mut out = Vec::with_capacity(count);
    let mut attempts = 0usize;
    let max_attempts = count.saturating_mul(200).max(10_000);
    while out.len() < count && attempts < max_attempts {
        attempts += 1;
        let cand: Vec<f64> = min
            .iter()
            .zip(&max)
            .map(|(&lo, &hi)| rng.gen_range(lo - expand..hi + expand))
            .collect();
        let far_enough = tree
            .knn(&cand, 1)
            .first()
            .is_some_and(|n| n.sq_dist > margin * margin);
        if far_enough {
            out.push(cand);
        }
    }
    // If rejection sampling starved (tiny domains), fall back to pushing
    // candidates radially out of the bounding box.
    while out.len() < count {
        let cand: Vec<f64> = min
            .iter()
            .zip(&max)
            .map(|(&lo, &hi)| {
                let span = hi - lo + 2.0 * expand;
                hi + expand + rng.gen_range(0.0..span.max(margin * 4.0))
            })
            .collect();
        out.push(cand);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;
    use dbscout_spatial::distance::dist;

    #[test]
    fn scatter_outliers_respects_margin() {
        let inliers =
            PointStore::from_rows(2, (0..100).map(|i| vec![(i % 10) as f64, (i / 10) as f64]))
                .unwrap();
        let mut rng = seeded(9);
        let outs = scatter_outliers(&inliers, 20, 2.0, 10.0, &mut rng);
        assert_eq!(outs.len(), 20);
        for o in &outs {
            for (_, p) in inliers.iter() {
                assert!(dist(o, p) > 2.0, "outlier {o:?} too close to {p:?}");
            }
        }
    }
}
