//! Shape-matched stand-ins for the Cluto (`t4.8k`, `t5.8k`, `t7.10k`,
//! `t8.8k`) and Cure (`t2.4k`) benchmark datasets of paper Table III.
//!
//! The original files are distributed with the CLUTO/Chameleon packages
//! and are not available offline, so each generator composes the same
//! *kind* of structure the originals are known for — elongated bands,
//! sinusoidal ribbons, ellipses and dense blobs over a ~[0,100]² domain —
//! with uniformly scattered noise as the labelled outlier class, at the
//! paper's cardinality and contamination factor (ν) for that row.
//! Absolute F1 values therefore differ from the paper; the algorithm
//! *ranking* is the reproduction target (see `EXPERIMENTS.md`).

use dbscout_rng::Rng;

use crate::labeled::LabeledDataset;
use crate::rng::{normal, seeded};

use super::{must, scatter_outliers};

/// A cluster shape primitive on the [0,100]² canvas.
enum Shape {
    /// Sine ribbon: x swept over a range, y = base + amp·sin(freq·x).
    Sine {
        x0: f64,
        x1: f64,
        base: f64,
        amp: f64,
        freq: f64,
        jitter: f64,
    },
    /// Straight ribbon between two endpoints.
    Line {
        from: (f64, f64),
        to: (f64, f64),
        jitter: f64,
    },
    /// Filled axis-aligned ellipse.
    Ellipse {
        center: (f64, f64),
        rx: f64,
        ry: f64,
    },
    /// Gaussian blob.
    Blob { center: (f64, f64), std_dev: f64 },
}

impl Shape {
    fn sample(&self, rng: &mut Rng) -> Vec<f64> {
        match *self {
            Shape::Sine {
                x0,
                x1,
                base,
                amp,
                freq,
                jitter,
            } => {
                let x = rng.gen_range(x0..x1);
                let y = base + amp * (freq * x).sin();
                vec![x + normal(rng, 0.0, jitter), y + normal(rng, 0.0, jitter)]
            }
            Shape::Line { from, to, jitter } => {
                let t: f64 = rng.gen_range(0.0..1.0);
                vec![
                    from.0 + t * (to.0 - from.0) + normal(rng, 0.0, jitter),
                    from.1 + t * (to.1 - from.1) + normal(rng, 0.0, jitter),
                ]
            }
            Shape::Ellipse { center, rx, ry } => {
                // Uniform in the disk via sqrt radius.
                let theta = rng.gen_range(0.0..std::f64::consts::TAU);
                let r = rng.gen::<f64>().sqrt();
                vec![
                    center.0 + rx * r * theta.cos(),
                    center.1 + ry * r * theta.sin(),
                ]
            }
            Shape::Blob { center, std_dev } => vec![
                normal(rng, center.0, std_dev),
                normal(rng, center.1, std_dev),
            ],
        }
    }
}

/// Composes `n` total points: inliers drawn round-robin from `shapes`,
/// `ν·n` labelled noise points scattered at least `margin` from the
/// inliers.
fn compose(
    name: &str,
    n: usize,
    contamination: f64,
    shapes: &[Shape],
    margin: f64,
    seed: u64,
) -> LabeledDataset {
    let n_outliers = ((n as f64) * contamination).round() as usize;
    let n_inliers = n - n_outliers;
    let mut rng = seeded(seed);
    let mut rows = Vec::with_capacity(n);
    for i in 0..n_inliers {
        if let Some(shape) = shapes.get(i % shapes.len().max(1)) {
            rows.push(shape.sample(&mut rng));
        }
    }
    let inliers = must::from_rows(2, rows.clone());
    rows.extend(scatter_outliers(
        &inliers, n_outliers, margin, 15.0, &mut rng,
    ));
    let mut labels = vec![false; n_inliers];
    labels.extend(vec![true; n_outliers]);
    LabeledDataset::new(name, must::from_rows(2, rows), labels)
}

/// `cluto-t4-8k`-like: sinusoidal ribbons over straight bands plus two
/// ellipses; 8000 points, ν = 0.1 (the paper's Table III row).
pub fn cluto_t4_like(seed: u64) -> LabeledDataset {
    compose(
        "cluto-t4-8k",
        8_000,
        0.10,
        &[
            Shape::Sine {
                x0: 5.0,
                x1: 95.0,
                base: 70.0,
                amp: 8.0,
                freq: 0.15,
                jitter: 1.2,
            },
            Shape::Sine {
                x0: 5.0,
                x1: 95.0,
                base: 45.0,
                amp: 8.0,
                freq: 0.15,
                jitter: 1.2,
            },
            Shape::Line {
                from: (10.0, 10.0),
                to: (90.0, 25.0),
                jitter: 1.5,
            },
            Shape::Ellipse {
                center: (25.0, 90.0),
                rx: 10.0,
                ry: 5.0,
            },
            Shape::Ellipse {
                center: (75.0, 92.0),
                rx: 8.0,
                ry: 4.0,
            },
        ],
        6.0,
        seed,
    )
}

/// `cluto-t5-8k`-like: parallel diagonal bands (the original looks like
/// hatched strokes); 8000 points, ν = 0.15.
pub fn cluto_t5_like(seed: u64) -> LabeledDataset {
    let mut shapes = Vec::new();
    for i in 0..6 {
        let off = 12.0 * i as f64;
        shapes.push(Shape::Line {
            from: (5.0 + off, 5.0),
            to: (25.0 + off, 95.0),
            jitter: 1.3,
        });
    }
    compose("cluto-t5-8k", 8_000, 0.15, &shapes, 6.0, seed)
}

/// `cluto-t7-10k`-like: nine irregular clusters of mixed shape; 10000
/// points, ν = 0.08.
pub fn cluto_t7_like(seed: u64) -> LabeledDataset {
    compose(
        "cluto-t7-10k",
        10_000,
        0.08,
        &[
            Shape::Sine {
                x0: 5.0,
                x1: 60.0,
                base: 85.0,
                amp: 6.0,
                freq: 0.2,
                jitter: 1.0,
            },
            Shape::Ellipse {
                center: (80.0, 85.0),
                rx: 9.0,
                ry: 6.0,
            },
            Shape::Line {
                from: (5.0, 60.0),
                to: (45.0, 70.0),
                jitter: 1.4,
            },
            Shape::Ellipse {
                center: (65.0, 60.0),
                rx: 6.0,
                ry: 9.0,
            },
            Shape::Blob {
                center: (90.0, 55.0),
                std_dev: 3.0,
            },
            Shape::Line {
                from: (10.0, 15.0),
                to: (40.0, 40.0),
                jitter: 1.4,
            },
            Shape::Sine {
                x0: 50.0,
                x1: 95.0,
                base: 30.0,
                amp: 7.0,
                freq: 0.25,
                jitter: 1.0,
            },
            Shape::Blob {
                center: (20.0, 45.0),
                std_dev: 3.5,
            },
            Shape::Ellipse {
                center: (55.0, 10.0),
                rx: 12.0,
                ry: 4.0,
            },
        ],
        5.5,
        seed,
    )
}

/// `cluto-t8-8k`-like: eight compact clusters; 8000 points, ν = 0.04.
pub fn cluto_t8_like(seed: u64) -> LabeledDataset {
    let mut shapes = Vec::new();
    for i in 0..8 {
        let x = 15.0 + 25.0 * (i % 4) as f64;
        let y = if i < 4 { 25.0 } else { 75.0 };
        if i % 2 == 0 {
            shapes.push(Shape::Blob {
                center: (x, y),
                std_dev: 3.2,
            });
        } else {
            shapes.push(Shape::Ellipse {
                center: (x, y),
                rx: 7.0,
                ry: 4.0,
            });
        }
    }
    compose("cluto-t8-8k", 8_000, 0.04, &shapes, 6.0, seed)
}

/// `cure-t2-4k`-like: the classic CURE layout — two big ellipses, two
/// small dense blobs and a connecting band; 4000 points, ν = 0.05.
pub fn cure_t2_like(seed: u64) -> LabeledDataset {
    compose(
        "cure-t2-4k",
        4_000,
        0.05,
        &[
            Shape::Ellipse {
                center: (25.0, 60.0),
                rx: 15.0,
                ry: 9.0,
            },
            Shape::Ellipse {
                center: (75.0, 60.0),
                rx: 15.0,
                ry: 9.0,
            },
            Shape::Blob {
                center: (40.0, 20.0),
                std_dev: 2.5,
            },
            Shape::Blob {
                center: (60.0, 20.0),
                std_dev: 2.5,
            },
            Shape::Line {
                from: (40.0, 20.0),
                to: (60.0, 20.0),
                jitter: 1.0,
            },
        ],
        6.0,
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinalities_and_contamination_match_table_iii() {
        let cases: [(LabeledDataset, usize, f64); 5] = [
            (cluto_t4_like(1), 8_000, 0.10),
            (cluto_t5_like(1), 8_000, 0.15),
            (cluto_t7_like(1), 10_000, 0.08),
            (cluto_t8_like(1), 8_000, 0.04),
            (cure_t2_like(1), 4_000, 0.05),
        ];
        for (ds, n, nu) in cases {
            assert_eq!(ds.len(), n, "{}", ds.name);
            assert!(
                (ds.contamination() - nu).abs() < 1e-3,
                "{}: {}",
                ds.name,
                ds.contamination()
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(cluto_t4_like(5).points, cluto_t4_like(5).points);
        assert_ne!(cluto_t4_like(5).points, cluto_t4_like(6).points);
    }

    #[test]
    fn points_mostly_on_canvas() {
        let ds = cluto_t7_like(3);
        let inside = ds
            .points
            .iter()
            .filter(|(_, p)| p[0] > -30.0 && p[0] < 130.0 && p[1] > -30.0 && p[1] < 130.0)
            .count();
        assert!(inside as f64 > 0.99 * ds.len() as f64);
    }
}
