//! Non-convex 2-D shapes (Table III rows *Circles* and *Moons*) — the
//! datasets on which the paper shows IF and OC-SVM collapsing while
//! density methods stay accurate.

use dbscout_rng::Rng;

use crate::labeled::LabeledDataset;
use crate::rng::{normal, seeded, unit_circle};

use super::{must, scatter_outliers};

/// Two concentric circles (outer radius 1, inner radius `factor`) with
/// Gaussian jitter `noise`, plus labelled outliers scattered away from
/// both rings.
pub fn circles(
    n_inliers: usize,
    n_outliers: usize,
    factor: f64,
    noise: f64,
    seed: u64,
) -> LabeledDataset {
    assert!((0.0..1.0).contains(&factor), "factor must be in [0, 1)");
    let mut rng = seeded(seed);
    let mut rows = Vec::with_capacity(n_inliers + n_outliers);
    for i in 0..n_inliers {
        let (x, y) = unit_circle(&mut rng);
        let r = if i % 2 == 0 { 1.0 } else { factor };
        rows.push(vec![
            x * r + normal(&mut rng, 0.0, noise),
            y * r + normal(&mut rng, 0.0, noise),
        ]);
    }
    finish(
        "circles",
        rows,
        n_inliers,
        n_outliers,
        4.0 * noise,
        &mut rng,
    )
}

/// Two interleaving half-moons with Gaussian jitter `noise`, plus
/// labelled outliers.
pub fn moons(n_inliers: usize, n_outliers: usize, noise: f64, seed: u64) -> LabeledDataset {
    let mut rng = seeded(seed);
    let mut rows = Vec::with_capacity(n_inliers + n_outliers);
    for i in 0..n_inliers {
        let t: f64 = rng.gen_range(0.0..std::f64::consts::PI);
        let (x, y) = if i % 2 == 0 {
            (t.cos(), t.sin())
        } else {
            (1.0 - t.cos(), 0.5 - t.sin())
        };
        rows.push(vec![
            x + normal(&mut rng, 0.0, noise),
            y + normal(&mut rng, 0.0, noise),
        ]);
    }
    finish("moons", rows, n_inliers, n_outliers, 4.0 * noise, &mut rng)
}

fn finish(
    name: &str,
    mut rows: Vec<Vec<f64>>,
    n_inliers: usize,
    n_outliers: usize,
    margin: f64,
    rng: &mut Rng,
) -> LabeledDataset {
    let inliers = must::from_rows(2, rows.clone());
    rows.extend(scatter_outliers(&inliers, n_outliers, margin, 1.0, rng));
    let mut labels = vec![false; n_inliers];
    labels.extend(vec![true; n_outliers]);
    LabeledDataset::new(name, must::from_rows(2, rows), labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circles_structure() {
        let ds = circles(1000, 10, 0.5, 0.02, 1);
        assert_eq!(ds.len(), 1010);
        assert_eq!(ds.num_outliers(), 10);
        // Inliers hug one of two radii.
        let mut near_inner = 0;
        let mut near_outer = 0;
        for i in 0..1000u32 {
            let p = ds.points.point(i);
            let r = (p[0] * p[0] + p[1] * p[1]).sqrt();
            if (r - 0.5).abs() < 0.15 {
                near_inner += 1;
            }
            if (r - 1.0).abs() < 0.15 {
                near_outer += 1;
            }
        }
        assert!(near_inner > 400, "{near_inner}");
        assert!(near_outer > 400, "{near_outer}");
    }

    #[test]
    fn moons_structure() {
        let ds = moons(1000, 10, 0.02, 2);
        assert_eq!(ds.len(), 1010);
        // Moons live roughly in [-1.2, 2.2] x [-0.7, 1.2].
        for i in 0..1000u32 {
            let p = ds.points.point(i);
            assert!(p[0] > -1.3 && p[0] < 2.3, "x {p:?}");
            assert!(p[1] > -0.8 && p[1] < 1.3, "y {p:?}");
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            circles(100, 5, 0.4, 0.05, 9).points,
            circles(100, 5, 0.4, 0.05, 9).points
        );
        assert_eq!(moons(100, 5, 0.05, 9).points, moons(100, 5, 0.05, 9).points);
    }

    #[test]
    #[should_panic(expected = "factor")]
    fn bad_factor_panics() {
        circles(10, 1, 1.5, 0.05, 0);
    }
}
