//! GPS-like dataset generators: structural stand-ins for the paper's
//! Geolife and OpenStreetMap workloads (§IV-A2).
//!
//! What the experiments actually exercise is the datasets' **density
//! structure**, not their geography:
//!
//! * *Geolife* is heavily skewed — a huge share of its 24.9M 3-D points
//!   sits around Beijing, to the point that with ε = 200 a single cell
//!   holds 40% of all points (§IV-B2). [`geolife_like`] reproduces that:
//!   one dominant log-normal hotspot plus a few minor cities and sparse
//!   world noise, in meter-like units so the paper's ε sweep
//!   {25, 50, 100, 200} lands in the same operating regime.
//! * *OpenStreetMap* is 2.77B 2-D points spread over many hotspots of
//!   Zipf-distributed size. [`osm_like`] generates a world of city
//!   hotspots over a ±2·10⁷ m (web-mercator-like) domain plus uniform
//!   noise, so the paper's ε sweep {0.25, 0.5, 1, 2}·10⁶ is meaningful.
//! * The paper enlarges OpenStreetMap up to 10× by duplicating points
//!   with small random noise; [`enlarge`] implements exactly that scheme.

use dbscout_spatial::PointStore;

use crate::rng::{log_normal, normal, seeded, weighted_index, zipf_weights};

use super::{must, pick};

/// Geolife-like skewed 3-D GPS points (x, y in meters; z altitude-like).
///
/// ≈72% of points form one log-normally concentrated metropolitan
/// hotspot, ≈23% split across five minor cities, ≈5% are world-scale
/// scatter (the outlier reservoir).
pub fn geolife_like(n: usize, seed: u64) -> PointStore {
    let mut rng = seeded(seed);
    let mut store = must::store(3, n);
    // One dominant center (Beijing-like) plus minor cities, meter units.
    let minor_cities: [(f64, f64); 5] = [
        (250_000.0, 40_000.0),
        (-180_000.0, 120_000.0),
        (90_000.0, -220_000.0),
        (-300_000.0, -150_000.0),
        (400_000.0, 260_000.0),
    ];
    for _ in 0..n {
        let u: f64 = rng.gen();
        let (x, y) = if u < 0.72 {
            // Dominant hotspot: log-normal radius (median ~33 m, heavy
            // tail) creates the extreme cell skew the paper reports (40%
            // of Geolife in one cell at ε = 200).
            let r = log_normal(&mut rng, 3.5, 2.0);
            let theta = rng.gen_range(0.0..std::f64::consts::TAU);
            (r * theta.cos(), r * theta.sin())
        } else if u < 0.95 {
            let (cx, cy) = pick(&mut rng, &minor_cities);
            let r = log_normal(&mut rng, 4.5, 1.4);
            let theta = rng.gen_range(0.0..std::f64::consts::TAU);
            (cx + r * theta.cos(), cy + r * theta.sin())
        } else {
            // World-scale scatter: candidate outliers.
            (
                rng.gen_range(-600_000.0..600_000.0),
                rng.gen_range(-600_000.0..600_000.0),
            )
        };
        // Altitude-like third dimension, small relative to x/y.
        let z = normal(&mut rng, 50.0, 15.0);
        must::push(&mut store, &[x, y, z]);
    }
    store
}

/// OpenStreetMap-like 2-D GPS points: `n_cities` hotspots with
/// Zipf-distributed popularity over a ±2·10⁷ m domain, plus 0.2% uniform
/// world noise (kept sparse enough that noise stays non-core across the
/// paper's whole ε sweep at laptop-scale n).
pub fn osm_like(n: usize, seed: u64) -> PointStore {
    osm_like_with(n, 200, seed)
}

/// [`osm_like`] with an explicit hotspot count.
pub fn osm_like_with(n: usize, n_cities: usize, seed: u64) -> PointStore {
    const WORLD: f64 = 2.0e7;
    // Cities cluster on "continents", leaving ocean-sized voids — as in
    // real OSM data — so that world-scatter noise stays uncovered even at
    // the largest ε of the paper's sweep.
    const CONTINENTS: [(f64, f64); 6] = [
        (-1.2e7, 5.0e6),
        (-7.0e6, -3.0e6),
        (1.0e6, 5.5e6),
        (3.0e6, 1.0e6),
        (9.0e6, 4.0e6),
        (1.4e7, -3.0e6),
    ];
    let mut rng = seeded(seed);
    let n_cities = n_cities.max(1);
    let centers: Vec<(f64, f64)> = (0..n_cities)
        .map(|i| {
            let (cx, cy) = CONTINENTS
                .get(i % CONTINENTS.len())
                .copied()
                .unwrap_or_default();
            (normal(&mut rng, cx, 2.0e6), normal(&mut rng, cy, 1.5e6))
        })
        .collect();
    // City spread: large metros are wider; σ between 30 km and 300 km.
    let sigmas: Vec<f64> = (0..n_cities)
        .map(|i| 3.0e4 * (1.0 + 9.0 / (1.0 + i as f64 * 0.2)))
        .collect();
    let weights = zipf_weights(n_cities, 1.05);

    let mut store = must::store(2, n);
    for _ in 0..n {
        let u: f64 = rng.gen();
        let (x, y) = if u < 0.998 {
            let c = weighted_index(&mut rng, &weights);
            let (cx, cy) = centers.get(c).copied().unwrap_or_default();
            let s = sigmas.get(c).copied().unwrap_or_default();
            (normal(&mut rng, cx, s), normal(&mut rng, cy, s))
        } else {
            (
                rng.gen_range(-WORLD..WORLD),
                rng.gen_range(-WORLD * 0.5..WORLD * 0.5),
            )
        };
        must::push(&mut store, &[x, y]);
    }
    store
}

/// Geolife-like data generated as **trajectories** rather than i.i.d.
/// points: each trip is a random walk starting near a hub (hubs are
/// Zipf-popular, the top hub being the metropolitan center), which is
/// how the real Geolife collection gets both its along-track correlation
/// and its extreme cell skew. 3-D like [`geolife_like`].
pub fn geolife_trajectories(n_trips: usize, points_per_trip: usize, seed: u64) -> PointStore {
    let mut rng = seeded(seed);
    let n_hubs = 12usize;
    let hubs: Vec<(f64, f64)> = (0..n_hubs)
        .map(|i| {
            if i == 0 {
                (0.0, 0.0) // the dominant center
            } else {
                (
                    rng.gen_range(-400_000.0..400_000.0),
                    rng.gen_range(-400_000.0..400_000.0),
                )
            }
        })
        .collect();
    let weights = zipf_weights(n_hubs, 1.4);

    let mut store = must::store(3, n_trips * points_per_trip);
    for _ in 0..n_trips {
        let hub = hubs
            .get(weighted_index(&mut rng, &weights))
            .copied()
            .unwrap_or_default();
        // Start near the hub (log-normal displacement), then walk.
        let r = log_normal(&mut rng, 4.0, 1.5);
        let theta = rng.gen_range(0.0..std::f64::consts::TAU);
        let mut x = hub.0 + r * theta.cos();
        let mut y = hub.1 + r * theta.sin();
        let mut heading: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        let mut z = normal(&mut rng, 50.0, 10.0);
        // Step length: mostly pedestrian/vehicle scale, occasionally a
        // flight-style jump that strands isolated fixes.
        for _ in 0..points_per_trip {
            must::push(&mut store, &[x, y, z]);
            heading += normal(&mut rng, 0.0, 0.4);
            let step = if rng.gen::<f64>() < 0.002 {
                rng.gen_range(50_000.0..400_000.0)
            } else {
                log_normal(&mut rng, 2.5, 1.0)
            };
            x += step * heading.cos();
            y += step * heading.sin();
            z += normal(&mut rng, 0.0, 1.0);
        }
    }
    store
}

/// The paper's enlargement scheme (§IV-A2): replicate every point
/// `factor − 1` extra times, perturbing each replica by Gaussian noise of
/// scale `noise` "to avoid creating too many overlaps". `factor = 1`
/// returns a copy.
pub fn enlarge(store: &PointStore, factor: usize, noise: f64, seed: u64) -> PointStore {
    assert!(factor >= 1, "factor must be >= 1");
    let mut rng = seeded(seed);
    let dims = store.dims();
    let mut out = must::store(dims, store.len() as usize * factor);
    let mut buf = vec![0.0f64; dims];
    for (_, p) in store.iter() {
        must::push(&mut out, p);
        for _ in 1..factor {
            for (slot, &c) in buf.iter_mut().zip(p) {
                *slot = c + normal(&mut rng, 0.0, noise);
            }
            must::push(&mut out, &buf);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbscout_spatial::Grid;

    #[test]
    fn geolife_like_is_skewed() {
        let store = geolife_like(20_000, 1);
        assert_eq!(store.dims(), 3);
        assert_eq!(store.len(), 20_000);
        // The paper reports 40% of points in the top cell at ε = 200.
        // Our stand-in must show the same kind of extreme skew (>10%).
        let grid = Grid::build(&store, 200.0).unwrap();
        assert!(grid.skew() > 0.10, "skew {}", grid.skew());
    }

    #[test]
    fn osm_like_is_multi_hotspot() {
        let store = osm_like(20_000, 2);
        assert_eq!(store.dims(), 2);
        // Many populated cells, but no single cell dominating like
        // Geolife: skew far below the Geolife level at comparable ε.
        let grid = Grid::build(&store, 1.0e6).unwrap();
        assert!(grid.num_cells() > 50, "cells {}", grid.num_cells());
        assert!(grid.skew() < 0.30, "skew {}", grid.skew());
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(geolife_like(500, 7), geolife_like(500, 7));
        assert_eq!(osm_like(500, 7), osm_like(500, 7));
        assert_ne!(osm_like(500, 7), osm_like(500, 8));
    }

    #[test]
    fn trajectories_are_track_correlated_and_skewed() {
        let store = geolife_trajectories(200, 100, 1);
        assert_eq!(store.len(), 20_000);
        assert_eq!(store.dims(), 3);
        // Consecutive fixes of a trip are mostly close (walk steps are
        // log-normal with median e^2.5 ≈ 12 m).
        let mut close = 0;
        for trip in 0..200u32 {
            for i in 0..99u32 {
                let a = store.point(trip * 100 + i);
                let b = store.point(trip * 100 + i + 1);
                if dbscout_spatial::distance::dist(a, b) < 1_000.0 {
                    close += 1;
                }
            }
        }
        assert!(close > 19_000, "only {close} consecutive pairs are close");
        // The dominant hub still concentrates mass, though walks smear
        // trips across cells (uniform data at this n and ε would put
        // ~0.01% in the top cell; trajectories put ~1%).
        let grid = Grid::build(&store, 200.0).unwrap();
        assert!(grid.skew() > 0.005, "skew {}", grid.skew());
    }

    #[test]
    fn trajectories_deterministic() {
        assert_eq!(
            geolife_trajectories(10, 50, 3),
            geolife_trajectories(10, 50, 3)
        );
    }

    #[test]
    fn enlarge_multiplies_cardinality() {
        let base = osm_like(1_000, 3);
        let big = enlarge(&base, 3, 10.0, 4);
        assert_eq!(big.len(), 3_000);
        // Originals are preserved verbatim at stride `factor`.
        for i in 0..1_000u32 {
            assert_eq!(big.point(i * 3), base.point(i));
        }
        // Replicas are near their original.
        for i in 0..1_000u32 {
            let orig = base.point(i);
            let rep = big.point(i * 3 + 1);
            let d = dbscout_spatial::distance::dist(orig, rep);
            assert!(d < 100.0, "replica drifted {d}");
        }
    }

    #[test]
    fn enlarge_factor_one_is_identity() {
        let base = osm_like(100, 5);
        assert_eq!(enlarge(&base, 1, 10.0, 0), base);
    }

    #[test]
    #[should_panic(expected = "factor")]
    fn enlarge_factor_zero_panics() {
        enlarge(&osm_like(10, 0), 0, 1.0, 0);
    }
}
