//! Gaussian-blob datasets (Table III rows *Blobs* and *Blobs-vd*).

use crate::labeled::LabeledDataset;
use crate::rng::{normal, seeded};

use super::{must, scatter_outliers};

/// Isotropic Gaussian clusters plus uniformly scattered outliers.
///
/// `n_inliers` points are split evenly across `n_centers` clusters of
/// standard deviation `std_dev`, with cluster centers spread on a coarse
/// ring; `n_outliers` labelled outliers are scattered away from the
/// clusters.
pub fn blobs(
    n_inliers: usize,
    n_outliers: usize,
    n_centers: usize,
    std_dev: f64,
    seed: u64,
) -> LabeledDataset {
    blobs_impl(
        "blobs",
        n_inliers,
        n_outliers,
        &vec![std_dev; n_centers.max(1)],
        seed,
    )
}

/// Gaussian clusters of **varied density** (*Blobs-vd*): each cluster gets
/// its own standard deviation, which is what makes single-radius methods
/// struggle (paper §IV-C1).
pub fn blobs_varied_density(
    n_inliers: usize,
    n_outliers: usize,
    std_devs: &[f64],
    seed: u64,
) -> LabeledDataset {
    blobs_impl("blobs-vd", n_inliers, n_outliers, std_devs, seed)
}

fn blobs_impl(
    name: &str,
    n_inliers: usize,
    n_outliers: usize,
    std_devs: &[f64],
    seed: u64,
) -> LabeledDataset {
    assert!(!std_devs.is_empty(), "at least one cluster");
    let mut rng = seeded(seed);
    let k = std_devs.len();
    // Centers on a ring of radius ∝ cluster spread, far enough apart that
    // clusters do not merge.
    let ring_r = 8.0 * std_devs.iter().cloned().fold(f64::MIN, f64::max) * (k as f64).max(2.0)
        / std::f64::consts::TAU;
    let centers: Vec<(f64, f64)> = (0..k)
        .map(|i| {
            let theta = std::f64::consts::TAU * i as f64 / k as f64;
            (ring_r * theta.cos(), ring_r * theta.sin())
        })
        .collect();

    let mut rows = Vec::with_capacity(n_inliers + n_outliers);
    for i in 0..n_inliers {
        let c = i % k;
        let (cx, cy) = centers.get(c).copied().unwrap_or_default();
        let sd = std_devs.get(c).copied().unwrap_or_default();
        rows.push(vec![normal(&mut rng, cx, sd), normal(&mut rng, cy, sd)]);
    }
    let inliers = must::from_rows(2, rows.clone());
    // 3σ margin: outliers are clearly outside the clusters but some land
    // near enough to the 3σ shell that detectors must actually separate
    // densities (margins much wider than this make every method perfect).
    let margin = 3.0 * std_devs.iter().cloned().fold(0.0, f64::max);
    let outlier_rows = scatter_outliers(&inliers, n_outliers, margin, margin * 2.0, &mut rng);
    rows.extend(outlier_rows);

    let mut labels = vec![false; n_inliers];
    labels.extend(vec![true; n_outliers]);
    LabeledDataset::new(name, must::from_rows(2, rows), labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blobs_shape_and_labels() {
        let ds = blobs(990, 10, 3, 0.5, 42);
        assert_eq!(ds.len(), 1000);
        assert_eq!(ds.num_outliers(), 10);
        assert!((ds.contamination() - 0.01).abs() < 1e-9);
        assert_eq!(ds.points.dims(), 2);
    }

    #[test]
    fn blobs_deterministic_per_seed() {
        let a = blobs(100, 5, 2, 0.3, 7);
        let b = blobs(100, 5, 2, 0.3, 7);
        assert_eq!(a.points, b.points);
        let c = blobs(100, 5, 2, 0.3, 8);
        assert_ne!(a.points, c.points);
    }

    #[test]
    fn blobs_outliers_are_far_from_inliers() {
        let ds = blobs(500, 20, 3, 0.4, 11);
        let inlier_ids: Vec<u32> = (0..500u32).collect();
        let inliers = ds.points.gather(&inlier_ids);
        let tree = dbscout_spatial::KdTree::build(&inliers);
        for i in 500..520u32 {
            let nn = tree.knn(ds.points.point(i), 1);
            assert!(nn[0].sq_dist > (3.0 * 0.4) * (3.0 * 0.4) * 0.99);
        }
    }

    #[test]
    fn varied_density_uses_per_cluster_std() {
        let ds = blobs_varied_density(3000, 30, &[0.2, 1.5, 0.6], 3);
        assert_eq!(ds.len(), 3030);
        assert_eq!(ds.num_outliers(), 30);
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn empty_std_devs_panics() {
        blobs_varied_density(10, 1, &[], 0);
    }
}
