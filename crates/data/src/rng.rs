//! Seeded sampling helpers.
//!
//! Distributions are built on the in-tree [`dbscout_rng`] generator: the
//! Gaussian and log-normal samplers use the Box–Muller transform.

use dbscout_rng::Rng;

/// A deterministic RNG from a `u64` seed.
pub fn seeded(seed: u64) -> Rng {
    Rng::seed_from_u64(seed)
}

/// One standard-normal sample via the Box–Muller transform.
pub fn standard_normal(rng: &mut Rng) -> f64 {
    // u1 ∈ (0, 1] so the log is finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A normal sample with the given mean and standard deviation.
pub fn normal(rng: &mut Rng, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * standard_normal(rng)
}

/// A log-normal sample: `exp(N(mu, sigma))`.
pub fn log_normal(rng: &mut Rng, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// A point on the unit circle, uniform in angle.
pub fn unit_circle(rng: &mut Rng) -> (f64, f64) {
    let theta: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    (theta.cos(), theta.sin())
}

/// A Zipf-like weight vector: `w_i ∝ 1 / (i + 1)^s`, normalised to sum 1.
pub fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    let mut w: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect();
    let total: f64 = w.iter().sum();
    for x in &mut w {
        *x /= total;
    }
    w
}

/// Samples an index from a (normalised) weight vector.
pub fn weighted_index(rng: &mut Rng, weights: &[f64]) -> usize {
    let mut u: f64 = rng.gen();
    for (i, &w) in weights.iter().enumerate() {
        if u < w {
            return i;
        }
        u -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let a: Vec<u64> = {
            let mut r = seeded(42);
            (0..10).map(|_| r.gen()).collect()
        };
        let b: Vec<u64> = {
            let mut r = seeded(42);
            (0..10).map(|_| r.gen()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn normal_moments_are_roughly_right() {
        let mut rng = seeded(1);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 3.0, 2.0)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn standard_normal_is_finite() {
        let mut rng = seeded(2);
        for _ in 0..10_000 {
            assert!(standard_normal(&mut rng).is_finite());
        }
    }

    #[test]
    fn log_normal_is_positive() {
        let mut rng = seeded(3);
        for _ in 0..1_000 {
            assert!(log_normal(&mut rng, 0.0, 1.0) > 0.0);
        }
    }

    #[test]
    fn unit_circle_has_unit_norm() {
        let mut rng = seeded(4);
        for _ in 0..100 {
            let (x, y) = unit_circle(&mut rng);
            assert!((x * x + y * y - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_weights_sum_to_one_and_decrease() {
        let w = zipf_weights(20, 1.1);
        let sum: f64 = w.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        for i in 1..w.len() {
            assert!(w[i] <= w[i - 1]);
        }
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = seeded(5);
        let w = vec![0.9, 0.1];
        let hits = (0..10_000)
            .filter(|_| weighted_index(&mut rng, &w) == 0)
            .count();
        assert!(hits > 8_500 && hits < 9_500, "hits {hits}");
    }

    #[test]
    fn weighted_index_always_in_range() {
        let mut rng = seeded(6);
        let w = zipf_weights(7, 1.0);
        for _ in 0..1_000 {
            assert!(weighted_index(&mut rng, &w) < 7);
        }
    }
}
