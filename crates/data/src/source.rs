//! Streaming point ingest: the [`PointSource`] batch pipeline.
//!
//! Every load path used to slurp the whole file into one
//! [`PointStore`] before any detection work could start, so memory was
//! bounded by the *raw dataset*, not by the grid DBSCOUT actually
//! operates on. A [`PointSource`] instead yields fixed-size
//! [`PointBatch`]es, and the consumers (the two-pass cell-major builder
//! in `dbscout-spatial`, `detect_source` in `dbscout-core`) never hold
//! more than one batch of raw input at a time.
//!
//! Sources are **rewindable**: [`PointSource::reset`] restarts the
//! stream from the beginning, because the streaming grid build is
//! two-pass (pass 1 counts points per ε-cell, pass 2 scatters them into
//! the cell-contiguous columns). A source must replay the *same* points
//! in the same order on every pass; the consumer detects disagreement
//! and fails rather than silently corrupting the layout.
//!
//! Three implementations cover the formats the repo speaks:
//!
//! * [`CsvSource`] — line-oriented CSV with the same strict/permissive
//!   [`IngestMode`] semantics (and [`QuarantineReport`] accounting) as
//!   [`crate::io::read_csv_with`], which is now a thin materializing
//!   wrapper over it;
//! * [`BinarySource`] — the versioned `DBSC` binary format, read in
//!   batch-sized chunks instead of `read_to_end`, with the file length
//!   validated against the header up front (truncation *and* trailing
//!   garbage are rejected before any floats are parsed);
//! * [`StoreSource`] — an in-memory [`PointStore`], the adapter that
//!   lets materialized callers ride the same streaming API.

use std::fs::File;
use std::io::{BufRead, BufReader, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

use dbscout_spatial::PointStore;

use crate::io::{
    parse_binary_header, parse_row, DataIoError, IngestMode, QuarantineReport, BINARY_HEADER_LEN,
};

/// Default number of points per [`PointBatch`]. At 8192 points a 9-D
/// batch is under 600 KiB — large enough to amortize per-batch overhead,
/// small enough that a pipeline's working set is grid-bounded.
pub const DEFAULT_BATCH_SIZE: usize = 8192;

/// One dense batch of points: a dims-checked flat coordinate block
/// (row-major, `len * dims` finite-or-not values exactly as the source
/// produced them; validation happens at the consumer).
#[derive(Debug, Clone, PartialEq)]
pub struct PointBatch {
    dims: usize,
    coords: Vec<f64>,
}

impl PointBatch {
    /// Wraps a flat coordinate block. Fails when `coords` is not a whole
    /// number of `dims`-dimensional points or `dims` is zero.
    pub fn from_flat(dims: usize, coords: Vec<f64>) -> Result<Self, DataIoError> {
        if dims == 0 {
            return Err(DataIoError::Spatial(
                dbscout_spatial::SpatialError::ZeroDims,
            ));
        }
        if !coords.len().is_multiple_of(dims) {
            return Err(DataIoError::Spatial(
                dbscout_spatial::SpatialError::DimensionMismatch {
                    expected: dims,
                    got: coords.len() % dims,
                },
            ));
        }
        Ok(Self { dims, coords })
    }

    /// Point dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of points in the batch.
    pub fn len(&self) -> usize {
        self.coords.len() / self.dims
    }

    /// Whether the batch holds no points.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// The flat row-major coordinate block (`len() * dims()` values).
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// Iterates the points as `dims()`-length slices.
    pub fn rows(&self) -> impl Iterator<Item = &[f64]> {
        self.coords.chunks_exact(self.dims)
    }
}

/// A rewindable stream of fixed-size point batches.
///
/// The contract consumers rely on:
///
/// * batches concatenate to one fixed point sequence in a fixed order
///   (ids are assigned by arrival position);
/// * every batch has the same dimensionality;
/// * after [`PointSource::reset`], the stream replays identically.
pub trait PointSource {
    /// The dimensionality of the points, when the source already knows
    /// it (binary headers and in-memory stores do; CSV learns it from
    /// the first accepted row).
    fn dims(&self) -> Option<usize>;

    /// The next batch, or `None` when the stream is exhausted.
    fn next_batch(&mut self) -> Result<Option<PointBatch>, DataIoError>;

    /// Rewinds the stream to the beginning for another pass.
    fn reset(&mut self) -> Result<(), DataIoError>;

    /// Total number of points, when cheaply known up front.
    fn len_hint(&self) -> Option<usize> {
        None
    }
}

/// Reads every batch of `source` into one in-memory [`PointStore`] —
/// the adapter from the streaming API back to materialized callers.
///
/// A source that ends without ever producing a batch (and without
/// declaring a dimensionality) yields the same "empty file" error the
/// eager CSV reader produced.
pub fn materialize(source: &mut dyn PointSource) -> Result<PointStore, DataIoError> {
    let mut store: Option<PointStore> = match source.dims() {
        Some(d) => Some(PointStore::new(d)?),
        None => None,
    };
    while let Some(batch) = source.next_batch()? {
        let store = match &mut store {
            Some(s) => s,
            None => store.insert(PointStore::new(batch.dims())?),
        };
        for row in batch.rows() {
            store.push(row)?;
        }
    }
    store.ok_or_else(|| DataIoError::Parse {
        line: 0,
        message: "empty source".to_owned(),
    })
}

/// Streaming CSV reader with the eager reader's exact semantics:
/// optional trailing `0`/`1` label column, dimensionality established by
/// the first accepted row, strict/permissive malformed-row handling with
/// quarantine accounting.
///
/// Labels and the [`QuarantineReport`] accumulate over one pass and are
/// cleared by [`PointSource::reset`], so after a (possibly multi-pass)
/// consumer finishes they describe exactly one full pass over the file.
/// The established dimensionality survives resets: every pass parses
/// rows against the same expectation.
#[derive(Debug)]
pub struct CsvSource {
    path: PathBuf,
    labeled: bool,
    mode: IngestMode,
    batch_size: usize,
    reader: BufReader<File>,
    line_no: usize,
    dims: Option<usize>,
    accepted: usize,
    done: bool,
    labels: Vec<bool>,
    quarantine: QuarantineReport,
}

impl CsvSource {
    /// Opens `path` for streaming ingest. `labeled` decodes the last
    /// column as a `0`/`1` outlier label; `mode` picks strict or
    /// permissive malformed-row handling; `batch_size` (clamped to ≥ 1)
    /// is the number of accepted rows per batch.
    pub fn open(
        path: impl AsRef<Path>,
        labeled: bool,
        mode: IngestMode,
        batch_size: usize,
    ) -> Result<Self, DataIoError> {
        let path = path.as_ref().to_path_buf();
        let reader = BufReader::new(File::open(&path)?);
        Ok(Self {
            path,
            labeled,
            mode,
            batch_size: batch_size.max(1),
            reader,
            line_no: 0,
            dims: None,
            accepted: 0,
            done: false,
            labels: Vec::new(),
            quarantine: QuarantineReport::default(),
        })
    }

    /// The outlier labels accumulated over the last pass, when the
    /// source was opened with `labeled = true`.
    pub fn take_labels(&mut self) -> Option<Vec<bool>> {
        self.labeled.then(|| std::mem::take(&mut self.labels))
    }

    /// Rows quarantined over the last pass (always clean in
    /// [`IngestMode::Strict`], which errors instead).
    pub fn quarantine(&self) -> &QuarantineReport {
        &self.quarantine
    }
}

impl PointSource for CsvSource {
    fn dims(&self) -> Option<usize> {
        self.dims
    }

    fn next_batch(&mut self) -> Result<Option<PointBatch>, DataIoError> {
        if self.done {
            return Ok(None);
        }
        let dims_hint = self.dims.unwrap_or(2);
        let mut coords: Vec<f64> = Vec::with_capacity(self.batch_size * dims_hint);
        let mut rows = 0usize;
        let mut line = String::new();
        while rows < self.batch_size {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                self.done = true;
                if self.accepted == 0 {
                    return Err(DataIoError::Parse {
                        line: 0,
                        message: if self.quarantine.is_clean() {
                            "empty file".to_owned()
                        } else {
                            format!(
                                "no usable rows ({} quarantined, all malformed)",
                                self.quarantine.quarantined
                            )
                        },
                    });
                }
                break;
            }
            self.line_no += 1;
            let row = line.trim();
            if row.is_empty() {
                continue;
            }
            match parse_row(row, self.line_no, self.labeled, self.dims) {
                Ok((point, label)) => {
                    self.dims.get_or_insert(point.len());
                    coords.extend_from_slice(&point);
                    if self.labeled {
                        self.labels.push(label);
                    }
                    rows += 1;
                    self.accepted += 1;
                }
                Err(reason) => match self.mode {
                    IngestMode::Strict => {
                        return Err(DataIoError::Parse {
                            line: self.line_no,
                            message: reason,
                        })
                    }
                    IngestMode::Permissive => self.quarantine.record(self.line_no, reason),
                },
            }
        }
        if rows == 0 {
            return Ok(None);
        }
        // dims was established by the first accepted row above.
        let dims = self.dims.unwrap_or(dims_hint);
        Ok(Some(PointBatch::from_flat(dims, coords)?))
    }

    fn reset(&mut self) -> Result<(), DataIoError> {
        self.reader = BufReader::new(File::open(&self.path)?);
        self.line_no = 0;
        self.accepted = 0;
        self.done = false;
        self.labels.clear();
        self.quarantine = QuarantineReport::default();
        Ok(())
    }
}

/// Streaming reader for the `DBSC` binary format: the 14-byte header is
/// validated up front (magic, version, dimensionality, and the file
/// length against the declared `n * dims` payload — short files are
/// [`DataIoError::Truncated`], long ones [`DataIoError::TrailingBytes`]),
/// then coordinates are read in batch-sized chunks.
#[derive(Debug)]
pub struct BinarySource {
    reader: BufReader<File>,
    dims: usize,
    total: u64,
    read_points: u64,
    batch_size: usize,
}

impl BinarySource {
    /// Opens `path` and validates its header and length.
    pub fn open(path: impl AsRef<Path>, batch_size: usize) -> Result<Self, DataIoError> {
        let file = File::open(path)?;
        let mut reader = BufReader::new(file);
        // Read as much of the header as the file holds, then let the
        // shared parser classify short/bad/skewed headers consistently
        // with `decode_binary`.
        let mut header = [0u8; BINARY_HEADER_LEN];
        let mut filled = 0usize;
        while filled < BINARY_HEADER_LEN {
            let Some(dst) = header.get_mut(filled..) else {
                break;
            };
            let k = reader.read(dst)?;
            if k == 0 {
                break;
            }
            filled += k;
        }
        let (dims, total) = parse_binary_header(header.get(..filled).unwrap_or(&header))?;
        if dims == 0 {
            return Err(DataIoError::Spatial(
                dbscout_spatial::SpatialError::ZeroDims,
            ));
        }
        if dims > dbscout_spatial::MAX_DIMS {
            return Err(DataIoError::Spatial(
                dbscout_spatial::SpatialError::TooManyDims { requested: dims },
            ));
        }
        let payload = total
            .checked_mul(dims as u64)
            .and_then(|x| x.checked_mul(8))
            .ok_or(DataIoError::Truncated)?;
        let file_len = reader.get_ref().metadata()?.len();
        let want = (BINARY_HEADER_LEN as u64)
            .checked_add(payload)
            .ok_or(DataIoError::Truncated)?;
        if file_len < want {
            return Err(DataIoError::Truncated);
        }
        if file_len > want {
            return Err(DataIoError::TrailingBytes {
                extra: file_len - want,
            });
        }
        Ok(Self {
            reader,
            dims,
            total,
            read_points: 0,
            batch_size: batch_size.max(1),
        })
    }
}

impl PointSource for BinarySource {
    fn dims(&self) -> Option<usize> {
        Some(self.dims)
    }

    fn next_batch(&mut self) -> Result<Option<PointBatch>, DataIoError> {
        let remaining = self.total - self.read_points;
        if remaining == 0 {
            return Ok(None);
        }
        let points = (self.batch_size as u64).min(remaining) as usize;
        let mut bytes = vec![0u8; points * self.dims * 8];
        self.reader.read_exact(&mut bytes).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                DataIoError::Truncated
            } else {
                DataIoError::Io(e)
            }
        })?;
        let coords: Vec<f64> = bytes
            .chunks_exact(8)
            .map(|c| {
                let mut b = [0u8; 8];
                b.copy_from_slice(c);
                f64::from_le_bytes(b)
            })
            .collect();
        self.read_points += points as u64;
        Ok(Some(PointBatch::from_flat(self.dims, coords)?))
    }

    fn reset(&mut self) -> Result<(), DataIoError> {
        self.reader
            .seek(SeekFrom::Start(BINARY_HEADER_LEN as u64))?;
        self.read_points = 0;
        Ok(())
    }

    fn len_hint(&self) -> Option<usize> {
        usize::try_from(self.total).ok()
    }
}

/// An in-memory [`PointStore`] behind the streaming API — the adapter
/// materialized callers (and the equivalence tests) use to feed the
/// same detector entry point.
#[derive(Debug)]
pub struct StoreSource<'a> {
    store: &'a PointStore,
    cursor: usize,
    batch_size: usize,
}

impl<'a> StoreSource<'a> {
    /// Streams `store` in batches of `batch_size` (clamped to ≥ 1)
    /// points, in id order.
    pub fn new(store: &'a PointStore, batch_size: usize) -> Self {
        Self {
            store,
            cursor: 0,
            batch_size: batch_size.max(1),
        }
    }
}

impl PointSource for StoreSource<'_> {
    fn dims(&self) -> Option<usize> {
        Some(self.store.dims())
    }

    fn next_batch(&mut self) -> Result<Option<PointBatch>, DataIoError> {
        let n = self.store.len() as usize;
        if self.cursor >= n {
            return Ok(None);
        }
        let end = (self.cursor + self.batch_size).min(n);
        let dims = self.store.dims();
        let coords = self
            .store
            .flat()
            .get(self.cursor * dims..end * dims)
            .unwrap_or(&[])
            .to_vec();
        self.cursor = end;
        Ok(Some(PointBatch::from_flat(dims, coords)?))
    }

    fn reset(&mut self) -> Result<(), DataIoError> {
        self.cursor = 0;
        Ok(())
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.store.len() as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{encode_binary, read_csv_with, write_binary, write_csv};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("dbscout-source-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample_store(n: usize, dims: usize) -> PointStore {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..dims).map(|k| (i * dims + k) as f64 * 0.25).collect())
            .collect();
        PointStore::from_rows(dims, rows).unwrap()
    }

    fn drain(source: &mut dyn PointSource) -> Vec<PointBatch> {
        let mut out = Vec::new();
        while let Some(b) = source.next_batch().unwrap() {
            out.push(b);
        }
        out
    }

    #[test]
    fn store_source_batches_cover_the_store_in_order() {
        let store = sample_store(10, 3);
        for batch_size in [1, 3, 4, 100] {
            let mut src = StoreSource::new(&store, batch_size);
            assert_eq!(src.dims(), Some(3));
            assert_eq!(src.len_hint(), Some(10));
            let batches = drain(&mut src);
            let total: usize = batches.iter().map(PointBatch::len).sum();
            assert_eq!(total, 10, "batch_size {batch_size}");
            let flat: Vec<f64> = batches.iter().flat_map(|b| b.coords().to_vec()).collect();
            assert_eq!(flat, store.flat());
            // Rewind replays identically.
            src.reset().unwrap();
            assert_eq!(drain(&mut src), batches);
        }
    }

    #[test]
    fn materialize_round_trips_store_source() {
        let store = sample_store(23, 2);
        let mut src = StoreSource::new(&store, 7);
        assert_eq!(materialize(&mut src).unwrap(), store);
    }

    #[test]
    fn csv_source_matches_eager_reader_including_labels() {
        let path = tmp("labeled.csv");
        let store = sample_store(17, 2);
        let labels: Vec<bool> = (0..17).map(|i| i % 5 == 0).collect();
        write_csv(&path, &store, Some(&labels)).unwrap();
        for batch_size in [1, 4, 1000] {
            let mut src = CsvSource::open(&path, true, IngestMode::Strict, batch_size).unwrap();
            let got = materialize(&mut src).unwrap();
            assert_eq!(got, store, "batch_size {batch_size}");
            assert_eq!(src.take_labels().unwrap(), labels);
            assert!(src.quarantine().is_clean());
        }
    }

    #[test]
    fn csv_source_reset_clears_per_pass_state() {
        let path = tmp("dirty-reset.csv");
        std::fs::write(&path, "1.0,2.0,1\nbad,row,0\n3.0,4.0,0\n").unwrap();
        let mut src = CsvSource::open(&path, true, IngestMode::Permissive, 2).unwrap();
        let first = drain(&mut src);
        assert_eq!(src.quarantine().quarantined, 1);
        src.reset().unwrap();
        assert!(src.quarantine().is_clean(), "quarantine must reset");
        let second = drain(&mut src);
        assert_eq!(first, second, "pass 2 must replay pass 1");
        assert_eq!(src.quarantine().quarantined, 1);
        assert_eq!(src.take_labels().unwrap(), vec![true, false]);
    }

    #[test]
    fn csv_source_strict_propagates_parse_errors() {
        let path = tmp("strict-bad.csv");
        std::fs::write(&path, "1.0,2.0\nnope,4.0\n").unwrap();
        let mut src = CsvSource::open(&path, false, IngestMode::Strict, 100).unwrap();
        let err = loop {
            match src.next_batch() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("bad row must error in strict mode"),
                Err(e) => break e,
            }
        };
        assert!(matches!(err, DataIoError::Parse { line: 2, .. }), "{err}");
    }

    #[test]
    fn csv_source_empty_file_is_an_error() {
        let path = tmp("empty.csv");
        std::fs::write(&path, "").unwrap();
        let mut src = CsvSource::open(&path, false, IngestMode::Strict, 8).unwrap();
        let err = src.next_batch().unwrap_err();
        assert!(err.to_string().contains("empty file"), "{err}");
    }

    #[test]
    fn eager_reader_delegates_to_the_source() {
        // The eager API is now a materializing wrapper; semantics must
        // not have drifted for a dirty permissive load.
        let path = tmp("dirty-eager.csv");
        std::fs::write(
            &path,
            "1.0,2.0\nnope,2.0\n3.0,NaN\n5.0,6.0\n7.0\n9.0,10.0\n",
        )
        .unwrap();
        let ingest = read_csv_with(&path, false, IngestMode::Permissive).unwrap();
        assert_eq!(ingest.store.len(), 3);
        assert_eq!(ingest.quarantine.quarantined, 3);
        let mut src = CsvSource::open(&path, false, IngestMode::Permissive, 2).unwrap();
        assert_eq!(materialize(&mut src).unwrap(), ingest.store);
        assert_eq!(*src.quarantine(), ingest.quarantine);
    }

    #[test]
    fn binary_source_streams_chunked_and_rewinds() {
        let path = tmp("points.dbsc");
        let store = sample_store(33, 3);
        write_binary(&path, &store).unwrap();
        for batch_size in [1, 8, 33, 500] {
            let mut src = BinarySource::open(&path, batch_size).unwrap();
            assert_eq!(src.dims(), Some(3));
            assert_eq!(src.len_hint(), Some(33));
            assert_eq!(materialize(&mut src).unwrap(), store);
            src.reset().unwrap();
            assert_eq!(materialize(&mut src).unwrap(), store);
        }
    }

    #[test]
    fn binary_source_rejects_corrupt_files_up_front() {
        let store = sample_store(4, 2);
        let good = encode_binary(&store);

        let bad_magic = tmp("bad-magic.dbsc");
        let mut buf = good.clone();
        buf[0] = b'X';
        std::fs::write(&bad_magic, &buf).unwrap();
        assert!(matches!(
            BinarySource::open(&bad_magic, 8),
            Err(DataIoError::BadMagic)
        ));

        let bad_version = tmp("bad-version.dbsc");
        let mut buf = good.clone();
        buf[4] = 99;
        std::fs::write(&bad_version, &buf).unwrap();
        assert!(matches!(
            BinarySource::open(&bad_version, 8),
            Err(DataIoError::UnsupportedVersion { found: 99 })
        ));

        let truncated = tmp("truncated.dbsc");
        std::fs::write(&truncated, &good[..good.len() - 5]).unwrap();
        assert!(matches!(
            BinarySource::open(&truncated, 8),
            Err(DataIoError::Truncated)
        ));

        let trailing = tmp("trailing.dbsc");
        let mut buf = good.clone();
        buf.extend_from_slice(&[1, 2, 3]);
        std::fs::write(&trailing, &buf).unwrap();
        assert!(matches!(
            BinarySource::open(&trailing, 8),
            Err(DataIoError::TrailingBytes { extra: 3 })
        ));

        // 9 bytes: valid magic+version, count cut short → truncated, not
        // "not a DBSC file".
        let short_header = tmp("short-header.dbsc");
        std::fs::write(&short_header, &good[..9]).unwrap();
        assert!(matches!(
            BinarySource::open(&short_header, 8),
            Err(DataIoError::Truncated)
        ));

        // 3 bytes: not even the magic fits.
        let no_magic = tmp("no-magic.dbsc");
        std::fs::write(&no_magic, &good[..3]).unwrap();
        assert!(matches!(
            BinarySource::open(&no_magic, 8),
            Err(DataIoError::BadMagic)
        ));
    }

    #[test]
    fn batch_shape_is_validated() {
        assert!(PointBatch::from_flat(0, vec![]).is_err());
        assert!(PointBatch::from_flat(2, vec![1.0, 2.0, 3.0]).is_err());
        let b = PointBatch::from_flat(2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
        assert_eq!(b.rows().count(), 2);
    }
}
