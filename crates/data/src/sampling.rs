//! Dataset sampling: the paper evaluates on random samples
//! (1%, 25%, 50%, 75%) of OpenStreetMap (§IV-B1, Fig. 10 / Table II).

use dbscout_spatial::points::PointId;
use dbscout_spatial::PointStore;

use crate::rng::seeded;

/// A uniform random sample containing each point independently with
/// probability `fraction` (Bernoulli sampling, like Spark's `sample`).
pub fn sample_fraction(store: &PointStore, fraction: f64, seed: u64) -> PointStore {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "fraction must be in [0, 1]"
    );
    let mut rng = seeded(seed);
    let ids: Vec<PointId> = store
        .iter()
        .filter(|_| rng.gen::<f64>() < fraction)
        .map(|(id, _)| id)
        .collect();
    store.gather(&ids)
}

/// An exact-size sample of `k` points without replacement (reservoir
/// sampling), in original order.
pub fn sample_exact(store: &PointStore, k: usize, seed: u64) -> PointStore {
    let n = store.len() as usize;
    if k >= n {
        return store.clone();
    }
    let mut rng = seeded(seed);
    let mut reservoir: Vec<PointId> = (0..k as PointId).collect();
    for i in k..n {
        let j = rng.gen_range(0..=i);
        if let Some(slot) = reservoir.get_mut(j) {
            *slot = i as PointId;
        }
    }
    reservoir.sort_unstable();
    store.gather(&reservoir)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(n: usize) -> PointStore {
        PointStore::from_rows(2, (0..n).map(|i| vec![i as f64, 0.0])).unwrap()
    }

    #[test]
    fn fraction_sample_size_is_close() {
        let s = store(10_000);
        let half = sample_fraction(&s, 0.5, 1);
        let n = half.len() as f64;
        assert!(n > 4_700.0 && n < 5_300.0, "n {n}");
    }

    #[test]
    fn fraction_edges() {
        let s = store(100);
        assert_eq!(sample_fraction(&s, 0.0, 1).len(), 0);
        assert_eq!(sample_fraction(&s, 1.0, 1).len(), 100);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn fraction_out_of_range_panics() {
        sample_fraction(&store(10), 1.5, 0);
    }

    #[test]
    fn exact_sample_size_and_membership() {
        let s = store(1_000);
        let sub = sample_exact(&s, 100, 2);
        assert_eq!(sub.len(), 100);
        for (_, p) in sub.iter() {
            assert!(p[0] >= 0.0 && p[0] < 1_000.0);
            assert_eq!(p[0].fract(), 0.0);
        }
    }

    #[test]
    fn exact_sample_k_ge_n_returns_all() {
        let s = store(10);
        assert_eq!(sample_exact(&s, 50, 3).len(), 10);
    }

    #[test]
    fn sampling_is_deterministic() {
        let s = store(500);
        assert_eq!(sample_fraction(&s, 0.3, 9), sample_fraction(&s, 0.3, 9));
        assert_eq!(sample_exact(&s, 42, 9), sample_exact(&s, 42, 9));
    }
}
