//! Dataset generators and IO for the DBSCOUT experiments.
//!
//! The paper evaluates on (a) two real GPS datasets — Geolife (24.9M
//! skewed 3-D points) and OpenStreetMap (2.77B 2-D points) — plus
//! enlarged/sampled versions, and (b) nine small labelled 2-D benchmark
//! datasets (scikit-learn-style shapes and Cluto/Cure files). None of the
//! real files ship with this reproduction, so this crate provides seeded
//! synthetic generators that preserve the *structural* properties the
//! experiments depend on (density skew, hotspot structure, cluster
//! shapes, labelled noise); see `DESIGN.md` for the substitution
//! rationale.
//!
//! Everything is deterministic given a seed.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
// Unit tests may panic freely; library code is held to the panic-freedom
// gates in `[workspace.lints]` and `cargo xtask lint`.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::indexing_slicing,
        clippy::panic,
        clippy::float_cmp
    )
)]
pub mod generators;
pub mod io;
pub mod kdist;
pub mod labeled;
pub mod rng;
pub mod sampling;
pub mod source;
pub mod transform;

pub use io::{CsvIngest, DataIoError, IngestMode, QuarantineReport, QuarantinedRow};
pub use labeled::LabeledDataset;
pub use source::{
    materialize, BinarySource, CsvSource, PointBatch, PointSource, StoreSource, DEFAULT_BATCH_SIZE,
};
