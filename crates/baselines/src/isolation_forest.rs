//! Isolation Forest (Liu, Ting, Zhou — ICDM 2008), a Table III
//! competitor.
//!
//! Outliers are "few and different", so random axis-aligned splits
//! isolate them in short paths. The anomaly score is
//! `s(x) = 2^(−E[h(x)] / c(ψ))` where `h` is the path length over the
//! ensemble and `c(ψ)` the average unsuccessful-search length of a BST of
//! the subsample size ψ.

use dbscout_rng::Rng;
use dbscout_spatial::points::PointId;
use dbscout_spatial::PointStore;

use crate::lof::threshold_top_fraction;

/// Isolation Forest parameters.
#[derive(Debug, Clone, Copy)]
pub struct IsolationForest {
    /// Number of trees (paper default 100).
    pub n_trees: usize,
    /// Subsample size ψ per tree (paper default 256).
    pub sample_size: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for IsolationForest {
    fn default() -> Self {
        Self {
            n_trees: 100,
            sample_size: 256,
            seed: 0,
        }
    }
}

enum Node {
    Leaf {
        size: usize,
    },
    Split {
        dim: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

impl IsolationForest {
    /// A forest with the standard (100 trees, ψ = 256) configuration.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Anomaly scores in (0, 1); higher = more anomalous.
    pub fn score(&self, store: &PointStore) -> Vec<f64> {
        let n = store.len() as usize;
        if n == 0 {
            return Vec::new();
        }
        let psi = self.sample_size.min(n).max(2);
        let height_limit = (psi as f64).log2().ceil() as usize;
        let mut rng = Rng::seed_from_u64(self.seed);

        let mut path_sums = vec![0.0f64; n];
        for _ in 0..self.n_trees {
            // Subsample without replacement (partial Fisher–Yates).
            let mut ids: Vec<PointId> = (0..store.len()).collect();
            for i in 0..psi {
                let j = rng.gen_range(i..n);
                ids.swap(i, j);
            }
            let sample = ids.get(..psi).unwrap_or(&ids);
            let tree = build_tree(store, sample, 0, height_limit, &mut rng);
            for (id, p) in store.iter() {
                if let Some(s) = path_sums.get_mut(id as usize) {
                    *s += path_length(&tree, p, 0.0);
                }
            }
        }
        let c = average_path_length(psi);
        path_sums
            .iter()
            .map(|&s| {
                let mean = s / self.n_trees as f64;
                2f64.powf(-mean / c)
            })
            .collect()
    }

    /// Binary decision: the `contamination` fraction with the highest
    /// anomaly scores.
    pub fn detect(&self, store: &PointStore, contamination: f64) -> Vec<bool> {
        assert!(
            (0.0..=1.0).contains(&contamination),
            "contamination must be in [0, 1]"
        );
        threshold_top_fraction(&self.score(store), contamination)
    }
}

/// `c(n)`: average path length of an unsuccessful BST search — the
/// normalizer from the Isolation Forest paper.
fn average_path_length(n: usize) -> f64 {
    if n <= 1 {
        return 1.0;
    }
    let n = n as f64;
    let harmonic = (n - 1.0).ln() + 0.577_215_664_901_532_9;
    2.0 * harmonic - 2.0 * (n - 1.0) / n
}

fn build_tree(
    store: &PointStore,
    ids: &[PointId],
    depth: usize,
    height_limit: usize,
    rng: &mut Rng,
) -> Node {
    if ids.len() <= 1 || depth >= height_limit {
        return Node::Leaf { size: ids.len() };
    }
    // Pick a random dimension with spread; bail out if all coincident.
    let dims = store.dims();
    let start = rng.gen_range(0..dims);
    let mut split = None;
    for k in 0..dims {
        let dim = (start + k) % dims;
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &id in ids.iter() {
            let v = store.point(id).get(dim).copied().unwrap_or(0.0);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if hi > lo {
            split = Some((dim, rng.gen_range(lo..hi)));
            break;
        }
    }
    let Some((dim, threshold)) = split else {
        return Node::Leaf { size: ids.len() };
    };
    let (mut left, mut right) = (Vec::new(), Vec::new());
    for &id in ids.iter() {
        if store.point(id).get(dim).copied().unwrap_or(0.0) < threshold {
            left.push(id);
        } else {
            right.push(id);
        }
    }
    Node::Split {
        dim,
        threshold,
        left: Box::new(build_tree(store, &left, depth + 1, height_limit, rng)),
        right: Box::new(build_tree(store, &right, depth + 1, height_limit, rng)),
    }
}

fn path_length(node: &Node, p: &[f64], depth: f64) -> f64 {
    match node {
        Node::Leaf { size } => depth + average_path_length(*size),
        Node::Split {
            dim,
            threshold,
            left,
            right,
        } => {
            if p.get(*dim).copied().unwrap_or(0.0) < *threshold {
                path_length(left, p, depth + 1.0)
            } else {
                path_length(right, p, depth + 1.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_plus_outlier() -> PointStore {
        let mut rows: Vec<Vec<f64>> = Vec::new();
        let mut rng = Rng::seed_from_u64(5);
        for _ in 0..400 {
            rows.push(vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)]);
        }
        rows.push(vec![15.0, -12.0]);
        PointStore::from_rows(2, rows).unwrap()
    }

    #[test]
    fn isolated_point_scores_highest() {
        let store = blob_plus_outlier();
        let scores = IsolationForest::new(1).score(&store);
        let (argmax, _) = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        assert_eq!(argmax, 400);
        assert!(scores[400] > 0.6, "score {}", scores[400]);
    }

    #[test]
    fn scores_in_unit_interval() {
        let store = blob_plus_outlier();
        for s in IsolationForest::new(2).score(&store) {
            assert!((0.0..=1.0).contains(&s), "score {s}");
        }
    }

    #[test]
    fn detect_flags_the_outlier() {
        let store = blob_plus_outlier();
        let mask = IsolationForest::new(3).detect(&store, 1.0 / 401.0);
        assert!(mask[400]);
        assert_eq!(mask.iter().filter(|&&m| m).count(), 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let store = blob_plus_outlier();
        let a = IsolationForest::new(7).score(&store);
        let b = IsolationForest::new(7).score(&store);
        assert_eq!(a, b);
    }

    #[test]
    fn duplicate_points_are_leaves_not_loops() {
        let store = PointStore::from_rows(2, vec![vec![1.0, 1.0]; 50]).unwrap();
        let scores = IsolationForest::new(4).score(&store);
        assert_eq!(scores.len(), 50);
        for s in &scores {
            assert!(s.is_finite());
        }
    }

    #[test]
    fn empty_input() {
        let store = PointStore::new(2).unwrap();
        assert!(IsolationForest::new(0).score(&store).is_empty());
    }

    #[test]
    fn average_path_length_known_values() {
        assert_eq!(average_path_length(1), 1.0);
        // c(2) = 2·H(1) − 2·(1/2) = 2·0.5772… − 1 ≈ 0.1544.
        assert!((average_path_length(2) - 0.1544).abs() < 0.01);
        assert!(average_path_length(256) > 9.0);
    }
}
