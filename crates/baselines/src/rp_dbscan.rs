//! An RP-DBSCAN-like approximated parallel DBSCAN (after Song & Lee,
//! SIGMOD 2018), used as the scalable-competitor stand-in for the
//! efficiency experiments (Table II, Figs 10–13) and the quality
//! comparison (Tables IV–V).
//!
//! **Substitution note** (see `DESIGN.md`): the published RP-DBSCAN is a
//! closed-source Spark jar. This implementation reproduces its defining
//! mechanics —
//!
//! 1. **random partitioning** of points across workers,
//! 2. a **two-level cell dictionary** (ε-cells split into sub-cells of
//!    diagonal ρ·ε) built per partition, merged, and **broadcast to every
//!    worker** (the memory appetite the paper observes),
//! 3. **approximate neighborhood counting at sub-cell granularity**: a
//!    sub-cell's population is counted only when the whole sub-cell
//!    provably lies inside the ε-ball (`max dist ≤ ε`),
//! 4. a **cell-graph clustering step** (union-find over core cells) — the
//!    cluster-formation work any DBSCAN must do on top of outlier
//!    extraction,
//!
//! and therefore also its error *direction*: neighborhoods are
//! undercounted, so core-ness and coverage are under-detected and the
//! emitted outliers form a **superset** of the exact ones — false
//! positives but (in exact arithmetic) no false negatives, matching the
//! behaviour of Tables IV–V (FP 7–19% of output, FN ≈ 0.01%).

use std::sync::Arc;

use dbscout_dataflow::shuffle::DetHashMap;
use dbscout_dataflow::{Dataset, ExecutionContext};
use dbscout_spatial::cell::{cell_of, cell_side, CellCoord, MAX_DIMS};
use dbscout_spatial::points::PointId;
use dbscout_spatial::{NeighborOffsets, PointStore};

use crate::error::BaselineError;

/// A point record with inlined coordinates (same role as the one in
/// `dbscout-core`, duplicated here to keep the baselines crate
/// independent of the core crate).
#[derive(Debug, Clone, Copy)]
struct Rec {
    id: PointId,
    dims: u8,
    coords: [f64; MAX_DIMS],
}

impl Rec {
    fn new(id: PointId, p: &[f64]) -> Self {
        let mut coords = [0.0; MAX_DIMS];
        for (out, &x) in coords.iter_mut().zip(p) {
            *out = x;
        }
        Self {
            id,
            dims: p.len() as u8,
            coords,
        }
    }

    fn coords(&self) -> &[f64] {
        // dims <= MAX_DIMS by construction, so the range is always valid.
        self.coords
            .get(..self.dims as usize)
            .unwrap_or(&self.coords)
    }
}

/// The RP-DBSCAN-like detector.
#[derive(Debug, Clone)]
pub struct RpDbscan {
    ctx: Arc<ExecutionContext>,
    eps: f64,
    min_pts: usize,
    rho: f64,
    num_partitions: usize,
}

/// Output of a run.
#[derive(Debug, Clone)]
pub struct RpDbscanResult {
    /// Approximate outlier mask (superset of the exact outliers).
    pub outlier_mask: Vec<bool>,
    /// Approximate core-point count.
    pub num_core: usize,
    /// Number of clusters formed by the cell-graph step.
    pub num_clusters: usize,
    /// Size of the merged sub-cell dictionary (the broadcast structure).
    pub dictionary_size: usize,
}

impl RpDbscan {
    /// A detector with the paper's standard approximation ρ = 0.01.
    pub fn new(ctx: Arc<ExecutionContext>, eps: f64, min_pts: usize) -> Self {
        let num_partitions = ctx.default_partitions();
        Self {
            ctx,
            eps,
            min_pts,
            rho: 0.01,
            num_partitions,
        }
    }

    /// Overrides the approximation parameter ρ ∈ (0, 1].
    pub fn with_rho(mut self, rho: f64) -> Self {
        self.rho = rho;
        self
    }

    /// Overrides the number of random partitions.
    pub fn with_partitions(mut self, n: usize) -> Self {
        self.num_partitions = n.max(1);
        self
    }

    /// Runs the approximated detection.
    pub fn detect(&self, store: &PointStore) -> Result<RpDbscanResult, BaselineError> {
        if !(self.rho > 0.0 && self.rho <= 1.0) {
            return Err(BaselineError::InvalidParameter("rho must be in (0, 1]"));
        }
        if !self.eps.is_finite() || self.eps <= 0.0 {
            return Err(BaselineError::Spatial(
                dbscout_spatial::SpatialError::InvalidEpsilon { value: self.eps },
            ));
        }
        if self.min_pts == 0 {
            return Err(BaselineError::InvalidParameter("min_pts must be >= 1"));
        }
        let dims = store.dims();
        let n = store.len() as usize;
        let side = cell_side(self.eps, dims);
        // m sub-cells per cell side; sub-cell diagonal ≤ ρ·ε.
        let m = (1.0 / self.rho).ceil() as i64;
        let sub_side = side / m as f64;
        let eps_sq = self.eps * self.eps;
        let min_pts = self.min_pts;
        let offsets = Arc::new(NeighborOffsets::new(dims)?);

        // Phase 1: random partitioning (round-robin redistribution of the
        // input order — the pseudo-random split of RP-DBSCAN).
        let recs: Vec<Rec> = store.iter().map(|(id, p)| Rec::new(id, p)).collect();
        let points: Dataset<Rec> = self
            .ctx
            .parallelize(recs, self.num_partitions)
            .repartition(self.num_partitions)?;

        // Phase 2: per-partition two-level dictionaries, merged by key
        // and broadcast. Key = sub-cell coordinate; parent ε-cell is
        // derived by integer division.
        let sub_counts = points
            .map_partitions(|part| {
                let mut local: DetHashMap<CellCoord, u32> = DetHashMap::default();
                for rec in part {
                    *local.entry(cell_of(rec.coords(), sub_side)).or_insert(0) += 1;
                }
                local.into_iter().collect()
            })?
            .reduce_by_key_with(self.num_partitions, |a, b| a + b)?
            .collect()?;
        let mut dictionary: DetHashMap<CellCoord, Vec<(CellCoord, u32)>> = DetHashMap::default();
        for (sub, count) in sub_counts {
            dictionary
                .entry(parent_cell(&sub, m))
                .or_default()
                .push((sub, count));
        }
        let dictionary_size: usize = dictionary.values().map(Vec::len).sum();
        let dict = self.ctx.broadcast(dictionary);

        // Phase 3: approximate core marking at **sub-cell granularity**,
        // as in RP-DBSCAN's cell-dictionary density test: a sub-cell is
        // core iff the total population of sub-cells provably inside the
        // ε-ball of *every* point of it (box-to-box max distance ≤ ε)
        // reaches minPts; every point of a core sub-cell is then provably
        // a true core point, so the approximation errs only toward
        // missing borderline cores — the source of the false-positive
        // outliers of Tables IV–V.
        let distinct_subs: Vec<CellCoord> = dict
            .values()
            .flat_map(|subs| subs.iter().map(|(s, _)| *s))
            .collect();
        let core_subcells: Vec<CellCoord> = {
            let dict = dict.clone();
            let offsets = Arc::clone(&offsets);
            self.ctx
                .parallelize(distinct_subs, self.num_partitions)
                .flat_map(move |sub| {
                    let cell = parent_cell(sub, m);
                    let mut count: usize = 0;
                    'offsets: for off in offsets.iter() {
                        let ncell = NeighborOffsets::apply(&cell, off);
                        let Some(subs) = dict.get(&ncell) else {
                            continue;
                        };
                        for (other, c) in subs {
                            if max_sq_dist_between_cells(sub, other, sub_side) <= eps_sq {
                                count += *c as usize;
                                if count >= min_pts {
                                    break 'offsets;
                                }
                            }
                        }
                    }
                    (count >= min_pts).then_some(*sub)
                })?
                .collect()?
        };
        let core_sub_set: DetHashMap<CellCoord, ()> =
            core_subcells.iter().map(|s| (*s, ())).collect();
        let core_set = self.ctx.broadcast(core_sub_set);
        let core_flags = {
            let core_set = core_set.clone();
            points.map(move |rec| {
                let sub = cell_of(rec.coords(), sub_side);
                (*rec, core_set.contains_key(&sub))
            })?
        };
        let mut core_dict: DetHashMap<CellCoord, Vec<CellCoord>> = DetHashMap::default();
        for sub in &core_subcells {
            core_dict.entry(parent_cell(sub, m)).or_default().push(*sub);
        }

        // Phase 4: cell-graph clustering (union-find over core cells):
        // the cluster-formation cost every DBSCAN carries. Two core cells
        // merge when they are grid neighbors with a provably-within-ε
        // pair of core sub-cells (sub-cell center distance test).
        let core_cells: Vec<CellCoord> = core_dict.keys().copied().collect();
        let mut cell_index: DetHashMap<CellCoord, usize> = DetHashMap::default();
        for (i, c) in core_cells.iter().enumerate() {
            cell_index.insert(*c, i);
        }
        let mut uf = UnionFind::new(core_cells.len());
        for (i, cell) in core_cells.iter().enumerate() {
            for off in offsets.iter() {
                let ncell = NeighborOffsets::apply(cell, off);
                let Some(&j) = cell_index.get(&ncell) else {
                    continue;
                };
                if j <= i {
                    continue;
                }
                let (Some(subs_a), Some(subs_b)) = (core_dict.get(cell), core_dict.get(&ncell))
                else {
                    continue;
                };
                if core_cells_linked(subs_a, subs_b, sub_side, eps_sq) {
                    uf.union(i, j);
                }
            }
        }
        let num_clusters = uf.num_roots();

        // Phase 5: outlier extraction at sub-cell granularity, as in
        // RP-DBSCAN's cell-level labelling: a point inherits its
        // sub-cell's verdict, and a sub-cell counts as covered only when
        // its whole box is provably within ε of a core sub-cell's box.
        // Boundary sub-cells fail this conservative test, which is where
        // the approximation's false-positive outliers come from.
        let core_bcast = self.ctx.broadcast(core_dict);
        let outliers = {
            let offsets = Arc::clone(&offsets);
            core_flags.flat_map(move |(rec, is_core)| {
                if *is_core {
                    return None;
                }
                let p = rec.coords();
                let own_sub = cell_of(p, sub_side);
                let cell = cell_of(p, side);
                for off in offsets.iter() {
                    let ncell = NeighborOffsets::apply(&cell, off);
                    let Some(subs) = core_bcast.get(&ncell) else {
                        continue;
                    };
                    for sub in subs {
                        if max_sq_dist_between_cells(&own_sub, sub, sub_side) <= eps_sq {
                            return None; // whole sub-cell provably covered
                        }
                    }
                }
                Some(rec.id)
            })?
        };

        let mut outlier_mask = vec![false; n];
        for id in outliers.collect()? {
            if let Some(slot) = outlier_mask.get_mut(id as usize) {
                *slot = true;
            }
        }
        let num_core = core_flags.filter(|(_, is_core)| *is_core)?.count();
        Ok(RpDbscanResult {
            outlier_mask,
            num_core,
            num_clusters,
            dictionary_size,
        })
    }
}

/// Parent ε-cell of a sub-cell coordinate (floor division by `m`).
fn parent_cell(sub: &CellCoord, m: i64) -> CellCoord {
    let mut parent = [0i64; MAX_DIMS];
    for (slot, &c) in parent.iter_mut().zip(sub.coords()) {
        *slot = c.div_euclid(m);
    }
    // sub.dims() <= MAX_DIMS by construction, so the range is valid.
    CellCoord::from_slice(parent.get(..sub.dims()).unwrap_or(&parent))
}

/// Squared maximum distance between any point of box `a` and any point of
/// box `b` (both of side `side`).
fn max_sq_dist_between_cells(a: &CellCoord, b: &CellCoord, side: f64) -> f64 {
    let mut acc = 0.0;
    for (&ca, &cb) in a.coords().iter().zip(b.coords()) {
        let (alo, ahi) = (ca as f64 * side, (ca + 1) as f64 * side);
        let (blo, bhi) = (cb as f64 * side, (cb + 1) as f64 * side);
        let gap = (ahi - blo).abs().max((bhi - alo).abs());
        acc += gap * gap;
    }
    acc
}

/// Whether two core cells have a core-sub-cell pair provably within ε
/// (all-corners test via per-axis extremes of the two sub-cell boxes).
fn core_cells_linked(
    subs_a: &[CellCoord],
    subs_b: &[CellCoord],
    sub_side: f64,
    eps_sq: f64,
) -> bool {
    for a in subs_a {
        // Max distance from any point of box `a` to box `b` ≤ ε ⇒ linked.
        for b in subs_b {
            if max_sq_dist_between_cells(a, b, sub_side) <= eps_sq {
                return true;
            }
        }
    }
    false
}

/// Plain union-find with path compression.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while let Some(&p) = self.parent.get(x) {
            if p == x {
                break;
            }
            // Path halving: point x at its grandparent, then hop.
            let gp = self.parent.get(p).copied().unwrap_or(p);
            if let Some(slot) = self.parent.get_mut(x) {
                *slot = gp;
            }
            x = gp;
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            if let Some(slot) = self.parent.get_mut(ra) {
                *slot = rb;
            }
        }
    }

    fn num_roots(&mut self) -> usize {
        let n = self.parent.len();
        (0..n).filter(|&i| self.find(i) == i).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbscan::Dbscan;

    fn ctx() -> Arc<ExecutionContext> {
        ExecutionContext::builder()
            .workers(4)
            .default_partitions(4)
            .build()
    }

    fn clustered_store() -> PointStore {
        let mut rows = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                rows.push(vec![i as f64 * 0.15, j as f64 * 0.15]);
            }
        }
        for i in 0..10 {
            for j in 0..10 {
                rows.push(vec![20.0 + i as f64 * 0.15, j as f64 * 0.15]);
            }
        }
        rows.push(vec![10.0, 10.0]);
        rows.push(vec![-8.0, 4.0]);
        PointStore::from_rows(2, rows).unwrap()
    }

    #[test]
    fn outliers_are_superset_of_exact() {
        let store = clustered_store();
        let (eps, min_pts) = (1.0, 5);
        let exact = Dbscan::new(eps, min_pts).fit(&store).unwrap().noise_mask();
        let approx = RpDbscan::new(ctx(), eps, min_pts)
            .detect(&store)
            .unwrap()
            .outlier_mask;
        for (i, (&e, &a)) in exact.iter().zip(&approx).enumerate() {
            if e {
                assert!(a, "exact outlier {i} missed (false negative)");
            }
        }
    }

    #[test]
    fn planted_outliers_are_found() {
        let store = clustered_store();
        let r = RpDbscan::new(ctx(), 1.0, 5).detect(&store).unwrap();
        assert!(r.outlier_mask[200]);
        assert!(r.outlier_mask[201]);
        assert!(r.num_core > 150, "num_core {}", r.num_core);
    }

    #[test]
    fn finds_two_clusters() {
        let store = clustered_store();
        let r = RpDbscan::new(ctx(), 1.0, 5).detect(&store).unwrap();
        assert_eq!(r.num_clusters, 2);
    }

    #[test]
    fn coarser_rho_means_more_false_positives() {
        let store = clustered_store();
        let fine = RpDbscan::new(ctx(), 1.0, 5)
            .with_rho(0.01)
            .detect(&store)
            .unwrap();
        let coarse = RpDbscan::new(ctx(), 1.0, 5)
            .with_rho(0.5)
            .detect(&store)
            .unwrap();
        let count = |m: &[bool]| m.iter().filter(|&&x| x).count();
        assert!(
            count(&coarse.outlier_mask) >= count(&fine.outlier_mask),
            "coarse {} < fine {}",
            count(&coarse.outlier_mask),
            count(&fine.outlier_mask)
        );
        assert!(fine.dictionary_size >= coarse.dictionary_size);
    }

    #[test]
    fn partition_count_does_not_change_result() {
        let store = clustered_store();
        let base = RpDbscan::new(ctx(), 1.0, 5)
            .with_partitions(1)
            .detect(&store)
            .unwrap();
        for parts in [2, 8, 32] {
            let r = RpDbscan::new(ctx(), 1.0, 5)
                .with_partitions(parts)
                .detect(&store)
                .unwrap();
            assert_eq!(r.outlier_mask, base.outlier_mask, "partitions {parts}");
        }
    }

    #[test]
    fn invalid_parameters_rejected() {
        let store = clustered_store();
        assert!(RpDbscan::new(ctx(), 1.0, 5)
            .with_rho(0.0)
            .detect(&store)
            .is_err());
        assert!(RpDbscan::new(ctx(), -1.0, 5).detect(&store).is_err());
        assert!(RpDbscan::new(ctx(), 1.0, 0).detect(&store).is_err());
    }

    #[test]
    fn empty_input() {
        let store = PointStore::new(2).unwrap();
        let r = RpDbscan::new(ctx(), 1.0, 5).detect(&store).unwrap();
        assert!(r.outlier_mask.is_empty());
        assert_eq!(r.num_clusters, 0);
    }
}
