//! One-Class SVM (Schölkopf et al. 1999), a Table III competitor.
//!
//! **Substitution note** (see `DESIGN.md`): the paper uses scikit-learn's
//! SMO-based OC-SVM with an RBF kernel. Offline, we approximate the RBF
//! kernel with random Fourier features (Rahimi & Recht 2007) —
//! `k(x, y) ≈ φ(x)·φ(y)` with `φ(x) = √(2/D)·cos(Wx + b)`,
//! `W ~ N(0, 2γ)` — and train the *linear* one-class objective
//!
//! ```text
//! min_{w, ρ}  ½‖w‖² + (1/(νn)) Σ_i max(0, ρ − w·φ(x_i)) − ρ
//! ```
//!
//! by SGD. The decision function `w·φ(x) − ρ` behaves like the kernelised
//! one for the 4k–10k-point Table III datasets: a single enclosing
//! boundary that cannot follow non-convex shapes — which is exactly the
//! failure mode the paper reports for OC-SVM on circles/moons.

use dbscout_rng::Rng;
use dbscout_spatial::PointStore;

use crate::lof::threshold_top_fraction;

/// One-Class SVM on random Fourier features.
#[derive(Debug, Clone)]
pub struct OneClassSvm {
    /// Expected outlier fraction ν ∈ (0, 1].
    pub nu: f64,
    /// RBF bandwidth γ; `None` = scikit-learn's `"scale"`
    /// (`1 / (d · var)`).
    pub gamma: Option<f64>,
    /// Number of random Fourier features.
    pub n_features: usize,
    /// SGD epochs.
    pub epochs: usize,
    /// RNG seed (feature directions and sample order).
    pub seed: u64,
}

impl OneClassSvm {
    /// A detector with sensible defaults (256 features, 30 epochs).
    pub fn new(nu: f64, seed: u64) -> Self {
        assert!(nu > 0.0 && nu <= 1.0, "nu must be in (0, 1]");
        Self {
            nu,
            gamma: None,
            n_features: 256,
            epochs: 30,
            seed,
        }
    }

    /// Overrides γ.
    pub fn with_gamma(mut self, gamma: f64) -> Self {
        assert!(gamma > 0.0, "gamma must be positive");
        self.gamma = Some(gamma);
        self
    }

    /// Decision scores `w·φ(x) − ρ`: negative = outlier-side.
    pub fn score(&self, store: &PointStore) -> Vec<f64> {
        let n = store.len() as usize;
        if n == 0 {
            return Vec::new();
        }
        let d = store.dims();
        let gamma = self.gamma.unwrap_or_else(|| {
            // scikit-learn "scale": 1 / (d * variance of all features).
            let flat = store.flat();
            let mean = flat.iter().sum::<f64>() / flat.len() as f64;
            let var = flat.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / flat.len() as f64;
            if var > 0.0 {
                1.0 / (d as f64 * var)
            } else {
                1.0
            }
        });

        let mut rng = Rng::seed_from_u64(self.seed);
        let dfeat = self.n_features;
        // W ~ N(0, 2γ) per entry, b ~ U[0, 2π).
        let std_w = (2.0 * gamma).sqrt();
        let w_proj: Vec<f64> = (0..dfeat * d)
            .map(|_| {
                // Box–Muller.
                let u1: f64 = 1.0 - rng.gen::<f64>();
                let u2: f64 = rng.gen();
                std_w * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
            })
            .collect();
        let bias: Vec<f64> = (0..dfeat)
            .map(|_| rng.gen_range(0.0..std::f64::consts::TAU))
            .collect();
        let scale = (2.0 / dfeat as f64).sqrt();

        let phi = |p: &[f64], out: &mut [f64]| {
            for (j, (slot, &b)) in out.iter_mut().zip(&bias).enumerate() {
                let row = w_proj.get(j * d..j * d + d).unwrap_or_default();
                let mut dot = b;
                for (&wk, &x) in row.iter().zip(p) {
                    dot += wk * x;
                }
                *slot = scale * dot.cos();
            }
        };

        // Featurise once (ids are issued sequentially, so row i of
        // `features` is point i).
        let mut features = vec![0.0f64; n * dfeat];
        for ((_, p), chunk) in store.iter().zip(features.chunks_mut(dfeat)) {
            phi(p, chunk);
        }

        // SGD on the one-class objective.
        let mut w = vec![0.0f64; dfeat];
        let mut rho = 0.0f64;
        let inv_nu = 1.0 / self.nu;
        let mut order: Vec<usize> = (0..n).collect();
        for epoch in 0..self.epochs {
            let eta = 0.1 / (1.0 + epoch as f64);
            // Shuffle sample order.
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for &i in &order {
                let f = features.get(i * dfeat..(i + 1) * dfeat).unwrap_or_default();
                let margin: f64 = w.iter().zip(f).map(|(a, b)| a * b).sum();
                let violated = margin < rho;
                for (wj, &fj) in w.iter_mut().zip(f) {
                    let grad = *wj - if violated { inv_nu * fj } else { 0.0 };
                    *wj -= eta * grad;
                }
                rho -= eta * (if violated { inv_nu } else { 0.0 } - 1.0);
            }
        }

        (0..n)
            .map(|i| {
                let f = features.get(i * dfeat..(i + 1) * dfeat).unwrap_or_default();
                w.iter().zip(f).map(|(a, b)| a * b).sum::<f64>() - rho
            })
            .collect()
    }

    /// Binary decision: the `contamination` fraction with the lowest
    /// decision scores (most outlier-side), matching how the paper fixes
    /// ν to the true contamination.
    pub fn detect(&self, store: &PointStore, contamination: f64) -> Vec<bool> {
        assert!(
            (0.0..=1.0).contains(&contamination),
            "contamination must be in [0, 1]"
        );
        let neg: Vec<f64> = self.score(store).iter().map(|s| -s).collect();
        threshold_top_fraction(&neg, contamination)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_plus_outliers() -> PointStore {
        let mut rng = Rng::seed_from_u64(3);
        let mut rows: Vec<Vec<f64>> = (0..300)
            .map(|_| vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)])
            .collect();
        rows.push(vec![8.0, 8.0]);
        rows.push(vec![-9.0, 7.0]);
        PointStore::from_rows(2, rows).unwrap()
    }

    #[test]
    fn far_points_score_lowest() {
        let store = blob_plus_outliers();
        let scores = OneClassSvm::new(0.05, 1).score(&store);
        let mut idx: Vec<usize> = (0..scores.len()).collect();
        idx.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
        // The two planted outliers occupy the two lowest scores.
        assert!(idx[..2].contains(&300), "{:?}", &idx[..4]);
        assert!(idx[..2].contains(&301), "{:?}", &idx[..4]);
    }

    #[test]
    fn detect_flags_planted_outliers() {
        let store = blob_plus_outliers();
        let mask = OneClassSvm::new(0.05, 2).detect(&store, 2.0 / 302.0);
        assert!(mask[300]);
        assert!(mask[301]);
        assert_eq!(mask.iter().filter(|&&m| m).count(), 2);
    }

    #[test]
    fn deterministic_per_seed() {
        let store = blob_plus_outliers();
        let a = OneClassSvm::new(0.1, 9).score(&store);
        let b = OneClassSvm::new(0.1, 9).score(&store);
        assert_eq!(a, b);
    }

    #[test]
    fn scores_finite() {
        let store = blob_plus_outliers();
        for s in OneClassSvm::new(0.1, 4).with_gamma(0.5).score(&store) {
            assert!(s.is_finite());
        }
    }

    #[test]
    fn empty_input() {
        let store = PointStore::new(2).unwrap();
        assert!(OneClassSvm::new(0.1, 0).score(&store).is_empty());
    }

    #[test]
    fn constant_data_does_not_divide_by_zero() {
        let store = PointStore::from_rows(2, vec![vec![3.0, 3.0]; 20]).unwrap();
        let scores = OneClassSvm::new(0.1, 5).score(&store);
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    #[should_panic(expected = "nu must be")]
    fn bad_nu_panics() {
        OneClassSvm::new(0.0, 0);
    }
}
