//! Exact DBSCAN (Ester et al. 1996).
//!
//! DBSCOUT's outliers are *defined* to be DBSCAN's noise points
//! (Definitions 1–3 of the paper mirror DBSCAN's), so this implementation
//! doubles as the semantic ground truth for the workspace's equivalence
//! tests and as the "run a clustering algorithm just to read off its
//! noise" strawman of §I. Two engines:
//!
//! * [`Dbscan::fit_naive`] — O(n²), obviously-correct, for tests;
//! * [`Dbscan::fit`] — grid-accelerated (Gunawan-style ε-cells), for the
//!   benchmark datasets.

use std::collections::VecDeque;

use dbscout_spatial::distance::within;
use dbscout_spatial::points::PointId;
use dbscout_spatial::{Grid, NeighborOffsets, PointStore, SpatialError};

/// Cluster id assigned to noise points.
pub const NOISE: i32 = -1;

/// DBSCAN parameters.
#[derive(Debug, Clone, Copy)]
pub struct Dbscan {
    /// Neighborhood radius ε (closed ball).
    pub eps: f64,
    /// Density threshold, the point itself included.
    pub min_pts: usize,
}

/// The output of a DBSCAN run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbscanResult {
    /// Per-point cluster id, or [`NOISE`].
    pub cluster: Vec<i32>,
    /// Per-point core flag.
    pub is_core: Vec<bool>,
    /// Number of clusters found.
    pub num_clusters: usize,
}

impl DbscanResult {
    /// Noise (outlier) mask — DBSCAN noise coincides with Definition 3.
    pub fn noise_mask(&self) -> Vec<bool> {
        self.cluster.iter().map(|&c| c == NOISE).collect()
    }

    /// Ids of all noise points, ascending.
    pub fn noise_ids(&self) -> Vec<PointId> {
        self.cluster
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == NOISE)
            .map(|(i, _)| i as PointId)
            .collect()
    }
}

impl Dbscan {
    /// Creates a parameter set (unvalidated struct literal also works;
    /// `fit` validates ε via the grid).
    pub fn new(eps: f64, min_pts: usize) -> Self {
        Self { eps, min_pts }
    }

    /// Grid-accelerated exact DBSCAN.
    ///
    /// # Errors
    ///
    /// Fails on an invalid ε.
    pub fn fit(&self, store: &PointStore) -> Result<DbscanResult, SpatialError> {
        let grid = Grid::build(store, self.eps)?;
        let offsets = NeighborOffsets::new(store.dims())?;
        let eps_sq = self.eps * self.eps;
        let n = store.len() as usize;

        // Core test via neighboring cells (dense-cell shortcut included).
        let mut is_core = vec![false; n];
        for (cell, ids) in grid.cells() {
            if ids.len() >= self.min_pts {
                for &p in ids {
                    if let Some(c) = is_core.get_mut(p as usize) {
                        *c = true;
                    }
                }
                continue;
            }
            for &p in ids {
                let pc = store.point(p);
                let mut count = 0usize;
                'search: for off in offsets.iter() {
                    let ncell = NeighborOffsets::apply(cell, off);
                    let Some(qs) = grid.points_in(&ncell) else {
                        continue;
                    };
                    for &q in qs {
                        if within(pc, store.point(q), eps_sq) {
                            count += 1;
                            if count >= self.min_pts {
                                break 'search;
                            }
                        }
                    }
                }
                if let Some(c) = is_core.get_mut(p as usize) {
                    *c = count >= self.min_pts;
                }
            }
        }

        // Expansion: BFS over core points, attaching border points.
        let neighbors_of = |p: PointId| -> Vec<PointId> {
            let pc = store.point(p);
            let cell = grid.cell_for(pc);
            let mut out = Vec::new();
            for off in offsets.iter() {
                let ncell = NeighborOffsets::apply(&cell, off);
                if let Some(qs) = grid.points_in(&ncell) {
                    for &q in qs {
                        if within(pc, store.point(q), eps_sq) {
                            out.push(q);
                        }
                    }
                }
            }
            out
        };
        let (cluster, num_clusters) = expand_clusters(n, &is_core, neighbors_of);
        Ok(DbscanResult {
            cluster,
            is_core,
            num_clusters,
        })
    }

    /// Naive O(n²) exact DBSCAN (for tests and tiny inputs).
    pub fn fit_naive(&self, store: &PointStore) -> DbscanResult {
        let eps_sq = self.eps * self.eps;
        let n = store.len() as usize;
        let mut is_core = vec![false; n];
        for (i, p) in store.iter() {
            let count = store.iter().filter(|(_, q)| within(p, q, eps_sq)).count();
            if let Some(c) = is_core.get_mut(i as usize) {
                *c = count >= self.min_pts;
            }
        }
        let neighbors_of = |p: PointId| -> Vec<PointId> {
            let pc = store.point(p);
            store
                .iter()
                .filter(|(_, q)| within(pc, q, eps_sq))
                .map(|(id, _)| id)
                .collect()
        };
        let (cluster, num_clusters) = expand_clusters(n, &is_core, neighbors_of);
        DbscanResult {
            cluster,
            is_core,
            num_clusters,
        }
    }
}

/// Standard DBSCAN expansion: each unvisited core point seeds a cluster;
/// the BFS frontier only grows through core points; border points join
/// the first cluster that reaches them.
fn expand_clusters(
    n: usize,
    is_core: &[bool],
    neighbors_of: impl Fn(PointId) -> Vec<PointId>,
) -> (Vec<i32>, usize) {
    let mut cluster = vec![NOISE; n];
    let mut next_id = 0i32;
    for seed in 0..n {
        if !is_core.get(seed).copied().unwrap_or(false)
            || cluster.get(seed).copied().unwrap_or(NOISE) != NOISE
        {
            continue;
        }
        let id = next_id;
        next_id += 1;
        if let Some(slot) = cluster.get_mut(seed) {
            *slot = id;
        }
        let mut queue = VecDeque::from([seed as PointId]);
        while let Some(p) = queue.pop_front() {
            debug_assert!(is_core.get(p as usize).copied().unwrap_or(false));
            for q in neighbors_of(p) {
                let qi = q as usize;
                if let Some(slot) = cluster.get_mut(qi) {
                    if *slot == NOISE {
                        *slot = id;
                        if is_core.get(qi).copied().unwrap_or(false) {
                            queue.push_back(q);
                        }
                    }
                }
            }
        }
    }
    (cluster, next_id as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_2d(points: &[[f64; 2]]) -> PointStore {
        PointStore::from_rows(2, points.iter().map(|p| p.to_vec())).unwrap()
    }

    fn two_blobs_and_noise() -> PointStore {
        let mut pts = Vec::new();
        for i in 0..3 {
            for j in 0..3 {
                pts.push([i as f64 * 0.3, j as f64 * 0.3]);
            }
        }
        for i in 0..3 {
            for j in 0..3 {
                pts.push([10.0 + i as f64 * 0.3, j as f64 * 0.3]);
            }
        }
        pts.push([5.0, 5.0]);
        store_2d(&pts)
    }

    #[test]
    fn finds_two_clusters_and_noise() {
        let store = two_blobs_and_noise();
        let r = Dbscan::new(1.0, 5).fit(&store).unwrap();
        assert_eq!(r.num_clusters, 2);
        assert_eq!(r.cluster[18], NOISE);
        // All of blob 1 shares one id; all of blob 2 shares another.
        let id0 = r.cluster[0];
        assert!((0..9).all(|i| r.cluster[i] == id0));
        let id1 = r.cluster[9];
        assert_ne!(id0, id1);
        assert!((9..18).all(|i| r.cluster[i] == id1));
        assert_eq!(r.noise_ids(), vec![18]);
    }

    #[test]
    fn grid_matches_naive() {
        let store = two_blobs_and_noise();
        for (eps, min_pts) in [(0.5, 3), (1.0, 5), (2.0, 4), (11.0, 9)] {
            let d = Dbscan::new(eps, min_pts);
            let fast = d.fit(&store).unwrap();
            let slow = d.fit_naive(&store);
            assert_eq!(fast.is_core, slow.is_core, "eps {eps}");
            assert_eq!(fast.noise_mask(), slow.noise_mask(), "eps {eps}");
            assert_eq!(fast.num_clusters, slow.num_clusters, "eps {eps}");
        }
    }

    #[test]
    fn border_point_joins_cluster() {
        // Chain of 5 close points + hanger-on within eps of the last.
        let mut pts: Vec<[f64; 2]> = (0..5).map(|i| [i as f64 * 0.1, 0.0]).collect();
        pts.push([0.9, 0.0]);
        let store = store_2d(&pts);
        let r = Dbscan::new(0.5, 5).fit(&store).unwrap();
        assert!(!r.is_core[5]);
        assert_eq!(r.cluster[5], r.cluster[0], "border point joins");
        assert_eq!(r.num_clusters, 1);
    }

    #[test]
    fn all_noise_when_sparse() {
        let pts: Vec<[f64; 2]> = (0..5).map(|i| [i as f64 * 100.0, 0.0]).collect();
        let store = store_2d(&pts);
        let r = Dbscan::new(1.0, 2).fit(&store).unwrap();
        assert_eq!(r.num_clusters, 0);
        assert_eq!(r.noise_ids().len(), 5);
    }

    #[test]
    fn single_cluster_spanning_many_cells() {
        // A long chain with spacing < eps: one cluster via transitive
        // expansion even though it spans dozens of cells.
        let pts: Vec<[f64; 2]> = (0..50).map(|i| [i as f64 * 0.4, 0.0]).collect();
        let store = store_2d(&pts);
        let r = Dbscan::new(1.0, 3).fit(&store).unwrap();
        assert_eq!(r.num_clusters, 1);
        assert!(r.noise_ids().is_empty());
    }

    #[test]
    fn empty_store() {
        let store = PointStore::new(2).unwrap();
        let r = Dbscan::new(1.0, 3).fit(&store).unwrap();
        assert!(r.cluster.is_empty());
        assert_eq!(r.num_clusters, 0);
    }
}
