//! Exact Local Outlier Factor (Breunig et al., SIGMOD 2000) — the main
//! quality competitor of paper Table III, and the sequential algorithm
//! DDLOF distributes.
//!
//! For each point `p` with k-nearest (other) neighbors `N_k(p)`:
//!
//! * `k-distance(p)` — distance to the k-th nearest other point;
//! * `reach-dist_k(p, o) = max(k-distance(o), dist(p, o))`;
//! * `lrd(p) = 1 / mean_{o ∈ N_k(p)} reach-dist_k(p, o)`;
//! * `LOF(p) = mean_{o ∈ N_k(p)} lrd(o) / lrd(p)`.
//!
//! Scores ≈ 1 for points inside uniform-density regions, ≫ 1 for
//! outliers. As in scikit-learn, the binary decision takes the
//! `contamination` fraction with the highest scores.

use dbscout_spatial::points::PointId;
use dbscout_spatial::{KdTree, PointStore};

/// Cap on local reachability density so that duplicate clusters
/// ("infinite" density) keep every sum and ratio finite.
pub(crate) const LRD_CAP: f64 = 1e12;

/// LOF parameters.
#[derive(Debug, Clone, Copy)]
pub struct Lof {
    /// Neighborhood size `k` (`MinPts` in the original paper).
    pub k: usize,
}

/// Scores plus the neighbor structure they were computed from.
#[derive(Debug, Clone)]
pub struct LofResult {
    /// LOF score per point (≈1 = inlier-like; larger = more outlying).
    pub scores: Vec<f64>,
    /// k-distance per point.
    pub k_distance: Vec<f64>,
    /// Local reachability density per point.
    pub lrd: Vec<f64>,
}

impl Lof {
    /// Creates an LOF detector with neighborhood size `k` (≥ 1).
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "k must be >= 1");
        Self { k }
    }

    /// Computes LOF scores for every point of `store`.
    pub fn score(&self, store: &PointStore) -> LofResult {
        let n = store.len() as usize;
        if n == 0 {
            return LofResult {
                scores: Vec::new(),
                k_distance: Vec::new(),
                lrd: Vec::new(),
            };
        }
        let k = self.k.min(n.saturating_sub(1)).max(1);
        let tree = KdTree::build(store);

        // k-NN per point, excluding the query point itself. Duplicate
        // coordinates are distinct objects, as in the original definition.
        let mut neighbors: Vec<Vec<(PointId, f64)>> = Vec::with_capacity(n);
        for (id, p) in store.iter() {
            let mut nn: Vec<(PointId, f64)> = tree
                .knn(p, k + 1)
                .into_iter()
                .filter(|m| m.id != id)
                .map(|m| (m.id, m.sq_dist.sqrt()))
                .collect();
            nn.truncate(k);
            neighbors.push(nn);
        }
        let k_distance: Vec<f64> = neighbors
            .iter()
            .map(|nn| nn.last().map(|&(_, d)| d).unwrap_or(0.0))
            .collect();

        // Local reachability density.
        let lrd: Vec<f64> = neighbors
            .iter()
            .map(|nn| {
                if nn.is_empty() {
                    return 0.0;
                }
                let mean_reach: f64 = nn
                    .iter()
                    .map(|&(o, d)| d.max(k_distance.get(o as usize).copied().unwrap_or(0.0)))
                    .sum::<f64>()
                    / nn.len() as f64;
                if mean_reach == 0.0 {
                    // All reach distances zero (duplicate cluster):
                    // density is "infinite"; cap it so sums and ratios
                    // stay finite and LOF ≈ 1 among duplicates.
                    LRD_CAP
                } else {
                    (1.0 / mean_reach).min(LRD_CAP)
                }
            })
            .collect();

        // LOF ratio.
        let lrd_at = |j: usize| lrd.get(j).copied().unwrap_or(0.0);
        let scores: Vec<f64> = neighbors
            .iter()
            .enumerate()
            .map(|(i, nn)| {
                if nn.is_empty() || lrd_at(i) == 0.0 {
                    return 1.0;
                }
                let mean_lrd: f64 =
                    nn.iter().map(|&(o, _)| lrd_at(o as usize)).sum::<f64>() / nn.len() as f64;
                mean_lrd / lrd_at(i)
            })
            .collect();

        LofResult {
            scores,
            k_distance,
            lrd,
        }
    }

    /// Binary outlier decision: the `contamination` fraction of points
    /// with the highest LOF scores (scikit-learn's thresholding).
    pub fn detect(&self, store: &PointStore, contamination: f64) -> Vec<bool> {
        assert!(
            (0.0..=1.0).contains(&contamination),
            "contamination must be in [0, 1]"
        );
        let scores = self.score(store).scores;
        threshold_top_fraction(&scores, contamination)
    }
}

/// Marks the `fraction` of points with the largest scores as outliers
/// (ties broken by index for determinism).
pub(crate) fn threshold_top_fraction(scores: &[f64], fraction: f64) -> Vec<bool> {
    let n = scores.len();
    let k = ((n as f64) * fraction).round() as usize;
    let score_at = |i: usize| scores.get(i).copied().unwrap_or(f64::NEG_INFINITY);
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| score_at(b).total_cmp(&score_at(a)).then(a.cmp(&b)));
    let mut mask = vec![false; n];
    for &i in idx.iter().take(k) {
        if let Some(slot) = mask.get_mut(i) {
            *slot = true;
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_2d(points: &[[f64; 2]]) -> PointStore {
        PointStore::from_rows(2, points.iter().map(|p| p.to_vec())).unwrap()
    }

    fn grid_plus_outlier() -> PointStore {
        let mut pts: Vec<[f64; 2]> = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                pts.push([i as f64, j as f64]);
            }
        }
        pts.push([30.0, 30.0]);
        store_2d(&pts)
    }

    #[test]
    fn outlier_has_highest_score() {
        let store = grid_plus_outlier();
        let r = Lof::new(5).score(&store);
        let (argmax, _) = r
            .scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        assert_eq!(argmax, 100);
        assert!(r.scores[100] > 2.0, "score {}", r.scores[100]);
    }

    #[test]
    fn uniform_region_scores_near_one() {
        let store = grid_plus_outlier();
        let r = Lof::new(5).score(&store);
        // Interior grid points sit in uniform density: LOF ≈ 1.
        let interior = 5 * 10 + 5;
        assert!(
            (r.scores[interior] - 1.0).abs() < 0.2,
            "{}",
            r.scores[interior]
        );
    }

    #[test]
    fn detect_flags_top_fraction() {
        let store = grid_plus_outlier();
        let mask = Lof::new(5).detect(&store, 1.0 / 101.0);
        assert_eq!(mask.iter().filter(|&&m| m).count(), 1);
        assert!(mask[100]);
    }

    #[test]
    fn duplicates_do_not_produce_nan() {
        let store = store_2d(&[[0.0, 0.0]; 10]);
        let r = Lof::new(3).score(&store);
        for s in &r.scores {
            assert!(s.is_finite(), "score {s}");
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty = PointStore::new(2).unwrap();
        assert!(Lof::new(3).score(&empty).scores.is_empty());
        let one = store_2d(&[[1.0, 1.0]]);
        let r = Lof::new(3).score(&one);
        assert_eq!(r.scores.len(), 1);
        assert!(r.scores[0].is_finite());
    }

    #[test]
    fn threshold_rounds_and_breaks_ties() {
        let mask = threshold_top_fraction(&[1.0, 3.0, 3.0, 0.0], 0.5);
        assert_eq!(mask, vec![false, true, true, false]);
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn zero_k_panics() {
        Lof::new(0);
    }

    #[test]
    #[should_panic(expected = "contamination")]
    fn bad_contamination_panics() {
        Lof::new(2).detect(&store_2d(&[[0.0, 0.0]]), 1.5);
    }
}
