//! Error type shared by the distributed baselines.

use std::fmt;

use dbscout_dataflow::EngineError;
use dbscout_spatial::SpatialError;

/// Errors from running a distributed baseline detector.
#[derive(Debug, Clone, PartialEq)]
pub enum BaselineError {
    /// Invalid spatial input (bad ε, dimensionality, …).
    Spatial(SpatialError),
    /// The dataflow substrate failed.
    Engine(EngineError),
    /// An invalid algorithm parameter.
    InvalidParameter(&'static str),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::Spatial(e) => write!(f, "spatial error: {e}"),
            BaselineError::Engine(e) => write!(f, "dataflow error: {e}"),
            BaselineError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl std::error::Error for BaselineError {}

impl From<SpatialError> for BaselineError {
    fn from(e: SpatialError) -> Self {
        BaselineError::Spatial(e)
    }
}

impl From<EngineError> for BaselineError {
    fn from(e: EngineError) -> Self {
        BaselineError::Engine(e)
    }
}

// Compile-time proof of the XL004 contract: the error type is
// `Display + std::error::Error + Send + Sync`.
const fn _assert_error_bounds<T: std::error::Error + Send + Sync + 'static>() {}
const _: () = _assert_error_bounds::<BaselineError>();

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: BaselineError = SpatialError::ZeroDims.into();
        assert!(e.to_string().contains("spatial"));
        let e: BaselineError = EngineError::InvalidPartitionCount { requested: 0 }.into();
        assert!(e.to_string().contains("dataflow"));
        assert!(BaselineError::InvalidParameter("rho")
            .to_string()
            .contains("rho"));
    }
}
