//! Baseline outlier detectors the paper compares DBSCOUT against.
//!
//! * [`dbscan`] — exact DBSCAN (naive and grid-accelerated): the
//!   reference semantics DBSCOUT's outliers must coincide with, and the
//!   "naïve approach" of §I (cluster first, read outliers off the noise).
//! * [`rp_dbscan`] — an RP-DBSCAN-like **approximated** parallel DBSCAN
//!   with approximation parameter ρ, standing in for the closed-source
//!   competitor of §IV (see `DESIGN.md` for the substitution argument).
//! * [`lof`] — exact Local Outlier Factor (Breunig et al. 2000), the
//!   quality baseline of Table III.
//! * [`ddlof`] — a distributed LOF in the style of DDLOF (Yan et al.
//!   2017) over the dataflow substrate, the efficiency competitor of
//!   Table II.
//! * [`isolation_forest`] — Isolation Forest (Liu et al. 2008).
//! * [`ocsvm`] — One-Class SVM on random Fourier features (RBF kernel
//!   approximation), trained with SGD.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
// Unit tests may panic freely; library code is held to the panic-freedom
// gates in `[workspace.lints]` and `cargo xtask lint`.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::indexing_slicing,
        clippy::panic,
        clippy::float_cmp
    )
)]
pub mod dbscan;
pub mod ddlof;
pub mod error;
pub mod isolation_forest;
pub mod knn_outlier;
pub mod lof;
pub mod ocsvm;
pub mod rp_dbscan;

pub use dbscan::{Dbscan, DbscanResult, NOISE};
pub use ddlof::Ddlof;
pub use error::BaselineError;
pub use isolation_forest::IsolationForest;
pub use knn_outlier::KnnOutlier;
pub use lof::Lof;
pub use ocsvm::OneClassSvm;
pub use rp_dbscan::RpDbscan;
