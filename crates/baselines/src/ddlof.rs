//! DDLOF-style distributed Local Outlier Factor (after Yan, Cao, Kulhman,
//! Rundensteiner — KDD 2017), the efficiency competitor of paper
//! Table II.
//!
//! **Substitution note** (see `DESIGN.md`): the published DDLOF is a
//! closed-source MapReduce job. This implementation reproduces its round
//! structure over the dataflow substrate:
//!
//! 1. **spatial grid partitioning** of the domain into roughly one cell
//!    per partition;
//! 2. a **local k-NN round** inside each cell, yielding per-cell
//!    k-distance upper bounds;
//! 3. a **support round**: every point is replicated into each cell whose
//!    region it may serve as a k-NN for (bound-driven replication — the
//!    mechanism that blows up on skewed data, which is why the paper's
//!    DDLOF times out on Geolife);
//! 4. an **exact k-NN round** over own + support points;
//! 5. two **join rounds** exchanging neighbor k-distances (→ lrd) and
//!    neighbor lrds (→ LOF).
//!
//! The result is the *exact* LOF score for every point (verified against
//! the sequential [`crate::Lof`] in tests); only the data movement is
//! distributed.

use std::sync::Arc;

use dbscout_dataflow::{Dataset, ExecutionContext};
use dbscout_spatial::cell::{cell_of, min_sq_dist_to_cell, CellCoord, MAX_DIMS};
use dbscout_spatial::points::PointId;
use dbscout_spatial::{KdTree, PointStore};

use crate::error::BaselineError;
use crate::lof::threshold_top_fraction;

/// A point record with inlined coordinates.
#[derive(Debug, Clone, Copy)]
struct Rec {
    id: PointId,
    dims: u8,
    coords: [f64; MAX_DIMS],
}

impl Rec {
    fn new(id: PointId, p: &[f64]) -> Self {
        let mut coords = [0.0; MAX_DIMS];
        for (out, &x) in coords.iter_mut().zip(p) {
            *out = x;
        }
        Self {
            id,
            dims: p.len() as u8,
            coords,
        }
    }

    fn coords(&self) -> &[f64] {
        // dims <= MAX_DIMS by construction, so the range is always valid.
        self.coords
            .get(..self.dims as usize)
            .unwrap_or(&self.coords)
    }
}

/// The DDLOF-style distributed LOF detector.
#[derive(Debug, Clone)]
pub struct Ddlof {
    ctx: Arc<ExecutionContext>,
    /// Neighborhood size k (the paper uses k = 6 for DDLOF).
    pub k: usize,
    target_cells: usize,
}

/// Output of a run.
#[derive(Debug, Clone)]
pub struct DdlofResult {
    /// Exact LOF score per point.
    pub scores: Vec<f64>,
    /// How many support replicas were shipped between cells (the cost
    /// driver on skewed data).
    pub support_replicas: usize,
    /// Number of grid cells used for partitioning.
    pub grid_cells: usize,
}

impl Ddlof {
    /// A detector with neighborhood size `k` over `ctx`, targeting one
    /// grid cell per default partition.
    pub fn new(ctx: Arc<ExecutionContext>, k: usize) -> Self {
        let target_cells = ctx.default_partitions();
        Self {
            ctx,
            k,
            target_cells,
        }
    }

    /// Overrides the number of spatial grid cells (≈ partitions).
    pub fn with_cells(mut self, cells: usize) -> Self {
        self.target_cells = cells.max(1);
        self
    }

    /// Computes exact LOF scores for every point, distributedly.
    pub fn score(&self, store: &PointStore) -> Result<DdlofResult, BaselineError> {
        if self.k == 0 {
            return Err(BaselineError::InvalidParameter("k must be >= 1"));
        }
        let n = store.len() as usize;
        if n == 0 {
            return Ok(DdlofResult {
                scores: Vec::new(),
                support_replicas: 0,
                grid_cells: 0,
            });
        }
        let k = self.k.min(n.saturating_sub(1)).max(1);
        let dims = store.dims();

        // Grid sizing: ~target_cells cells over the bounding box.
        let (min, max) = store
            .bounding_box()
            .ok_or(BaselineError::InvalidParameter("empty store"))?;
        let per_axis = (self.target_cells as f64)
            .powf(1.0 / dims as f64)
            .ceil()
            .max(1.0);
        let side = min
            .iter()
            .zip(&max)
            .map(|(&lo, &hi)| (hi - lo) / per_axis)
            .fold(0.0f64, f64::max)
            .max(f64::MIN_POSITIVE);
        // The bounding-box diagonal caps all distances.
        let diagonal_sq: f64 = min
            .iter()
            .zip(&max)
            .map(|(&lo, &hi)| (hi - lo).powi(2))
            .sum();

        let recs: Vec<Rec> = store.iter().map(|(id, p)| Rec::new(id, p)).collect();
        let points: Dataset<(CellCoord, Rec)> = self
            .ctx
            .parallelize(recs, self.ctx.default_partitions())
            .map(|rec| (cell_of(rec.coords(), side), *rec))?;

        // Round 1+2: per-cell local k-NN → per-cell k-distance bound.
        let by_cell = points.group_by_key_with(self.ctx.default_partitions())?;
        let cell_bounds: Vec<(CellCoord, f64)> = by_cell
            .map(move |(cell, members)| {
                // On any (impossible for store-derived points) build
                // failure, fall back to the conservative diagonal bound.
                let local_bound = |members: &[Rec]| -> Option<f64> {
                    let mut local = PointStore::new(dims).ok()?;
                    for m in members {
                        local.push(m.coords()).ok()?;
                    }
                    let tree = KdTree::build(&local);
                    Some(
                        members
                            .iter()
                            .map(|m| {
                                let nn = tree.knn(m.coords(), k + 1);
                                nn.last().map(|x| x.sq_dist).unwrap_or(diagonal_sq)
                            })
                            .fold(0.0f64, f64::max),
                    )
                };
                let bound_sq = if members.len() <= k {
                    // Not enough local points: k-NN may reach anywhere.
                    diagonal_sq
                } else {
                    local_bound(members).unwrap_or(diagonal_sq)
                };
                (*cell, bound_sq)
            })?
            .collect()?;
        let grid_cells = cell_bounds.len();
        let bounds = self.ctx.broadcast(cell_bounds);

        // Round 3: support replication — ship every point to each cell
        // whose region it might serve (min dist to cell box ≤ that cell's
        // bound).
        let supports = {
            let bounds = bounds.clone();
            points.flat_map(move |(own_cell, rec)| {
                let mut out = Vec::new();
                for (cell, bound_sq) in bounds.iter() {
                    if cell != own_cell
                        && min_sq_dist_to_cell(rec.coords(), cell, side) <= *bound_sq
                    {
                        out.push((*cell, *rec));
                    }
                }
                out
            })?
        };
        let support_replicas = supports.count();

        // Round 4: exact k-NN over own + support points, per cell.
        let own_and_support = by_cell.cogroup(
            &supports.group_by_key_with(self.ctx.default_partitions())?,
            self.ctx.default_partitions(),
        )?;
        // Per point: (id, [(neighbor_id, dist)]) with exact k-NN.
        let knn: Dataset<(PointId, Vec<(PointId, f64)>)> =
            own_and_support.flat_map(move |(_, (own_groups, support_groups))| {
                let own: Vec<&Rec> = own_groups.iter().flatten().collect();
                let sup: Vec<&Rec> = support_groups.iter().flatten().collect();
                if own.is_empty() {
                    return Vec::new();
                }
                let Ok(mut all) = PointStore::new(dims) else {
                    return Vec::new();
                };
                let mut ids: Vec<PointId> = Vec::with_capacity(own.len() + sup.len());
                for r in own.iter().chain(sup.iter()) {
                    if all.push(r.coords()).is_err() {
                        return Vec::new();
                    }
                    ids.push(r.id);
                }
                let tree = KdTree::build(&all);
                own.iter()
                    .map(|r| {
                        let mut nn: Vec<(PointId, f64)> = tree
                            .knn(r.coords(), k + 1)
                            .into_iter()
                            .filter_map(|m| {
                                ids.get(m.id as usize).map(|&id| (id, m.sq_dist.sqrt()))
                            })
                            .filter(|&(id, _)| id != r.id)
                            .collect();
                        nn.truncate(k);
                        (r.id, nn)
                    })
                    .collect()
            })?;

        // k-distance per point.
        let kdist: Dataset<(PointId, f64)> =
            knn.map(|(id, nn)| (*id, nn.last().map(|&(_, d)| d).unwrap_or(0.0)))?;

        // Round 5a: exchange neighbor k-distances → lrd.
        // Emit (neighbor_id, (point_id, dist)) and join with kdist.
        let edges = knn.flat_map(|(id, nn)| {
            let id = *id;
            nn.iter()
                .map(move |&(o, d)| (o, (id, d)))
                .collect::<Vec<_>>()
        })?;
        let parts = self.ctx.default_partitions();
        let lrd: Dataset<(PointId, f64)> = kdist
            .join_with(&edges, parts)?
            .map(|(_, (kd_o, (p, d)))| (*p, (d.max(*kd_o), 1u32)))?
            .reduce_by_key_with(parts, |(s1, c1), (s2, c2)| (s1 + s2, c1 + c2))?
            .map(|(p, (sum, cnt))| {
                let mean = sum / *cnt as f64;
                let lrd = if mean == 0.0 {
                    crate::lof::LRD_CAP
                } else {
                    (1.0 / mean).min(crate::lof::LRD_CAP)
                };
                (*p, lrd)
            })?;

        // Round 5b: exchange neighbor lrds → LOF.
        let lof: Dataset<(PointId, f64)> = lrd
            .join_with(&edges, parts)?
            .map(|(_, (lrd_o, (p, _)))| (*p, (*lrd_o, 1u32)))?
            .reduce_by_key_with(parts, |(s1, c1), (s2, c2)| (s1 + s2, c1 + c2))?
            .join_with(&lrd, parts)?
            .map(|(p, ((sum, cnt), own_lrd))| {
                let mean = sum / *cnt as f64;
                (*p, mean / own_lrd)
            })?;

        let mut scores = vec![1.0f64; n];
        for (id, s) in lof.collect()? {
            if let Some(slot) = scores.get_mut(id as usize) {
                *slot = s;
            }
        }
        Ok(DdlofResult {
            scores,
            support_replicas,
            grid_cells,
        })
    }

    /// The ids of the `n` highest-LOF points, descending by score (ties
    /// broken by id) — the *top-N* variant of distributed LOF (Yan et
    /// al., IEEE BigData 2017, the paper's reference for DDLOF's
    /// follow-up).
    pub fn top_n(&self, store: &PointStore, n: usize) -> Result<Vec<PointId>, BaselineError> {
        let scores = self.score(store)?.scores;
        let mut idx: Vec<PointId> = (0..scores.len() as u32).collect();
        let score_at = |i: PointId| scores.get(i as usize).copied().unwrap_or(1.0);
        idx.sort_by(|&a, &b| score_at(b).total_cmp(&score_at(a)).then(a.cmp(&b)));
        idx.truncate(n);
        Ok(idx)
    }

    /// Binary decision: the `contamination` fraction with the highest
    /// LOF scores.
    pub fn detect(
        &self,
        store: &PointStore,
        contamination: f64,
    ) -> Result<Vec<bool>, BaselineError> {
        if !(0.0..=1.0).contains(&contamination) {
            return Err(BaselineError::InvalidParameter(
                "contamination must be in [0, 1]",
            ));
        }
        Ok(threshold_top_fraction(
            &self.score(store)?.scores,
            contamination,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lof::Lof;
    use dbscout_rng::Rng;

    fn ctx() -> Arc<ExecutionContext> {
        ExecutionContext::builder()
            .workers(4)
            .default_partitions(9)
            .build()
    }

    fn random_store(n: usize, seed: u64) -> PointStore {
        let mut rng = Rng::seed_from_u64(seed);
        PointStore::from_rows(
            2,
            (0..n).map(|_| vec![rng.gen_range(-10.0..10.0), rng.gen_range(-10.0..10.0)]),
        )
        .unwrap()
    }

    #[test]
    fn matches_sequential_lof_exactly() {
        let store = random_store(300, 1);
        let dd = Ddlof::new(ctx(), 6).score(&store).unwrap();
        let seq = Lof::new(6).score(&store);
        for (i, (a, b)) in dd.scores.iter().zip(&seq.scores).enumerate() {
            assert!(
                (a - b).abs() < 1e-9,
                "point {i}: distributed {a} vs sequential {b}"
            );
        }
    }

    #[test]
    fn outlier_gets_top_score() {
        let mut rows: Vec<Vec<f64>> = Vec::new();
        let mut rng = dbscout_rng::Rng::seed_from_u64(2);
        for _ in 0..200 {
            rows.push(vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)]);
        }
        rows.push(vec![25.0, 25.0]);
        let store = PointStore::from_rows(2, rows).unwrap();
        let mask = Ddlof::new(ctx(), 6).detect(&store, 1.0 / 201.0).unwrap();
        assert!(mask[200]);
    }

    #[test]
    fn top_n_ranks_planted_outlier_first() {
        let mut rows: Vec<Vec<f64>> = Vec::new();
        let mut rng = dbscout_rng::Rng::seed_from_u64(8);
        for _ in 0..150 {
            rows.push(vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)]);
        }
        rows.push(vec![30.0, -30.0]);
        let store = PointStore::from_rows(2, rows).unwrap();
        let top = Ddlof::new(ctx(), 6).top_n(&store, 3).unwrap();
        assert_eq!(top.len(), 3);
        assert_eq!(top[0], 150);
        // Requesting more than n points returns everything.
        assert_eq!(Ddlof::new(ctx(), 6).top_n(&store, 999).unwrap().len(), 151);
    }

    #[test]
    fn cell_count_does_not_change_scores() {
        let store = random_store(150, 3);
        let a = Ddlof::new(ctx(), 5).with_cells(1).score(&store).unwrap();
        let b = Ddlof::new(ctx(), 5).with_cells(16).score(&store).unwrap();
        for (x, y) in a.scores.iter().zip(&b.scores) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn skew_inflates_support_replication() {
        // A dominant hotspot forces its huge k-distance bound cell to
        // pull supports — replication grows vs uniform data.
        let mut rows: Vec<Vec<f64>> = Vec::new();
        let mut rng = dbscout_rng::Rng::seed_from_u64(4);
        for _ in 0..300 {
            rows.push(vec![rng.gen_range(-0.1..0.1), rng.gen_range(-0.1..0.1)]);
        }
        for _ in 0..30 {
            rows.push(vec![rng.gen_range(-50.0..50.0), rng.gen_range(-50.0..50.0)]);
        }
        let skewed = PointStore::from_rows(2, rows).unwrap();
        let uniform = random_store(330, 5);
        let rs = Ddlof::new(ctx(), 6).with_cells(16).score(&skewed).unwrap();
        let ru = Ddlof::new(ctx(), 6).with_cells(16).score(&uniform).unwrap();
        assert!(
            rs.support_replicas > ru.support_replicas,
            "skewed {} !> uniform {}",
            rs.support_replicas,
            ru.support_replicas
        );
    }

    #[test]
    fn empty_and_invalid() {
        let empty = PointStore::new(2).unwrap();
        let r = Ddlof::new(ctx(), 6).score(&empty).unwrap();
        assert!(r.scores.is_empty());
        assert!(Ddlof::new(ctx(), 0).score(&random_store(10, 6)).is_err());
        assert!(Ddlof::new(ctx(), 3)
            .detect(&random_store(10, 7), 2.0)
            .is_err());
    }
}
