//! k-NN distance outlier detection (Ramaswamy, Rastogi, Shim — SIGMOD
//! 2000), reference 12 of the paper: score every point by the distance
//! to its k-th nearest neighbor and flag the top fraction. A simple
//! global-density baseline that complements the local-density (LOF) and
//! isolation families in the quality experiments.

use dbscout_spatial::{KdTree, PointStore};

use crate::lof::threshold_top_fraction;

/// The k-NN distance detector.
#[derive(Debug, Clone, Copy)]
pub struct KnnOutlier {
    /// Neighborhood size k.
    pub k: usize,
}

impl KnnOutlier {
    /// A detector with neighborhood size `k` (≥ 1).
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "k must be >= 1");
        Self { k }
    }

    /// The distance of every point to its k-th nearest *other* point.
    pub fn score(&self, store: &PointStore) -> Vec<f64> {
        let n = store.len() as usize;
        if n == 0 {
            return Vec::new();
        }
        let k = self.k.min(n.saturating_sub(1)).max(1);
        let tree = KdTree::build(store);
        store
            .iter()
            .map(|(id, p)| {
                let nn = tree.knn(p, k + 1);
                nn.iter()
                    .filter(|m| m.id != id)
                    .take(k)
                    .last()
                    .map(|m| m.sq_dist.sqrt())
                    .unwrap_or(0.0)
            })
            .collect()
    }

    /// Binary decision: the `contamination` fraction of points with the
    /// largest k-NN distances.
    pub fn detect(&self, store: &PointStore, contamination: f64) -> Vec<bool> {
        assert!(
            (0.0..=1.0).contains(&contamination),
            "contamination must be in [0, 1]"
        );
        threshold_top_fraction(&self.score(store), contamination)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_plus_outlier() -> PointStore {
        let mut rows: Vec<Vec<f64>> = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                rows.push(vec![i as f64, j as f64]);
            }
        }
        rows.push(vec![40.0, 40.0]);
        PointStore::from_rows(2, rows).unwrap()
    }

    #[test]
    fn outlier_has_largest_kdist() {
        let store = grid_plus_outlier();
        let scores = KnnOutlier::new(4).score(&store);
        let (argmax, _) = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        assert_eq!(argmax, 100);
    }

    #[test]
    fn interior_kdist_is_one_on_unit_grid() {
        let store = grid_plus_outlier();
        let scores = KnnOutlier::new(4).score(&store);
        // Interior grid points have 4 axis neighbors at distance 1.
        assert!((scores[5 * 10 + 5] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn detect_flags_the_outlier() {
        let store = grid_plus_outlier();
        let mask = KnnOutlier::new(4).detect(&store, 1.0 / 101.0);
        assert!(mask[100]);
        assert_eq!(mask.iter().filter(|&&m| m).count(), 1);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(KnnOutlier::new(3)
            .score(&PointStore::new(2).unwrap())
            .is_empty());
        let one = PointStore::from_rows(2, vec![vec![1.0, 1.0]]).unwrap();
        assert_eq!(KnnOutlier::new(3).score(&one), vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn zero_k_panics() {
        KnnOutlier::new(0);
    }
}
