//! Cross-algorithm semantic checks:
//!
//! * DBSCOUT's outliers coincide with DBSCAN's noise points — the very
//!   definition the paper builds on (§II, Definitions 1–3);
//! * RP-DBSCAN-like approximation emits a superset of the exact outliers
//!   (the error direction measured in Tables IV–V);
//! * DDLOF equals sequential LOF.
//!
//! Cases are drawn from a seeded [`dbscout_rng::Rng`] for reproducibility.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic,
    clippy::float_cmp
)]

use dbscout_baselines::{Dbscan, Ddlof, Lof, RpDbscan};
use dbscout_core::{detect_outliers, DbscoutParams};
use dbscout_data::generators::{blobs, moons};
use dbscout_dataflow::ExecutionContext;
use dbscout_rng::Rng;
use dbscout_spatial::PointStore;

fn clustered(seed: u64, n: usize) -> PointStore {
    blobs(n, n / 20 + 1, 3, 0.5, seed).points
}

#[test]
fn dbscout_outliers_equal_dbscan_noise() {
    let mut rng = Rng::seed_from_u64(0xF001);
    for _ in 0..16 {
        let seed = rng.gen_range(0u64..1000);
        let eps = rng.gen_range(0.3..4.0);
        let min_pts = rng.gen_range(2usize..10);
        let store = clustered(seed, 150);
        let params = DbscoutParams::new(eps, min_pts).unwrap();
        let scout = detect_outliers(&store, params).unwrap();
        let dbscan = Dbscan::new(eps, min_pts).fit(&store).unwrap();
        assert_eq!(scout.outlier_mask(), dbscan.noise_mask());
    }
}

#[test]
fn rp_dbscan_is_outlier_superset() {
    let mut rng = Rng::seed_from_u64(0xF002);
    let rhos = [0.01f64, 0.05, 0.2];
    for _ in 0..16 {
        let seed = rng.gen_range(0u64..1000);
        let eps = rng.gen_range(0.5..3.0);
        let min_pts = rng.gen_range(2usize..8);
        let rho = rhos[rng.gen_range(0usize..rhos.len())];
        let store = clustered(seed, 120);
        let params = DbscoutParams::new(eps, min_pts).unwrap();
        let exact = detect_outliers(&store, params).unwrap().outlier_mask();
        let ctx = ExecutionContext::builder().workers(3).build();
        let approx = RpDbscan::new(ctx, eps, min_pts)
            .with_rho(rho)
            .detect(&store)
            .unwrap()
            .outlier_mask;
        for (i, (&e, &a)) in exact.iter().zip(&approx).enumerate() {
            if e {
                assert!(a, "false negative at {i} (rho {rho})");
            }
        }
    }
}

#[test]
fn ddlof_equals_sequential_lof() {
    let mut rng = Rng::seed_from_u64(0xF003);
    for _ in 0..16 {
        let seed = rng.gen_range(0u64..1000);
        let k = rng.gen_range(2usize..8);
        let store = clustered(seed, 100);
        let ctx = ExecutionContext::builder().workers(3).build();
        let dd = Ddlof::new(ctx, k).score(&store).unwrap();
        let seq = Lof::new(k).score(&store);
        for (a, b) in dd.scores.iter().zip(&seq.scores) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }
}

#[test]
fn dbscan_noise_equals_dbscout_on_moons() {
    let ds = moons(800, 40, 0.05, 3);
    let eps = dbscout_data::kdist::suggest_eps(&ds.points, 5).unwrap();
    let params = DbscoutParams::new(eps, 5).unwrap();
    let scout = detect_outliers(&ds.points, params).unwrap();
    let noise = Dbscan::new(eps, 5).fit(&ds.points).unwrap().noise_mask();
    assert_eq!(scout.outlier_mask(), noise);
}
