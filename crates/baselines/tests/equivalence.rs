//! Cross-algorithm semantic checks:
//!
//! * DBSCOUT's outliers coincide with DBSCAN's noise points — the very
//!   definition the paper builds on (§II, Definitions 1–3);
//! * RP-DBSCAN-like approximation emits a superset of the exact outliers
//!   (the error direction measured in Tables IV–V);
//! * DDLOF equals sequential LOF.

use dbscout_baselines::{Dbscan, Ddlof, Lof, RpDbscan};
use dbscout_core::{detect_outliers, DbscoutParams};
use dbscout_data::generators::{blobs, moons};
use dbscout_dataflow::ExecutionContext;
use dbscout_spatial::PointStore;
use proptest::prelude::*;

fn clustered(seed: u64, n: usize) -> PointStore {
    blobs(n, n / 20 + 1, 3, 0.5, seed).points
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn dbscout_outliers_equal_dbscan_noise(
        seed in 0u64..1000,
        eps in 0.3f64..4.0,
        min_pts in 2usize..10,
    ) {
        let store = clustered(seed, 150);
        let params = DbscoutParams::new(eps, min_pts).unwrap();
        let scout = detect_outliers(&store, params).unwrap();
        let dbscan = Dbscan::new(eps, min_pts).fit(&store).unwrap();
        prop_assert_eq!(scout.outlier_mask(), dbscan.noise_mask());
    }

    #[test]
    fn rp_dbscan_is_outlier_superset(
        seed in 0u64..1000,
        eps in 0.5f64..3.0,
        min_pts in 2usize..8,
        rho in prop::sample::select(vec![0.01f64, 0.05, 0.2]),
    ) {
        let store = clustered(seed, 120);
        let params = DbscoutParams::new(eps, min_pts).unwrap();
        let exact = detect_outliers(&store, params).unwrap().outlier_mask();
        let ctx = ExecutionContext::builder().workers(3).build();
        let approx = RpDbscan::new(ctx, eps, min_pts)
            .with_rho(rho)
            .detect(&store)
            .unwrap()
            .outlier_mask;
        for (i, (&e, &a)) in exact.iter().zip(&approx).enumerate() {
            if e {
                prop_assert!(a, "false negative at {i} (rho {rho})");
            }
        }
    }

    #[test]
    fn ddlof_equals_sequential_lof(
        seed in 0u64..1000,
        k in 2usize..8,
    ) {
        let store = clustered(seed, 100);
        let ctx = ExecutionContext::builder().workers(3).build();
        let dd = Ddlof::new(ctx, k).score(&store).unwrap();
        let seq = Lof::new(k).score(&store);
        for (a, b) in dd.scores.iter().zip(&seq.scores) {
            prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }
}

#[test]
fn dbscan_noise_equals_dbscout_on_moons() {
    let ds = moons(800, 40, 0.05, 3);
    let eps = dbscout_data::kdist::suggest_eps(&ds.points, 5).unwrap();
    let params = DbscoutParams::new(eps, 5).unwrap();
    let scout = detect_outliers(&ds.points, params).unwrap();
    let noise = Dbscan::new(eps, 5).fit(&ds.points).unwrap().noise_mask();
    assert_eq!(scout.outlier_mask(), noise);
}
