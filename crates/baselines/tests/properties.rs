//! Randomized tests for the baseline detectors, driven by a seeded
//! [`dbscout_rng::Rng`] for reproducibility.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic,
    clippy::float_cmp
)]

use dbscout_baselines::{Dbscan, IsolationForest, KnnOutlier, Lof};
use dbscout_rng::Rng;
use dbscout_spatial::PointStore;

fn points_2d(rng: &mut Rng, max_n: usize) -> PointStore {
    let n = rng.gen_range(2..max_n);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..2).map(|_| rng.gen_range(-50.0..50.0)).collect())
        .collect();
    PointStore::from_rows(2, rows).expect("finite rows")
}

#[test]
fn dbscan_grid_equals_naive() {
    let mut rng = Rng::seed_from_u64(0xE001);
    for _ in 0..24 {
        let store = points_2d(&mut rng, 80);
        let eps = rng.gen_range(0.5..20.0);
        let min_pts = rng.gen_range(1usize..8);
        let d = Dbscan::new(eps, min_pts);
        let fast = d.fit(&store).unwrap();
        let slow = d.fit_naive(&store);
        assert_eq!(fast.noise_mask(), slow.noise_mask());
        assert_eq!(fast.num_clusters, slow.num_clusters);
        assert_eq!(fast.is_core, slow.is_core);
    }
}

#[test]
fn dbscan_cluster_ids_partition_non_noise() {
    let mut rng = Rng::seed_from_u64(0xE002);
    for _ in 0..24 {
        let store = points_2d(&mut rng, 80);
        let eps = rng.gen_range(0.5..20.0);
        let min_pts = rng.gen_range(1usize..6);
        let r = Dbscan::new(eps, min_pts).fit(&store).unwrap();
        for (i, &c) in r.cluster.iter().enumerate() {
            if c == dbscout_baselines::NOISE {
                assert!(!r.is_core[i], "core point {i} marked noise");
            } else {
                assert!((c as usize) < r.num_clusters);
            }
        }
    }
}

#[test]
fn isolation_forest_scores_bounded_and_deterministic() {
    let mut rng = Rng::seed_from_u64(0xE003);
    for _ in 0..24 {
        let store = points_2d(&mut rng, 60);
        let seed = rng.gen_range(0u64..100);
        let forest = IsolationForest {
            n_trees: 20,
            sample_size: 64,
            seed,
        };
        let a = forest.score(&store);
        let b = forest.score(&store);
        assert_eq!(&a, &b);
        for s in a {
            assert!((0.0..=1.0).contains(&s), "score {s}");
        }
    }
}

#[test]
fn knn_distance_is_monotone_in_k() {
    let mut rng = Rng::seed_from_u64(0xE004);
    for _ in 0..24 {
        let store = points_2d(&mut rng, 60);
        let k = rng.gen_range(1usize..6);
        let small = KnnOutlier::new(k).score(&store);
        let large = KnnOutlier::new(k + 1).score(&store);
        for (a, b) in small.iter().zip(&large) {
            assert!(a <= b, "kdist decreased with k: {a} > {b}");
        }
    }
}

#[test]
fn detect_flags_requested_fraction() {
    let mut rng = Rng::seed_from_u64(0xE005);
    for _ in 0..24 {
        let store = points_2d(&mut rng, 100);
        let numer = rng.gen_range(0usize..10);
        let n = store.len() as usize;
        let contamination = numer as f64 / 10.0;
        let expected = ((n as f64) * contamination).round() as usize;
        let mask = KnnOutlier::new(3).detect(&store, contamination);
        assert_eq!(mask.iter().filter(|&&m| m).count(), expected);
    }
}

#[test]
fn lof_scores_finite_on_anything() {
    let mut rng = Rng::seed_from_u64(0xE006);
    for _ in 0..24 {
        let store = points_2d(&mut rng, 60);
        let k = rng.gen_range(1usize..8);
        for s in Lof::new(k).score(&store).scores {
            assert!(s.is_finite(), "LOF score {s}");
        }
    }
}
