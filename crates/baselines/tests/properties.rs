//! Property-based tests for the baseline detectors.

use dbscout_baselines::{Dbscan, IsolationForest, KnnOutlier, Lof};
use dbscout_spatial::PointStore;
use proptest::prelude::*;

fn points_2d(max_n: usize) -> impl Strategy<Value = PointStore> {
    prop::collection::vec(prop::collection::vec(-50.0f64..50.0, 2), 2..max_n)
        .prop_map(|rows| PointStore::from_rows(2, rows).expect("finite rows"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dbscan_grid_equals_naive(
        store in points_2d(80),
        eps in 0.5f64..20.0,
        min_pts in 1usize..8,
    ) {
        let d = Dbscan::new(eps, min_pts);
        let fast = d.fit(&store).unwrap();
        let slow = d.fit_naive(&store);
        prop_assert_eq!(fast.noise_mask(), slow.noise_mask());
        prop_assert_eq!(fast.num_clusters, slow.num_clusters);
        prop_assert_eq!(fast.is_core, slow.is_core);
    }

    #[test]
    fn dbscan_cluster_ids_partition_non_noise(
        store in points_2d(80),
        eps in 0.5f64..20.0,
        min_pts in 1usize..6,
    ) {
        let r = Dbscan::new(eps, min_pts).fit(&store).unwrap();
        for (i, &c) in r.cluster.iter().enumerate() {
            if c == dbscout_baselines::NOISE {
                prop_assert!(!r.is_core[i], "core point {i} marked noise");
            } else {
                prop_assert!((c as usize) < r.num_clusters);
            }
        }
    }

    #[test]
    fn isolation_forest_scores_bounded_and_deterministic(
        store in points_2d(60),
        seed in 0u64..100,
    ) {
        let forest = IsolationForest { n_trees: 20, sample_size: 64, seed };
        let a = forest.score(&store);
        let b = forest.score(&store);
        prop_assert_eq!(&a, &b);
        for s in a {
            prop_assert!((0.0..=1.0).contains(&s), "score {s}");
        }
    }

    #[test]
    fn knn_distance_is_monotone_in_k(
        store in points_2d(60),
        k in 1usize..6,
    ) {
        let small = KnnOutlier::new(k).score(&store);
        let large = KnnOutlier::new(k + 1).score(&store);
        for (a, b) in small.iter().zip(&large) {
            prop_assert!(a <= b, "kdist decreased with k: {a} > {b}");
        }
    }

    #[test]
    fn detect_flags_requested_fraction(
        store in points_2d(100),
        numer in 0usize..10,
    ) {
        let n = store.len() as usize;
        let contamination = numer as f64 / 10.0;
        let expected = ((n as f64) * contamination).round() as usize;
        let mask = KnnOutlier::new(3).detect(&store, contamination);
        prop_assert_eq!(mask.iter().filter(|&&m| m).count(), expected);
    }

    #[test]
    fn lof_scores_finite_on_anything(
        store in points_2d(60),
        k in 1usize..8,
    ) {
        for s in Lof::new(k).score(&store).scores {
            prop_assert!(s.is_finite(), "LOF score {s}");
        }
    }
}
