//! The cell-major layout is a pure re-arrangement of memory: its labels
//! must be byte-identical to the hashed path and to the brute-force
//! reference on arbitrary inputs — across dimensions, thread counts,
//! ablation switches, and the degenerate shapes (empty store, all
//! duplicates, one cell) where permutation bookkeeping likes to break.
//! Cases come from a seeded [`dbscout_rng::Rng`] so every run is
//! reproducible.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic,
    clippy::float_cmp
)]

use dbscout_core::reference::naive_labels;
use dbscout_core::{Dbscout, DbscoutParams, ExecutionLayout, NativeOptions};
use dbscout_rng::Rng;
use dbscout_spatial::PointStore;

/// Clustered-looking random datasets (same construction as the
/// exactness suite): anchors, points near anchors, uniform noise.
fn dataset(rng: &mut Rng, dims: usize, max_n: usize) -> PointStore {
    let n_anchors = rng.gen_range(1usize..4);
    let anchors: Vec<Vec<f64>> = (0..n_anchors)
        .map(|_| (0..dims).map(|_| rng.gen_range(-20.0..20.0)).collect())
        .collect();
    let n = rng.gen_range(1..max_n);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            let a = rng.gen_range(0usize..3);
            let off: Vec<f64> = (0..dims).map(|_| rng.gen_range(-0.8..0.8)).collect();
            let noise = rng.gen::<bool>();
            let anchor = &anchors[a % anchors.len()];
            if noise {
                off.iter().map(|o| o * 40.0).collect()
            } else {
                anchor.iter().zip(&off).map(|(c, o)| c + o).collect()
            }
        })
        .collect();
    PointStore::from_rows(dims, rows).expect("generated rows are valid")
}

/// Thread counts the equivalence cases run at. The concurrency CI lane
/// sets `DBSCOUT_TEST_THREADS` (e.g. `8`) to append a wider count.
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1usize, 4];
    if let Some(extra) = std::env::var("DBSCOUT_TEST_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        if extra > 0 && !counts.contains(&extra) {
            counts.push(extra);
        }
    }
    counts
}

fn detect(
    store: &PointStore,
    params: DbscoutParams,
    layout: ExecutionLayout,
    threads: usize,
) -> dbscout_core::OutlierResult {
    Dbscout::new(params)
        .with_layout(layout)
        .with_threads(threads)
        .detect(store)
        .unwrap()
}

#[test]
fn cell_major_matches_hashed_and_naive_dims_2_to_4() {
    let mut rng = Rng::seed_from_u64(0x2001);
    for round in 0..30 {
        // Smaller datasets as k_d grows keeps the naive O(n²) check fast.
        let (dims, max_n) = match round % 3 {
            0 => (2, 120),
            1 => (3, 80),
            _ => (4, 50),
        };
        let store = dataset(&mut rng, dims, max_n);
        let eps = rng.gen_range(0.3..5.0);
        let min_pts = rng.gen_range(1usize..8);
        let params = DbscoutParams::new(eps, min_pts).unwrap();
        let expected = naive_labels(&store, params);
        for threads in thread_counts() {
            let hashed = detect(&store, params, ExecutionLayout::Hashed, threads);
            let cell_major = detect(&store, params, ExecutionLayout::CellMajor, threads);
            assert_eq!(
                cell_major.labels, expected,
                "cell-major vs naive (d={dims}, threads={threads})"
            );
            assert_eq!(
                cell_major.labels, hashed.labels,
                "cell-major vs hashed (d={dims}, threads={threads})"
            );
            assert_eq!(cell_major.outliers, hashed.outliers);
            // The structural cell counters are layout-independent too.
            assert_eq!(cell_major.stats.num_cells, hashed.stats.num_cells);
            assert_eq!(cell_major.stats.dense_cells, hashed.stats.dense_cells);
            assert_eq!(cell_major.stats.core_cells, hashed.stats.core_cells);
        }
    }
}

#[test]
fn cell_major_is_thread_count_invariant() {
    let mut rng = Rng::seed_from_u64(0x2002);
    for _ in 0..10 {
        let store = dataset(&mut rng, 2, 200);
        let eps = rng.gen_range(0.3..5.0);
        let min_pts = rng.gen_range(1usize..8);
        let params = DbscoutParams::new(eps, min_pts).unwrap();
        let single = detect(&store, params, ExecutionLayout::CellMajor, 1);
        for threads in [2usize, 4, 8] {
            let multi = detect(&store, params, ExecutionLayout::CellMajor, threads);
            assert_eq!(single.labels, multi.labels, "threads {threads}");
            assert_eq!(single.outliers, multi.outliers, "threads {threads}");
            assert_eq!(
                single.stats.distance_computations, multi.stats.distance_computations,
                "distance accounting must not depend on scheduling (threads {threads})"
            );
        }
    }
}

#[test]
fn cell_major_ablations_preserve_labels() {
    let mut rng = Rng::seed_from_u64(0x2003);
    for _ in 0..10 {
        let store = dataset(&mut rng, 2, 120);
        let eps = rng.gen_range(0.3..5.0);
        let min_pts = rng.gen_range(1usize..8);
        let params = DbscoutParams::new(eps, min_pts).unwrap();
        let expected = naive_labels(&store, params);
        for (dense, early) in [(false, true), (true, false), (false, false)] {
            let got = Dbscout::new(params)
                .with_layout(ExecutionLayout::CellMajor)
                .with_options(NativeOptions {
                    dense_cell_shortcut: dense,
                    early_exit: early,
                })
                .detect(&store)
                .unwrap();
            assert_eq!(got.labels, expected, "dense={dense} early={early}");
        }
    }
}

#[test]
fn cell_major_prunes_at_least_as_hard_as_hashed() {
    // The whole point of the layout: bounding-box pruning plus per-cell
    // neighbor resolution must never *add* distance computations.
    let mut rng = Rng::seed_from_u64(0x2004);
    for _ in 0..15 {
        let store = dataset(&mut rng, 2, 200);
        let eps = rng.gen_range(0.3..5.0);
        let min_pts = rng.gen_range(1usize..8);
        let params = DbscoutParams::new(eps, min_pts).unwrap();
        let hashed = detect(&store, params, ExecutionLayout::Hashed, 1);
        let cell_major = detect(&store, params, ExecutionLayout::CellMajor, 1);
        assert!(
            cell_major.stats.distance_computations <= hashed.stats.distance_computations,
            "cell-major did {} comps, hashed {}",
            cell_major.stats.distance_computations,
            hashed.stats.distance_computations
        );
    }
}

#[test]
fn edge_case_empty_store() {
    let params = DbscoutParams::new(1.0, 5).unwrap();
    for dims in [2usize, 3, 4] {
        let store = PointStore::new(dims).unwrap();
        for layout in [ExecutionLayout::Hashed, ExecutionLayout::CellMajor] {
            let r = detect(&store, params, layout, 4);
            assert!(r.labels.is_empty(), "{layout:?}");
            assert!(r.outliers.is_empty(), "{layout:?}");
            assert_eq!(r.stats.num_cells, 0, "{layout:?}");
            assert_eq!(r.stats.distance_computations, 0, "{layout:?}");
        }
    }
}

#[test]
fn edge_case_all_duplicates() {
    // Every point identical: one cell, all pairwise distances zero.
    for n in [1usize, 4, 40] {
        let rows = vec![vec![3.25, -1.5]; n];
        let store = PointStore::from_rows(2, rows).unwrap();
        for min_pts in [1usize, n.max(1), n + 1] {
            let params = DbscoutParams::new(0.5, min_pts).unwrap();
            let expected = naive_labels(&store, params);
            for threads in thread_counts() {
                let hashed = detect(&store, params, ExecutionLayout::Hashed, threads);
                let cell_major = detect(&store, params, ExecutionLayout::CellMajor, threads);
                assert_eq!(cell_major.labels, expected, "n={n} minPts={min_pts}");
                assert_eq!(cell_major.labels, hashed.labels, "n={n} minPts={min_pts}");
            }
        }
    }
}

#[test]
fn edge_case_single_cell() {
    // eps large enough that the whole dataset shares one ε-cell: the
    // neighbor loop degenerates to a self-scan.
    let mut rng = Rng::seed_from_u64(0x2005);
    for _ in 0..10 {
        let n = rng.gen_range(1usize..60);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.gen_range(0.0..0.5), rng.gen_range(0.0..0.5)])
            .collect();
        let store = PointStore::from_rows(2, rows).unwrap();
        let params = DbscoutParams::new(10.0, rng.gen_range(1usize..6)).unwrap();
        let expected = naive_labels(&store, params);
        for threads in thread_counts() {
            let hashed = detect(&store, params, ExecutionLayout::Hashed, threads);
            let cell_major = detect(&store, params, ExecutionLayout::CellMajor, threads);
            assert_eq!(cell_major.stats.num_cells, 1);
            assert_eq!(cell_major.labels, expected, "n={n} threads={threads}");
            assert_eq!(cell_major.labels, hashed.labels, "n={n} threads={threads}");
        }
    }
}
