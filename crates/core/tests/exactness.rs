//! The headline claim of the paper: DBSCOUT is **exact** — it returns
//! precisely the Definition-3 outliers, with no approximation. These
//! randomized tests pit both engines against the brute-force O(n²)
//! reference on arbitrary datasets, parameters, thread counts, partition
//! counts and join strategies. Cases come from a seeded
//! [`dbscout_rng::Rng`] so every run is reproducible.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic,
    clippy::float_cmp
)]

use dbscout_core::reference::naive_labels;
use dbscout_core::{Dbscout, DbscoutParams, DistributedDbscout, JoinStrategy};
use dbscout_dataflow::ExecutionContext;
use dbscout_rng::Rng;
use dbscout_spatial::PointStore;

/// Clustered-looking random datasets: a few anchor points, most points
/// near an anchor, some uniform noise. Pure uniform noise rarely creates
/// core points, so this generator exercises all three label classes.
fn dataset(rng: &mut Rng, dims: usize, max_n: usize) -> PointStore {
    let n_anchors = rng.gen_range(1usize..4);
    let anchors: Vec<Vec<f64>> = (0..n_anchors)
        .map(|_| (0..dims).map(|_| rng.gen_range(-20.0..20.0)).collect())
        .collect();
    let n = rng.gen_range(1..max_n);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            let a = rng.gen_range(0usize..3);
            let off: Vec<f64> = (0..dims).map(|_| rng.gen_range(-0.8..0.8)).collect();
            let noise = rng.gen::<bool>();
            let anchor = &anchors[a % anchors.len()];
            if noise {
                // Uniform-ish noise point, pushed away from anchors.
                off.iter().map(|o| o * 40.0).collect()
            } else {
                anchor.iter().zip(&off).map(|(c, o)| c + o).collect()
            }
        })
        .collect();
    PointStore::from_rows(dims, rows).expect("generated rows are valid")
}

#[test]
fn native_matches_naive_2d() {
    let mut rng = Rng::seed_from_u64(0x1001);
    for _ in 0..40 {
        let store = dataset(&mut rng, 2, 120);
        let eps = rng.gen_range(0.3..5.0);
        let min_pts = rng.gen_range(1usize..8);
        let threads = rng.gen_range(1usize..5);
        let params = DbscoutParams::new(eps, min_pts).unwrap();
        let expected = naive_labels(&store, params);
        let got = Dbscout::new(params)
            .with_threads(threads)
            .detect(&store)
            .unwrap();
        assert_eq!(got.labels, expected);
    }
}

#[test]
fn native_matches_naive_3d() {
    let mut rng = Rng::seed_from_u64(0x1002);
    for _ in 0..40 {
        let store = dataset(&mut rng, 3, 80);
        let eps = rng.gen_range(0.3..5.0);
        let min_pts = rng.gen_range(1usize..6);
        let params = DbscoutParams::new(eps, min_pts).unwrap();
        let expected = naive_labels(&store, params);
        let got = Dbscout::new(params).detect(&store).unwrap();
        assert_eq!(got.labels, expected);
    }
}

#[test]
fn native_matches_naive_higher_dims() {
    // The paper generalizes Gunawan's 2-D scheme to any d (§III-A);
    // exactness must hold where k_d grows (d = 4: 609 offsets,
    // d = 5: 3903).
    let mut rng = Rng::seed_from_u64(0x1003);
    for _ in 0..20 {
        let store4 = dataset(&mut rng, 4, 50);
        let store5 = dataset(&mut rng, 5, 40);
        let eps = rng.gen_range(0.5..6.0);
        let min_pts = rng.gen_range(1usize..5);
        let params = DbscoutParams::new(eps, min_pts).unwrap();
        for store in [store4, store5] {
            let expected = naive_labels(&store, params);
            let got = Dbscout::new(params).detect(&store).unwrap();
            assert_eq!(got.labels, expected, "d = {}", store.dims());
        }
    }
}

#[test]
fn native_matches_naive_1d() {
    let mut rng = Rng::seed_from_u64(0x1004);
    for _ in 0..40 {
        let store = dataset(&mut rng, 1, 100);
        let eps = rng.gen_range(0.1..3.0);
        let min_pts = rng.gen_range(1usize..6);
        let params = DbscoutParams::new(eps, min_pts).unwrap();
        let expected = naive_labels(&store, params);
        let got = Dbscout::new(params).detect(&store).unwrap();
        assert_eq!(got.labels, expected);
    }
}

#[test]
fn distributed_matches_naive_all_strategies() {
    let mut rng = Rng::seed_from_u64(0x1005);
    for _ in 0..40 {
        let store = dataset(&mut rng, 2, 70);
        let eps = rng.gen_range(0.3..5.0);
        let min_pts = rng.gen_range(1usize..6);
        let partitions = rng.gen_range(1usize..10);
        let params = DbscoutParams::new(eps, min_pts).unwrap();
        let expected = naive_labels(&store, params);
        for strategy in [
            JoinStrategy::Shuffle,
            JoinStrategy::GroupedShuffle,
            JoinStrategy::Broadcast,
        ] {
            let ctx = ExecutionContext::builder().workers(3).build();
            let got = DistributedDbscout::new(ctx, params)
                .with_partitions(partitions)
                .with_strategy(strategy)
                .detect(&store)
                .unwrap();
            assert_eq!(&got.labels, &expected, "strategy {strategy:?}");
        }
    }
}

#[test]
fn incremental_matches_batch_at_every_prefix() {
    use dbscout_core::IncrementalDbscout;
    let mut rng = Rng::seed_from_u64(0x1006);
    for _ in 0..40 {
        let store = dataset(&mut rng, 2, 60);
        let eps = rng.gen_range(0.3..5.0);
        let min_pts = rng.gen_range(1usize..6);
        let params = DbscoutParams::new(eps, min_pts).unwrap();
        let mut inc = IncrementalDbscout::new(2, params).unwrap();
        let mut prefix = PointStore::new(2).unwrap();
        for (_, p) in store.iter() {
            inc.insert(p).unwrap();
            prefix.push(p).unwrap();
        }
        // Checking only the final state keeps the test fast; the unit
        // tests cover per-prefix agreement on structured inputs.
        let batch = Dbscout::new(params).detect(&prefix).unwrap();
        assert_eq!(inc.labels(), batch.labels.as_slice());
    }
}

#[test]
fn incremental_with_removals_matches_batch() {
    use dbscout_core::IncrementalDbscout;
    let mut rng = Rng::seed_from_u64(0x1007);
    for _ in 0..40 {
        let store = dataset(&mut rng, 2, 50);
        let removal_pattern: Vec<bool> = (0..50).map(|_| rng.gen::<bool>()).collect();
        let eps = rng.gen_range(0.3..5.0);
        let min_pts = rng.gen_range(1usize..6);
        let params = DbscoutParams::new(eps, min_pts).unwrap();
        let mut inc = IncrementalDbscout::new(2, params).unwrap();
        for (_, p) in store.iter() {
            inc.insert(p).unwrap();
        }
        // Remove a pattern-selected subset (never all points).
        let n = store.len();
        for (i, &kill) in removal_pattern.iter().take(n as usize).enumerate() {
            if kill && inc.len() > 1 {
                inc.remove(i as u32);
            }
        }
        let live: Vec<u32> = (0..n).filter(|&i| inc.is_alive(i)).collect();
        let live_store = store.gather(&live);
        let batch = Dbscout::new(params).detect(&live_store).unwrap();
        for (bi, &id) in live.iter().enumerate() {
            assert_eq!(
                inc.label(id),
                batch.labels[bi],
                "diverged at live point {bi} (id {id})"
            );
        }
    }
}

#[test]
fn outliers_never_within_eps_of_core() {
    // Definition 3 restated directly on the output.
    use dbscout_core::PointLabel;
    use dbscout_spatial::distance::within;
    let mut rng = Rng::seed_from_u64(0x1008);
    for _ in 0..40 {
        let store = dataset(&mut rng, 2, 120);
        let eps = rng.gen_range(0.3..5.0);
        let min_pts = rng.gen_range(1usize..8);
        let params = DbscoutParams::new(eps, min_pts).unwrap();
        let r = Dbscout::new(params).detect(&store).unwrap();
        let eps_sq = params.eps_sq();
        for &o in &r.outliers {
            for (q, l) in r.labels.iter().enumerate() {
                if *l == PointLabel::Core {
                    assert!(
                        !within(store.point(o), store.point(q as u32), eps_sq),
                        "outlier {o} is within eps of core {q}"
                    );
                }
            }
        }
    }
}

#[test]
fn core_points_really_have_min_pts_neighbors() {
    // Definition 2 restated directly on the output.
    use dbscout_core::PointLabel;
    use dbscout_spatial::distance::within;
    let mut rng = Rng::seed_from_u64(0x1009);
    for _ in 0..40 {
        let store = dataset(&mut rng, 2, 120);
        let eps = rng.gen_range(0.3..5.0);
        let min_pts = rng.gen_range(1usize..8);
        let params = DbscoutParams::new(eps, min_pts).unwrap();
        let r = Dbscout::new(params).detect(&store).unwrap();
        let eps_sq = params.eps_sq();
        for (i, l) in r.labels.iter().enumerate() {
            let count = store
                .iter()
                .filter(|(_, q)| within(store.point(i as u32), q, eps_sq))
                .count();
            match l {
                PointLabel::Core => assert!(count >= min_pts, "core {i}: {count}"),
                _ => assert!(count < min_pts, "non-core {i}: {count}"),
            }
        }
    }
}
