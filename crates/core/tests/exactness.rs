//! The headline claim of the paper: DBSCOUT is **exact** — it returns
//! precisely the Definition-3 outliers, with no approximation. These
//! property tests pit both engines against the brute-force O(n²)
//! reference on arbitrary datasets, parameters, thread counts, partition
//! counts and join strategies.

use dbscout_core::reference::naive_labels;
use dbscout_core::{Dbscout, DbscoutParams, DistributedDbscout, JoinStrategy};
use dbscout_dataflow::ExecutionContext;
use dbscout_spatial::PointStore;
use proptest::prelude::*;

/// Clustered-looking random datasets: a few anchor points, most points
/// near an anchor, some uniform noise. Pure uniform noise rarely creates
/// core points, so this strategy exercises all three label classes.
fn dataset(dims: usize, max_n: usize) -> impl Strategy<Value = PointStore> {
    let anchors = prop::collection::vec(prop::collection::vec(-20.0f64..20.0, dims), 1..4);
    let offsets = prop::collection::vec(
        (
            0usize..3,
            prop::collection::vec(-0.8f64..0.8, dims),
            prop::bool::ANY,
        ),
        1..max_n,
    );
    (anchors, offsets).prop_map(move |(anchors, offsets)| {
        let rows = offsets.into_iter().map(|(a, off, noise)| {
            let anchor = &anchors[a % anchors.len()];
            if noise {
                // Uniform-ish noise point, pushed away from anchors.
                off.iter().map(|o| o * 40.0).collect::<Vec<f64>>()
            } else {
                anchor
                    .iter()
                    .zip(&off)
                    .map(|(c, o)| c + o)
                    .collect::<Vec<f64>>()
            }
        });
        PointStore::from_rows(dims, rows).expect("generated rows are valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn native_matches_naive_2d(
        store in dataset(2, 120),
        eps in 0.3f64..5.0,
        min_pts in 1usize..8,
        threads in 1usize..5,
    ) {
        let params = DbscoutParams::new(eps, min_pts).unwrap();
        let expected = naive_labels(&store, params);
        let got = Dbscout::new(params)
            .with_threads(threads)
            .detect(&store)
            .unwrap();
        prop_assert_eq!(got.labels, expected);
    }

    #[test]
    fn native_matches_naive_3d(
        store in dataset(3, 80),
        eps in 0.3f64..5.0,
        min_pts in 1usize..6,
    ) {
        let params = DbscoutParams::new(eps, min_pts).unwrap();
        let expected = naive_labels(&store, params);
        let got = Dbscout::new(params).detect(&store).unwrap();
        prop_assert_eq!(got.labels, expected);
    }

    #[test]
    fn native_matches_naive_higher_dims(
        store4 in dataset(4, 50),
        store5 in dataset(5, 40),
        eps in 0.5f64..6.0,
        min_pts in 1usize..5,
    ) {
        // The paper generalizes Gunawan's 2-D scheme to any d (§III-A);
        // exactness must hold where k_d grows (d = 4: 609 offsets,
        // d = 5: 3903).
        let params = DbscoutParams::new(eps, min_pts).unwrap();
        for store in [store4, store5] {
            let expected = naive_labels(&store, params);
            let got = Dbscout::new(params).detect(&store).unwrap();
            prop_assert_eq!(got.labels, expected, "d = {}", store.dims());
        }
    }

    #[test]
    fn native_matches_naive_1d(
        store in dataset(1, 100),
        eps in 0.1f64..3.0,
        min_pts in 1usize..6,
    ) {
        let params = DbscoutParams::new(eps, min_pts).unwrap();
        let expected = naive_labels(&store, params);
        let got = Dbscout::new(params).detect(&store).unwrap();
        prop_assert_eq!(got.labels, expected);
    }

    #[test]
    fn distributed_matches_naive_all_strategies(
        store in dataset(2, 70),
        eps in 0.3f64..5.0,
        min_pts in 1usize..6,
        partitions in 1usize..10,
    ) {
        let params = DbscoutParams::new(eps, min_pts).unwrap();
        let expected = naive_labels(&store, params);
        for strategy in [
            JoinStrategy::Shuffle,
            JoinStrategy::GroupedShuffle,
            JoinStrategy::Broadcast,
        ] {
            let ctx = ExecutionContext::builder().workers(3).build();
            let got = DistributedDbscout::new(ctx, params)
                .with_partitions(partitions)
                .with_strategy(strategy)
                .detect(&store)
                .unwrap();
            prop_assert_eq!(&got.labels, &expected, "strategy {:?}", strategy);
        }
    }

    #[test]
    fn incremental_matches_batch_at_every_prefix(
        store in dataset(2, 60),
        eps in 0.3f64..5.0,
        min_pts in 1usize..6,
    ) {
        use dbscout_core::IncrementalDbscout;
        let params = DbscoutParams::new(eps, min_pts).unwrap();
        let mut inc = IncrementalDbscout::new(2, params).unwrap();
        let mut prefix = PointStore::new(2).unwrap();
        for (_, p) in store.iter() {
            inc.insert(p).unwrap();
            prefix.push(p).unwrap();
        }
        // Checking only the final state keeps the test fast; the unit
        // tests cover per-prefix agreement on structured inputs.
        let batch = Dbscout::new(params).detect(&prefix).unwrap();
        prop_assert_eq!(inc.labels(), batch.labels.as_slice());
    }

    #[test]
    fn incremental_with_removals_matches_batch(
        store in dataset(2, 50),
        removal_pattern in prop::collection::vec(prop::bool::ANY, 50),
        eps in 0.3f64..5.0,
        min_pts in 1usize..6,
    ) {
        use dbscout_core::IncrementalDbscout;
        let params = DbscoutParams::new(eps, min_pts).unwrap();
        let mut inc = IncrementalDbscout::new(2, params).unwrap();
        for (_, p) in store.iter() {
            inc.insert(p).unwrap();
        }
        // Remove a pattern-selected subset (never all points).
        let n = store.len();
        for (i, &kill) in removal_pattern.iter().take(n as usize).enumerate() {
            if kill && inc.len() > 1 {
                inc.remove(i as u32);
            }
        }
        let live: Vec<u32> = (0..n).filter(|&i| inc.is_alive(i)).collect();
        let live_store = store.gather(&live);
        let batch = Dbscout::new(params).detect(&live_store).unwrap();
        for (bi, &id) in live.iter().enumerate() {
            prop_assert_eq!(
                inc.label(id),
                batch.labels[bi],
                "diverged at live point {} (id {})",
                bi,
                id
            );
        }
    }

    #[test]
    fn outliers_never_within_eps_of_core(
        store in dataset(2, 120),
        eps in 0.3f64..5.0,
        min_pts in 1usize..8,
    ) {
        // Definition 3 restated directly on the output.
        use dbscout_core::PointLabel;
        use dbscout_spatial::distance::within;
        let params = DbscoutParams::new(eps, min_pts).unwrap();
        let r = Dbscout::new(params).detect(&store).unwrap();
        let eps_sq = params.eps_sq();
        for &o in &r.outliers {
            for (q, l) in r.labels.iter().enumerate() {
                if *l == PointLabel::Core {
                    prop_assert!(
                        !within(store.point(o), store.point(q as u32), eps_sq),
                        "outlier {o} is within eps of core {q}"
                    );
                }
            }
        }
    }

    #[test]
    fn core_points_really_have_min_pts_neighbors(
        store in dataset(2, 120),
        eps in 0.3f64..5.0,
        min_pts in 1usize..8,
    ) {
        // Definition 2 restated directly on the output.
        use dbscout_core::PointLabel;
        use dbscout_spatial::distance::within;
        let params = DbscoutParams::new(eps, min_pts).unwrap();
        let r = Dbscout::new(params).detect(&store).unwrap();
        let eps_sq = params.eps_sq();
        for (i, l) in r.labels.iter().enumerate() {
            let count = store
                .iter()
                .filter(|(_, q)| within(store.point(i as u32), q, eps_sq))
                .count();
            match l {
                PointLabel::Core => prop_assert!(count >= min_pts, "core {i}: {count}"),
                _ => prop_assert!(count < min_pts, "non-core {i}: {count}"),
            }
        }
    }
}
