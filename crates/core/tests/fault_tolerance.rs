//! Chaos testing at the algorithm level: the distributed DBSCOUT engine
//! must return identical outlier labels under seeded fault injection
//! (faults within the retry budget) as on a fault-free run, across every
//! paper phase — injected failures may cost retries, never exactness.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic
)]

use dbscout_core::{DbscoutParams, DistributedDbscout};
use dbscout_dataflow::{ExecutionContext, FaultPlan};
use dbscout_rng::Rng;
use dbscout_spatial::PointStore;

/// A clustered 2-D dataset with dense blobs and isolated noise, seeded.
fn dataset(seed: u64, n: usize) -> PointStore {
    let mut rng = Rng::seed_from_u64(seed);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            if rng.gen_range(0usize..10) == 0 {
                // Isolated noise, far from the blobs.
                vec![rng.gen_range(-50.0..50.0), rng.gen_range(-50.0..50.0)]
            } else {
                let cx = f64::from(rng.gen_range(0u32..3)) * 10.0;
                vec![cx + rng.gen_range(-0.5..0.5), rng.gen_range(-0.5..0.5)]
            }
        })
        .collect();
    PointStore::from_rows(2, rows).expect("generated rows are valid")
}

#[test]
fn detection_is_identical_under_seeded_faults() {
    let store = dataset(0xD5C0, 1200);
    let params = DbscoutParams::new(0.8, 5).unwrap();

    let clean_ctx = ExecutionContext::builder()
        .workers(4)
        .default_partitions(8)
        .build();
    let expected = DistributedDbscout::new(clean_ctx, params)
        .detect(&store)
        .expect("fault-free detection succeeds");

    let mut seeds = vec![3u64, 11, 0xFA117];
    if let Ok(s) = std::env::var("DBSCOUT_CHAOS_SEED") {
        if let Ok(seed) = s.trim().parse::<u64>() {
            seeds.push(seed);
        }
    }
    for seed in seeds {
        let plan = FaultPlan::builder(seed).max_faults_per_task(2).build();
        let ctx = ExecutionContext::builder()
            .workers(4)
            .default_partitions(8)
            .max_task_retries(3)
            .fault_plan(plan)
            .build();
        let detector = DistributedDbscout::new(ctx, params);
        let result = detector.detect(&store).expect("faults stay within budget");
        assert_eq!(
            result.outlier_mask(),
            expected.outlier_mask(),
            "seed {seed} changed the detected outliers"
        );

        let m = detector.ctx().metrics().snapshot();
        assert_eq!(
            m.task_retries, m.injected_faults,
            "seed {seed}: every injected fault costs exactly one retry"
        );
    }
}

#[test]
fn exhausted_retries_surface_the_paper_phase() {
    let store = dataset(0xD5C0, 600);
    let params = DbscoutParams::new(0.8, 5).unwrap();

    // Sabotage one partition of the core-point pass beyond the budget.
    let plan = FaultPlan::builder(0)
        .inject_in_stages(
            Some("core-point pass"),
            0,
            0,
            dbscout_dataflow::FaultKind::Transient,
        )
        .inject_in_stages(
            Some("core-point pass"),
            0,
            1,
            dbscout_dataflow::FaultKind::Transient,
        )
        .build();
    let ctx = ExecutionContext::builder()
        .workers(2)
        .default_partitions(4)
        .max_task_retries(1)
        .fault_plan(plan)
        .build();
    let err = DistributedDbscout::new(ctx, params)
        .detect(&store)
        .expect_err("budget 1 cannot absorb 2 faults");
    let msg = err.to_string();
    assert!(
        msg.contains("core-point pass"),
        "error must name the phase: {msg}"
    );
}
