//! Structural invariants of a DBSCOUT run, tested over many random
//! cases: the counters and labels must relate the way Lemmas 1–8 say
//! they do, for any input. Cases come from a seeded
//! [`dbscout_rng::Rng`] so every run is reproducible.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic,
    clippy::float_cmp
)]

use dbscout_core::{Dbscout, DbscoutParams, PointLabel};
use dbscout_rng::Rng;
use dbscout_spatial::neighbors::count_k_d;
use dbscout_spatial::{Grid, PointStore};

fn dataset(rng: &mut Rng, max_n: usize) -> PointStore {
    let n = rng.gen_range(1..max_n);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..2).map(|_| rng.gen_range(-30.0..30.0)).collect())
        .collect();
    PointStore::from_rows(2, rows).expect("finite rows")
}

#[test]
fn counter_hierarchy_holds() {
    let mut rng = Rng::seed_from_u64(0x2001);
    for _ in 0..48 {
        let store = dataset(&mut rng, 150);
        let eps = rng.gen_range(0.2..10.0);
        let min_pts = rng.gen_range(1usize..8);
        let params = DbscoutParams::new(eps, min_pts).unwrap();
        let r = Dbscout::new(params).detect(&store).unwrap();
        assert!(r.stats.dense_cells <= r.stats.core_cells);
        assert!(r.stats.core_cells <= r.stats.num_cells);
        assert!(r.stats.num_cells <= store.len() as usize);
        assert_eq!(r.labels.len(), store.len() as usize);
    }
}

#[test]
fn distance_work_respects_lemma_bound() {
    // Lemmas 6 and 8: each pass compares every point against at most
    // the points of its k_d neighboring cells; with early exit the
    // per-point work is further capped, but the crude bound
    // 2 · n · max_cell_pop · k_d must always hold.
    let mut rng = Rng::seed_from_u64(0x2002);
    for _ in 0..48 {
        let store = dataset(&mut rng, 150);
        let eps = rng.gen_range(0.2..10.0);
        let min_pts = rng.gen_range(1usize..8);
        let params = DbscoutParams::new(eps, min_pts).unwrap();
        let r = Dbscout::new(params).detect(&store).unwrap();
        let grid = Grid::build(&store, eps).unwrap();
        let kd = count_k_d(2).unwrap();
        let bound = 2 * (store.len() as u64) * (grid.max_cell_population() as u64).max(1) * kd;
        assert!(
            r.stats.distance_computations <= bound,
            "{} > {bound}",
            r.stats.distance_computations
        );
    }
}

#[test]
fn dense_cell_points_are_all_core() {
    // Lemma 1, read off the output.
    let mut rng = Rng::seed_from_u64(0x2003);
    for _ in 0..48 {
        let store = dataset(&mut rng, 150);
        let eps = rng.gen_range(0.2..10.0);
        let min_pts = rng.gen_range(1usize..8);
        let params = DbscoutParams::new(eps, min_pts).unwrap();
        let r = Dbscout::new(params).detect(&store).unwrap();
        let grid = Grid::build(&store, eps).unwrap();
        for (_, ids) in grid.cells() {
            if ids.len() >= min_pts {
                for &p in ids {
                    assert_eq!(
                        r.labels[p as usize],
                        PointLabel::Core,
                        "dense-cell point {p} not core"
                    );
                }
            }
        }
    }
}

#[test]
fn core_cells_contain_no_outliers() {
    // Lemma 2, read off the output: any cell containing a core point
    // contains no outlier.
    let mut rng = Rng::seed_from_u64(0x2004);
    for _ in 0..48 {
        let store = dataset(&mut rng, 150);
        let eps = rng.gen_range(0.2..10.0);
        let min_pts = rng.gen_range(1usize..8);
        let params = DbscoutParams::new(eps, min_pts).unwrap();
        let r = Dbscout::new(params).detect(&store).unwrap();
        let grid = Grid::build(&store, eps).unwrap();
        for (_, ids) in grid.cells() {
            let has_core = ids
                .iter()
                .any(|&p| r.labels[p as usize] == PointLabel::Core);
            if has_core {
                for &p in ids {
                    assert_ne!(
                        r.labels[p as usize],
                        PointLabel::Outlier,
                        "outlier {p} in a core cell"
                    );
                }
            }
        }
    }
}

#[test]
fn scaling_all_coordinates_scales_eps() {
    // Similarity invariance: scaling the space and ε together must
    // not change the outlier set.
    let mut rng = Rng::seed_from_u64(0x2005);
    let scales = [0.5f64, 2.0, 10.0];
    for _ in 0..48 {
        let store = dataset(&mut rng, 100);
        let eps = rng.gen_range(0.3..5.0);
        let min_pts = rng.gen_range(1usize..6);
        let scale = scales[rng.gen_range(0usize..scales.len())];
        let params = DbscoutParams::new(eps, min_pts).unwrap();
        let base = Dbscout::new(params).detect(&store).unwrap();
        let scaled_rows: Vec<Vec<f64>> = store
            .iter()
            .map(|(_, p)| p.iter().map(|x| x * scale).collect())
            .collect();
        let scaled_store = PointStore::from_rows(2, scaled_rows).unwrap();
        let scaled_params = DbscoutParams::new(eps * scale, min_pts).unwrap();
        let scaled = Dbscout::new(scaled_params).detect(&scaled_store).unwrap();
        assert_eq!(base.labels, scaled.labels);
    }
}
