//! Structural invariants of a DBSCOUT run, property-tested: the counters
//! and labels must relate the way Lemmas 1–8 say they do, for any input.

use dbscout_core::{Dbscout, DbscoutParams, PointLabel};
use dbscout_spatial::neighbors::count_k_d;
use dbscout_spatial::{Grid, PointStore};
use proptest::prelude::*;

fn dataset(max_n: usize) -> impl Strategy<Value = PointStore> {
    prop::collection::vec(prop::collection::vec(-30.0f64..30.0, 2), 1..max_n)
        .prop_map(|rows| PointStore::from_rows(2, rows).expect("finite rows"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn counter_hierarchy_holds(
        store in dataset(150),
        eps in 0.2f64..10.0,
        min_pts in 1usize..8,
    ) {
        let params = DbscoutParams::new(eps, min_pts).unwrap();
        let r = Dbscout::new(params).detect(&store).unwrap();
        prop_assert!(r.stats.dense_cells <= r.stats.core_cells);
        prop_assert!(r.stats.core_cells <= r.stats.num_cells);
        prop_assert!(r.stats.num_cells <= store.len() as usize);
        prop_assert_eq!(r.labels.len(), store.len() as usize);
    }

    #[test]
    fn distance_work_respects_lemma_bound(
        store in dataset(150),
        eps in 0.2f64..10.0,
        min_pts in 1usize..8,
    ) {
        // Lemmas 6 and 8: each pass compares every point against at most
        // the points of its k_d neighboring cells; with early exit the
        // per-point work is further capped, but the crude bound
        // 2 · n · max_cell_pop · k_d must always hold.
        let params = DbscoutParams::new(eps, min_pts).unwrap();
        let r = Dbscout::new(params).detect(&store).unwrap();
        let grid = Grid::build(&store, eps).unwrap();
        let kd = count_k_d(2).unwrap();
        let bound =
            2 * (store.len() as u64) * (grid.max_cell_population() as u64).max(1) * kd;
        prop_assert!(
            r.stats.distance_computations <= bound,
            "{} > {bound}",
            r.stats.distance_computations
        );
    }

    #[test]
    fn dense_cell_points_are_all_core(
        store in dataset(150),
        eps in 0.2f64..10.0,
        min_pts in 1usize..8,
    ) {
        // Lemma 1, read off the output.
        let params = DbscoutParams::new(eps, min_pts).unwrap();
        let r = Dbscout::new(params).detect(&store).unwrap();
        let grid = Grid::build(&store, eps).unwrap();
        for (_, ids) in grid.cells() {
            if ids.len() >= min_pts {
                for &p in ids {
                    prop_assert_eq!(
                        r.labels[p as usize],
                        PointLabel::Core,
                        "dense-cell point {} not core",
                        p
                    );
                }
            }
        }
    }

    #[test]
    fn core_cells_contain_no_outliers(
        store in dataset(150),
        eps in 0.2f64..10.0,
        min_pts in 1usize..8,
    ) {
        // Lemma 2, read off the output: any cell containing a core point
        // contains no outlier.
        let params = DbscoutParams::new(eps, min_pts).unwrap();
        let r = Dbscout::new(params).detect(&store).unwrap();
        let grid = Grid::build(&store, eps).unwrap();
        for (_, ids) in grid.cells() {
            let has_core = ids.iter().any(|&p| r.labels[p as usize] == PointLabel::Core);
            if has_core {
                for &p in ids {
                    prop_assert_ne!(
                        r.labels[p as usize],
                        PointLabel::Outlier,
                        "outlier {} in a core cell",
                        p
                    );
                }
            }
        }
    }

    #[test]
    fn scaling_all_coordinates_scales_eps(
        store in dataset(100),
        eps in 0.3f64..5.0,
        min_pts in 1usize..6,
        scale in prop::sample::select(vec![0.5f64, 2.0, 10.0]),
    ) {
        // Similarity invariance: scaling the space and ε together must
        // not change the outlier set.
        let params = DbscoutParams::new(eps, min_pts).unwrap();
        let base = Dbscout::new(params).detect(&store).unwrap();
        let scaled_rows: Vec<Vec<f64>> = store
            .iter()
            .map(|(_, p)| p.iter().map(|x| x * scale).collect())
            .collect();
        let scaled_store = PointStore::from_rows(2, scaled_rows).unwrap();
        let scaled_params = DbscoutParams::new(eps * scale, min_pts).unwrap();
        let scaled = Dbscout::new(scaled_params).detect(&scaled_store).unwrap();
        prop_assert_eq!(base.labels, scaled.labels);
    }
}
