//! Schedule-exploration at the algorithm level: the distributed DBSCOUT
//! engine must label every point identically no matter how the executor
//! interleaves its tasks. Each run perturbs work-queue pop order with a
//! seeded rng ([`ExecutionContextBuilder::schedule_chaos`]) and sweeps
//! worker counts; the outlier labels — the paper's observable output —
//! must be byte-identical to the sequential FIFO baseline every time.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic
)]

use dbscout_core::{DbscoutParams, DistributedDbscout};
use dbscout_dataflow::ExecutionContext;
use dbscout_rng::Rng;
use dbscout_spatial::PointStore;

/// A clustered 2-D dataset with dense blobs and isolated noise, seeded.
fn dataset(seed: u64, n: usize) -> PointStore {
    let mut rng = Rng::seed_from_u64(seed);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            if rng.gen_range(0usize..10) == 0 {
                vec![rng.gen_range(-50.0..50.0), rng.gen_range(-50.0..50.0)]
            } else {
                let cx = f64::from(rng.gen_range(0u32..3)) * 10.0;
                vec![cx + rng.gen_range(-0.5..0.5), rng.gen_range(-0.5..0.5)]
            }
        })
        .collect();
    PointStore::from_rows(2, rows).expect("generated rows are valid")
}

/// 32 schedule seeds, spread by a golden-ratio stride from a base the CI
/// matrix can vary via `DBSCOUT_CHAOS_SEED`.
fn schedule_seeds() -> Vec<u64> {
    let base = std::env::var("DBSCOUT_CHAOS_SEED")
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
        .unwrap_or(0xDBC0);
    (0..32u64)
        .map(|i| base.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
        .collect()
}

#[test]
fn labels_are_identical_across_32_schedules_and_worker_counts() {
    let store = dataset(0x5EED, 300);
    let params = DbscoutParams::new(0.8, 5).unwrap();

    // Baseline: sequential FIFO execution, partition count pinned so the
    // job shape never varies with the worker count.
    let baseline = DistributedDbscout::new(
        ExecutionContext::builder()
            .workers(1)
            .default_partitions(8)
            .build(),
        params,
    )
    .with_partitions(8)
    .detect(&store)
    .expect("baseline detection succeeds");

    for workers in [1usize, 2, 4, 8] {
        for seed in schedule_seeds() {
            let ctx = ExecutionContext::builder()
                .workers(workers)
                .default_partitions(8)
                .schedule_chaos(seed)
                .build();
            let result = DistributedDbscout::new(ctx, params)
                .with_partitions(8)
                .detect(&store)
                .expect("chaos-scheduled detection succeeds");
            assert_eq!(
                result.outlier_mask(),
                baseline.outlier_mask(),
                "schedule-dependent labels at workers={workers} seed={seed:#x}"
            );
        }
    }
}
