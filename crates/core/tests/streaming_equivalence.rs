//! The streaming ingest path (`detect_source`) is a pure re-plumbing of
//! how points reach the detector: for every batch size it must produce
//! byte-identical labels *and* statistics to the materialized `detect`,
//! on the same clustered fixtures the layout-equivalence suite uses —
//! including permissive CSV ingest with quarantined rows, the hashed
//! layout's materializing adapter, and the empty dataset.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic,
    clippy::float_cmp
)]

use dbscout_core::{DbscoutParams, DetectorBuilder, ExecutionLayout, OutlierResult};
use dbscout_data::io::{read_csv_with, IngestMode};
use dbscout_data::{CsvSource, PointSource, StoreSource};
use dbscout_rng::Rng;
use dbscout_spatial::PointStore;

/// The batch shapes the issue calls out: degenerate (1), odd (7), and
/// larger than most fixtures (4096, a single batch).
const BATCH_SIZES: [usize; 3] = [1, 7, 4096];

/// Clustered-looking random datasets (same construction as the
/// layout-equivalence suite): anchors, points near anchors, noise.
fn dataset(rng: &mut Rng, dims: usize, max_n: usize) -> PointStore {
    let n_anchors = rng.gen_range(1usize..4);
    let anchors: Vec<Vec<f64>> = (0..n_anchors)
        .map(|_| (0..dims).map(|_| rng.gen_range(-20.0..20.0)).collect())
        .collect();
    let n = rng.gen_range(1..max_n);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            let a = rng.gen_range(0usize..3);
            let off: Vec<f64> = (0..dims).map(|_| rng.gen_range(-0.8..0.8)).collect();
            let noise = rng.gen::<bool>();
            let anchor = &anchors[a % anchors.len()];
            if noise {
                off.iter().map(|o| o * 40.0).collect()
            } else {
                anchor.iter().zip(&off).map(|(c, o)| c + o).collect()
            }
        })
        .collect();
    PointStore::from_rows(dims, rows).expect("generated rows are valid")
}

/// Asserts two results are identical in every observable the run report
/// and downstream consumers read.
fn assert_identical(streamed: &OutlierResult, materialized: &OutlierResult, ctx: &str) {
    assert_eq!(streamed.labels, materialized.labels, "labels ({ctx})");
    assert_eq!(streamed.outliers, materialized.outliers, "outliers ({ctx})");
    assert_eq!(streamed.stats, materialized.stats, "stats ({ctx})");
}

#[test]
fn detect_source_matches_detect_for_every_batch_size() {
    let mut rng = Rng::seed_from_u64(0x5001);
    for round in 0..12 {
        let (dims, max_n) = match round % 3 {
            0 => (2, 200),
            1 => (3, 120),
            _ => (4, 80),
        };
        let store = dataset(&mut rng, dims, max_n);
        let eps = rng.gen_range(0.3..5.0);
        let min_pts = rng.gen_range(1usize..8);
        let params = DbscoutParams::new(eps, min_pts).unwrap();
        for threads in [1usize, 4] {
            let builder = DetectorBuilder::new(params)
                .threads(threads)
                .layout(ExecutionLayout::CellMajor);
            let materialized = builder.build_native().detect(&store).unwrap();
            for batch in BATCH_SIZES {
                let mut source = StoreSource::new(&store, batch);
                let streamed = builder.detect_source(&mut source).unwrap();
                assert_identical(
                    &streamed,
                    &materialized,
                    &format!("d={dims} threads={threads} batch={batch}"),
                );
            }
        }
    }
}

#[test]
fn hashed_layout_adapter_matches_detect() {
    // The hashed layout has no streaming build; `detect_source` routes
    // it through the materializing adapter, which must be transparent.
    let mut rng = Rng::seed_from_u64(0x5002);
    for _ in 0..6 {
        let store = dataset(&mut rng, 2, 150);
        let params = DbscoutParams::new(rng.gen_range(0.3..5.0), rng.gen_range(1usize..8)).unwrap();
        let builder = DetectorBuilder::new(params).layout(ExecutionLayout::Hashed);
        let materialized = builder.build_native().detect(&store).unwrap();
        for batch in BATCH_SIZES {
            let mut source = StoreSource::new(&store, batch);
            let streamed = builder.detect_source(&mut source).unwrap();
            assert_identical(&streamed, &materialized, &format!("hashed batch={batch}"));
        }
    }
}

#[test]
fn permissive_csv_streaming_matches_materialized_ingest() {
    // A dirty CSV in permissive mode: both paths must quarantine the
    // same rows and label the survivors identically.
    let dir = std::env::temp_dir().join("dbscout-streaming-equivalence");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("dirty.csv");
    let mut rng = Rng::seed_from_u64(0x5003);
    let mut content = String::new();
    for i in 0..400 {
        content.push_str(&format!(
            "{:.6},{:.6}\n",
            rng.gen_range(-10.0..10.0),
            rng.gen_range(-10.0..10.0)
        ));
        if i % 97 == 0 {
            content.push_str("not,a,point\n");
        }
        if i % 131 == 0 {
            content.push_str("1.0,NaN\n");
        }
    }
    std::fs::write(&path, content).unwrap();

    let params = DbscoutParams::new(1.0, 4).unwrap();
    let builder = DetectorBuilder::new(params).layout(ExecutionLayout::CellMajor);

    let ingest = read_csv_with(&path, false, IngestMode::Permissive).unwrap();
    let materialized = builder.build_native().detect(&ingest.store).unwrap();

    for batch in BATCH_SIZES {
        let mut source = CsvSource::open(&path, false, IngestMode::Permissive, batch).unwrap();
        let streamed = builder.detect_source(&mut source).unwrap();
        assert_identical(
            &streamed,
            &materialized,
            &format!("permissive batch={batch}"),
        );
        // After the two-pass run the source's quarantine report
        // describes exactly one pass over the file.
        assert_eq!(
            source.quarantine().quarantined,
            ingest.quarantine.quarantined,
            "batch={batch}"
        );
    }
}

#[test]
fn empty_source_yields_an_empty_result() {
    let store = PointStore::new(3).unwrap();
    let params = DbscoutParams::new(1.0, 4).unwrap();
    for layout in [ExecutionLayout::CellMajor, ExecutionLayout::Hashed] {
        let builder = DetectorBuilder::new(params).layout(layout);
        let mut source = StoreSource::new(&store, 16);
        let result = builder.detect_source(&mut source).unwrap();
        assert!(result.labels.is_empty(), "{layout:?}");
        assert!(result.outliers.is_empty(), "{layout:?}");
        assert_eq!(result.stats.num_cells, 0, "{layout:?}");
    }
}

#[test]
fn len_hint_is_not_trusted() {
    // A source whose `len_hint` lies must still stream correctly: the
    // two-pass builder sizes everything from the counting pass, and the
    // hint is advisory.
    struct LyingSource<'a>(StoreSource<'a>);
    impl PointSource for LyingSource<'_> {
        fn dims(&self) -> Option<usize> {
            self.0.dims()
        }
        fn next_batch(
            &mut self,
        ) -> Result<Option<dbscout_data::PointBatch>, dbscout_data::DataIoError> {
            self.0.next_batch()
        }
        fn reset(&mut self) -> Result<(), dbscout_data::DataIoError> {
            self.0.reset()
        }
        fn len_hint(&self) -> Option<usize> {
            Some(999_999)
        }
    }

    let mut rng = Rng::seed_from_u64(0x5004);
    let store = dataset(&mut rng, 2, 100);
    let params = DbscoutParams::new(1.0, 4).unwrap();
    let builder = DetectorBuilder::new(params).layout(ExecutionLayout::CellMajor);
    let materialized = builder.build_native().detect(&store).unwrap();
    let mut source = LyingSource(StoreSource::new(&store, 13));
    let streamed = builder.detect_source(&mut source).unwrap();
    assert_identical(&streamed, &materialized, "lying len_hint");
}
