//! The incremental engine's contract: after *any* interleaved sequence
//! of inserts and deletes, its labels are byte-identical to a from-
//! scratch batch run over the surviving points — on both the hashed and
//! the cell-major engines, checked against batch runs at 1 and 4
//! threads. Probes must answer exactly the label an insert of the same
//! point would receive, without mutating state.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic,
    clippy::float_cmp
)]

use dbscout_core::{
    DbscoutParams, DetectorBuilder, ExecutionLayout, IncrementalDbscout, KernelKind,
};
use dbscout_rng::Rng;
use dbscout_spatial::PointStore;

/// Both incremental engines behind one facade, for one parameterized
/// harness: the original hashed-map engine and the mutable cell-major
/// one with its counted kernels.
fn engines(dims: usize, params: DbscoutParams) -> Vec<(&'static str, IncrementalDbscout)> {
    vec![
        (
            "hashed",
            IncrementalDbscout::with_layout(
                dims,
                params,
                ExecutionLayout::Hashed,
                KernelKind::Auto,
            )
            .unwrap(),
        ),
        (
            "cell-major",
            IncrementalDbscout::with_layout(
                dims,
                params,
                ExecutionLayout::CellMajor,
                KernelKind::Auto,
            )
            .unwrap(),
        ),
    ]
}

/// Collects the surviving points (in id order) into a fresh store, with
/// the id mapping back to the incremental engine.
fn survivors(inc: &IncrementalDbscout) -> (Vec<u32>, PointStore) {
    let mut ids = Vec::new();
    let mut rows = Vec::new();
    for (id, p) in inc.store().iter() {
        if inc.is_alive(id) {
            ids.push(id);
            rows.push(p.to_vec());
        }
    }
    let store = PointStore::from_rows(inc.store().dims(), rows).unwrap();
    (ids, store)
}

/// The equivalence invariant: the warm state labels every survivor
/// exactly as a batch run over the survivors alone would, at 1 and 4
/// threads, including the outlier id set.
fn assert_matches_batch(inc: &IncrementalDbscout, ctx: &str) {
    let (ids, store) = survivors(inc);
    let expected_outliers: Vec<u32> = inc.outliers();
    for threads in [1usize, 4] {
        let batch = DetectorBuilder::new(inc.params())
            .threads(threads)
            .layout(inc.layout())
            .kernel(inc.kernel())
            .build_native()
            .detect(&store)
            .unwrap();
        for (k, &id) in ids.iter().enumerate() {
            assert_eq!(
                inc.label(id),
                batch.labels[k],
                "{ctx}: label of id {id} (survivor #{k}, threads {threads})"
            );
        }
        let batch_outliers: Vec<u32> = batch.outliers.iter().map(|&k| ids[k as usize]).collect();
        assert_eq!(
            expected_outliers, batch_outliers,
            "{ctx}: outlier set (threads {threads})"
        );
    }
}

#[test]
fn randomized_interleavings_match_batch() {
    // Multiple seeds × dims 2–4; each sequence interleaves inserts
    // (including exact-duplicate points), removes (including guaranteed
    // double-remove misses), and probes, checking the batch invariant
    // mid-sequence and at the end.
    for (seed, dims) in [(1u64, 2), (2, 3), (3, 4), (4, 2), (5, 3), (6, 4)] {
        let mut rng = Rng::seed_from_u64(0xD5C0 + seed);
        let eps = rng.gen_range(0.8..3.0);
        let min_pts = rng.gen_range(2usize..6);
        let params = DbscoutParams::new(eps, min_pts).unwrap();
        for (name, mut inc) in engines(dims, params) {
            let mut alive: Vec<u32> = Vec::new();
            let mut points: Vec<Vec<f64>> = Vec::new();
            for step in 0..140 {
                let ctx = format!("seed {seed} dims {dims} engine {name} step {step}");
                let roll = rng.gen_range(0usize..10);
                if roll < 5 || alive.is_empty() {
                    // Insert — 15% of the time an exact duplicate of an
                    // earlier point (alive or dead).
                    let p: Vec<f64> = if !points.is_empty() && rng.gen_bool(0.15) {
                        points[rng.gen_range(0..points.len())].clone()
                    } else {
                        (0..dims).map(|_| rng.gen_range(-6.0..6.0)).collect()
                    };
                    let id = inc.insert(&p).unwrap();
                    assert_eq!(id as usize, points.len(), "{ctx}: ids are dense");
                    points.push(p);
                    alive.push(id);
                } else if roll < 8 {
                    let id = alive.swap_remove(rng.gen_range(0..alive.len()));
                    assert!(inc.remove(id), "{ctx}: live remove hits");
                    assert!(!inc.remove(id), "{ctx}: double remove misses");
                } else {
                    // Probe == insert-then-read-label, and the insert that
                    // follows it must observe un-mutated state.
                    let p: Vec<f64> = (0..dims).map(|_| rng.gen_range(-6.0..6.0)).collect();
                    let probed = inc.probe(&p).unwrap();
                    let id = inc.insert(&p).unwrap();
                    assert_eq!(probed, inc.label(id), "{ctx}: probe equals insert label");
                    points.push(p);
                    alive.push(id);
                }
                if step % 35 == 34 {
                    assert_matches_batch(&inc, &ctx);
                }
            }
            assert_matches_batch(
                &inc,
                &format!("seed {seed} dims {dims} engine {name} final"),
            );
        }
    }
}

#[test]
fn remove_everything_then_reinsert_matches_batch() {
    for dims in 2..=4usize {
        let mut rng = Rng::seed_from_u64(0xE0 + dims as u64);
        let params = DbscoutParams::new(1.5, 3).unwrap();
        for (name, mut inc) in engines(dims, params) {
            let mut alive: Vec<u32> = Vec::new();
            for _ in 0..60 {
                let p: Vec<f64> = (0..dims).map(|_| rng.gen_range(-4.0..4.0)).collect();
                alive.push(inc.insert(&p).unwrap());
            }
            // Tear the whole dataset down in random order.
            rng.shuffle(&mut alive);
            for id in alive.drain(..) {
                assert!(inc.remove(id), "{name} dims {dims}: remove {id}");
            }
            assert!(inc.is_empty(), "{name} dims {dims}");
            assert!(inc.outliers().is_empty(), "{name} dims {dims}");
            assert_eq!(inc.total_inserted(), 60, "{name} dims {dims}");

            // Re-insert after empty: ids keep growing, the grid state is
            // reusable, and the invariant holds again.
            for _ in 0..40 {
                let p: Vec<f64> = (0..dims).map(|_| rng.gen_range(-4.0..4.0)).collect();
                let id = inc.insert(&p).unwrap();
                assert!(id >= 60, "{name} dims {dims}: ids never recycle");
            }
            assert_matches_batch(&inc, &format!("{name} dims {dims} after rebirth"));
        }
    }
}

#[test]
fn duplicate_heavy_sequences_match_batch() {
    // Many coincident points stress the minPts threshold bookkeeping:
    // a removed duplicate must not strand its twins' counts.
    let params = DbscoutParams::new(1.0, 4).unwrap();
    let mut rng = Rng::seed_from_u64(0xD0B);
    for (name, mut inc) in engines(2, params) {
        let sites: Vec<Vec<f64>> = (0..5)
            .map(|_| vec![rng.gen_range(-3.0..3.0), rng.gen_range(-3.0..3.0)])
            .collect();
        let mut alive: Vec<u32> = Vec::new();
        for step in 0..120 {
            if alive.is_empty() || rng.gen_bool(0.65) {
                let site = &sites[rng.gen_range(0..sites.len())];
                alive.push(inc.insert(site).unwrap());
            } else {
                let id = alive.swap_remove(rng.gen_range(0..alive.len()));
                assert!(inc.remove(id));
            }
            if step % 30 == 29 {
                assert_matches_batch(&inc, &format!("{name} duplicates step {step}"));
            }
        }
        assert_matches_batch(&inc, &format!("{name} duplicates final"));
    }
}
