//! The distance kernel is a loop shape, not a semantic: scalar and
//! unrolled runs must produce byte-identical labels *and* identical
//! kernel-counter totals (the unrolled kernels drain their lane blocks
//! in slot order, tallying exactly the comparisons the scalar loop
//! makes). Likewise the parallel streaming builder is a scheduling
//! choice: any thread count and batch size must yield the same layout,
//! so labels and counters of `detect_source` pin the whole pipeline.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic,
    clippy::float_cmp
)]

use dbscout_core::{Dbscout, DbscoutParams, ExecutionLayout, OutlierResult};
use dbscout_data::StoreSource;
use dbscout_rng::Rng;
use dbscout_spatial::{KernelKind, PointStore};

/// Clustered-looking random datasets: anchors, points near anchors,
/// uniform noise (the same construction as the layout suite).
fn dataset(rng: &mut Rng, dims: usize, max_n: usize) -> PointStore {
    let n_anchors = rng.gen_range(1usize..4);
    let anchors: Vec<Vec<f64>> = (0..n_anchors)
        .map(|_| (0..dims).map(|_| rng.gen_range(-20.0..20.0)).collect())
        .collect();
    let n = rng.gen_range(1..max_n);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            let a = rng.gen_range(0usize..3);
            let off: Vec<f64> = (0..dims).map(|_| rng.gen_range(-0.8..0.8)).collect();
            let noise = rng.gen::<bool>();
            let anchor = &anchors[a % anchors.len()];
            if noise {
                off.iter().map(|o| o * 40.0).collect()
            } else {
                anchor.iter().zip(&off).map(|(c, o)| c + o).collect()
            }
        })
        .collect();
    PointStore::from_rows(dims, rows).expect("generated rows are valid")
}

fn detect(
    store: &PointStore,
    params: DbscoutParams,
    layout: ExecutionLayout,
    kernel: KernelKind,
    threads: usize,
) -> OutlierResult {
    Dbscout::new(params)
        .with_layout(layout)
        .with_kernel(kernel)
        .with_threads(threads)
        .detect(store)
        .unwrap()
}

/// Labels, outliers, and the full four-counter kernel block must match.
fn assert_equivalent(a: &OutlierResult, b: &OutlierResult, what: &str) {
    assert_eq!(a.labels, b.labels, "{what}: labels");
    assert_eq!(a.outliers, b.outliers, "{what}: outliers");
    assert_eq!(a.stats.kernel, b.stats.kernel, "{what}: kernel counters");
    assert_eq!(
        a.stats.distance_computations, b.stats.distance_computations,
        "{what}: distance totals"
    );
}

#[test]
fn scalar_and_unrolled_agree_dims_2_to_4() {
    let mut rng = Rng::seed_from_u64(0x51D3);
    for round in 0..18 {
        let (dims, max_n) = match round % 3 {
            0 => (2, 160),
            1 => (3, 100),
            _ => (4, 70),
        };
        let store = dataset(&mut rng, dims, max_n);
        let eps = rng.gen_range(0.3..5.0);
        let min_pts = rng.gen_range(1usize..8);
        let params = DbscoutParams::new(eps, min_pts).unwrap();
        for layout in [ExecutionLayout::CellMajor, ExecutionLayout::Hashed] {
            for threads in [1usize, 4, 8] {
                let scalar = detect(&store, params, layout, KernelKind::Scalar, threads);
                for kernel in [KernelKind::Unrolled, KernelKind::Auto] {
                    let got = detect(&store, params, layout, kernel, threads);
                    assert_equivalent(
                        &scalar,
                        &got,
                        &format!("d={dims} {layout:?} {kernel:?} threads={threads}"),
                    );
                }
            }
        }
    }
}

#[test]
fn duplicates_and_eps_boundary_coords_are_kernel_invariant() {
    // Points spaced *exactly* ε apart (the closed-ball boundary of
    // Definition 2), plus duplicate blocks — the coordinates where a
    // kernel that reassociates FP arithmetic would diverge first.
    let eps = 1.0;
    for dims in [2usize, 3, 4] {
        let mut rows: Vec<Vec<f64>> = Vec::new();
        for i in 0..12 {
            let mut row = vec![0.0; dims];
            row[0] = i as f64 * eps; // consecutive points at distance exactly ε
            rows.push(row);
        }
        // Duplicate blocks at the boundary points.
        for _ in 0..3 {
            rows.push(rows[0].clone());
            rows.push(rows[5].clone());
        }
        // An off-axis point at exactly ε from the chain (3-4-5 triangle).
        let mut tri = vec![0.0; dims];
        tri[0] = 0.6;
        tri[1] = 0.8;
        rows.push(tri);
        let store = PointStore::from_rows(dims, rows).unwrap();
        for min_pts in [1usize, 2, 4, 30] {
            let params = DbscoutParams::new(eps, min_pts).unwrap();
            for threads in [1usize, 4, 8] {
                let scalar = detect(
                    &store,
                    params,
                    ExecutionLayout::CellMajor,
                    KernelKind::Scalar,
                    threads,
                );
                let unrolled = detect(
                    &store,
                    params,
                    ExecutionLayout::CellMajor,
                    KernelKind::Unrolled,
                    threads,
                );
                assert_equivalent(
                    &scalar,
                    &unrolled,
                    &format!("boundary d={dims} minPts={min_pts} threads={threads}"),
                );
            }
        }
    }
}

#[test]
fn parallel_streaming_builder_matches_sequential_detect() {
    let mut rng = Rng::seed_from_u64(0x51D4);
    for dims in [2usize, 3] {
        let store = dataset(&mut rng, dims, 900);
        let eps = rng.gen_range(0.3..4.0);
        let min_pts = rng.gen_range(1usize..8);
        let params = DbscoutParams::new(eps, min_pts).unwrap();
        let sequential = Dbscout::new(params).with_threads(1).detect(&store).unwrap();
        for batch in [1usize, 7, 4096] {
            for threads in [1usize, 4, 8] {
                let mut source = StoreSource::new(&store, batch);
                let streamed = Dbscout::new(params)
                    .with_threads(threads)
                    .detect_source(&mut source)
                    .unwrap();
                assert_equivalent(
                    &sequential,
                    &streamed,
                    &format!("d={dims} batch={batch} threads={threads}"),
                );
            }
        }
    }
}

#[test]
fn parallel_materialized_build_matches_sequential() {
    let mut rng = Rng::seed_from_u64(0x51D5);
    for _ in 0..6 {
        let store = dataset(&mut rng, 2, 500);
        let eps = rng.gen_range(0.3..4.0);
        let min_pts = rng.gen_range(1usize..8);
        let params = DbscoutParams::new(eps, min_pts).unwrap();
        let sequential = Dbscout::new(params).with_threads(1).detect(&store).unwrap();
        for threads in [2usize, 4, 8] {
            let parallel = Dbscout::new(params)
                .with_threads(threads)
                .detect(&store)
                .unwrap();
            assert_equivalent(&sequential, &parallel, &format!("threads={threads}"));
        }
    }
}
