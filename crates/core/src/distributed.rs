//! The distributed DBSCOUT formulation: paper Algorithms 1–5 expressed as
//! dataflow transformations over [`dbscout_dataflow`], the Spark-substitute
//! substrate.
//!
//! Differences from the pseudocode, all noted in `DESIGN.md`:
//!
//! * Algorithm 3 line 17 writes `dist < ε`; Definition 2 uses `≤ ε`. We
//!   follow the definition.
//! * Algorithm 5 line 4 writes `CoreNeighbors(C) ≠ ∅` for the cells whose
//!   points are outliers outright, but the prose ("having **no**
//!   neighboring core cell") requires `= ∅`. We follow the prose.
//! * Algorithm 5 line 16 joins `pointsToCheck` with `𝒢`, but the prose
//!   says "joined … with the set of **core points**" — joining with the
//!   full grid would let non-core points vouch for their neighbors and
//!   break Definition 3. We join with the core-point set.
//!
//! The `§III-G` practical optimizations are selectable via
//! [`JoinStrategy`]: the plain shuffle join, *grouping before joining*
//! (which also enables the early-exit optimizations), and the *broadcast
//! join*.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dbscout_dataflow::shuffle::DetHashMap;
use dbscout_dataflow::{Dataset, ExecutionContext};
use dbscout_spatial::cell::{cell_of, cell_side, MAX_DIMS};
use dbscout_spatial::distance::within;
use dbscout_spatial::points::PointId;
use dbscout_spatial::CellCoord;
use dbscout_spatial::PointStore;
use dbscout_telemetry::{KernelCounters, Span, SpanKind};

use crate::cellmap::CellMap;
use crate::error::Result;
use crate::labels::{OutlierResult, PhaseTimings, PointLabel, RunStats};
use crate::params::DbscoutParams;

/// Phase label for Algorithm 1 (`CREATE-GRID`).
pub const PHASE_GRID: &str = "grid partitioning";
/// Phase label for Algorithm 2 (`BUILD-DENSE-CELL-MAP`).
pub const PHASE_CELLS: &str = "cell classification";
/// Phase label for Algorithm 3 (`FIND-CORE-POINTS`).
pub const PHASE_CORE_POINTS: &str = "core-point pass";
/// Phase label for Algorithm 4 (`BUILD-CORE-CELL-MAP`).
pub const PHASE_CORE_MAP: &str = "core-map pass";
/// Phase label for Algorithm 5 (`FIND-OUTLIERS`).
pub const PHASE_OUTLIERS: &str = "outlier pass";

/// Points per stage-0 ingest batch: the distributed grid phase feeds
/// `parallelize_batches` in chunks of this size instead of one n-sized
/// `Vec` (matches [`dbscout_data::DEFAULT_BATCH_SIZE`]).
const INGEST_BATCH: usize = 8192;

/// The five phase labels in execution order, as used for stage prefixes,
/// phase spans, and run-report phase names.
pub const PHASE_NAMES: [&str; 5] = [
    PHASE_GRID,
    PHASE_CELLS,
    PHASE_CORE_POINTS,
    PHASE_CORE_MAP,
    PHASE_OUTLIERS,
];

/// How the two join-heavy phases move data (paper §III-G).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinStrategy {
    /// The plain shuffle join of Algorithms 3 and 5.
    Shuffle,
    /// *Grouping before joining* (§III-G-2): the emitted check-points are
    /// grouped per target cell before the join, shrinking one operand to
    /// at most one record per cell and enabling the early-exit rules
    /// (stop counting at `minPts`; stop on the first covering core
    /// point). The paper runs all its experiments with this strategy.
    #[default]
    GroupedShuffle,
    /// *Broadcast join* (§III-G-1): collect the check-points into a
    /// driver-side map broadcast to all workers, eliminating the shuffle
    /// join. Fastest when few points need checking (large ε), but can
    /// exhaust memory — exactly the trade-off the paper describes.
    Broadcast,
}

/// A point record flowing through the dataflow graph: id plus inlined
/// coordinates (so distance computations need no driver lookups).
#[derive(Debug, Clone, Copy)]
pub struct PointRec {
    /// Id of the point in the originating store.
    pub id: PointId,
    dims: u8,
    coords: [f64; MAX_DIMS],
}

impl PointRec {
    fn new(id: PointId, p: &[f64]) -> Self {
        let mut coords = [0.0; MAX_DIMS];
        for (out, &x) in coords.iter_mut().zip(p) {
            *out = x;
        }
        Self {
            id,
            dims: p.len() as u8,
            coords,
        }
    }

    /// The point's coordinates.
    #[inline]
    pub fn coords(&self) -> &[f64] {
        // `dims <= MAX_DIMS` is a constructor invariant; fall back to the
        // full buffer rather than panic.
        self.coords
            .get(..self.dims as usize)
            .unwrap_or(&self.coords)
    }
}

/// The distributed DBSCOUT detector.
///
/// Point data is partitioned across the execution context's workers; each
/// phase is a stage of dataflow transformations mirroring the paper's
/// pseudocode, with cell maps broadcast between stages.
#[derive(Debug, Clone)]
pub struct DistributedDbscout {
    ctx: Arc<ExecutionContext>,
    params: DbscoutParams,
    num_partitions: usize,
    strategy: JoinStrategy,
}

impl DistributedDbscout {
    /// A detector running on `ctx` with the context's default partition
    /// count and the [`JoinStrategy::GroupedShuffle`] optimization.
    pub fn new(ctx: Arc<ExecutionContext>, params: DbscoutParams) -> Self {
        let num_partitions = ctx.default_partitions();
        Self {
            ctx,
            params,
            num_partitions,
            strategy: JoinStrategy::default(),
        }
    }

    /// Overrides the number of data partitions (paper Fig. 13 varies
    /// this).
    pub fn with_partitions(mut self, n: usize) -> Self {
        self.num_partitions = n.max(1);
        self
    }

    /// Selects a join strategy (§III-G).
    pub fn with_strategy(mut self, strategy: JoinStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// The configured parameters.
    pub fn params(&self) -> DbscoutParams {
        self.params
    }

    /// The execution context this detector runs on (for metrics snapshots
    /// and fault-tolerance configuration).
    pub fn ctx(&self) -> &Arc<ExecutionContext> {
        &self.ctx
    }

    /// Closes out the phase that began at `started`: returns its duration
    /// and, when a recorder is installed on the context, emits one
    /// [`SpanKind::Phase`] span on the driver lane.
    fn finish_phase(&self, name: &'static str, started: Instant) -> Duration {
        let duration = started.elapsed();
        if let Some(rec) = self.ctx.recorder() {
            rec.record_span(Span::new(name, SpanKind::Phase, started, duration));
        }
        duration
    }

    /// Detects all outliers of `store`, exactly, per Definitions 2–3.
    ///
    /// Each paper phase labels the context's stages (`"core-point pass"`,
    /// `"outlier pass"`, … — see [`PHASE_NAMES`]) so task failures and
    /// fault plans name the algorithm phase, and — when a recorder is
    /// installed on the context — emits one phase span per phase. A
    /// failed detection intentionally leaves the label of the failing
    /// phase set on the context.
    pub fn detect(&self, store: &PointStore) -> Result<OutlierResult> {
        let eps_sq = self.params.eps_sq();
        let min_pts = self.params.min_pts;
        let dims = store.dims();
        let side = cell_side(self.params.eps, dims);
        let n = store.len() as usize;
        let dist_comps = Arc::new(AtomicU64::new(0));
        let mut timings = PhaseTimings::default();

        // ───────────── Phase 1: CREATE-GRID (Algorithm 1) ─────────────
        // Stage-0 ingest is chunked: points enter the dataflow in
        // fixed-size batches instead of one n-sized Vec, so the largest
        // transient is the partitions under construction plus one batch.
        // `parallelize_batches` reproduces `parallelize`'s contiguous
        // layout exactly, so per-partition stats are unchanged.
        self.ctx.set_stage(PHASE_GRID);
        let t = Instant::now();
        let batches = (0..n).step_by(INGEST_BATCH).map(|start| {
            let end = (start + INGEST_BATCH).min(n);
            (start..end)
                .map(|i| PointRec::new(i as u32, store.point(i as u32)))
                .collect::<Vec<_>>()
        });
        let grid: Dataset<(CellCoord, PointRec)> = self
            .ctx
            .parallelize_batches(n, batches, self.num_partitions)
            .map(|rec| (cell_of(rec.coords(), side), *rec))?;
        timings.grid = self.finish_phase(PHASE_GRID, t);

        // ──────── Phase 2: BUILD-DENSE-CELL-MAP (Algorithm 2) ─────────
        self.ctx.set_stage(PHASE_CELLS);
        let t = Instant::now();
        let counts = grid
            .map(|(c, _)| (*c, 1usize))?
            .reduce_by_key_with(self.num_partitions, |a, b| a + b)?
            .collect()?;
        let cell_map = CellMap::from_counts(dims, counts, min_pts)?;
        let dense_cells = cell_map.dense_cells();
        let num_cells = cell_map.len();
        let bcast_map = self.ctx.broadcast(cell_map);
        timings.dense_map = self.finish_phase(PHASE_CELLS, t);

        // ───────── Phase 3: FIND-CORE-POINTS (Algorithm 3) ────────────
        self.ctx.set_stage(PHASE_CORE_POINTS);
        let t = Instant::now();
        let cm = bcast_map.clone();
        let core_dense = grid.filter(move |(c, _)| cm.is_dense(c))?;
        let cm = bcast_map.clone();
        let non_dense = grid.filter(move |(c, _)| !cm.is_dense(c))?;
        let cm = bcast_map.clone();
        let points_to_check = non_dense.flat_map(move |(c, p)| {
            let c = *c;
            let p = *p;
            cm.neighbors(&c)
                .map(move |n| (n, (c, p)))
                .collect::<Vec<_>>()
        })?;

        // Count, per emitted (C, p), how many grid points of the target
        // cells fall within ε, then keep those reaching minPts.
        let counted: Dataset<((CellCoord, PointId), (usize, PointRec))> = match self.strategy {
            JoinStrategy::Shuffle => {
                let dc = Arc::clone(&dist_comps);
                grid.join_with(&points_to_check, self.num_partitions)?
                    .map(move |(_, (q, (c, p)))| {
                        dc.fetch_add(1, Ordering::Relaxed);
                        let hit = usize::from(within(p.coords(), q.coords(), eps_sq));
                        ((*c, p.id), (hit, *p))
                    })?
                    .reduce_by_key_with(self.num_partitions, |(a, p), (b, _)| (a + b, p))?
            }
            JoinStrategy::GroupedShuffle => {
                let grouped = points_to_check.group_by_key_with(self.num_partitions)?;
                let dc = Arc::clone(&dist_comps);
                grid.cogroup(&grouped, self.num_partitions)?
                    .flat_map(move |(_, (qs, groups))| {
                        let mut out = Vec::new();
                        for group in groups {
                            for (c, p) in group {
                                let mut hits = 0usize;
                                for q in qs {
                                    dc.fetch_add(1, Ordering::Relaxed);
                                    if within(p.coords(), q.coords(), eps_sq) {
                                        hits += 1;
                                        // Early exit (§III-G-2): partial
                                        // counts beyond minPts are wasted.
                                        if hits >= min_pts {
                                            break;
                                        }
                                    }
                                }
                                out.push(((*c, p.id), (hits, *p)));
                            }
                        }
                        out
                    })?
                    .reduce_by_key_with(self.num_partitions, |(a, p), (b, _)| {
                        (a.saturating_add(b), p)
                    })?
            }
            JoinStrategy::Broadcast => {
                let mut by_cell: DetHashMap<CellCoord, Vec<(CellCoord, PointRec)>> =
                    DetHashMap::default();
                for (ncell, check) in points_to_check.collect()? {
                    by_cell.entry(ncell).or_default().push(check);
                }
                let checks = self.ctx.broadcast(by_cell);
                let dc = Arc::clone(&dist_comps);
                grid.flat_map(move |(ncell, q)| {
                    let mut out = Vec::new();
                    if let Some(group) = checks.get(ncell) {
                        for (c, p) in group {
                            dc.fetch_add(1, Ordering::Relaxed);
                            let hit = usize::from(within(p.coords(), q.coords(), eps_sq));
                            out.push(((*c, p.id), (hit, *p)));
                        }
                    }
                    out
                })?
                .reduce_by_key_with(self.num_partitions, |(a, p), (b, _)| (a + b, p))?
            }
        };
        let core_non_dense = counted
            .filter(move |(_, (hits, _))| *hits >= min_pts)?
            .map(|((c, _), (_, p))| (*c, *p))?;
        let core_points = core_dense.union(&core_non_dense)?;
        timings.core_points = self.finish_phase(PHASE_CORE_POINTS, t);

        // ──────── Phase 4: BUILD-CORE-CELL-MAP (Algorithm 4) ──────────
        self.ctx.set_stage(PHASE_CORE_MAP);
        let t = Instant::now();
        let promoted: Vec<CellCoord> = core_non_dense.keys()?.collect()?;
        let mut cell_map = bcast_map.value().clone();
        for c in &promoted {
            cell_map.promote_to_core(c);
        }
        let core_cells = cell_map.core_cells();
        let bcast_map = self.ctx.broadcast(cell_map);
        timings.core_map = self.finish_phase(PHASE_CORE_MAP, t);

        // ────────── Phase 5: FIND-OUTLIERS (Algorithm 5) ──────────────
        self.ctx.set_stage(PHASE_OUTLIERS);
        let t = Instant::now();
        let cm = bcast_map.clone();
        let non_core = grid.filter(move |(c, _)| !cm.is_core(c))?;
        let cm = bcast_map.clone();
        // O_ncn: non-core cells with no core neighbor — all outliers.
        let outliers_no_neighbor = non_core.filter(move |(c, _)| !cm.has_core_neighbor(c))?;
        let cm = bcast_map.clone();
        let points_to_check = non_core
            .filter(move |(c, _)| cm.has_core_neighbor(c))?
            .flat_map({
                let cm = bcast_map.clone();
                move |(c, p)| {
                    let c = *c;
                    let p = *p;
                    cm.core_neighbors(&c)
                        .map(move |n| (n, (c, p)))
                        .collect::<Vec<_>>()
                }
            })?;

        // Per emitted (C, p): is p within ε of any core point of the
        // target core cells? (OR-reduce; the paper AND-reduces the negated
        // flag, which is equivalent.)
        let covered: Dataset<((CellCoord, PointId), (bool, PointRec))> = match self.strategy {
            JoinStrategy::Shuffle => {
                let dc = Arc::clone(&dist_comps);
                core_points
                    .join_with(&points_to_check, self.num_partitions)?
                    .map(move |(_, (q, (c, p)))| {
                        dc.fetch_add(1, Ordering::Relaxed);
                        let hit = within(p.coords(), q.coords(), eps_sq);
                        ((*c, p.id), (hit, *p))
                    })?
                    .reduce_by_key_with(self.num_partitions, |(a, p), (b, _)| (a || b, p))?
            }
            JoinStrategy::GroupedShuffle => {
                let grouped = points_to_check.group_by_key_with(self.num_partitions)?;
                let dc = Arc::clone(&dist_comps);
                core_points
                    .cogroup(&grouped, self.num_partitions)?
                    .flat_map(move |(_, (qs, groups))| {
                        let mut out = Vec::new();
                        for group in groups {
                            for (c, p) in group {
                                let mut hit = false;
                                for q in qs {
                                    dc.fetch_add(1, Ordering::Relaxed);
                                    if within(p.coords(), q.coords(), eps_sq) {
                                        // Early exit (§III-G-2): one
                                        // covering core point suffices.
                                        hit = true;
                                        break;
                                    }
                                }
                                out.push(((*c, p.id), (hit, *p)));
                            }
                        }
                        out
                    })?
                    .reduce_by_key_with(self.num_partitions, |(a, p), (b, _)| (a || b, p))?
            }
            JoinStrategy::Broadcast => {
                let mut core_by_cell: DetHashMap<CellCoord, Vec<PointRec>> = DetHashMap::default();
                for (c, q) in core_points.collect()? {
                    core_by_cell.entry(c).or_default().push(q);
                }
                let cores = self.ctx.broadcast(core_by_cell);
                let dc = Arc::clone(&dist_comps);
                points_to_check
                    .map(move |(ncell, (c, p))| {
                        let mut hit = false;
                        if let Some(qs) = cores.get(ncell) {
                            for q in qs {
                                dc.fetch_add(1, Ordering::Relaxed);
                                if within(p.coords(), q.coords(), eps_sq) {
                                    hit = true;
                                    break;
                                }
                            }
                        }
                        ((*c, p.id), (hit, *p))
                    })?
                    .reduce_by_key_with(self.num_partitions, |(a, p), (b, _)| (a || b, p))?
            }
        };
        let outliers_checked = covered
            .filter(|(_, (hit, _))| !hit)?
            .map(|((c, _), (_, p))| (*c, *p))?;
        let outliers = outliers_no_neighbor.union(&outliers_checked)?;
        timings.outliers = self.finish_phase(PHASE_OUTLIERS, t);
        self.ctx.clear_stage();

        // Assemble the per-point labels on the driver.
        let mut labels = vec![PointLabel::Covered; n];
        for (_, p) in core_points.collect()? {
            if let Some(l) = labels.get_mut(p.id as usize) {
                *l = PointLabel::Core;
            }
        }
        for (_, p) in outliers.collect()? {
            if let Some(l) = labels.get_mut(p.id as usize) {
                *l = PointLabel::Outlier;
            }
        }

        // xtask-lint: allow(XL009) -- tally read strictly after scope joins
        let distance_evals = dist_comps.load(Ordering::Relaxed);
        let stats = RunStats {
            num_cells,
            dense_cells,
            core_cells,
            distance_computations: distance_evals,
            kernel: KernelCounters {
                distance_evals,
                ..KernelCounters::new()
            },
        };
        Ok(OutlierResult::from_labels(labels, stats, timings))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::detect_outliers;
    use crate::reference::naive_labels;

    fn ctx() -> Arc<ExecutionContext> {
        ExecutionContext::builder()
            .workers(4)
            .default_partitions(6)
            .build()
    }

    fn store_2d(points: &[[f64; 2]]) -> PointStore {
        PointStore::from_rows(2, points.iter().map(|p| p.to_vec())).unwrap()
    }

    fn mixed_dataset() -> PointStore {
        let mut pts = Vec::new();
        // Dense blob.
        for i in 0..3 {
            for j in 0..3 {
                pts.push([i as f64 * 0.3, j as f64 * 0.3]);
            }
        }
        // Medium blob a bit away (non-dense cells, core via neighbors).
        for i in 0..5 {
            pts.push([5.0 + i as f64 * 0.4, 5.0]);
        }
        // A reachable border point and stragglers.
        pts.push([1.5, 0.0]);
        pts.push([2.8, 0.1]);
        pts.push([20.0, -20.0]);
        pts.push([-13.0, 7.0]);
        store_2d(&pts)
    }

    #[test]
    fn all_strategies_match_naive_reference() {
        let store = mixed_dataset();
        let params = DbscoutParams::new(1.0, 5).unwrap();
        let expected = naive_labels(&store, params);
        for strategy in [
            JoinStrategy::Shuffle,
            JoinStrategy::GroupedShuffle,
            JoinStrategy::Broadcast,
        ] {
            let ctx = ctx();
            let got = DistributedDbscout::new(ctx, params)
                .with_strategy(strategy)
                .detect(&store)
                .unwrap();
            assert_eq!(got.labels, expected, "strategy {strategy:?}");
        }
    }

    #[test]
    fn distributed_matches_native() {
        let store = mixed_dataset();
        for (eps, min_pts) in [(0.5, 3), (1.0, 5), (2.0, 4), (10.0, 10)] {
            let params = DbscoutParams::new(eps, min_pts).unwrap();
            let native = detect_outliers(&store, params).unwrap();
            let dist = DistributedDbscout::new(ctx(), params)
                .detect(&store)
                .unwrap();
            assert_eq!(native.labels, dist.labels, "eps {eps} minPts {min_pts}");
        }
    }

    #[test]
    fn partition_count_does_not_change_result() {
        let store = mixed_dataset();
        let params = DbscoutParams::new(1.0, 5).unwrap();
        let reference = DistributedDbscout::new(ctx(), params)
            .with_partitions(1)
            .detect(&store)
            .unwrap();
        for parts in [2, 5, 16, 64] {
            let got = DistributedDbscout::new(ctx(), params)
                .with_partitions(parts)
                .detect(&store)
                .unwrap();
            assert_eq!(got.labels, reference.labels, "partitions {parts}");
        }
    }

    #[test]
    fn empty_dataset() {
        let store = PointStore::new(2).unwrap();
        let params = DbscoutParams::new(1.0, 5).unwrap();
        let r = DistributedDbscout::new(ctx(), params)
            .detect(&store)
            .unwrap();
        assert!(r.labels.is_empty());
        assert_eq!(r.stats.num_cells, 0);
    }

    #[test]
    fn stats_match_native_structure() {
        let store = mixed_dataset();
        let params = DbscoutParams::new(1.0, 5).unwrap();
        let native = detect_outliers(&store, params).unwrap();
        let dist = DistributedDbscout::new(ctx(), params)
            .detect(&store)
            .unwrap();
        assert_eq!(native.stats.num_cells, dist.stats.num_cells);
        assert_eq!(native.stats.dense_cells, dist.stats.dense_cells);
        assert_eq!(native.stats.core_cells, dist.stats.core_cells);
    }

    #[test]
    fn grouped_strategy_computes_fewer_distances_than_shuffle() {
        // The early-exit rules must strictly reduce distance work on a
        // dataset with dense neighborhoods.
        let mut pts = Vec::new();
        for i in 0..200 {
            pts.push([(i % 20) as f64 * 0.05, (i / 20) as f64 * 0.05]);
        }
        let store = store_2d(&pts);
        let params = DbscoutParams::new(0.3, 4).unwrap();
        let shuffle = DistributedDbscout::new(ctx(), params)
            .with_strategy(JoinStrategy::Shuffle)
            .detect(&store)
            .unwrap();
        let grouped = DistributedDbscout::new(ctx(), params)
            .with_strategy(JoinStrategy::GroupedShuffle)
            .detect(&store)
            .unwrap();
        assert_eq!(shuffle.labels, grouped.labels);
        assert!(
            grouped.stats.distance_computations < shuffle.stats.distance_computations,
            "grouped {} !< shuffle {}",
            grouped.stats.distance_computations,
            shuffle.stats.distance_computations
        );
    }

    #[test]
    fn point_rec_coords_round_trip() {
        let rec = PointRec::new(7, &[1.5, -2.5, 3.0]);
        assert_eq!(rec.id, 7);
        assert_eq!(rec.coords(), &[1.5, -2.5, 3.0]);
    }
}
