//! Continuous outlier scores on top of the binary Definition-3 verdict.
//!
//! The paper's output is a set; many pipelines want a *ranking* (alerting
//! thresholds, top-N triage, ROC evaluation). The natural DBSCOUT-flavoured
//! score is the **distance to the nearest core point**: it is zero for
//! core points, at most ε for covered points, and `> ε` exactly for the
//! Definition-3 outliers — so thresholding the score at ε recovers the
//! exact outlier set, while the magnitude above ε says *how far* outside
//! every dense region a point lies.

use dbscout_spatial::{KdTree, PointStore};

use crate::error::Result;
use crate::labels::PointLabel;
use crate::native::Dbscout;
use crate::params::DbscoutParams;

/// Per-point nearest-core-distance scores plus the underlying run.
#[derive(Debug, Clone)]
pub struct ScoredResult {
    /// Distance from each point to its nearest core point (0 for core
    /// points; `f64::INFINITY` when the dataset has no core points).
    pub scores: Vec<f64>,
    /// The exact detection result the scores refine.
    pub result: crate::labels::OutlierResult,
}

/// Runs DBSCOUT and scores every point by its distance to the nearest
/// core point.
///
/// Cost: one DBSCOUT run plus one KD-tree over the core points and one
/// nearest-neighbor query per non-core point.
pub fn outlier_scores(store: &PointStore, params: DbscoutParams) -> Result<ScoredResult> {
    let result = Dbscout::new(params).detect(store)?;
    let core_ids: Vec<u32> = result
        .labels
        .iter()
        .enumerate()
        .filter(|(_, l)| matches!(l, PointLabel::Core))
        .map(|(i, _)| i as u32)
        .collect();

    let scores = if core_ids.is_empty() {
        vec![f64::INFINITY; store.len() as usize]
    } else {
        let cores = store.gather(&core_ids);
        let tree = KdTree::build(&cores);
        result
            .labels
            .iter()
            .enumerate()
            .map(|(i, l)| {
                if matches!(l, PointLabel::Core) {
                    0.0
                } else {
                    tree.knn(store.point(i as u32), 1)
                        .first()
                        .map_or(f64::INFINITY, |nn| nn.sq_dist.sqrt())
                }
            })
            .collect()
    };
    Ok(ScoredResult { scores, result })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_2d(points: &[[f64; 2]]) -> PointStore {
        PointStore::from_rows(2, points.iter().map(|p| p.to_vec())).unwrap()
    }

    fn chain_plus_stragglers() -> PointStore {
        let mut pts: Vec<[f64; 2]> = (0..6).map(|i| [i as f64 * 0.1, 0.0]).collect();
        pts.push([1.2, 0.0]); // covered (0.7 from the core at 0.5... within eps of core at 0.5)
        pts.push([5.0, 0.0]); // outlier, 4.5 from the nearest core
        pts.push([9.0, 0.0]); // outlier, farther
        store_2d(&pts)
    }

    #[test]
    fn score_semantics_match_labels() {
        let store = chain_plus_stragglers();
        let params = DbscoutParams::new(1.0, 5).unwrap();
        let scored = outlier_scores(&store, params).unwrap();
        for (i, l) in scored.result.labels.iter().enumerate() {
            match l {
                PointLabel::Core => assert_eq!(scored.scores[i], 0.0, "core {i}"),
                PointLabel::Covered => assert!(
                    scored.scores[i] <= params.eps,
                    "covered {i}: {}",
                    scored.scores[i]
                ),
                PointLabel::Outlier => assert!(
                    scored.scores[i] > params.eps,
                    "outlier {i}: {}",
                    scored.scores[i]
                ),
            }
        }
    }

    #[test]
    fn farther_outliers_score_higher() {
        let store = chain_plus_stragglers();
        let params = DbscoutParams::new(1.0, 5).unwrap();
        let scored = outlier_scores(&store, params).unwrap();
        assert!(scored.scores[8] > scored.scores[7]);
    }

    #[test]
    fn thresholding_at_eps_recovers_exact_outliers() {
        let store = chain_plus_stragglers();
        let params = DbscoutParams::new(1.0, 5).unwrap();
        let scored = outlier_scores(&store, params).unwrap();
        let by_threshold: Vec<u32> = scored
            .scores
            .iter()
            .enumerate()
            .filter(|(_, &s)| s > params.eps)
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(by_threshold, scored.result.outliers);
    }

    #[test]
    fn no_core_points_means_infinite_scores() {
        let store = store_2d(&[[0.0, 0.0], [100.0, 0.0]]);
        let params = DbscoutParams::new(1.0, 5).unwrap();
        let scored = outlier_scores(&store, params).unwrap();
        assert!(scored.scores.iter().all(|s| s.is_infinite()));
        assert_eq!(scored.result.num_outliers(), 2);
    }

    #[test]
    fn empty_store() {
        let store = PointStore::new(2).unwrap();
        let params = DbscoutParams::new(1.0, 5).unwrap();
        let scored = outlier_scores(&store, params).unwrap();
        assert!(scored.scores.is_empty());
    }
}
