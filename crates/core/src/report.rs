//! Assembles the machine-readable [`RunReport`] from a finished
//! detection: parameter/dataset echo, per-phase wall-clock, the engine's
//! per-stage records, and whole-run totals. The CLI renders the result
//! with [`RunReport::to_json`] for `--report-json`.

use std::time::Duration;

use dbscout_dataflow::{MetricsSnapshot, ProcessPoolStats, StageRecord};
use dbscout_telemetry::{
    DatasetEcho, ParamsEcho, PhaseReport, ProcessReport, RunReport, StageReport, TotalsReport,
    WorkerReport,
};

use crate::distributed::PHASE_NAMES;
use crate::labels::OutlierResult;
use crate::params::DbscoutParams;

/// Run facts the report needs that neither the result nor the metrics
/// carry: where the data came from and how the engine was configured.
#[derive(Debug, Clone, Default)]
pub struct RunInfo {
    /// Path (or generator description) the points came from.
    pub source: String,
    /// Number of points fed to the detector.
    pub points: u64,
    /// Point dimensionality.
    pub dimensions: u64,
    /// Which engine ran (`"native"` or `"distributed"`).
    pub engine: String,
    /// Number of data partitions (0 for the native engine).
    pub partitions: u64,
    /// Number of worker threads.
    pub workers: u64,
    /// The resolved distance kernel the run used (`"scalar"` or
    /// `"unrolled"`; callers resolve `Auto` and the hashed layout's
    /// scalar-only constraint before echoing — see
    /// [`crate::ExecutionConfig::resolved_kernel`]).
    pub kernel: String,
    /// The in-process worker-thread count the run resolved to (0 when
    /// no thread pool ran in-process).
    pub threads: u64,
    /// The `DBSCOUT_CHAOS_SEED` in effect, if any.
    pub chaos_seed: Option<u64>,
    /// Peak resident set size observed for the process, in bytes.
    ///
    /// Environment-derived (callers typically pass
    /// `dbscout_telemetry::peak_rss_bytes()`); 0 means "unknown".
    pub peak_rss_bytes: u64,
}

fn micros(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Converts one engine [`StageRecord`] into its report form, collapsing
/// the task-duration histogram to p50/p95/max.
pub fn stage_report(record: &StageRecord) -> StageReport {
    StageReport {
        label: record.label.clone(),
        tasks: record.tasks,
        records_in: record.records_in,
        records_out: record.records_out,
        shuffle_records: record.shuffle_records,
        shuffle_bytes: record.shuffle_bytes,
        join_output_records: record.join_output_records,
        task_retries: record.task_retries,
        speculative_launches: record.speculative_launches,
        speculative_wins: record.speculative_wins,
        injected_faults: record.injected_faults,
        worker_kills: record.worker_kills,
        worker_respawns: record.worker_respawns,
        task_reassignments: record.task_reassignments,
        task_duration_p50_us: micros(record.task_durations.p50()),
        task_duration_p95_us: micros(record.task_durations.p95()),
        task_duration_max_us: micros(record.task_durations.max()),
        cells_visited: record.kernel.cells_visited,
        bbox_prunes: record.kernel.bbox_prunes,
        early_exit_hits: record.kernel.early_exit_hits,
        distance_evals: record.kernel.distance_evals,
    }
}

/// Converts the process pool's run summary into its report form.
pub fn process_report(stats: &ProcessPoolStats) -> ProcessReport {
    ProcessReport {
        workers: stats.workers as u64,
        workers_spawned: stats.workers_spawned,
        worker_kills: stats.worker_kills,
        worker_respawns: stats.worker_respawns,
        task_reassignments: stats.task_reassignments,
        poisoned_tasks: stats.poisoned_tasks,
        child_peak_rss_bytes: stats.child_peak_rss_bytes,
        child_cpu_time_us: stats.child_cpu_time_us,
        per_worker: stats
            .per_worker
            .iter()
            .map(|w| WorkerReport {
                slot: w.slot as u64,
                spawns: w.spawns,
                kills: w.kills,
                respawns: w.respawns,
                tasks_completed: w.tasks_completed,
                peak_rss_bytes: w.peak_rss_bytes,
                cpu_time_us: w.cpu_time_us,
            })
            .collect(),
    }
}

/// Builds the complete run report.
///
/// `metrics` supplies the whole-run aggregates (pass
/// `ctx.metrics().snapshot()` for the distributed engine, or
/// [`MetricsSnapshot::default`] for the native one), `stage_records` the
/// per-stage detail (`ctx.metrics().stage_records()`), `process` the
/// pool summary when the process backend ran (`ctx.process_stats()`),
/// and `wall_clock` the end-to-end detection time.
pub fn build_run_report(
    info: &RunInfo,
    params: DbscoutParams,
    result: &OutlierResult,
    metrics: &MetricsSnapshot,
    stage_records: &[StageRecord],
    process: Option<&ProcessPoolStats>,
    wall_clock: Duration,
) -> RunReport {
    let timings = result.timings;
    let phase_durations = [
        timings.grid,
        timings.dense_map,
        timings.core_points,
        timings.core_map,
        timings.outliers,
    ];
    let phases = PHASE_NAMES
        .iter()
        .zip(phase_durations)
        .map(|(name, d)| PhaseReport {
            name: (*name).to_owned(),
            wall_clock_us: micros(d),
        })
        .collect();
    RunReport {
        dataset: DatasetEcho {
            source: info.source.clone(),
            points: info.points,
            dimensions: info.dimensions,
        },
        params: ParamsEcho {
            engine: info.engine.clone(),
            eps: params.eps,
            min_pts: params.min_pts as u64,
            partitions: info.partitions,
            workers: info.workers,
            kernel: info.kernel.clone(),
            threads: info.threads,
            chaos_seed: info.chaos_seed,
        },
        phases,
        stages: stage_records.iter().map(stage_report).collect(),
        process: process.map(process_report),
        serve: None,
        totals: TotalsReport {
            stages: metrics.stages,
            tasks: metrics.tasks,
            records_in: metrics.records_in,
            records_out: metrics.records_out,
            shuffle_records: metrics.shuffle_records,
            shuffle_bytes: metrics.shuffle_bytes,
            broadcasts: metrics.broadcasts,
            join_output_records: metrics.join_output_records,
            task_retries: metrics.task_retries,
            speculative_launches: metrics.speculative_launches,
            speculative_wins: metrics.speculative_wins,
            injected_faults: metrics.injected_faults,
            worker_kills: metrics.worker_kills,
            worker_respawns: metrics.worker_respawns,
            task_reassignments: metrics.task_reassignments,
            outliers: result.num_outliers() as u64,
            // Kernel totals come from the result's own counters (not the
            // engine metrics) so native in-process runs and the process
            // backend report byte-identical values.
            cells_visited: result.stats.kernel.cells_visited,
            bbox_prunes: result.stats.kernel.bbox_prunes,
            early_exit_hits: result.stats.kernel.early_exit_hits,
            distance_evals: result.stats.kernel.distance_evals,
            peak_rss_bytes: info.peak_rss_bytes,
            child_peak_rss_bytes: process.map_or(0, |p| p.child_peak_rss_bytes),
            child_cpu_time_us: process.map_or(0, |p| p.child_cpu_time_us),
            wall_clock_us: micros(wall_clock),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributed::DistributedDbscout;
    use dbscout_dataflow::ExecutionContext;
    use dbscout_spatial::PointStore;
    use dbscout_telemetry::json::parse;
    use std::sync::Arc;
    use std::time::Instant;

    fn detect() -> (Arc<ExecutionContext>, OutlierResult, PointStore) {
        let ctx = ExecutionContext::builder()
            .workers(2)
            .default_partitions(4)
            .build();
        let mut rows: Vec<Vec<f64>> = (0..40).map(|i| vec![0.1 * f64::from(i), 0.0]).collect();
        rows.push(vec![1e6, 1e6]);
        let store = PointStore::from_rows(2, rows).unwrap();
        let params = DbscoutParams::new(1.0, 4).unwrap();
        let result = DistributedDbscout::new(Arc::clone(&ctx), params)
            .detect(&store)
            .unwrap();
        (ctx, result, store)
    }

    #[test]
    fn report_covers_phases_stages_and_totals() {
        let started = Instant::now();
        let (ctx, result, store) = detect();
        let info = RunInfo {
            source: "synthetic:line".to_owned(),
            points: u64::from(store.len()),
            dimensions: store.dims() as u64,
            engine: "distributed".to_owned(),
            partitions: 4,
            workers: 2,
            kernel: "scalar".to_owned(),
            threads: 0,
            chaos_seed: None,
            peak_rss_bytes: 0,
        };
        let report = build_run_report(
            &info,
            DbscoutParams::new(1.0, 4).unwrap(),
            &result,
            &ctx.metrics().snapshot(),
            &ctx.metrics().stage_records(),
            None,
            started.elapsed(),
        );

        let names: Vec<&str> = report.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, PHASE_NAMES);
        assert!(!report.stages.is_empty());
        assert!(report
            .stages
            .iter()
            .any(|s| s.label.starts_with("grid partitioning:")));
        assert!(report
            .stages
            .iter()
            .any(|s| s.label.starts_with("outlier pass:")));
        assert_eq!(report.totals.stages, report.stages.len() as u64);
        assert_eq!(report.totals.outliers, result.num_outliers() as u64);
        assert_eq!(
            report.totals.tasks,
            report.stages.iter().map(|s| s.tasks).sum::<u64>()
        );
        assert!(report.totals.broadcasts >= 2, "two cell-map broadcasts");
    }

    #[test]
    fn report_json_parses_and_echoes_params() {
        let (ctx, result, store) = detect();
        let info = RunInfo {
            source: "synthetic:line".to_owned(),
            points: u64::from(store.len()),
            dimensions: 2,
            engine: "distributed".to_owned(),
            partitions: 4,
            workers: 2,
            kernel: "scalar".to_owned(),
            threads: 0,
            chaos_seed: Some(7),
            peak_rss_bytes: 4096,
        };
        let report = build_run_report(
            &info,
            DbscoutParams::new(1.0, 4).unwrap(),
            &result,
            &ctx.metrics().snapshot(),
            &ctx.metrics().stage_records(),
            None,
            Duration::from_millis(12),
        );
        let doc = parse(&report.to_json()).unwrap();
        let params = doc.get("params").unwrap();
        assert_eq!(params.get("engine").unwrap().as_str(), Some("distributed"));
        assert_eq!(params.get("min_pts").unwrap().as_u64(), Some(4));
        assert_eq!(params.get("kernel").unwrap().as_str(), Some("scalar"));
        assert_eq!(params.get("threads").unwrap().as_u64(), Some(0));
        assert_eq!(params.get("chaos_seed").unwrap().as_u64(), Some(7));
        assert_eq!(
            doc.get("phases").unwrap().as_array().unwrap().len(),
            PHASE_NAMES.len()
        );
        assert_eq!(
            doc.get("totals")
                .unwrap()
                .get("wall_clock_us")
                .unwrap()
                .as_u64(),
            Some(12_000)
        );
        assert_eq!(
            doc.get("totals")
                .unwrap()
                .get("peak_rss_bytes")
                .unwrap()
                .as_u64(),
            Some(4096)
        );
    }

    #[test]
    fn native_engine_report_has_empty_stages() {
        let store = PointStore::from_rows(2, vec![vec![0.0, 0.0], vec![9.0, 9.0]]).unwrap();
        let params = DbscoutParams::new(1.0, 2).unwrap();
        let result = crate::native::detect_outliers(&store, params).unwrap();
        let info = RunInfo {
            engine: "native".to_owned(),
            points: u64::from(store.len()),
            dimensions: 2,
            ..RunInfo::default()
        };
        let report = build_run_report(
            &info,
            params,
            &result,
            &MetricsSnapshot::default(),
            &[],
            None,
            Duration::from_millis(1),
        );
        assert!(report.stages.is_empty());
        assert_eq!(report.totals.stages, 0);
        assert_eq!(report.phases.len(), 5);
        assert_eq!(report.totals.outliers, result.num_outliers() as u64);
    }
}
