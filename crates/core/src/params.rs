//! Algorithm parameters (the user-specified constants of paper §II).

use crate::error::{DbscoutError, Result};

/// The two DBSCAN-family parameters: a point is **core** when at least
/// `min_pts` points (itself included) lie within Euclidean distance `eps`
/// of it (Definition 2); a point is an **outlier** when no core point lies
/// within `eps` of it (Definition 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DbscoutParams {
    /// Neighborhood radius ε (finite, positive).
    pub eps: f64,
    /// Density threshold `minPts` (≥ 1).
    pub min_pts: usize,
}

impl DbscoutParams {
    /// Creates and validates a parameter set.
    ///
    /// # Errors
    ///
    /// Fails if `eps` is not finite-positive or `min_pts` is zero.
    pub fn new(eps: f64, min_pts: usize) -> Result<Self> {
        if !eps.is_finite() || eps <= 0.0 {
            return Err(DbscoutError::InvalidEpsilon { value: eps });
        }
        if min_pts == 0 {
            return Err(DbscoutError::InvalidMinPts { value: 0 });
        }
        Ok(Self { eps, min_pts })
    }

    /// ε² — every distance comparison uses squared distances.
    #[inline]
    pub fn eps_sq(&self) -> f64 {
        self.eps * self.eps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_params() {
        let p = DbscoutParams::new(0.5, 5).unwrap();
        assert_eq!(p.eps, 0.5);
        assert_eq!(p.min_pts, 5);
        assert_eq!(p.eps_sq(), 0.25);
    }

    #[test]
    fn invalid_eps() {
        for eps in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(DbscoutParams::new(eps, 5).is_err(), "eps {eps} accepted");
        }
    }

    #[test]
    fn invalid_min_pts() {
        assert_eq!(
            DbscoutParams::new(1.0, 0).unwrap_err(),
            DbscoutError::InvalidMinPts { value: 0 }
        );
    }

    #[test]
    fn min_pts_one_is_legal() {
        // With minPts = 1 every point is core (it neighbors itself), so
        // the parameter must not be rejected.
        assert!(DbscoutParams::new(1.0, 1).is_ok());
    }
}
