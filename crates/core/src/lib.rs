//! # DBSCOUT — exact, linear-time, parallel density-based outlier detection
//!
//! A Rust reproduction of *"DBSCOUT: A Density-based Method for Scalable
//! Outlier Detection in Very Large Datasets"* (Corain, Garza, Asudeh —
//! ICDE 2021).
//!
//! A point is an **outlier** when it lies within ε of no *core point*,
//! where a core point has at least `minPts` points within ε (the DBSCAN
//! definitions, but without ever building clusters). DBSCOUT partitions
//! space into ε-cells (hypercubes of diagonal ε) and exploits two facts:
//!
//! * a cell with ≥ `minPts` points contains only core points (Lemma 1);
//! * a cell containing any core point contains no outliers (Lemma 2);
//!
//! so that each point is compared only against points in the constant
//! number k_d of neighboring cells — O(n · minPts · k_d) distance
//! computations in total, i.e. **linear in n** (Lemmas 4–8), and **exact**
//! (no approximation).
//!
//! Two interchangeable engines are provided:
//!
//! * [`Dbscout`] — the native multi-threaded implementation (use this);
//! * [`DistributedDbscout`] — the paper's Spark formulation running on the
//!   [`dbscout_dataflow`] substrate, with the §III-G join optimizations
//!   selectable via [`JoinStrategy`]; used by the scalability experiments.
//!
//! ```
//! use dbscout_core::{detect_outliers, DbscoutParams};
//! use dbscout_spatial::PointStore;
//!
//! let mut rows: Vec<Vec<f64>> = (0..8).map(|i| vec![0.1 * i as f64, 0.0]).collect();
//! rows.push(vec![1e6, 1e6]); // an obvious outlier
//! let store = PointStore::from_rows(2, rows).unwrap();
//! let result = detect_outliers(&store, DbscoutParams::new(1.0, 4).unwrap()).unwrap();
//! assert_eq!(result.outliers, vec![8]);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
// Unit tests may panic freely; library code is held to the panic-freedom
// gates in `[workspace.lints]` and `cargo xtask lint`.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::indexing_slicing,
        clippy::panic,
        clippy::float_cmp
    )
)]
pub mod cellmap;
pub mod detector;
pub mod distributed;
pub mod error;
pub mod execution;
pub mod explain;
pub mod incremental;
pub mod labels;
pub mod native;
pub mod params;
pub mod process;
pub mod reference;
pub mod report;
pub mod scores;

pub use cellmap::{CellFlags, CellMap, CellType};
pub use dbscout_spatial::KernelKind;
pub use detector::{DetectorBuilder, OutlierDetector};
pub use distributed::{DistributedDbscout, JoinStrategy, PHASE_NAMES};
pub use error::{DbscoutError, Result};
pub use execution::ExecutionConfig;
pub use explain::{consistent, explain, Explanation};
pub use incremental::IncrementalDbscout;
pub use labels::{OutlierResult, PhaseTimings, PointLabel, RunStats};
pub use native::{detect_outliers, Dbscout, ExecutionLayout, NativeOptions};
pub use params::DbscoutParams;
pub use process::{detect_with_process_workers, run_worker, WorkerHandler};
pub use report::{build_run_report, process_report, stage_report, RunInfo};
pub use scores::{outlier_scores, ScoredResult};
