//! A brute-force O(n²) reference implementation of Definitions 2–3.
//!
//! This is the ground truth that DBSCOUT's exactness claim is tested
//! against: for every dataset and parameter set, `naive_labels` and
//! [`crate::detect_outliers`] must agree point-for-point. Keep this module
//! dead simple — its only job is to be obviously correct.

use dbscout_spatial::distance::within;
use dbscout_spatial::points::PointId;
use dbscout_spatial::PointStore;

use crate::labels::PointLabel;
use crate::params::DbscoutParams;

/// Labels every point by direct application of Definitions 2–3.
///
/// A point is **core** iff at least `min_pts` points (itself included) lie
/// within distance ≤ ε; an **outlier** iff no core point lies within ≤ ε;
/// **covered** otherwise.
pub fn naive_labels(store: &PointStore, params: DbscoutParams) -> Vec<PointLabel> {
    let n = store.len() as usize;
    let eps_sq = params.eps_sq();

    // Definition 2.
    let mut is_core = vec![false; n];
    for (i, p) in store.iter() {
        let mut count = 0usize;
        for (_, q) in store.iter() {
            if within(p, q, eps_sq) {
                count += 1;
            }
        }
        if let Some(slot) = is_core.get_mut(i as usize) {
            *slot = count >= params.min_pts;
        }
    }
    let core_at = |i: PointId| is_core.get(i as usize).copied().unwrap_or(false);

    // Definition 3.
    store
        .iter()
        .map(|(i, p)| {
            if core_at(i) {
                return PointLabel::Core;
            }
            let covered = store
                .iter()
                .any(|(j, q)| core_at(j) && within(p, q, eps_sq));
            if covered {
                PointLabel::Covered
            } else {
                PointLabel::Outlier
            }
        })
        .collect()
}

/// Outlier ids per the naive reference, ascending.
pub fn naive_outliers(store: &PointStore, params: DbscoutParams) -> Vec<PointId> {
    naive_labels(store, params)
        .iter()
        .enumerate()
        .filter(|(_, l)| l.is_outlier())
        .map(|(i, _)| i as PointId)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_2d(points: &[[f64; 2]]) -> PointStore {
        PointStore::from_rows(2, points.iter().map(|p| p.to_vec())).unwrap()
    }

    #[test]
    fn classifies_paper_style_toy() {
        // Dense blob of 5 coincident points, one reachable point, one far
        // point.
        let mut pts = vec![[0.0, 0.0]; 5];
        pts.push([0.5, 0.0]);
        pts.push([9.0, 9.0]);
        let store = store_2d(&pts);
        let labels = naive_labels(&store, DbscoutParams::new(1.0, 5).unwrap());
        assert_eq!(labels[0], PointLabel::Core);
        // The 6th point has 6 neighbors within eps (all blob points plus
        // itself) => also core.
        assert_eq!(labels[5], PointLabel::Core);
        assert_eq!(labels[6], PointLabel::Outlier);
    }

    #[test]
    fn covered_point() {
        // A chain of 5 points spaced 0.1 apart (all core with eps = 0.5,
        // minPts = 5) and a hanger-on at 0.9: only 2 neighbors within
        // eps, but within eps of the core point at 0.4 — covered.
        let mut pts: Vec<[f64; 2]> = (0..5).map(|i| [i as f64 * 0.1, 0.0]).collect();
        pts.push([0.9, 0.0]);
        let store = store_2d(&pts);
        let labels = naive_labels(&store, DbscoutParams::new(0.5, 5).unwrap());
        assert_eq!(labels[5], PointLabel::Covered);
    }

    #[test]
    fn naive_outliers_ids() {
        let pts = vec![[0.0, 0.0], [100.0, 0.0], [200.0, 0.0]];
        let store = store_2d(&pts);
        let outliers = naive_outliers(&store, DbscoutParams::new(1.0, 2).unwrap());
        assert_eq!(outliers, vec![0, 1, 2]);
    }
}
