//! Incremental (insert-only) DBSCOUT — an extension beyond the paper.
//!
//! The batch algorithm answers "which points are outliers *now*"; GPS
//! workloads, the paper's motivating domain, grow continuously. Because
//! the Definition 2–3 quantities are monotone under insertion (neighbor
//! counts only grow, so points only ever move Outlier → Covered → Core,
//! never back), outlier status can be maintained exactly with work
//! localized to the new point's cell neighborhood:
//!
//! * the new point's ε-neighbors each gain one neighbor — some cross the
//!   `minPts` threshold and become core;
//! * every newly-core point immediately covers the former outliers in
//!   its own ε-ball;
//! * the new point itself is labelled by the usual rules.
//!
//! Each insertion touches only the O(k_d) neighboring cells of the
//! affected points, so maintenance stays constant-time for fixed
//! parameters (amortized over bounded-density data). A property test
//! pins the invariant: after any insertion sequence the labels equal a
//! from-scratch batch run.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::BuildHasherDefault;

use dbscout_spatial::cell::{cell_of, cell_side, CellCoord};
use dbscout_spatial::distance::within;
use dbscout_spatial::points::PointId;
use dbscout_spatial::{NeighborOffsets, PointStore};

use crate::error::Result;
use crate::labels::{OutlierResult, PhaseTimings, PointLabel, RunStats};
use crate::params::DbscoutParams;

type DetState = BuildHasherDefault<DefaultHasher>;

/// An insert-only, exactly-maintained DBSCOUT state.
///
/// ```
/// use dbscout_core::incremental::IncrementalDbscout;
/// use dbscout_core::{DbscoutParams, PointLabel};
///
/// let params = DbscoutParams::new(1.0, 3).unwrap();
/// let mut inc = IncrementalDbscout::new(2, params).unwrap();
/// let lone = inc.insert(&[100.0, 100.0]).unwrap();
/// assert_eq!(inc.label(lone), PointLabel::Outlier);
/// for i in 0..3 {
///     inc.insert(&[i as f64 * 0.1, 0.0]).unwrap();
/// }
/// // The cluster is dense now; the far point is still the only outlier.
/// assert_eq!(inc.outliers(), vec![lone]);
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalDbscout {
    params: DbscoutParams,
    side: f64,
    store: PointStore,
    cells: HashMap<CellCoord, Vec<PointId>, DetState>,
    offsets: NeighborOffsets,
    /// Exact ε-neighbor count per point (self included).
    counts: Vec<u32>,
    labels: Vec<PointLabel>,
    /// Tombstones: `false` once a point has been removed. Removed points
    /// keep their slot (ids stay stable) but leave every computation.
    alive: Vec<bool>,
    num_alive: usize,
}

impl IncrementalDbscout {
    /// An empty incremental detector for `dims`-dimensional points.
    pub fn new(dims: usize, params: DbscoutParams) -> Result<Self> {
        let offsets = NeighborOffsets::new(dims)?;
        Ok(Self {
            params,
            side: cell_side(params.eps, dims),
            store: PointStore::new(dims)?,
            cells: HashMap::default(),
            offsets,
            counts: Vec::new(),
            labels: Vec::new(),
            alive: Vec::new(),
            num_alive: 0,
        })
    }

    /// Bulk-loads an initial dataset (equivalent to inserting every point
    /// in order, but with the counts computed in one pass).
    pub fn from_store(store: &PointStore, params: DbscoutParams) -> Result<Self> {
        let mut inc = Self::new(store.dims(), params)?;
        for (_, p) in store.iter() {
            inc.insert(p)?;
        }
        Ok(inc)
    }

    /// Number of live (non-removed) points.
    pub fn len(&self) -> usize {
        self.num_alive
    }

    /// Whether the detector holds no live points.
    pub fn is_empty(&self) -> bool {
        self.num_alive == 0
    }

    /// Number of slots ever allocated (live + removed); ids are always
    /// `0..total_inserted()`.
    pub fn total_inserted(&self) -> usize {
        self.labels.len()
    }

    /// Whether `id` is live (inserted and not removed).
    pub fn is_alive(&self, id: PointId) -> bool {
        self.alive.get(id as usize).copied().unwrap_or(false)
    }

    /// The configured parameters.
    pub fn params(&self) -> DbscoutParams {
        self.params
    }

    /// The current label of a point. Ids this detector never issued
    /// report [`PointLabel::Outlier`].
    pub fn label(&self, id: PointId) -> PointLabel {
        self.labels
            .get(id as usize)
            .copied()
            .unwrap_or(PointLabel::Outlier)
    }

    /// All current labels, indexed by point id.
    pub fn labels(&self) -> &[PointLabel] {
        &self.labels
    }

    /// Ids of all current live outliers, ascending.
    pub fn outliers(&self) -> Vec<PointId> {
        self.labels
            .iter()
            .zip(&self.alive)
            .enumerate()
            .filter(|&(_, (l, &alive))| alive && l.is_outlier())
            .map(|(i, _)| i as PointId)
            .collect()
    }

    /// The underlying point store.
    pub fn store(&self) -> &PointStore {
        &self.store
    }

    /// The current state as a batch [`OutlierResult`] (one label per
    /// ever-issued id). Removed points are reported as
    /// [`PointLabel::Covered`] so they never surface in the outlier list;
    /// timings and distance counters are zero — the incremental engine
    /// spreads its work across insertions.
    pub fn snapshot(&self) -> OutlierResult {
        let labels: Vec<PointLabel> = self
            .labels
            .iter()
            .zip(&self.alive)
            .map(|(&l, &alive)| if alive { l } else { PointLabel::Covered })
            .collect();
        let min_pts = self.params.min_pts;
        let mut dense_cells = 0;
        let mut core_cells = 0;
        // xlint: ordered -- counting matches is order-insensitive
        for ids in self.cells.values() {
            dense_cells += usize::from(ids.len() >= min_pts);
            let has_core = ids
                .iter()
                .any(|&id| self.labels.get(id as usize) == Some(&PointLabel::Core));
            core_cells += usize::from(has_core);
        }
        let stats = RunStats {
            num_cells: self.cells.len(),
            dense_cells,
            core_cells,
            ..RunStats::default()
        };
        OutlierResult::from_labels(labels, stats, PhaseTimings::default())
    }

    /// Inserts one point and restores all label invariants; returns the
    /// new point's id.
    ///
    /// # Errors
    ///
    /// Fails on dimension mismatch or non-finite coordinates
    /// ([`dbscout_spatial::SpatialError`] via [`crate::DbscoutError`]).
    pub fn insert(&mut self, point: &[f64]) -> Result<PointId> {
        let id = self.store.push(point)?;
        let eps_sq = self.params.eps_sq();
        let min_pts = self.params.min_pts as u32;
        let cell = cell_of(point, self.side);

        // Find all ε-neighbors of the new point among existing points and
        // bump their counts; collect the ones that just became core.
        let mut my_count = 1u32; // self
        let mut newly_core: Vec<PointId> = Vec::new();
        for off in self.offsets.iter() {
            let ncell = NeighborOffsets::apply(&cell, off);
            let Some(ids) = self.cells.get(&ncell) else {
                continue;
            };
            for &q in ids {
                if within(point, self.store.point(q), eps_sq) {
                    my_count += 1;
                    if let Some(cnt) = self.counts.get_mut(q as usize) {
                        *cnt += 1;
                        if *cnt == min_pts {
                            newly_core.push(q);
                        }
                    }
                }
            }
        }

        // Label the new point before registering it, so the coverage scan
        // only ever sees fully-labelled points.
        let label = if my_count >= min_pts {
            newly_core.push(id);
            PointLabel::Core
        } else if self.covered_by_core(point, &cell) {
            PointLabel::Covered
        } else {
            PointLabel::Outlier
        };
        self.cells.entry(cell).or_default().push(id);
        self.counts.push(my_count);
        self.labels.push(label);
        self.alive.push(true);
        self.num_alive += 1;

        // Every newly-core point upgrades itself and rescues the former
        // outliers inside its ε-ball (monotone: no downgrade can occur).
        for c in newly_core {
            if let Some(l) = self.labels.get_mut(c as usize) {
                *l = PointLabel::Core;
            }
            let (ccell, cpoint) = {
                let p = self.store.point(c);
                (cell_of(p, self.side), p.to_vec())
            };
            for off in self.offsets.iter() {
                let ncell = NeighborOffsets::apply(&ccell, off);
                let Some(ids) = self.cells.get(&ncell) else {
                    continue;
                };
                for &q in ids {
                    if self.labels.get(q as usize) == Some(&PointLabel::Outlier)
                        && within(&cpoint, self.store.point(q), eps_sq)
                    {
                        if let Some(l) = self.labels.get_mut(q as usize) {
                            *l = PointLabel::Covered;
                        }
                    }
                }
            }
        }
        Ok(id)
    }

    /// Inserts a batch of points; returns the id of the first one (ids
    /// are consecutive).
    ///
    /// # Errors
    ///
    /// Fails on the first invalid point; earlier points of the batch
    /// remain inserted.
    pub fn extend(&mut self, store: &PointStore) -> Result<PointId> {
        let first = self.total_inserted() as PointId;
        for (_, p) in store.iter() {
            self.insert(p)?;
        }
        Ok(first)
    }

    /// Removes a live point and restores all label invariants for the
    /// remaining points; returns `false` if `id` was already removed (or
    /// never existed).
    ///
    /// Deletion is the non-monotone direction: ε-neighbors of the removed
    /// point lose one neighbor each, demoted core points stop vouching
    /// for their surroundings, and points they covered may revert to
    /// outliers. All effects are confined to the 2-hop cell neighborhood
    /// of the removed point, so the work stays constant for fixed
    /// parameters on bounded-density data.
    pub fn remove(&mut self, id: PointId) -> bool {
        if !self.is_alive(id) {
            return false;
        }
        let eps_sq = self.params.eps_sq();
        let min_pts = self.params.min_pts as u32;
        let point = self.store.point(id).to_vec();
        let cell = cell_of(&point, self.side);

        // Unregister the point. A live point is always indexed under its
        // cell; tolerating a missing entry keeps this path panic-free.
        if let Some(a) = self.alive.get_mut(id as usize) {
            *a = false;
        }
        self.num_alive -= 1;
        if let Some(members) = self.cells.get_mut(&cell) {
            if let Some(pos) = members.iter().position(|&q| q == id) {
                members.swap_remove(pos);
            }
            if members.is_empty() {
                self.cells.remove(&cell);
            }
        }

        // Decrement neighbor counts; collect core points that lost their
        // status, plus the removed point itself if it was core — their
        // coverage contributions vanish together.
        let mut lost_cores: Vec<PointId> = Vec::new();
        if self.labels.get(id as usize) == Some(&PointLabel::Core) {
            lost_cores.push(id);
        }
        for off in self.offsets.iter() {
            let ncell = NeighborOffsets::apply(&cell, off);
            let Some(ids) = self.cells.get(&ncell) else {
                continue;
            };
            for &q in ids {
                if within(&point, self.store.point(q), eps_sq) {
                    let demoted = match self.counts.get_mut(q as usize) {
                        Some(cnt) => {
                            *cnt -= 1;
                            *cnt == min_pts - 1
                        }
                        None => false,
                    };
                    if demoted && self.labels.get(q as usize) == Some(&PointLabel::Core) {
                        lost_cores.push(q);
                    }
                }
            }
        }

        // First drop every lost core out of the Core class so the
        // coverage scans below see the post-removal core set...
        for &c in &lost_cores {
            if let Some(l) = self.labels.get_mut(c as usize) {
                *l = PointLabel::Covered; // provisional
            }
        }
        // ...then re-evaluate every live point that may have depended on
        // a lost core: the demoted points themselves and all Covered
        // points within ε of any lost core.
        let mut affected: Vec<PointId> = Vec::new();
        for &c in &lost_cores {
            if c != id {
                affected.push(c);
            }
            let cpoint = self.store.point(c).to_vec();
            let ccell = cell_of(&cpoint, self.side);
            for off in self.offsets.iter() {
                let ncell = NeighborOffsets::apply(&ccell, off);
                let Some(ids) = self.cells.get(&ncell) else {
                    continue;
                };
                for &r in ids {
                    if self.labels.get(r as usize) == Some(&PointLabel::Covered)
                        && within(&cpoint, self.store.point(r), eps_sq)
                    {
                        affected.push(r);
                    }
                }
            }
        }
        affected.sort_unstable();
        affected.dedup();
        for r in affected {
            if self.labels.get(r as usize) == Some(&PointLabel::Core) {
                continue; // still core through its own count
            }
            let rpoint = self.store.point(r).to_vec();
            let rcell = cell_of(&rpoint, self.side);
            let verdict = if self.covered_by_core(&rpoint, &rcell) {
                PointLabel::Covered
            } else {
                PointLabel::Outlier
            };
            if let Some(l) = self.labels.get_mut(r as usize) {
                *l = verdict;
            }
        }
        true
    }

    /// Whether `point` lies within ε of some existing core point.
    fn covered_by_core(&self, point: &[f64], cell: &CellCoord) -> bool {
        let eps_sq = self.params.eps_sq();
        for off in self.offsets.iter() {
            let ncell = NeighborOffsets::apply(cell, off);
            let Some(ids) = self.cells.get(&ncell) else {
                continue;
            };
            for &q in ids {
                if self.labels.get(q as usize) == Some(&PointLabel::Core)
                    && within(point, self.store.point(q), eps_sq)
                {
                    return true;
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::detect_outliers;

    fn params(eps: f64, min_pts: usize) -> DbscoutParams {
        DbscoutParams::new(eps, min_pts).unwrap()
    }

    #[test]
    fn single_point_is_outlier_unless_min_pts_one() {
        let mut inc = IncrementalDbscout::new(2, params(1.0, 2)).unwrap();
        let id = inc.insert(&[0.0, 0.0]).unwrap();
        assert_eq!(inc.label(id), PointLabel::Outlier);

        let mut inc = IncrementalDbscout::new(2, params(1.0, 1)).unwrap();
        let id = inc.insert(&[0.0, 0.0]).unwrap();
        assert_eq!(inc.label(id), PointLabel::Core);
    }

    #[test]
    fn labels_upgrade_monotonically_as_cluster_forms() {
        let mut inc = IncrementalDbscout::new(2, params(1.0, 4)).unwrap();
        let first = inc.insert(&[0.0, 0.0]).unwrap();
        assert_eq!(inc.label(first), PointLabel::Outlier);
        inc.insert(&[0.2, 0.0]).unwrap();
        inc.insert(&[0.0, 0.2]).unwrap();
        // Still below minPts = 4.
        assert_eq!(inc.label(first), PointLabel::Outlier);
        inc.insert(&[0.2, 0.2]).unwrap();
        // Now every point has 4 neighbors: all core.
        for i in 0..4 {
            assert_eq!(inc.label(i), PointLabel::Core, "point {i}");
        }
    }

    #[test]
    fn newly_core_point_rescues_distant_outlier() {
        // A border point beyond the forming cluster becomes covered the
        // moment its neighbor turns core.
        let mut inc = IncrementalDbscout::new(2, params(0.5, 5)).unwrap();
        let border = inc.insert(&[0.9, 0.0]).unwrap();
        for i in 0..5 {
            inc.insert(&[i as f64 * 0.1, 0.0]).unwrap();
        }
        // The chain 0.0..0.4 is core; 0.9 is within 0.5 of the core at
        // 0.4 but has only 2 neighbors.
        assert_eq!(inc.label(border), PointLabel::Covered);
    }

    #[test]
    fn matches_batch_after_every_insert() {
        // The exactness invariant, checked at every prefix.
        let pts: Vec<[f64; 2]> = vec![
            [0.0, 0.0],
            [10.0, 10.0],
            [0.3, 0.1],
            [0.1, 0.3],
            [0.2, 0.2],
            [1.2, 0.0],
            [10.1, 10.1],
            [10.2, 9.9],
            [0.15, 0.15],
            [2.0, 0.2],
            [10.05, 10.05],
        ];
        let p = params(1.0, 4);
        let mut inc = IncrementalDbscout::new(2, p).unwrap();
        let mut batch_store = PointStore::new(2).unwrap();
        for pt in &pts {
            inc.insert(pt).unwrap();
            batch_store.push(pt).unwrap();
            let batch = detect_outliers(&batch_store, p).unwrap();
            assert_eq!(
                inc.labels(),
                batch.labels.as_slice(),
                "diverged after {} inserts",
                batch_store.len()
            );
        }
    }

    #[test]
    fn from_store_equals_batch() {
        let store = PointStore::from_rows(
            2,
            (0..60).map(|i| vec![(i % 8) as f64 * 0.4, (i / 8) as f64 * 0.4]),
        )
        .unwrap();
        let p = params(1.0, 5);
        let inc = IncrementalDbscout::from_store(&store, p).unwrap();
        let batch = detect_outliers(&store, p).unwrap();
        assert_eq!(inc.labels(), batch.labels.as_slice());
        assert_eq!(inc.outliers(), batch.outliers);
        assert_eq!(inc.len(), 60);
    }

    #[test]
    fn extend_matches_pointwise_inserts() {
        let store = PointStore::from_rows(
            2,
            (0..30).map(|i| vec![(i % 6) as f64 * 0.3, (i / 6) as f64 * 0.3]),
        )
        .unwrap();
        let p = params(1.0, 4);
        let mut batch = IncrementalDbscout::new(2, p).unwrap();
        let first = batch.extend(&store).unwrap();
        assert_eq!(first, 0);
        let pointwise = IncrementalDbscout::from_store(&store, p).unwrap();
        assert_eq!(batch.labels(), pointwise.labels());
        // Extending again starts at the next id.
        let second = batch.extend(&store).unwrap();
        assert_eq!(second, 30);
        assert_eq!(batch.len(), 60);
    }

    #[test]
    fn rejects_bad_input() {
        let mut inc = IncrementalDbscout::new(2, params(1.0, 3)).unwrap();
        assert!(inc.insert(&[1.0]).is_err());
        assert!(inc.insert(&[f64::NAN, 0.0]).is_err());
        assert!(inc.is_empty());
    }

    #[test]
    fn remove_reverts_labels() {
        // Build a minimal core configuration, then dismantle it.
        let mut inc = IncrementalDbscout::new(2, params(0.5, 3)).unwrap();
        let a = inc.insert(&[0.0, 0.0]).unwrap();
        let b = inc.insert(&[0.1, 0.0]).unwrap();
        let c = inc.insert(&[0.2, 0.0]).unwrap();
        // d reaches only c (dist 0.5 exactly; a and b are too far).
        let d = inc.insert(&[0.7, 0.0]).unwrap();
        assert_eq!(inc.label(a), PointLabel::Core);
        assert_eq!(inc.label(c), PointLabel::Core);
        assert_eq!(inc.label(d), PointLabel::Covered);

        // Removing the bridge point c demotes a and b (2 neighbors left)
        // and strands d entirely.
        assert!(inc.remove(c));
        assert_eq!(inc.label(a), PointLabel::Outlier);
        assert_eq!(inc.label(b), PointLabel::Outlier);
        assert_eq!(inc.label(d), PointLabel::Outlier);
        assert!(!inc.is_alive(c));
        assert_eq!(inc.len(), 3);
    }

    #[test]
    fn remove_is_idempotent_and_checked() {
        let mut inc = IncrementalDbscout::new(2, params(1.0, 2)).unwrap();
        let id = inc.insert(&[0.0, 0.0]).unwrap();
        assert!(inc.remove(id));
        assert!(!inc.remove(id), "double remove must report false");
        assert!(!inc.remove(99), "unknown id must report false");
        assert!(inc.is_empty());
    }

    #[test]
    fn insert_after_remove_reuses_nothing_but_works() {
        let mut inc = IncrementalDbscout::new(2, params(1.0, 2)).unwrap();
        let a = inc.insert(&[0.0, 0.0]).unwrap();
        inc.remove(a);
        let b = inc.insert(&[0.0, 0.0]).unwrap();
        assert_ne!(a, b, "ids are never reused");
        assert_eq!(inc.total_inserted(), 2);
        assert_eq!(inc.len(), 1);
        assert_eq!(inc.outliers(), vec![b]);
    }

    #[test]
    fn mixed_insert_remove_matches_batch() {
        // A scripted churn sequence; after every operation the live
        // points must carry exactly the batch labels.
        let inserts: Vec<[f64; 2]> = vec![
            [0.0, 0.0],
            [0.2, 0.0],
            [0.0, 0.2],
            [0.2, 0.2],
            [1.0, 0.0],
            [5.0, 5.0],
            [5.2, 5.0],
            [5.0, 5.2],
            [0.1, 0.1],
            [5.1, 5.1],
        ];
        let p = params(0.9, 4);
        let mut inc = IncrementalDbscout::new(2, p).unwrap();
        let mut ids = Vec::new();
        for pt in &inserts {
            ids.push(inc.insert(pt).unwrap());
        }
        for &victim in &[ids[1], ids[6], ids[0], ids[9]] {
            inc.remove(victim);
            // Rebuild the live subset and compare against a batch run.
            let live: Vec<u32> = (0..inc.total_inserted() as u32)
                .filter(|&i| inc.is_alive(i))
                .collect();
            let batch_store = inc.store().gather(&live);
            let batch = detect_outliers(&batch_store, p).unwrap();
            for (bi, &id) in live.iter().enumerate() {
                assert_eq!(
                    inc.label(id),
                    batch.labels[bi],
                    "label of {id} diverged after removing {victim}"
                );
            }
        }
    }

    #[test]
    fn duplicate_points_count_individually() {
        let mut inc = IncrementalDbscout::new(2, params(1.0, 3)).unwrap();
        inc.insert(&[5.0, 5.0]).unwrap();
        inc.insert(&[5.0, 5.0]).unwrap();
        assert_eq!(inc.outliers().len(), 2);
        inc.insert(&[5.0, 5.0]).unwrap();
        // Three coincident points with minPts = 3: all core.
        assert_eq!(inc.outliers().len(), 0);
        assert!(inc.labels().iter().all(|l| *l == PointLabel::Core));
    }
}
