//! Outlier explanations — the companion problem the paper's related-work
//! section points at (Dang et al., "Local outlier detection with
//! interpretation"): *why* is this point an outlier, and what would have
//! to change for it not to be?
//!
//! For the density definitions an explanation is fully determined by two
//! counterfactual quantities:
//!
//! * `eps_to_cover` — the smallest radius at which the point would stop
//!   being an outlier *given the current core set* (its distance to the
//!   nearest core point);
//! * `neighbors_within_eps` — how many points it actually has nearby,
//!   vs. the `minPts` it would need to be core itself.

use dbscout_spatial::points::PointId;
use dbscout_spatial::{KdTree, PointStore};

use crate::error::Result;
use crate::labels::{OutlierResult, PointLabel};
use crate::params::DbscoutParams;

/// Why one point received its label.
#[derive(Debug, Clone, PartialEq)]
pub struct Explanation {
    /// The point being explained.
    pub id: PointId,
    /// Its label in the run being explained.
    pub label: PointLabel,
    /// Number of points within ε (itself included) — `≥ minPts` iff core.
    pub neighbors_within_eps: usize,
    /// The nearest core point and its distance, when any core exists.
    pub nearest_core: Option<(PointId, f64)>,
    /// The smallest ε (given the current core set) at which this point
    /// would be covered; `None` when no core points exist at all.
    pub eps_to_cover: Option<f64>,
    /// How many additional nearby points this point would have needed to
    /// be core itself (0 for core points).
    pub deficit_to_core: usize,
}

/// Explains every requested point of a finished run.
///
/// Builds one KD-tree over the full dataset and one over the core set,
/// so explaining `k` points costs `O(n log n + k log n)`.
pub fn explain(
    store: &PointStore,
    result: &OutlierResult,
    params: DbscoutParams,
    ids: &[PointId],
) -> Result<Vec<Explanation>> {
    let eps_sq = params.eps_sq();
    let all = KdTree::build(store);
    let core_ids: Vec<PointId> = result
        .labels
        .iter()
        .enumerate()
        .filter(|(_, l)| matches!(l, PointLabel::Core))
        .map(|(i, _)| i as PointId)
        .collect();
    let core_store = store.gather(&core_ids);
    let core_tree = (!core_ids.is_empty()).then(|| KdTree::build(&core_store));

    Ok(ids
        .iter()
        .map(|&id| {
            let p = store.point(id);
            let neighbors = all
                .within_radius(p, params.eps)
                .iter()
                .filter(|n| n.sq_dist <= eps_sq)
                .count();
            let nearest_core = core_tree.as_ref().and_then(|t| {
                t.knn(p, 1).first().map(|nn| {
                    let cid = core_ids.get(nn.id as usize).copied().unwrap_or(nn.id);
                    (cid, nn.sq_dist.sqrt())
                })
            });
            Explanation {
                id,
                label: result
                    .labels
                    .get(id as usize)
                    .copied()
                    .unwrap_or(PointLabel::Outlier),
                neighbors_within_eps: neighbors,
                nearest_core,
                eps_to_cover: nearest_core.map(|(cid, d)| {
                    // A core point explains itself at radius 0.
                    if cid == id {
                        0.0
                    } else {
                        d
                    }
                }),
                deficit_to_core: params.min_pts.saturating_sub(neighbors),
            }
        })
        .collect())
}

/// Render an explanation as one human-readable line.
impl std::fmt::Display for Explanation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "point {}: {:?}; {} neighbors within eps",
            self.id, self.label, self.neighbors_within_eps
        )?;
        if self.deficit_to_core > 0 {
            write!(f, " ({} short of core)", self.deficit_to_core)?;
        }
        match self.nearest_core {
            Some((cid, d)) if cid != self.id => {
                write!(f, "; nearest core point {cid} at distance {d:.4}")
            }
            Some(_) => write!(f, "; is itself core"),
            None => write!(f, "; no core points exist"),
        }
    }
}

/// Sanity check used by tests and callers: an explanation must be
/// consistent with the label it explains.
pub fn consistent(e: &Explanation, params: DbscoutParams) -> bool {
    match e.label {
        PointLabel::Core => e.neighbors_within_eps >= params.min_pts && e.deficit_to_core == 0,
        PointLabel::Covered => {
            e.neighbors_within_eps < params.min_pts
                && e.eps_to_cover.is_some_and(|d| d <= params.eps)
        }
        PointLabel::Outlier => {
            e.neighbors_within_eps < params.min_pts && e.eps_to_cover.is_none_or(|d| d > params.eps)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::detect_outliers;

    fn setup() -> (PointStore, OutlierResult, DbscoutParams) {
        let mut pts: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64 * 0.1, 0.0]).collect();
        pts.push(vec![0.9, 0.0]); // covered by the core at 0.4
        pts.push(vec![5.0, 0.0]); // outlier
        let store = PointStore::from_rows(2, pts).unwrap();
        let params = DbscoutParams::new(0.5, 5).unwrap();
        let result = detect_outliers(&store, params).unwrap();
        (store, result, params)
    }

    #[test]
    fn explanations_are_label_consistent() {
        let (store, result, params) = setup();
        let ids: Vec<u32> = (0..store.len()).collect();
        for e in explain(&store, &result, params, &ids).unwrap() {
            assert!(consistent(&e, params), "{e}");
        }
    }

    #[test]
    fn outlier_explanation_quantifies_the_gap() {
        let (store, result, params) = setup();
        let e = &explain(&store, &result, params, &[6]).unwrap()[0];
        assert_eq!(e.label, PointLabel::Outlier);
        // 5.0 is alone: only itself within eps.
        assert_eq!(e.neighbors_within_eps, 1);
        assert_eq!(e.deficit_to_core, 4);
        // Nearest core is the chain point at 0.4 → distance 4.6.
        let (_, d) = e.nearest_core.unwrap();
        assert!((d - 4.6).abs() < 1e-9, "{d}");
        assert!((e.eps_to_cover.unwrap() - 4.6).abs() < 1e-9);
    }

    #[test]
    fn covered_explanation_names_a_close_core() {
        let (store, result, params) = setup();
        let e = &explain(&store, &result, params, &[5]).unwrap()[0];
        assert_eq!(e.label, PointLabel::Covered);
        let (cid, d) = e.nearest_core.unwrap();
        assert_eq!(cid, 4);
        assert!((d - 0.5).abs() < 1e-9);
    }

    #[test]
    fn core_explains_itself() {
        let (store, result, params) = setup();
        let e = &explain(&store, &result, params, &[2]).unwrap()[0];
        assert_eq!(e.label, PointLabel::Core);
        assert_eq!(e.deficit_to_core, 0);
        assert_eq!(e.eps_to_cover, Some(0.0));
        assert!(e.to_string().contains("is itself core"));
    }

    #[test]
    fn no_core_points_case() {
        let store = PointStore::from_rows(2, vec![vec![0.0, 0.0], vec![9.0, 9.0]]).unwrap();
        let params = DbscoutParams::new(1.0, 3).unwrap();
        let result = detect_outliers(&store, params).unwrap();
        let e = &explain(&store, &result, params, &[0]).unwrap()[0];
        assert!(e.nearest_core.is_none());
        assert!(e.eps_to_cover.is_none());
        assert!(consistent(e, params));
        assert!(e.to_string().contains("no core points"));
    }
}
