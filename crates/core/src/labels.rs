//! Per-point classification and run results.

use std::time::Duration;

use dbscout_spatial::points::PointId;
use dbscout_telemetry::KernelCounters;

/// The exhaustive classification of a point under Definitions 2–3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointLabel {
    /// Center of a dense region: ≥ `minPts` points within ε (Definition 2).
    Core,
    /// Not core, but within ε of some core point — inside a dense region,
    /// hence not an outlier (DBSCAN would call it a border point).
    Covered,
    /// Within ε of no core point (Definition 3).
    Outlier,
}

impl PointLabel {
    /// Whether this label means "outlier".
    pub fn is_outlier(self) -> bool {
        matches!(self, PointLabel::Outlier)
    }
}

/// Wall-clock timings of the five DBSCOUT phases (paper §III-A).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Grid partitioning and point-cell assignment (Algorithm 1).
    pub grid: Duration,
    /// Dense cell map construction (Algorithm 2).
    pub dense_map: Duration,
    /// Core points identification (Algorithm 3).
    pub core_points: Duration,
    /// Core cell map construction (Algorithm 4).
    pub core_map: Duration,
    /// Outliers identification (Algorithm 5).
    pub outliers: Duration,
}

impl PhaseTimings {
    /// Total across all phases.
    pub fn total(&self) -> Duration {
        self.grid + self.dense_map + self.core_points + self.core_map + self.outliers
    }
}

/// Structural counters of one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Non-empty ε-cells in the grid.
    pub num_cells: usize,
    /// Cells with ≥ `minPts` points (Definition 6).
    pub dense_cells: usize,
    /// Cells containing at least one core point (Definition 7); includes
    /// all dense cells.
    pub core_cells: usize,
    /// Point-to-point distance computations performed (the quantity the
    /// linearity proof of Lemma 6/8 bounds by `n · minPts · k_d`).
    /// Always equals `kernel.distance_evals`; kept as its own field for
    /// callers that predate the counter taxonomy.
    pub distance_computations: u64,
    /// Kernel work counters summed over the core-point and outlier
    /// passes. Sums over a disjoint partition of the cell range, so
    /// identical across thread counts, schedules, and backends.
    pub kernel: KernelCounters,
}

/// The output of a DBSCOUT run.
#[derive(Debug, Clone)]
pub struct OutlierResult {
    /// One label per input point, indexed by [`PointId`].
    pub labels: Vec<PointLabel>,
    /// Ids of all outliers, ascending.
    pub outliers: Vec<PointId>,
    /// Structural counters.
    pub stats: RunStats,
    /// Per-phase wall-clock timings.
    pub timings: PhaseTimings,
}

impl OutlierResult {
    /// Builds the result from labels, deriving the outlier id list.
    pub fn from_labels(labels: Vec<PointLabel>, stats: RunStats, timings: PhaseTimings) -> Self {
        let outliers = labels
            .iter()
            .enumerate()
            .filter(|(_, l)| l.is_outlier())
            .map(|(i, _)| i as PointId)
            .collect();
        Self {
            labels,
            outliers,
            stats,
            timings,
        }
    }

    /// Number of core points.
    pub fn num_core(&self) -> usize {
        self.labels
            .iter()
            .filter(|l| matches!(l, PointLabel::Core))
            .count()
    }

    /// Number of outliers.
    pub fn num_outliers(&self) -> usize {
        self.outliers.len()
    }

    /// Boolean outlier mask, indexed by point id.
    pub fn outlier_mask(&self) -> Vec<bool> {
        self.labels.iter().map(|l| l.is_outlier()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_labels_extracts_sorted_outliers() {
        let labels = vec![
            PointLabel::Core,
            PointLabel::Outlier,
            PointLabel::Covered,
            PointLabel::Outlier,
        ];
        let r = OutlierResult::from_labels(labels, RunStats::default(), PhaseTimings::default());
        assert_eq!(r.outliers, vec![1, 3]);
        assert_eq!(r.num_core(), 1);
        assert_eq!(r.num_outliers(), 2);
        assert_eq!(r.outlier_mask(), vec![false, true, false, true]);
    }

    #[test]
    fn phase_timings_total() {
        let t = PhaseTimings {
            grid: Duration::from_millis(1),
            dense_map: Duration::from_millis(2),
            core_points: Duration::from_millis(3),
            core_map: Duration::from_millis(4),
            outliers: Duration::from_millis(5),
        };
        assert_eq!(t.total(), Duration::from_millis(15));
    }

    #[test]
    fn label_predicates() {
        assert!(PointLabel::Outlier.is_outlier());
        assert!(!PointLabel::Core.is_outlier());
        assert!(!PointLabel::Covered.is_outlier());
    }
}
