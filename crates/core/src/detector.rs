//! The engine-agnostic detection API: the [`OutlierDetector`] trait that
//! every engine implements, and the [`DetectorBuilder`] that is the one
//! documented way to construct an engine.
//!
//! Experiments, the CLI, and tests are written against the trait, so an
//! engine swap is a one-line change:
//!
//! ```
//! use dbscout_core::{DetectorBuilder, DbscoutParams, OutlierDetector};
//! use dbscout_spatial::PointStore;
//!
//! let mut rows: Vec<Vec<f64>> = (0..8).map(|i| vec![0.1 * i as f64, 0.0]).collect();
//! rows.push(vec![1e6, 1e6]);
//! let store = PointStore::from_rows(2, rows).unwrap();
//!
//! let params = DbscoutParams::new(1.0, 4).unwrap();
//! let detector = DetectorBuilder::new(params).threads(2).build();
//! let result = detector.detect(&store).unwrap();
//! assert_eq!(result.outliers, vec![8]);
//! ```

use std::sync::Arc;

use dbscout_data::{materialize, PointSource};
use dbscout_dataflow::ExecutionContext;
use dbscout_spatial::PointStore;

use dbscout_spatial::KernelKind;

use crate::distributed::{DistributedDbscout, JoinStrategy};
use crate::error::Result;
use crate::execution::ExecutionConfig;
use crate::incremental::IncrementalDbscout;
use crate::labels::OutlierResult;
use crate::native::{Dbscout, ExecutionLayout, NativeOptions};
use crate::params::DbscoutParams;

/// A batch outlier detector: given a dataset, classify every point
/// exactly per Definitions 2–3 and report the outliers.
///
/// All engines return the same [`crate::DbscoutError`] variants and —
/// property tests pin this — identical labels for identical inputs.
pub trait OutlierDetector {
    /// Detects all outliers of `store` (Definition 3), exactly.
    fn detect(&self, store: &PointStore) -> Result<OutlierResult>;

    /// Detects all outliers of a streaming [`PointSource`], exactly.
    ///
    /// The default implementation is the materializing adapter: read the
    /// whole source into a [`PointStore`] and run [`Self::detect`] — the
    /// route the distributed and incremental engines take. The native
    /// engine overrides it with a genuinely out-of-core path whose peak
    /// memory is the grid layout plus one batch.
    fn detect_source(&self, source: &mut dyn PointSource) -> Result<OutlierResult> {
        let store = materialize(source).map_err(crate::DbscoutError::from)?;
        self.detect(&store)
    }

    /// The (ε, minPts) parameters this detector runs with.
    fn params(&self) -> DbscoutParams;
}

impl OutlierDetector for Dbscout {
    fn detect(&self, store: &PointStore) -> Result<OutlierResult> {
        Dbscout::detect(self, store)
    }

    fn detect_source(&self, source: &mut dyn PointSource) -> Result<OutlierResult> {
        Dbscout::detect_source(self, source)
    }

    fn params(&self) -> DbscoutParams {
        Dbscout::params(self)
    }
}

impl OutlierDetector for DistributedDbscout {
    fn detect(&self, store: &PointStore) -> Result<OutlierResult> {
        DistributedDbscout::detect(self, store)
    }

    fn params(&self) -> DbscoutParams {
        DistributedDbscout::params(self)
    }
}

impl OutlierDetector for IncrementalDbscout {
    /// Batch detection through the incremental engine: bulk-load `store`
    /// into a fresh instance on this detector's own layout and kernel
    /// (its accumulated points are not consulted) and snapshot the
    /// resulting labels.
    fn detect(&self, store: &PointStore) -> Result<OutlierResult> {
        IncrementalDbscout::from_store_with(store, self.params(), self.layout(), self.kernel())
            .map(|inc| inc.snapshot())
    }

    fn params(&self) -> DbscoutParams {
        IncrementalDbscout::params(self)
    }
}

/// Which engine a [`DetectorBuilder`] constructs.
#[derive(Debug, Clone, Default)]
enum EngineChoice {
    /// The native multi-threaded engine (the default).
    #[default]
    Native,
    /// The Spark-style formulation on a given execution context.
    Distributed(Arc<ExecutionContext>),
    /// The insert/delete incremental engine used in batch mode.
    Incremental,
}

/// The single documented construction path for every engine:
/// parameters, then execution knobs, then engine selection.
///
/// ```
/// use dbscout_core::{DetectorBuilder, DbscoutParams, ExecutionLayout, JoinStrategy};
/// use dbscout_dataflow::ExecutionContext;
///
/// let params = DbscoutParams::new(0.5, 5).unwrap();
///
/// // Native engine, 4 worker threads, explicit layout:
/// let native = DetectorBuilder::new(params)
///     .threads(4)
///     .layout(ExecutionLayout::CellMajor)
///     .build_native();
///
/// // Distributed engine on a 2-worker context:
/// let ctx = ExecutionContext::builder().workers(2).build();
/// let dist = DetectorBuilder::new(params)
///     .distributed(ctx)
///     .partitions(8)
///     .strategy(JoinStrategy::GroupedShuffle)
///     .build_distributed();
/// ```
#[derive(Debug, Clone)]
pub struct DetectorBuilder {
    params: DbscoutParams,
    threads: Option<usize>,
    options: NativeOptions,
    layout: ExecutionLayout,
    kernel: KernelKind,
    engine: EngineChoice,
    partitions: Option<usize>,
    strategy: JoinStrategy,
}

impl DetectorBuilder {
    /// Starts a builder for validated parameters (native engine, all
    /// cores, default [`ExecutionLayout`] unless overridden).
    pub fn new(params: DbscoutParams) -> Self {
        Self {
            params,
            threads: None,
            options: NativeOptions::default(),
            layout: ExecutionLayout::default(),
            kernel: KernelKind::default(),
            engine: EngineChoice::default(),
            partitions: None,
            strategy: JoinStrategy::default(),
        }
    }

    /// Applies a whole [`ExecutionConfig`] at once — the one documented
    /// way to set every execution knob together. The per-field methods
    /// ([`Self::threads`], [`Self::layout`], [`Self::kernel`]) are thin
    /// shims over the same state, so the two styles compose freely.
    pub fn execution(self, cfg: ExecutionConfig) -> Self {
        self.threads(cfg.threads)
            .layout(cfg.layout)
            .kernel(cfg.kernel)
    }

    /// Overrides the native engine's worker-thread count (≥ 1; `0` means
    /// "all available cores", matching the CLI convention).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = (threads > 0).then_some(threads);
        self
    }

    /// Overrides the native engine's ablation switches.
    pub fn options(mut self, options: NativeOptions) -> Self {
        self.options = options;
        self
    }

    /// Overrides the native engine's execution layout.
    pub fn layout(mut self, layout: ExecutionLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Overrides the native engine's distance kernel (results and
    /// counter totals are unaffected; only the loop shape changes).
    pub fn kernel(mut self, kernel: KernelKind) -> Self {
        self.kernel = kernel;
        self
    }

    /// Selects the distributed engine, running on `ctx`.
    pub fn distributed(mut self, ctx: Arc<ExecutionContext>) -> Self {
        self.engine = EngineChoice::Distributed(ctx);
        self
    }

    /// Selects the incremental engine (in batch mode: bulk-load then
    /// snapshot).
    pub fn incremental(mut self) -> Self {
        self.engine = EngineChoice::Incremental;
        self
    }

    /// Overrides the distributed engine's partition count (ignored by the
    /// other engines).
    pub fn partitions(mut self, partitions: usize) -> Self {
        self.partitions = (partitions > 0).then_some(partitions);
        self
    }

    /// Overrides the distributed engine's join strategy (ignored by the
    /// other engines).
    pub fn strategy(mut self, strategy: JoinStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Builds the configured native engine, whatever engine was selected.
    pub fn build_native(&self) -> Dbscout {
        let mut d = Dbscout::new(self.params)
            .with_options(self.options)
            .with_layout(self.layout)
            .with_kernel(self.kernel);
        if let Some(t) = self.threads {
            d = d.with_threads(t);
        }
        d
    }

    /// Builds the distributed engine on the configured context (a fresh
    /// all-cores context when none was given via [`Self::distributed`]).
    pub fn build_distributed(&self) -> DistributedDbscout {
        let ctx = match &self.engine {
            EngineChoice::Distributed(ctx) => Arc::clone(ctx),
            _ => ExecutionContext::with_all_cores(),
        };
        let mut d = DistributedDbscout::new(ctx, self.params).with_strategy(self.strategy);
        if let Some(p) = self.partitions {
            d = d.with_partitions(p);
        }
        d
    }

    /// One-shot streaming detection: builds the selected engine and runs
    /// it over `source`. On the native engine with the cell-major layout
    /// (the default) this is out-of-core end to end.
    pub fn detect_source(&self, source: &mut dyn PointSource) -> Result<OutlierResult> {
        self.build().detect_source(source)
    }

    /// Builds whichever engine was selected, behind the trait.
    pub fn build(&self) -> Box<dyn OutlierDetector> {
        match &self.engine {
            EngineChoice::Native => Box::new(self.build_native()),
            EngineChoice::Distributed(_) => Box::new(self.build_distributed()),
            EngineChoice::Incremental => Box::new(BatchIncremental {
                params: self.params,
                layout: self.layout,
                kernel: self.kernel,
            }),
        }
    }
}

/// The incremental engine's batch façade: holds the parameters and
/// execution knobs, and bulk-loads each `detect` call into a fresh
/// [`IncrementalDbscout`] on the configured layout.
#[derive(Debug, Clone)]
struct BatchIncremental {
    params: DbscoutParams,
    layout: ExecutionLayout,
    kernel: KernelKind,
}

impl OutlierDetector for BatchIncremental {
    fn detect(&self, store: &PointStore) -> Result<OutlierResult> {
        IncrementalDbscout::from_store_with(store, self.params, self.layout, self.kernel)
            .map(|inc| inc.snapshot())
    }

    fn params(&self) -> DbscoutParams {
        self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::naive_labels;

    fn sample_store() -> PointStore {
        let mut rows: Vec<Vec<f64>> = (0..12)
            .map(|i| vec![(i % 4) as f64 * 0.2, (i / 4) as f64 * 0.2])
            .collect();
        rows.push(vec![40.0, 40.0]);
        rows.push(vec![-9.0, 3.0]);
        PointStore::from_rows(2, rows).unwrap()
    }

    #[test]
    fn every_engine_agrees_through_the_trait() {
        let store = sample_store();
        let params = DbscoutParams::new(1.0, 4).unwrap();
        let expected = naive_labels(&store, params);
        let builder = DetectorBuilder::new(params).threads(2);
        let engines: Vec<(&str, Box<dyn OutlierDetector>)> = vec![
            ("native", builder.clone().build()),
            (
                "distributed",
                builder
                    .clone()
                    .distributed(ExecutionContext::builder().workers(2).build())
                    .partitions(3)
                    .build(),
            ),
            ("incremental", builder.clone().incremental().build()),
        ];
        for (name, engine) in engines {
            assert_eq!(engine.params(), params, "{name} params");
            let got = engine.detect(&store).unwrap();
            assert_eq!(got.labels, expected, "{name} labels");
        }
    }

    #[test]
    fn builder_configures_native_engine() {
        let params = DbscoutParams::new(0.5, 3).unwrap();
        let d = DetectorBuilder::new(params)
            .threads(3)
            .layout(ExecutionLayout::Hashed)
            .build_native();
        assert_eq!(d.layout(), ExecutionLayout::Hashed);
        assert_eq!(OutlierDetector::params(&d), params);
        // threads(0) means "all cores" — must not panic or zero out.
        let d = DetectorBuilder::new(params).threads(0).build_native();
        assert!(d.detect(&sample_store()).is_ok());
    }

    #[test]
    fn execution_config_sets_every_native_knob() {
        let params = DbscoutParams::new(0.5, 3).unwrap();
        let cfg = ExecutionConfig::new()
            .with_threads(2)
            .with_layout(ExecutionLayout::Hashed)
            .with_kernel(KernelKind::Scalar);
        let d = DetectorBuilder::new(params).execution(cfg).build_native();
        assert_eq!(d.threads(), 2);
        assert_eq!(d.layout(), ExecutionLayout::Hashed);
        assert_eq!(d.kernel(), KernelKind::Scalar);
        // threads = 0 in the config keeps the all-cores default.
        let d = DetectorBuilder::new(params)
            .execution(ExecutionConfig::new())
            .build_native();
        assert!(d.threads() >= 1);
        assert_eq!(d.kernel(), KernelKind::Auto);
    }

    #[test]
    fn default_layout_is_cell_major() {
        let params = DbscoutParams::new(0.5, 3).unwrap();
        let d = DetectorBuilder::new(params).build_native();
        assert_eq!(d.layout(), ExecutionLayout::CellMajor);
    }

    #[test]
    fn build_distributed_without_context_uses_all_cores() {
        let params = DbscoutParams::new(1.0, 4).unwrap();
        let d = DetectorBuilder::new(params).build_distributed();
        let got = d.detect(&sample_store()).unwrap();
        let expected = naive_labels(&sample_store(), params);
        assert_eq!(got.labels, expected);
    }
}
