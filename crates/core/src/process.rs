//! DBSCOUT on the process-worker backend: sharded cell ranges over
//! shared-nothing worker processes.
//!
//! Closures cannot cross a process boundary, so this module trades the
//! in-process task closures of [`crate::native`] for serialized task
//! descriptors: the driver streams **pass 1** (per-cell counting) over
//! the `DBSC` binary input itself, derives the dense-cell flags and a
//! disjoint cell-range shard per task, and then runs two stages on the
//! pool ([`dbscout_dataflow::ProcessPool`]):
//!
//! 1. **core-point pass** — each worker rebuilds the full cell-major
//!    layout from the shared input file (the layout is a pure function
//!    of the file and ε, so every process derives byte-identical slot
//!    order), runs the phase-3 kernel over its own cell range, and
//!    returns core slots, promoted cells, and distance counts;
//! 2. **outlier pass** — the driver merges the global core-slot bitmap
//!    and promotions (phase 4), broadcasts both inside each task
//!    descriptor, and workers run the phase-5 kernel over their range,
//!    returning a label per point of that range.
//!
//! Both kernels are the *same functions* the threaded backend runs
//! ([`crate::native::core_points_in_range`] /
//! [`crate::native::outliers_in_range`]), and a cell's work is
//! independent of how cells are grouped into shards — so labels **and**
//! distance-computation totals are identical to the in-process backend
//! by construction, no matter how many workers die and how often their
//! shards are re-dispatched. The chaos suite pins this byte-for-byte.
//!
//! Workers cache the built layout keyed by `(path, ε, batch)` so the
//! two stages (and re-dispatched shards) rebuild it once per process,
//! not once per task.

use std::path::Path;
use std::time::Instant;

use dbscout_data::{BinarySource, PointSource};
use dbscout_dataflow::{serve_worker, ExecutionBackend, ExecutionContext, IpcError, TaskSpans};
use dbscout_spatial::{CellMajorBuilder, CellMajorStore, KernelKind, NeighborOffsets};
use dbscout_telemetry::{KernelCounters, SpanKind};

use crate::cellmap::CellFlags;
use crate::error::{DbscoutError, Result};
use crate::labels::{OutlierResult, PhaseTimings, PointLabel, RunStats};
use crate::native::NativeOptions;
use crate::native::{chunk_ranges, core_points_in_range, outliers_in_range, CellScratch};
use crate::params::DbscoutParams;

/// Version byte opening every task/result descriptor, so a driver and a
/// worker built from different revisions fail loudly instead of
/// misinterpreting each other's payloads (the same discipline as the
/// `DBSC` and `DBIP` framings).
///
/// History: v1 shipped a single distance-computation count per result;
/// v2 replaced it with the full four-counter kernel block
/// ([`KernelCounters`]); v3 added the distance-kernel byte
/// ([`KernelKind`]) to every shard spec.
const DESC_VERSION: u8 = 3;

/// Descriptor kinds.
const KIND_CORE_TASK: u8 = 1;
const KIND_OUTLIER_TASK: u8 = 2;

/// Shards per worker: mirrors the `threads * 4` chunking of the
/// threaded backend so stragglers and reassigned shards stay small.
const SHARDS_PER_WORKER: usize = 4;

/// How the input and parameters reach a worker, common to both stages.
#[derive(Debug, Clone, PartialEq)]
struct ShardSpec {
    path: String,
    batch_size: u64,
    eps: f64,
    min_pts: u64,
    dense_cell_shortcut: bool,
    early_exit: bool,
    kernel: KernelKind,
    /// The shard's half-open cell range.
    start: u64,
    end: u64,
}

/// Wire encoding of [`KernelKind`] — explicit so a reordered enum can
/// never silently change descriptors.
fn kernel_to_byte(kernel: KernelKind) -> u8 {
    match kernel {
        KernelKind::Scalar => 0,
        KernelKind::Unrolled => 1,
        KernelKind::Auto => 2,
    }
}

fn kernel_from_byte(byte: u8) -> std::result::Result<KernelKind, String> {
    match byte {
        0 => Ok(KernelKind::Scalar),
        1 => Ok(KernelKind::Unrolled),
        2 => Ok(KernelKind::Auto),
        other => Err(format!("unknown kernel byte {other}")),
    }
}

/// Bounds-checked little-endian decoder over a descriptor payload.
struct Dec<'a> {
    data: &'a [u8],
}

impl<'a> Dec<'a> {
    fn new(data: &'a [u8]) -> Self {
        Self { data }
    }

    fn take(&mut self, n: usize) -> std::result::Result<&'a [u8], String> {
        let head = self
            .data
            .get(..n)
            .ok_or_else(|| "task descriptor truncated".to_owned())?;
        self.data = self.data.get(n..).unwrap_or(&[]);
        Ok(head)
    }

    fn u8(&mut self) -> std::result::Result<u8, String> {
        Ok(self.take(1)?.first().copied().unwrap_or(0))
    }

    fn u64_le(&mut self) -> std::result::Result<u64, String> {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(buf))
    }

    fn f64_le(&mut self) -> std::result::Result<f64, String> {
        Ok(f64::from_bits(self.u64_le()?))
    }

    fn u32_vec(&mut self) -> std::result::Result<Vec<u32>, String> {
        let len = self.u64_le()? as usize;
        let bytes = self.take(len.checked_mul(4).ok_or("u32 list length overflow")?)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| {
                let mut buf = [0u8; 4];
                buf.copy_from_slice(c);
                u32::from_le_bytes(buf)
            })
            .collect())
    }

    fn bytes(&mut self) -> std::result::Result<&'a [u8], String> {
        let len = self.u64_le()? as usize;
        self.take(len)
    }

    fn string(&mut self) -> std::result::Result<String, String> {
        String::from_utf8(self.bytes()?.to_vec()).map_err(|_| "non-UTF-8 path".to_owned())
    }
}

fn put_u32_vec(out: &mut Vec<u8>, values: &[u32]) {
    out.extend_from_slice(&(values.len() as u64).to_le_bytes());
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
    out.extend_from_slice(bytes);
}

/// Serializes a kernel-counter block in canonical field order.
fn put_counters(out: &mut Vec<u8>, counters: &KernelCounters) {
    for (_, value) in counters.named() {
        out.extend_from_slice(&value.to_le_bytes());
    }
}

fn take_counters(dec: &mut Dec<'_>) -> std::result::Result<KernelCounters, String> {
    Ok(KernelCounters {
        cells_visited: dec.u64_le()?,
        bbox_prunes: dec.u64_le()?,
        early_exit_hits: dec.u64_le()?,
        distance_evals: dec.u64_le()?,
    })
}

/// Packs a bool slice into bytes, LSB-first within each byte.
fn pack_bits(bits: &[bool]) -> Vec<u8> {
    let mut out = vec![0u8; bits.len().div_ceil(8)];
    for (i, &bit) in bits.iter().enumerate() {
        if bit {
            if let Some(byte) = out.get_mut(i / 8) {
                *byte |= 1 << (i % 8);
            }
        }
    }
    out
}

/// Inverse of [`pack_bits`] for `n` bits.
fn unpack_bits(bytes: &[u8], n: usize) -> Vec<bool> {
    (0..n)
        .map(|i| {
            bytes
                .get(i / 8)
                .is_some_and(|byte| byte & (1 << (i % 8)) != 0)
        })
        .collect()
}

impl ShardSpec {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.eps.to_bits().to_le_bytes());
        out.extend_from_slice(&self.min_pts.to_le_bytes());
        out.push(u8::from(self.dense_cell_shortcut));
        out.push(u8::from(self.early_exit));
        out.push(kernel_to_byte(self.kernel));
        out.extend_from_slice(&self.batch_size.to_le_bytes());
        out.extend_from_slice(&self.start.to_le_bytes());
        out.extend_from_slice(&self.end.to_le_bytes());
        put_bytes(out, self.path.as_bytes());
    }

    fn decode(dec: &mut Dec<'_>) -> std::result::Result<Self, String> {
        let eps = dec.f64_le()?;
        let min_pts = dec.u64_le()?;
        let dense_cell_shortcut = dec.u8()? != 0;
        let early_exit = dec.u8()? != 0;
        let kernel = kernel_from_byte(dec.u8()?)?;
        let batch_size = dec.u64_le()?;
        let start = dec.u64_le()?;
        let end = dec.u64_le()?;
        let path = dec.string()?;
        Ok(Self {
            path,
            batch_size,
            eps,
            min_pts,
            dense_cell_shortcut,
            early_exit,
            kernel,
            start,
            end,
        })
    }

    fn options(&self) -> NativeOptions {
        NativeOptions {
            dense_cell_shortcut: self.dense_cell_shortcut,
            early_exit: self.early_exit,
        }
    }
}

fn encode_core_task(spec: &ShardSpec) -> Vec<u8> {
    let mut out = vec![DESC_VERSION, KIND_CORE_TASK];
    spec.encode_into(&mut out);
    out
}

fn encode_outlier_task(spec: &ShardSpec, promoted: &[u32], core_slots: &[bool]) -> Vec<u8> {
    let mut out = vec![DESC_VERSION, KIND_OUTLIER_TASK];
    spec.encode_into(&mut out);
    put_u32_vec(&mut out, promoted);
    out.extend_from_slice(&(core_slots.len() as u64).to_le_bytes());
    put_bytes(&mut out, &pack_bits(core_slots));
    out
}

/// Core-stage result: `(core_slots, promoted_cells, kernel_counters)`.
fn encode_core_result(core: &[u32], promoted: &[u32], counters: &KernelCounters) -> Vec<u8> {
    let mut out = Vec::new();
    put_counters(&mut out, counters);
    put_u32_vec(&mut out, core);
    put_u32_vec(&mut out, promoted);
    out
}

fn decode_core_result(
    data: &[u8],
) -> std::result::Result<(Vec<u32>, Vec<u32>, KernelCounters), String> {
    let mut dec = Dec::new(data);
    let counters = take_counters(&mut dec)?;
    let core = dec.u32_vec()?;
    let promoted = dec.u32_vec()?;
    Ok((core, promoted, counters))
}

/// Outlier-stage result: one `(orig_id, label)` pair per point of the
/// shard's cells, plus the kernel counters spent.
fn encode_outlier_result(pairs: &[(u32, u8)], counters: &KernelCounters) -> Vec<u8> {
    let mut out = Vec::new();
    put_counters(&mut out, counters);
    out.extend_from_slice(&(pairs.len() as u64).to_le_bytes());
    for &(id, label) in pairs {
        out.extend_from_slice(&id.to_le_bytes());
        out.push(label);
    }
    out
}

fn decode_outlier_result(
    data: &[u8],
) -> std::result::Result<(Vec<(u32, u8)>, KernelCounters), String> {
    let mut dec = Dec::new(data);
    let counters = take_counters(&mut dec)?;
    let len = dec.u64_le()? as usize;
    let bytes = dec.take(len.checked_mul(5).ok_or("pair list length overflow")?)?;
    let pairs = bytes
        .chunks_exact(5)
        .map(|c| {
            let mut buf = [0u8; 4];
            buf.copy_from_slice(c.get(..4).unwrap_or(&[0; 4]));
            (u32::from_le_bytes(buf), c.get(4).copied().unwrap_or(0))
        })
        .collect();
    Ok((pairs, counters))
}

const LABEL_CORE: u8 = 0;
const LABEL_COVERED: u8 = 1;
const LABEL_OUTLIER: u8 = 2;

fn label_from_byte(byte: u8) -> PointLabel {
    match byte {
        LABEL_CORE => PointLabel::Core,
        LABEL_OUTLIER => PointLabel::Outlier,
        _ => PointLabel::Covered,
    }
}

/// Streams the `DBSC` file twice through the counting builder into the
/// finished cell-major layout — exactly the layout
/// [`crate::Dbscout::detect_source`] builds, because the layout is a
/// pure function of `(file, ε)`.
fn build_layout(
    path: &str,
    batch_size: usize,
    eps: f64,
) -> std::result::Result<(CellMajorStore, NeighborOffsets), String> {
    let err = |e: &dyn std::fmt::Display| format!("worker failed to read {path}: {e}");
    let mut source = BinarySource::open(path, batch_size).map_err(|e| err(&e))?;
    let dims = source
        .dims()
        .ok_or_else(|| format!("{path} declares no dimensionality"))?;
    let mut builder = CellMajorBuilder::new(dims, eps).map_err(|e| err(&e))?;
    while let Some(batch) = source.next_batch().map_err(|e| err(&e))? {
        builder.count_batch(batch.coords()).map_err(|e| err(&e))?;
    }
    source.reset().map_err(|e| err(&e))?;
    let mut scatter = builder.begin_scatter();
    while let Some(batch) = source.next_batch().map_err(|e| err(&e))? {
        scatter.scatter_batch(batch.coords()).map_err(|e| err(&e))?;
    }
    let cm = scatter.finish().map_err(|e| err(&e))?;
    let offsets = NeighborOffsets::new(cm.dims()).map_err(|e| err(&e))?;
    Ok((cm, offsets))
}

/// The worker-side layout cache: rebuilt only when the input file, ε,
/// or batch size changes — i.e. once per detection run per process.
struct CachedLayout {
    path: String,
    eps_bits: u64,
    batch_size: u64,
    cm: CellMajorStore,
    offsets: NeighborOffsets,
}

/// The worker-side task handler (decoding, layout cache, kernels).
/// Public so the CLI's hidden `worker` subcommand can serve it.
pub struct WorkerHandler {
    cache: Option<CachedLayout>,
}

impl Default for WorkerHandler {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkerHandler {
    /// An empty handler (no layout cached yet).
    pub fn new() -> Self {
        Self { cache: None }
    }

    fn layout(
        &mut self,
        spec: &ShardSpec,
        spans: &mut TaskSpans,
    ) -> std::result::Result<&CachedLayout, String> {
        let stale = !self.cache.as_ref().is_some_and(|c| {
            c.path == spec.path
                && c.eps_bits == spec.eps.to_bits()
                && c.batch_size == spec.batch_size
        });
        if stale {
            let started = Instant::now();
            let (cm, offsets) = build_layout(&spec.path, spec.batch_size as usize, spec.eps)?;
            spans.record("layout build", SpanKind::Stage, started, started.elapsed());
            self.cache = Some(CachedLayout {
                path: spec.path.clone(),
                eps_bits: spec.eps.to_bits(),
                batch_size: spec.batch_size,
                cm,
                offsets,
            });
        }
        self.cache
            .as_ref()
            .ok_or_else(|| "layout cache unexpectedly empty".to_owned())
    }

    /// Decodes and executes one task payload, returning the encoded
    /// result. Worker-local spans (layout builds, kernel time) are
    /// recorded into `spans` for the driver to merge into its trace.
    /// Errors are retryable at the driver.
    pub fn handle(
        &mut self,
        payload: &[u8],
        spans: &mut TaskSpans,
    ) -> std::result::Result<Vec<u8>, String> {
        let mut dec = Dec::new(payload);
        let version = dec.u8()?;
        if version != DESC_VERSION {
            return Err(format!(
                "unsupported task descriptor version {version} (worker speaks {DESC_VERSION})"
            ));
        }
        let kind = dec.u8()?;
        let spec = ShardSpec::decode(&mut dec)?;
        match kind {
            KIND_CORE_TASK => self.run_core_shard(&spec, spans),
            KIND_OUTLIER_TASK => {
                let promoted = dec.u32_vec()?;
                let n = dec.u64_le()? as usize;
                let bitmap = dec.bytes()?;
                let core_slots = unpack_bits(bitmap, n);
                self.run_outlier_shard(&spec, &promoted, &core_slots, spans)
            }
            other => Err(format!("unknown task descriptor kind {other}")),
        }
    }

    fn run_core_shard(
        &mut self,
        spec: &ShardSpec,
        spans: &mut TaskSpans,
    ) -> std::result::Result<Vec<u8>, String> {
        let min_pts = spec.min_pts as usize;
        let eps_sq = spec.eps * spec.eps;
        let options = spec.options();
        let range = spec.start as usize..spec.end as usize;
        let layout = self.layout(spec, spans)?;
        let flags = CellFlags::from_counts(layout.cm.cells().iter().map(|r| r.len()), min_pts)
            .map_err(|e| e.to_string())?;
        let started = Instant::now();
        let (core, promoted, counters) = core_points_in_range(
            &layout.cm,
            &flags,
            &layout.offsets,
            eps_sq,
            min_pts,
            options,
            spec.kernel,
            range,
            &mut CellScratch::new(),
        );
        spans.record(
            "core shard kernel",
            SpanKind::Task,
            started,
            started.elapsed(),
        );
        Ok(encode_core_result(&core, &promoted, &counters))
    }

    fn run_outlier_shard(
        &mut self,
        spec: &ShardSpec,
        promoted: &[u32],
        core_slots: &[bool],
        spans: &mut TaskSpans,
    ) -> std::result::Result<Vec<u8>, String> {
        let min_pts = spec.min_pts as usize;
        let eps_sq = spec.eps * spec.eps;
        let options = spec.options();
        let range = spec.start as usize..spec.end as usize;
        let layout = self.layout(spec, spans)?;
        let mut flags = CellFlags::from_counts(layout.cm.cells().iter().map(|r| r.len()), min_pts)
            .map_err(|e| e.to_string())?;
        for &idx in promoted {
            flags.promote_to_core(idx as usize);
        }
        let started = Instant::now();
        let (outlier_slots, counters) = outliers_in_range(
            &layout.cm,
            &flags,
            &layout.offsets,
            eps_sq,
            options,
            spec.kernel,
            core_slots,
            range.clone(),
            &mut CellScratch::new(),
        );
        spans.record(
            "outlier shard kernel",
            SpanKind::Task,
            started,
            started.elapsed(),
        );
        // Label every point of the shard's cells: core from the global
        // bitmap, outliers from the kernel, covered otherwise — keyed
        // back to original ids through the layout's permutation.
        let cells = layout.cm.cells().get(range).unwrap_or(&[]);
        let ids = layout.cm.orig_ids();
        let base = cells.first().map(|r| r.start as usize).unwrap_or(0);
        let span = cells.last().map(|r| r.end as usize - base).unwrap_or(0);
        let mut local = vec![LABEL_COVERED; span];
        for rec in cells {
            for slot in rec.range() {
                if core_slots.get(slot).copied().unwrap_or(false) {
                    if let Some(l) = local.get_mut(slot - base) {
                        *l = LABEL_CORE;
                    }
                }
            }
        }
        for slot in outlier_slots {
            if let Some(l) = local.get_mut(slot as usize - base) {
                *l = LABEL_OUTLIER;
            }
        }
        let pairs: Vec<(u32, u8)> = local
            .iter()
            .enumerate()
            .filter_map(|(off, &label)| ids.get(base + off).map(|&id| (id, label)))
            .collect();
        Ok(encode_outlier_result(&pairs, &counters))
    }
}

/// Serves this process as a worker over stdin/stdout until the driver
/// hangs up. `rss_probe` supplies the process's peak RSS (`VmHWM`) and
/// `cpu_probe` its cumulative CPU time for heartbeats; pass `|| 0`
/// where unavailable.
pub fn run_worker(
    rss_probe: fn() -> u64,
    cpu_probe: fn() -> u64,
) -> std::result::Result<(), IpcError> {
    let mut handler = WorkerHandler::new();
    serve_worker(
        move |payload, spans| handler.handle(payload, spans),
        rss_probe,
        cpu_probe,
    )
}

fn internal(message: String) -> DbscoutError {
    DbscoutError::Execution(dbscout_dataflow::EngineError::Internal { message })
}

/// Detects all outliers of the `DBSC` binary file at `path` on the
/// process-worker backend of `ctx`, exactly — labels and distance
/// counts are byte-identical to [`crate::Dbscout::detect_source`] over
/// the same file (see the module docs for why).
///
/// The driver itself only ever streams pass-1 counts (it never holds
/// the points); workers rebuild the full layout from the shared file.
///
/// # Errors
///
/// Anything the in-process detector reports, plus
/// [`dbscout_dataflow::EngineError::WorkerLost`] when worker processes
/// die faster than the context's respawn budget replaces them.
pub fn detect_with_process_workers(
    ctx: &ExecutionContext,
    path: &Path,
    batch_size: usize,
    params: DbscoutParams,
    options: NativeOptions,
    kernel: KernelKind,
) -> Result<OutlierResult> {
    let ExecutionBackend::Process { workers } = *ctx.backend() else {
        return Err(internal(
            "detect_with_process_workers needs a process-backend context".to_owned(),
        ));
    };
    let path_str = path.to_str().ok_or_else(|| {
        internal(format!(
            "non-UTF-8 input path {path:?} cannot cross the worker boundary"
        ))
    })?;
    let mut timings = PhaseTimings::default();

    // Phase 1 (driver side): stream the file once through the counting
    // builder — cell table and shard ranges, but no points.
    let t = Instant::now();
    let mut source = BinarySource::open(path, batch_size)?;
    let dims = source
        .dims()
        .ok_or_else(|| internal(format!("{path_str} declares no dimensionality")))?;
    let mut builder = CellMajorBuilder::new(dims, params.eps)?;
    let mut n = 0usize;
    while let Some(batch) = source.next_batch()? {
        n += batch.len();
        builder.count_batch(batch.coords())?;
    }
    drop(source);
    let num_cells = builder.num_cells();
    let counts = builder.cell_counts_sorted();
    timings.grid = t.elapsed();
    if n == 0 {
        return Ok(OutlierResult::from_labels(
            Vec::new(),
            RunStats::default(),
            timings,
        ));
    }

    // Phase 2: dense cell map from the sorted counts — the same cell
    // order the workers' scattered layouts use.
    let t = Instant::now();
    let mut flags = CellFlags::from_counts(counts.iter().map(|&c| c as usize), params.min_pts)?;
    timings.dense_map = t.elapsed();

    let shards = chunk_ranges(num_cells, workers * SHARDS_PER_WORKER);
    let spec_for = |range: &std::ops::Range<usize>| ShardSpec {
        path: path_str.to_owned(),
        batch_size: batch_size as u64,
        eps: params.eps,
        min_pts: params.min_pts as u64,
        dense_cell_shortcut: options.dense_cell_shortcut,
        early_exit: options.early_exit,
        kernel,
        start: range.start as u64,
        end: range.end as u64,
    };

    // Phase 3: core points, one shard per disjoint cell range.
    let t = Instant::now();
    ctx.set_stage("core-point pass");
    let tasks: Vec<Vec<u8>> = shards
        .iter()
        .map(|r| encode_core_task(&spec_for(r)))
        .collect();
    let round = ctx.run_process_stage("shard", tasks);
    ctx.clear_stage();
    let mut core_slots = vec![false; n];
    let mut promotions: Vec<u32> = Vec::new();
    let mut kernel = KernelCounters::new();
    let mut stage_kernel = KernelCounters::new();
    for blob in round? {
        let (core, promoted, kc) = decode_core_result(&blob).map_err(internal)?;
        for slot in core {
            if let Some(s) = core_slots.get_mut(slot as usize) {
                *s = true;
            }
        }
        promotions.extend(promoted);
        stage_kernel.merge(&kc);
    }
    ctx.metrics().attach_kernel_counters(stage_kernel);
    kernel.merge(&stage_kernel);
    timings.core_points = t.elapsed();

    // Phase 4 (driver side): promote cells that gained a core point.
    let t = Instant::now();
    for &idx in &promotions {
        flags.promote_to_core(idx as usize);
    }
    timings.core_map = t.elapsed();

    // Phase 5: outliers; the bitmap and promotions ride inside every
    // task descriptor (the process backend's broadcast).
    let t = Instant::now();
    ctx.set_stage("outlier pass");
    let tasks: Vec<Vec<u8>> = shards
        .iter()
        .map(|r| encode_outlier_task(&spec_for(r), &promotions, &core_slots))
        .collect();
    let round = ctx.run_process_stage("shard", tasks);
    ctx.clear_stage();
    let mut labels = vec![PointLabel::Covered; n];
    let mut stage_kernel = KernelCounters::new();
    for blob in round? {
        let (pairs, kc) = decode_outlier_result(&blob).map_err(internal)?;
        for (id, label) in pairs {
            if let Some(l) = labels.get_mut(id as usize) {
                *l = label_from_byte(label);
            }
        }
        stage_kernel.merge(&kc);
    }
    ctx.metrics().attach_kernel_counters(stage_kernel);
    kernel.merge(&stage_kernel);
    timings.outliers = t.elapsed();

    let stats = RunStats {
        num_cells,
        dense_cells: flags.dense_cells(),
        core_cells: flags.core_cells(),
        distance_computations: kernel.distance_evals,
        kernel,
    };
    Ok(OutlierResult::from_labels(labels, stats, timings))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_packing_round_trips() {
        for n in [0usize, 1, 7, 8, 9, 64, 65] {
            let bits: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
            let packed = pack_bits(&bits);
            assert_eq!(packed.len(), n.div_ceil(8));
            assert_eq!(unpack_bits(&packed, n), bits);
        }
    }

    #[test]
    fn kernel_bytes_round_trip() {
        for k in [KernelKind::Scalar, KernelKind::Unrolled, KernelKind::Auto] {
            assert_eq!(kernel_from_byte(kernel_to_byte(k)).unwrap(), k);
        }
        assert!(kernel_from_byte(9).is_err());
    }

    #[test]
    fn core_task_descriptor_round_trips() {
        let spec = ShardSpec {
            path: "/tmp/data.dbsc".to_owned(),
            batch_size: 8192,
            eps: 1.25,
            min_pts: 7,
            dense_cell_shortcut: true,
            early_exit: false,
            kernel: KernelKind::Unrolled,
            start: 10,
            end: 42,
        };
        let encoded = encode_core_task(&spec);
        let mut dec = Dec::new(&encoded);
        assert_eq!(dec.u8().unwrap(), DESC_VERSION);
        assert_eq!(dec.u8().unwrap(), KIND_CORE_TASK);
        assert_eq!(ShardSpec::decode(&mut dec).unwrap(), spec);
    }

    #[test]
    fn outlier_task_descriptor_round_trips() {
        let spec = ShardSpec {
            path: "x.dbsc".to_owned(),
            batch_size: 4,
            eps: 0.5,
            min_pts: 3,
            dense_cell_shortcut: false,
            early_exit: true,
            kernel: KernelKind::Scalar,
            start: 0,
            end: 5,
        };
        let promoted = vec![1u32, 4, 9];
        let bits = vec![true, false, true, true, false, false, true];
        let encoded = encode_outlier_task(&spec, &promoted, &bits);
        let mut dec = Dec::new(&encoded);
        assert_eq!(dec.u8().unwrap(), DESC_VERSION);
        assert_eq!(dec.u8().unwrap(), KIND_OUTLIER_TASK);
        assert_eq!(ShardSpec::decode(&mut dec).unwrap(), spec);
        assert_eq!(dec.u32_vec().unwrap(), promoted);
        let n = dec.u64_le().unwrap() as usize;
        assert_eq!(n, bits.len());
        let bitmap = dec.bytes().unwrap();
        assert_eq!(unpack_bits(bitmap, n), bits);
    }

    #[test]
    fn result_codecs_round_trip() {
        let counters = KernelCounters {
            cells_visited: 12,
            bbox_prunes: 3,
            early_exit_hits: 4,
            distance_evals: 555,
        };
        let encoded = encode_core_result(&[3, 9, 200], &[1, 7], &counters);
        assert_eq!(
            decode_core_result(&encoded).unwrap(),
            (vec![3, 9, 200], vec![1, 7], counters)
        );
        let pairs = vec![(0u32, LABEL_CORE), (5, LABEL_OUTLIER), (9, LABEL_COVERED)];
        let counters = KernelCounters {
            distance_evals: 77,
            ..KernelCounters::new()
        };
        let encoded = encode_outlier_result(&pairs, &counters);
        assert_eq!(decode_outlier_result(&encoded).unwrap(), (pairs, counters));
    }

    #[test]
    fn truncated_descriptors_error_not_panic() {
        let spec = ShardSpec {
            path: "p".to_owned(),
            batch_size: 1,
            eps: 1.0,
            min_pts: 1,
            dense_cell_shortcut: true,
            early_exit: true,
            kernel: KernelKind::Auto,
            start: 0,
            end: 1,
        };
        let encoded = encode_core_task(&spec);
        for cut in [0, 1, 2, 10, encoded.len() - 1] {
            let mut dec = Dec::new(encoded.get(..cut).unwrap_or(&[]));
            let _ = dec.u8().and_then(|_| dec.u8());
            assert!(
                ShardSpec::decode(&mut dec).is_err() || cut == encoded.len() - 1,
                "cut {cut} should fail or hit the path-length guard"
            );
        }
    }

    #[test]
    fn handler_rejects_version_skew_and_unknown_kinds() {
        let mut handler = WorkerHandler::new();
        let mut spans = TaskSpans::new(0);
        let err = handler
            .handle(&[DESC_VERSION + 1, KIND_CORE_TASK], &mut spans)
            .unwrap_err();
        assert!(err.contains("version"), "{err}");
        let mut bogus = vec![DESC_VERSION, 99];
        ShardSpec {
            path: "p".to_owned(),
            batch_size: 1,
            eps: 1.0,
            min_pts: 1,
            dense_cell_shortcut: true,
            early_exit: true,
            kernel: KernelKind::Auto,
            start: 0,
            end: 0,
        }
        .encode_into(&mut bogus);
        let err = handler.handle(&bogus, &mut spans).unwrap_err();
        assert!(err.contains("unknown task descriptor kind 99"), "{err}");
    }

    #[test]
    fn label_bytes_map_to_labels() {
        assert_eq!(label_from_byte(LABEL_CORE), PointLabel::Core);
        assert_eq!(label_from_byte(LABEL_COVERED), PointLabel::Covered);
        assert_eq!(label_from_byte(LABEL_OUTLIER), PointLabel::Outlier);
        assert_eq!(label_from_byte(200), PointLabel::Covered);
    }

    /// The worker handler runs end to end inside this process: encode a
    /// file, shard it, execute both stages through `handle`, and check
    /// the merged labels equal the in-process detector's.
    #[test]
    fn handler_stages_reproduce_the_native_labels() {
        use dbscout_spatial::PointStore;

        let mut rows: Vec<Vec<f64>> = Vec::new();
        for i in 0..40 {
            rows.push(vec![
                (i % 8) as f64 * 0.4 + ((i as f64) * 0.618).fract() * 0.1,
                (i / 8) as f64 * 0.4,
            ]);
        }
        rows.push(vec![25.0, 25.0]);
        rows.push(vec![-13.0, 2.0]);
        let store = PointStore::from_rows(2, rows).unwrap();
        let params = DbscoutParams::new(1.0, 6).unwrap();
        let expected = crate::native::Dbscout::new(params).detect(&store).unwrap();

        let dir = std::env::temp_dir().join(format!("dbscout-process-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("points.dbsc");
        dbscout_data::io::write_binary(&path, &store).unwrap();

        // Driver side, in miniature: pass-1 counts and shard ranges.
        let mut source = BinarySource::open(&path, 7).unwrap();
        let mut builder = CellMajorBuilder::new(2, params.eps).unwrap();
        let mut n = 0usize;
        while let Some(batch) = source.next_batch().unwrap() {
            n += batch.len();
            builder.count_batch(batch.coords()).unwrap();
        }
        let num_cells = builder.num_cells();
        let mut flags = CellFlags::from_counts(
            builder.cell_counts_sorted().iter().map(|&c| c as usize),
            params.min_pts,
        )
        .unwrap();

        let mut handler = WorkerHandler::new();
        let shards = chunk_ranges(num_cells, 3);
        let spec_for = |r: &std::ops::Range<usize>| ShardSpec {
            path: path.to_str().unwrap().to_owned(),
            batch_size: 7,
            eps: params.eps,
            min_pts: params.min_pts as u64,
            dense_cell_shortcut: true,
            early_exit: true,
            kernel: KernelKind::Unrolled,
            start: r.start as u64,
            end: r.end as u64,
        };
        let mut core_slots = vec![false; n];
        let mut promotions: Vec<u32> = Vec::new();
        let mut kernel = KernelCounters::new();
        let mut spans = TaskSpans::new(1);
        for r in &shards {
            let blob = handler
                .handle(&encode_core_task(&spec_for(r)), &mut spans)
                .unwrap();
            let (core, promoted, kc) = decode_core_result(&blob).unwrap();
            for slot in core {
                core_slots[slot as usize] = true;
            }
            promotions.extend(promoted);
            kernel.merge(&kc);
        }
        // The first core task rebuilt the layout, so the sink holds at
        // least the "layout build" span plus one kernel span per shard.
        assert!(spans.len() > shards.len(), "worker spans were not recorded");
        for &idx in &promotions {
            flags.promote_to_core(idx as usize);
        }
        let mut labels = vec![PointLabel::Covered; n];
        for r in &shards {
            let blob = handler
                .handle(
                    &encode_outlier_task(&spec_for(r), &promotions, &core_slots),
                    &mut spans,
                )
                .unwrap();
            let (pairs, kc) = decode_outlier_result(&blob).unwrap();
            for (id, label) in pairs {
                labels[id as usize] = label_from_byte(label);
            }
            kernel.merge(&kc);
        }

        assert_eq!(labels, expected.labels);
        assert_eq!(kernel, expected.stats.kernel);
        assert_eq!(kernel.distance_evals, expected.stats.distance_computations);
        assert_eq!(flags.dense_cells(), expected.stats.dense_cells);
        assert_eq!(flags.core_cells(), expected.stats.core_cells);
        assert_eq!(num_cells, expected.stats.num_cells);

        std::fs::remove_dir_all(&dir).ok();
    }
}
