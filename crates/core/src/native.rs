//! The native multi-threaded DBSCOUT implementation.
//!
//! Runs the paper's five phases (§III-A) inside one process, parallelised
//! over cells with the same dynamic task scheduling the dataflow substrate
//! uses. This is the implementation a library user should reach for; the
//! [`crate::distributed`] module is the literal Spark-style formulation
//! used for the scalability experiments.
//!
//! Both implementations produce identical results (a property test
//! enforces it); both implement the exact semantics of Definitions 2–3:
//!
//! 1. **Grid partitioning** — assign every point to its ε-cell.
//! 2. **Dense cell map** — mark cells with ≥ `minPts` points; their points
//!    are core without any distance computation (Lemma 1).
//! 3. **Core points** — for points of non-dense cells, count neighbors in
//!    the ≤ k_d neighboring cells, stopping early at `minPts`.
//! 4. **Core cell map** — mark cells that contain a core point.
//! 5. **Outliers** — points of non-core cells are outliers unless within ε
//!    of a core point in a neighboring core cell; cells with no core
//!    neighbor are all outliers outright.

use std::time::{Duration, Instant};

use dbscout_data::{materialize, PointSource};
use dbscout_dataflow::executor::{run_exclusive_tasks, run_tasks, run_tasks_with};
use dbscout_spatial::distance::within;
use dbscout_spatial::points::PointId;
use dbscout_spatial::{
    CellCoord, CellMajorBuilder, CellMajorStore, Grid, KernelKind, NeighborOffsets, PointStore,
    ScatterShard, SpatialError, MAX_DIMS,
};
use dbscout_telemetry::KernelCounters;

use crate::cellmap::{CellFlags, CellMap};
use crate::error::Result;
use crate::labels::{OutlierResult, PhaseTimings, PointLabel, RunStats};
use crate::params::DbscoutParams;

/// The DBSCOUT detector.
///
/// ```
/// use dbscout_core::{Dbscout, DbscoutParams};
/// use dbscout_spatial::PointStore;
///
/// // A tight cluster of 6 points plus one far-away point.
/// let mut rows: Vec<Vec<f64>> = (0..6)
///     .map(|i| vec![(i as f64) * 0.1, 0.0])
///     .collect();
/// rows.push(vec![100.0, 100.0]);
/// let store = PointStore::from_rows(2, rows).unwrap();
///
/// let params = DbscoutParams::new(1.0, 5).unwrap();
/// let result = Dbscout::new(params).detect(&store).unwrap();
/// assert_eq!(result.outliers, vec![6]);
/// ```
#[derive(Debug, Clone)]
pub struct Dbscout {
    params: DbscoutParams,
    threads: usize,
    options: NativeOptions,
    layout: ExecutionLayout,
    kernel: KernelKind,
}

/// Which physical layout the phase-3/phase-5 scans run on. Both layouts
/// implement the identical semantics (a property test pins label
/// equality); they differ only in memory traversal and pruning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionLayout {
    /// Walk the hash-keyed [`Grid`]: one hash probe plus a pointer chase
    /// per neighbor cell *per point*. Kept for comparison benchmarks.
    Hashed,
    /// Scan the cell-contiguous columnar [`CellMajorStore`]: neighbor
    /// cells are resolved once per cell, per-cell bounding boxes prune
    /// unreachable cells, and the counted kernels stream contiguous
    /// columns. The default.
    #[default]
    CellMajor,
}

/// Ablation switches for the native engine. Both default to `true`
/// (the paper's algorithm); disabling them never changes the result —
/// only the amount of distance work — which the ablation benchmarks
/// measure and a test asserts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NativeOptions {
    /// Lemma 1: skip the neighborhood count for points of dense cells.
    pub dense_cell_shortcut: bool,
    /// §III-G: stop counting at `minPts` / stop at the first covering
    /// core point.
    pub early_exit: bool,
}

impl Default for NativeOptions {
    fn default() -> Self {
        Self {
            dense_cell_shortcut: true,
            early_exit: true,
        }
    }
}

impl Dbscout {
    /// A detector with the given parameters, using all available CPUs.
    pub fn new(params: DbscoutParams) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self {
            params,
            threads,
            options: NativeOptions::default(),
            layout: ExecutionLayout::default(),
            kernel: KernelKind::default(),
        }
    }

    /// Overrides the number of worker threads (≥ 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Overrides the distance kernel of the cell-major hot loops
    /// (results and kernel-counter totals are unaffected; only the loop
    /// shape changes). The hashed layout ignores this and runs scalar.
    pub fn with_kernel(mut self, kernel: KernelKind) -> Self {
        self.kernel = kernel;
        self
    }

    /// Overrides the ablation switches (results are unaffected; only the
    /// work changes).
    pub fn with_options(mut self, options: NativeOptions) -> Self {
        self.options = options;
        self
    }

    /// Overrides the execution layout (results are unaffected; only the
    /// memory traversal changes).
    pub fn with_layout(mut self, layout: ExecutionLayout) -> Self {
        self.layout = layout;
        self
    }

    /// The configured parameters.
    pub fn params(&self) -> DbscoutParams {
        self.params
    }

    /// The configured execution layout.
    pub fn layout(&self) -> ExecutionLayout {
        self.layout
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The configured distance kernel (possibly `Auto`).
    pub fn kernel(&self) -> KernelKind {
        self.kernel
    }

    /// Detects all outliers of `store` (Definition 3), exactly.
    ///
    /// Runs in O(n · minPts · k_d) distance computations — linear in n for
    /// fixed parameters (Lemmas 4–8).
    pub fn detect(&self, store: &PointStore) -> Result<OutlierResult> {
        match self.layout {
            ExecutionLayout::Hashed => self.detect_hashed(store),
            ExecutionLayout::CellMajor => self.detect_cell_major(store),
        }
    }

    /// The original grid-walking implementation: phases 3/5 look every
    /// neighbor cell up in the [`Grid`] hash map for every point.
    fn detect_hashed(&self, store: &PointStore) -> Result<OutlierResult> {
        let eps_sq = self.params.eps_sq();
        let min_pts = self.params.min_pts;
        let options = self.options;
        let mut timings = PhaseTimings::default();

        // Phase 1: grid partitioning (Algorithm 1).
        let t = Instant::now();
        let grid = Grid::build(store, self.params.eps)?;
        timings.grid = t.elapsed();

        // Phase 2: dense cell map (Algorithm 2).
        let t = Instant::now();
        let mut cell_map = CellMap::from_counts(
            store.dims(),
            grid.cells().map(|(c, ids)| (*c, ids.len())),
            min_pts,
        )?;
        timings.dense_map = t.elapsed();

        // Phase 3: core points identification (Algorithm 3).
        let t = Instant::now();
        // Canonicalize the hash-ordered cell iteration so chunk assignment
        // (and with it per-chunk telemetry) is a pure function of the grid.
        let mut cells: Vec<(&CellCoord, &[PointId])> = grid.cells().collect();
        cells.sort_unstable_by_key(|&(coord, _)| coord);
        let chunks = chunk_ranges(cells.len(), self.threads * 4);
        let tasks: Vec<_> = chunks
            .iter()
            .map(|range| {
                let cells = &cells;
                let grid = &grid;
                let cell_map = &cell_map;
                let range = range.clone();
                move || {
                    let mut core: Vec<PointId> = Vec::new();
                    let mut promoted: Vec<CellCoord> = Vec::new();
                    let mut counters = KernelCounters::new();
                    for &(cell, ids) in cells.get(range.clone()).into_iter().flatten() {
                        counters.cells_visited += 1;
                        if options.dense_cell_shortcut && cell_map.is_dense(cell) {
                            // Lemma 1: every point of a dense cell is core.
                            core.extend_from_slice(ids);
                            continue;
                        }
                        let mut any_core = false;
                        for &p in ids {
                            let pc = store.point(p);
                            let mut count = 0usize;
                            'offsets: for n in cell_map.neighbors(cell) {
                                let Some(qs) = grid.points_in(&n) else {
                                    continue;
                                };
                                for &q in qs {
                                    counters.distance_evals += 1;
                                    if within(pc, store.point(q), eps_sq) {
                                        count += 1;
                                        if options.early_exit && count >= min_pts {
                                            counters.early_exit_hits += 1;
                                            break 'offsets;
                                        }
                                    }
                                }
                            }
                            if count >= min_pts {
                                core.push(p);
                                any_core = true;
                            }
                        }
                        if any_core {
                            promoted.push(*cell);
                        }
                    }
                    (core, promoted, counters)
                }
            })
            .collect();
        let phase3 = run_tasks(self.threads, tasks)?;
        let mut is_core = vec![false; store.len() as usize];
        let mut kernel = KernelCounters::new();
        let mut promotions: Vec<CellCoord> = Vec::new();
        for (core, promoted, kc) in phase3 {
            for p in core {
                if let Some(slot) = is_core.get_mut(p as usize) {
                    *slot = true;
                }
            }
            promotions.extend(promoted);
            kernel.merge(&kc);
        }
        timings.core_points = t.elapsed();

        // Phase 4: core cell map (Algorithm 4).
        let t = Instant::now();
        for cell in &promotions {
            cell_map.promote_to_core(cell);
        }
        timings.core_map = t.elapsed();

        // Phase 5: outliers identification (Algorithm 5).
        let t = Instant::now();
        let tasks: Vec<_> = chunks
            .iter()
            .map(|range| {
                let cells = &cells;
                let grid = &grid;
                let cell_map = &cell_map;
                let is_core = &is_core;
                let range = range.clone();
                move || {
                    let mut outliers: Vec<PointId> = Vec::new();
                    let mut counters = KernelCounters::new();
                    for &(cell, ids) in cells.get(range.clone()).into_iter().flatten() {
                        if cell_map.is_core(cell) {
                            // Lemma 2: core cells contain no outliers.
                            continue;
                        }
                        counters.cells_visited += 1;
                        if !cell_map.has_core_neighbor(cell) {
                            // O_ncn: no core cell in reach — all outliers.
                            outliers.extend_from_slice(ids);
                            continue;
                        }
                        for &p in ids {
                            let pc = store.point(p);
                            let mut covered = false;
                            'offsets: for n in cell_map.core_neighbors(cell) {
                                let Some(qs) = grid.points_in(&n) else {
                                    continue;
                                };
                                for &q in qs {
                                    if !is_core.get(q as usize).copied().unwrap_or(false) {
                                        continue;
                                    }
                                    counters.distance_evals += 1;
                                    if within(pc, store.point(q), eps_sq) {
                                        covered = true;
                                        if options.early_exit {
                                            counters.early_exit_hits += 1;
                                            break 'offsets;
                                        }
                                    }
                                }
                            }
                            if !covered {
                                outliers.push(p);
                            }
                        }
                    }
                    (outliers, counters)
                }
            })
            .collect();
        let phase5 = run_tasks(self.threads, tasks)?;
        let mut labels: Vec<PointLabel> = is_core
            .iter()
            .map(|&c| {
                if c {
                    PointLabel::Core
                } else {
                    PointLabel::Covered
                }
            })
            .collect();
        for (outliers, kc) in phase5 {
            for p in outliers {
                if let Some(l) = labels.get_mut(p as usize) {
                    *l = PointLabel::Outlier;
                }
            }
            kernel.merge(&kc);
        }
        timings.outliers = t.elapsed();

        let stats = RunStats {
            num_cells: grid.num_cells(),
            dense_cells: cell_map.dense_cells(),
            core_cells: cell_map.core_cells(),
            distance_computations: kernel.distance_evals,
            kernel,
        };
        Ok(OutlierResult::from_labels(labels, stats, timings))
    }

    /// The cell-major implementation: points live in one cell-contiguous
    /// columnar buffer ([`CellMajorStore`]), neighbor cells are resolved
    /// once per *cell* into per-worker scratch, bounding boxes prune
    /// cells provably outside ε, and the counted kernels stream
    /// contiguous columns with early exit.
    fn detect_cell_major(&self, store: &PointStore) -> Result<OutlierResult> {
        // Phase 1: grid partitioning (Algorithm 1) fused with the
        // cell-major permutation: one pass yields the cell runs, the
        // columnar buffer, and the per-cell bounding boxes.
        let t = Instant::now();
        let cm = self.build_cell_major(store)?;
        let offsets = NeighborOffsets::new(store.dims())?;
        let grid_elapsed = t.elapsed();
        self.run_cell_major_phases(&cm, &offsets, grid_elapsed)
    }

    /// Builds the cell-major layout of `store`, in parallel when more
    /// than one thread is configured. The parallel build is
    /// byte-identical to [`CellMajorStore::build`] by construction
    /// (pinned by a test): pass-1 counts are summed per-worker over
    /// disjoint row chunks and merged (counting is additive, so chunking
    /// cannot change the totals); the prefix-sum layout step is shared;
    /// and pass 2 scatters through [`CellMajorScatter::shards`], where
    /// every shard owns a disjoint cell range and a point's slot is a
    /// pure function of `(cell, arrival id)` — independent of which
    /// shard writes it.
    ///
    /// [`CellMajorScatter::shards`]: dbscout_spatial::CellMajorScatter::shards
    fn build_cell_major(&self, store: &PointStore) -> Result<CellMajorStore> {
        let threads = self.threads;
        let rows = store.len() as usize;
        if threads <= 1 || rows < 2 {
            return Ok(CellMajorStore::build(store, self.params.eps)?);
        }
        let dims = store.dims();
        let eps = self.params.eps;
        let flat = store.flat();

        // Pass 1: per-worker counting over disjoint row chunks.
        let chunks = chunk_ranges(rows, threads);
        let tasks: Vec<_> = chunks
            .iter()
            .map(|range| {
                let range = range.clone();
                move || -> std::result::Result<CellMajorBuilder, SpatialError> {
                    let mut sub = CellMajorBuilder::new(dims, eps)?;
                    let coords = flat
                        .get(range.start * dims..range.end * dims)
                        .unwrap_or(&[]);
                    sub.count_batch(coords)?;
                    Ok(sub)
                }
            })
            .collect();
        let mut builder = CellMajorBuilder::new(dims, eps)?;
        for sub in run_tasks(threads, tasks)? {
            builder.merge(sub?)?;
        }

        // Shared prefix-sum layout step, then the partitioned scatter:
        // each shard replays the whole store and writes only the cells
        // it owns.
        let mut scatter = builder.begin_scatter();
        let tasks: Vec<_> = scatter
            .shards(threads)
            .into_iter()
            .map(|mut shard| move || shard.scatter_batch(flat))
            .collect();
        for done in run_exclusive_tasks(tasks) {
            done?;
        }
        Ok(scatter.finish_sharded()?)
    }

    /// Detects all outliers of a streaming [`PointSource`], exactly, with
    /// peak memory bounded by the finished cell-major layout plus one
    /// batch — never the raw input file.
    ///
    /// On the cell-major layout (the default) the grid is built by the
    /// two-pass streaming [`CellMajorBuilder`]: pass 1 counts points per
    /// ε-cell, the source is [`PointSource::reset`] and pass 2 scatters
    /// the replayed batches straight into the cell-contiguous columns.
    /// The result is identical to materializing the source and calling
    /// [`Self::detect`] — the equivalence suite pins labels *and* stats.
    /// The hashed layout has no streaming grid; it materializes the
    /// source and runs the grid-walking path.
    pub fn detect_source(&self, source: &mut dyn PointSource) -> Result<OutlierResult> {
        match self.layout {
            ExecutionLayout::Hashed => {
                let store = materialize(source)?;
                self.detect_hashed(&store)
            }
            ExecutionLayout::CellMajor => self.detect_source_cell_major(source),
        }
    }

    /// The streaming phase 1: two passes over the source through the
    /// counting builder, then the shared phases 2–5.
    ///
    /// With more than one thread configured, both passes run in parallel
    /// over *batch groups* of up to `threads` batches (peak memory grows
    /// from one batch to one group): pass 1 counts each batch of a group
    /// into its own fresh builder and merges (counting is additive), and
    /// pass 2 replays every group through the partitioned
    /// [`dbscout_spatial::CellMajorScatter::shards`], each shard owning
    /// a disjoint cell range. The finished layout is byte-identical to
    /// the sequential build — a point's slot is a pure function of
    /// `(cell, arrival id)`, and each shard tracks arrival ids across
    /// the whole replay.
    fn detect_source_cell_major(&self, source: &mut dyn PointSource) -> Result<OutlierResult> {
        let t = Instant::now();
        let threads = self.threads;
        let eps = self.params.eps;
        let mut builder = match source.dims() {
            Some(dims) => Some(CellMajorBuilder::new(dims, eps)?),
            None => None,
        };
        if threads <= 1 {
            while let Some(batch) = source.next_batch()? {
                let b = match &mut builder {
                    Some(b) => b,
                    None => builder.insert(CellMajorBuilder::new(batch.dims(), eps)?),
                };
                b.count_batch(batch.coords())?;
            }
        } else {
            let mut dims = None;
            loop {
                let mut group: Vec<Vec<f64>> = Vec::with_capacity(threads);
                while group.len() < threads {
                    let Some(batch) = source.next_batch()? else {
                        break;
                    };
                    if dims.is_none() {
                        dims = Some(batch.dims());
                    }
                    group.push(batch.coords().to_vec());
                }
                let (Some(d), false) = (dims, group.is_empty()) else {
                    break;
                };
                let b = match &mut builder {
                    Some(b) => b,
                    None => builder.insert(CellMajorBuilder::new(d, eps)?),
                };
                let tasks: Vec<_> = group
                    .iter()
                    .map(|coords| {
                        let coords = coords.as_slice();
                        move || -> std::result::Result<CellMajorBuilder, SpatialError> {
                            let mut sub = CellMajorBuilder::new(d, eps)?;
                            sub.count_batch(coords)?;
                            Ok(sub)
                        }
                    })
                    .collect();
                for sub in run_tasks(threads, tasks)? {
                    b.merge(sub?)?;
                }
            }
        }
        let Some(builder) = builder else {
            // The source produced no batches and never declared a
            // dimensionality — an empty dataset.
            return Ok(OutlierResult::from_labels(
                Vec::new(),
                RunStats::default(),
                PhaseTimings::default(),
            ));
        };
        source.reset()?;
        let mut scatter = builder.begin_scatter();
        let cm = if threads <= 1 {
            while let Some(batch) = source.next_batch()? {
                scatter.scatter_batch(batch.coords())?;
            }
            scatter.finish()?
        } else {
            // The shards persist across groups: each carries its own
            // arrival-id cursor through the whole replay, so batch
            // grouping cannot move a point between slots.
            let mut shards = scatter.shards(threads);
            loop {
                let mut group: Vec<Vec<f64>> = Vec::with_capacity(threads);
                while group.len() < threads {
                    let Some(batch) = source.next_batch()? else {
                        break;
                    };
                    group.push(batch.coords().to_vec());
                }
                if group.is_empty() {
                    break;
                }
                let group = &group;
                let tasks: Vec<_> = shards
                    .into_iter()
                    .map(|mut shard| {
                        move || -> std::result::Result<ScatterShard<'_>, SpatialError> {
                            for coords in group {
                                shard.scatter_batch(coords)?;
                            }
                            Ok(shard)
                        }
                    })
                    .collect();
                shards = Vec::with_capacity(tasks.len());
                for shard in run_exclusive_tasks(tasks) {
                    shards.push(shard?);
                }
            }
            drop(shards);
            scatter.finish_sharded()?
        };
        let offsets = NeighborOffsets::new(cm.dims())?;
        let grid_elapsed = t.elapsed();
        self.run_cell_major_phases(&cm, &offsets, grid_elapsed)
    }

    /// Phases 2–5 over a built cell-major layout — shared verbatim by the
    /// materialized and streaming entry points, which is what makes their
    /// equivalence structural rather than coincidental.
    fn run_cell_major_phases(
        &self,
        cm: &CellMajorStore,
        offsets: &NeighborOffsets,
        grid_elapsed: Duration,
    ) -> Result<OutlierResult> {
        let eps_sq = self.params.eps_sq();
        let min_pts = self.params.min_pts;
        let options = self.options;
        let kind = self.kernel;
        let mut timings = PhaseTimings {
            grid: grid_elapsed,
            ..PhaseTimings::default()
        };

        // Phase 2: dense cell map (Algorithm 2), keyed by cell index.
        let t = Instant::now();
        let mut flags = CellFlags::from_counts(cm.cells().iter().map(|r| r.len()), min_pts)?;
        timings.dense_map = t.elapsed();

        let n = cm.len();
        let chunks = chunk_ranges(cm.num_cells(), self.threads * 4);

        // Phase 3: core points identification (Algorithm 3). Tasks
        // return core *slots*; the permutation maps back to ids at the
        // end. The scratch (neighbor list + gathered query point) is
        // per-worker, so the loop allocates nothing.
        let t = Instant::now();
        let tasks: Vec<_> = chunks
            .iter()
            .map(|range| {
                let cm = &cm;
                let flags = &flags;
                let offsets = &offsets;
                let range = range.clone();
                move |scratch: &mut CellScratch| {
                    core_points_in_range(
                        cm,
                        flags,
                        offsets,
                        eps_sq,
                        min_pts,
                        options,
                        kind,
                        range.clone(),
                        scratch,
                    )
                }
            })
            .collect();
        let phase3 = run_tasks_with(self.threads, CellScratch::new, tasks)?;
        let mut core_slot = vec![false; n];
        let mut kernel = KernelCounters::new();
        let mut promotions: Vec<u32> = Vec::new();
        for (core, promoted, kc) in phase3 {
            for slot in core {
                if let Some(s) = core_slot.get_mut(slot as usize) {
                    *s = true;
                }
            }
            promotions.extend(promoted);
            kernel.merge(&kc);
        }
        timings.core_points = t.elapsed();

        // Phase 4: core cell map (Algorithm 4).
        let t = Instant::now();
        for idx in &promotions {
            flags.promote_to_core(*idx as usize);
        }
        timings.core_map = t.elapsed();

        // Phase 5: outliers identification (Algorithm 5). Only non-core
        // cells are scanned (Lemma 2); their pruned core neighbors are
        // resolved once per cell.
        let t = Instant::now();
        let tasks: Vec<_> = chunks
            .iter()
            .map(|range| {
                let cm = &cm;
                let flags = &flags;
                let offsets = &offsets;
                let core_slot = &core_slot;
                let range = range.clone();
                move |scratch: &mut CellScratch| {
                    outliers_in_range(
                        cm,
                        flags,
                        offsets,
                        eps_sq,
                        options,
                        kind,
                        core_slot,
                        range.clone(),
                        scratch,
                    )
                }
            })
            .collect();
        let phase5 = run_tasks_with(self.threads, CellScratch::new, tasks)?;

        // Scatter slot-indexed results back to id-indexed labels through
        // the permutation.
        let mut labels = vec![PointLabel::Covered; n];
        let ids = cm.orig_ids();
        for (slot, &is_core) in core_slot.iter().enumerate() {
            if is_core {
                if let Some(l) = ids.get(slot).and_then(|&id| labels.get_mut(id as usize)) {
                    *l = PointLabel::Core;
                }
            }
        }
        for (outliers, kc) in phase5 {
            for slot in outliers {
                if let Some(l) = ids
                    .get(slot as usize)
                    .and_then(|&id| labels.get_mut(id as usize))
                {
                    *l = PointLabel::Outlier;
                }
            }
            kernel.merge(&kc);
        }
        timings.outliers = t.elapsed();

        let stats = RunStats {
            num_cells: cm.num_cells(),
            dense_cells: flags.dense_cells(),
            core_cells: flags.core_cells(),
            distance_computations: kernel.distance_evals,
            kernel,
        };
        Ok(OutlierResult::from_labels(labels, stats, timings))
    }
}

/// The phase-3 kernel over one contiguous cell range: classifies every
/// point of cells `range` as core or not (Algorithm 3), returning the
/// core *slots*, the indices of cells promoted by a non-dense core
/// point, and the kernel work counters spent.
///
/// Shared verbatim by the threaded chunks of
/// [`Dbscout::detect`] and the process-worker shards of
/// [`crate::process`] — which is what makes the two backends' labels
/// *and* work counters identical by construction: a cell's work is a
/// pure function of the layout, so any partition of `0..num_cells` into
/// ranges sums to the same totals. The same holds for `kernel`: the
/// unrolled kernels tally exactly the comparisons the scalar loop
/// makes, so counter totals are kernel-invariant too.
#[allow(clippy::too_many_arguments)]
pub(crate) fn core_points_in_range(
    cm: &CellMajorStore,
    flags: &CellFlags,
    offsets: &NeighborOffsets,
    eps_sq: f64,
    min_pts: usize,
    options: NativeOptions,
    kernel: KernelKind,
    range: std::ops::Range<usize>,
    scratch: &mut CellScratch,
) -> (Vec<u32>, Vec<u32>, KernelCounters) {
    let mut core: Vec<u32> = Vec::new();
    let mut promoted: Vec<u32> = Vec::new();
    let mut counters = KernelCounters::new();
    for idx in range {
        let Some(rec) = cm.cell(idx) else { continue };
        counters.cells_visited += 1;
        if options.dense_cell_shortcut && flags.is_dense(idx) {
            // Lemma 1: every point of a dense cell is core.
            core.extend(rec.start..rec.end);
            continue;
        }
        cm.neighbors_into(idx, offsets, Some(eps_sq), &mut scratch.neighbors);
        let mut any_core = false;
        for slot in rec.range() {
            cm.point_into(slot, &mut scratch.q);
            // dims ≤ MAX_DIMS is validated at store build.
            let Some(q) = scratch.q.get(..cm.dims()) else {
                continue;
            };
            let mut count = 0usize;
            for &nidx in &scratch.neighbors {
                let nidx = nidx as usize;
                if cm.min_sq_dist_to_bbox(q, nidx) > eps_sq {
                    counters.bbox_prunes += 1;
                    continue; // no point of that cell can be within eps
                }
                let Some(nrec) = cm.cell(nidx) else { continue };
                let limit = if options.early_exit {
                    min_pts - count
                } else {
                    usize::MAX
                };
                let (c, comps) = cm.count_within_kernel(q, nrec.range(), eps_sq, limit, kernel);
                count += c;
                counters.distance_evals += comps;
                if options.early_exit && count >= min_pts {
                    counters.early_exit_hits += 1;
                    break;
                }
            }
            if count >= min_pts {
                core.push(slot as u32);
                any_core = true;
            }
        }
        if any_core {
            promoted.push(idx as u32);
        }
    }
    (core, promoted, counters)
}

/// The phase-5 kernel over one contiguous cell range: finds the outlier
/// *slots* among points of non-core cells in `range` (Algorithm 5),
/// given the global core-slot bitmap, plus the kernel work counters
/// spent. Shared by both backends exactly like
/// [`core_points_in_range`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn outliers_in_range(
    cm: &CellMajorStore,
    flags: &CellFlags,
    offsets: &NeighborOffsets,
    eps_sq: f64,
    options: NativeOptions,
    kernel: KernelKind,
    core_slot: &[bool],
    range: std::ops::Range<usize>,
    scratch: &mut CellScratch,
) -> (Vec<u32>, KernelCounters) {
    let mut outliers: Vec<u32> = Vec::new();
    let mut counters = KernelCounters::new();
    for idx in range {
        if flags.is_core(idx) {
            // Lemma 2: core cells contain no outliers.
            continue;
        }
        let Some(rec) = cm.cell(idx) else { continue };
        counters.cells_visited += 1;
        cm.neighbors_into(idx, offsets, Some(eps_sq), &mut scratch.neighbors);
        scratch
            .neighbors
            .retain(|&nidx| flags.is_core(nidx as usize));
        if scratch.neighbors.is_empty() {
            // O_ncn: no core cell in reach — all outliers.
            outliers.extend(rec.start..rec.end);
            continue;
        }
        for slot in rec.range() {
            cm.point_into(slot, &mut scratch.q);
            // dims ≤ MAX_DIMS is validated at store build.
            let Some(q) = scratch.q.get(..cm.dims()) else {
                continue;
            };
            let mut covered = false;
            for &nidx in &scratch.neighbors {
                let nidx = nidx as usize;
                if cm.min_sq_dist_to_bbox(q, nidx) > eps_sq {
                    counters.bbox_prunes += 1;
                    continue;
                }
                let Some(nrec) = cm.cell(nidx) else { continue };
                let (hit, comps) = cm.any_flagged_within_kernel(
                    q,
                    nrec.range(),
                    eps_sq,
                    core_slot,
                    options.early_exit,
                    kernel,
                );
                counters.distance_evals += comps;
                if hit {
                    covered = true;
                    if options.early_exit {
                        counters.early_exit_hits += 1;
                        break;
                    }
                }
            }
            if !covered {
                outliers.push(slot as u32);
            }
        }
    }
    (outliers, counters)
}

/// Per-worker reusable scratch of the cell-major phases: the resolved
/// neighbor-cell list and the gathered query point. Built once per worker
/// by [`run_tasks_with`]; cleared by the kernels on use.
pub(crate) struct CellScratch {
    neighbors: Vec<u32>,
    q: [f64; MAX_DIMS],
}

impl CellScratch {
    pub(crate) fn new() -> Self {
        Self {
            // k_d is at most 609 for the supported dims; one neighbor
            // list never reallocates after this.
            neighbors: Vec::with_capacity(64),
            q: [0.0; MAX_DIMS],
        }
    }
}

/// Splits `len` items into at most `parts` contiguous ranges of nearly
/// equal size.
pub(crate) fn chunk_ranges(len: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, len);
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let size = base + usize::from(p < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// One-shot convenience: detect with all defaults. Thin wrapper over
/// [`crate::DetectorBuilder`] — reach for the builder when any knob
/// (threads, layout, engine, join strategy) needs setting.
pub fn detect_outliers(store: &PointStore, params: DbscoutParams) -> Result<OutlierResult> {
    Dbscout::new(params).detect(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::naive_labels;

    fn store_2d(points: &[[f64; 2]]) -> PointStore {
        PointStore::from_rows(2, points.iter().map(|p| p.to_vec())).unwrap()
    }

    #[test]
    fn chunk_ranges_cover_everything() {
        for len in [0usize, 1, 7, 100] {
            for parts in [1usize, 3, 8, 200] {
                let ranges = chunk_ranges(len, parts);
                let total: usize = ranges.iter().map(|r| r.len()).sum();
                assert_eq!(total, len, "len {len} parts {parts}");
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    next = r.end;
                }
            }
        }
    }

    #[test]
    fn single_far_point_is_outlier() {
        let mut pts: Vec<[f64; 2]> = (0..10)
            .map(|i| [(i % 5) as f64 * 0.1, (i / 5) as f64 * 0.1])
            .collect();
        pts.push([50.0, 50.0]);
        let store = store_2d(&pts);
        let r = detect_outliers(&store, DbscoutParams::new(1.0, 5).unwrap()).unwrap();
        assert_eq!(r.outliers, vec![10]);
        assert_eq!(r.labels[10], PointLabel::Outlier);
        assert!(r.num_core() >= 1);
    }

    #[test]
    fn all_points_outliers_when_sparse() {
        let pts: Vec<[f64; 2]> = (0..8).map(|i| [i as f64 * 100.0, 0.0]).collect();
        let store = store_2d(&pts);
        let r = detect_outliers(&store, DbscoutParams::new(1.0, 2).unwrap()).unwrap();
        assert_eq!(r.num_outliers(), 8);
        assert_eq!(r.stats.core_cells, 0);
    }

    #[test]
    fn no_outliers_in_one_dense_blob() {
        let pts: Vec<[f64; 2]> = (0..25)
            .map(|i| [(i % 5) as f64 * 0.01, (i / 5) as f64 * 0.01])
            .collect();
        let store = store_2d(&pts);
        let r = detect_outliers(&store, DbscoutParams::new(0.5, 5).unwrap()).unwrap();
        assert_eq!(r.num_outliers(), 0);
        assert_eq!(r.num_core(), 25);
        assert!(r.stats.dense_cells >= 1);
    }

    #[test]
    fn min_pts_one_makes_everything_core() {
        let pts: Vec<[f64; 2]> = (0..5).map(|i| [i as f64 * 1000.0, 0.0]).collect();
        let store = store_2d(&pts);
        let r = detect_outliers(&store, DbscoutParams::new(0.1, 1).unwrap()).unwrap();
        assert_eq!(r.num_core(), 5);
        assert_eq!(r.num_outliers(), 0);
    }

    #[test]
    fn empty_store() {
        let store = PointStore::new(2).unwrap();
        let r = detect_outliers(&store, DbscoutParams::new(1.0, 5).unwrap()).unwrap();
        assert!(r.labels.is_empty());
        assert!(r.outliers.is_empty());
        assert_eq!(r.stats.num_cells, 0);
    }

    #[test]
    fn border_point_is_covered_not_outlier() {
        // A tight chain of 5 points (all core with minPts = 5 and
        // eps = 0.5) plus a hanger-on at x = 0.9: it has only 2 points
        // within eps (0.4 and itself) so it is not core, but it is within
        // eps of the core point at 0.4 — covered, not outlier. The
        // distance to that core point is exactly eps (closed ball,
        // Definition 2/3).
        let mut pts: Vec<[f64; 2]> = (0..5).map(|i| [i as f64 * 0.1, 0.0]).collect();
        pts.push([0.9, 0.0]);
        let store = store_2d(&pts);
        let r = detect_outliers(&store, DbscoutParams::new(0.5, 5).unwrap()).unwrap();
        assert_eq!(r.labels[5], PointLabel::Covered);
        assert_eq!(r.labels[4], PointLabel::Core);
        assert_eq!(r.num_outliers(), 0);
    }

    #[test]
    fn point_just_beyond_eps_is_outlier() {
        let mut pts = vec![[0.0, 0.0]; 5];
        pts.push([1.0 + 1e-9, 0.0]);
        let store = store_2d(&pts);
        let r = detect_outliers(&store, DbscoutParams::new(1.0, 5).unwrap()).unwrap();
        assert_eq!(r.outliers, vec![5]);
    }

    #[test]
    fn matches_naive_reference_on_small_grid() {
        // A structured layout exercising dense cells, non-dense core
        // cells, covered points and outliers at once.
        let mut pts = Vec::new();
        // Blob A: 3x3 grid spaced 0.3 (all mutually within eps = 1).
        for i in 0..3 {
            for j in 0..3 {
                pts.push([i as f64 * 0.3, j as f64 * 0.3]);
            }
        }
        // A chain leading away.
        pts.push([1.5, 0.0]);
        pts.push([2.4, 0.0]);
        // Lone points.
        pts.push([10.0, 10.0]);
        pts.push([-7.0, 3.0]);
        let store = store_2d(&pts);
        let params = DbscoutParams::new(1.0, 5).unwrap();
        let got = detect_outliers(&store, params).unwrap();
        let expected = naive_labels(&store, params);
        assert_eq!(got.labels, expected);
    }

    #[test]
    fn thread_count_does_not_change_result() {
        let mut pts = Vec::new();
        for i in 0..40 {
            pts.push([
                (i % 8) as f64 * 0.4 + (i as f64 * 0.618).fract() * 0.1,
                (i / 8) as f64 * 0.4,
            ]);
        }
        pts.push([25.0, 25.0]);
        let store = store_2d(&pts);
        let params = DbscoutParams::new(1.0, 6).unwrap();
        let single = Dbscout::new(params).with_threads(1).detect(&store).unwrap();
        for threads in [2, 4, 8] {
            let multi = Dbscout::new(params)
                .with_threads(threads)
                .detect(&store)
                .unwrap();
            assert_eq!(single.labels, multi.labels, "threads {threads}");
            assert_eq!(single.outliers, multi.outliers);
        }
    }

    #[test]
    fn distance_computations_are_bounded_linearly() {
        // Lemma 6/8: at most n * minPts * k_d comparisons per pass. Build
        // a worst-case-ish uniform layout and check the bound (x2 for the
        // two passes).
        let mut pts = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                pts.push([i as f64 * 0.9, j as f64 * 0.9]);
            }
        }
        let store = store_2d(&pts);
        let min_pts = 4usize;
        let params = DbscoutParams::new(1.0, min_pts).unwrap();
        let r = detect_outliers(&store, params).unwrap();
        let n = store.len() as u64;
        let bound = 2 * n * min_pts as u64 * 21;
        assert!(
            r.stats.distance_computations <= bound,
            "{} > {}",
            r.stats.distance_computations,
            bound
        );
    }

    #[test]
    fn ablation_switches_change_work_not_results() {
        let mut pts = Vec::new();
        for i in 0..120 {
            pts.push([(i % 12) as f64 * 0.25, (i / 12) as f64 * 0.25]);
        }
        pts.push([9.0, 9.0]);
        pts.push([-4.0, 2.0]);
        let store = store_2d(&pts);
        let params = DbscoutParams::new(1.0, 5).unwrap();
        let full = Dbscout::new(params).detect(&store).unwrap();
        let mut prev_work = full.stats.distance_computations;
        for options in [
            NativeOptions {
                dense_cell_shortcut: false,
                early_exit: true,
            },
            NativeOptions {
                dense_cell_shortcut: true,
                early_exit: false,
            },
            NativeOptions {
                dense_cell_shortcut: false,
                early_exit: false,
            },
        ] {
            let ablated = Dbscout::new(params)
                .with_options(options)
                .detect(&store)
                .unwrap();
            assert_eq!(ablated.labels, full.labels, "{options:?} changed results");
            assert!(
                ablated.stats.distance_computations >= full.stats.distance_computations,
                "{options:?} did less work than the optimized run"
            );
            prev_work = prev_work.max(ablated.stats.distance_computations);
        }
        assert!(
            prev_work > full.stats.distance_computations,
            "disabling every optimization must cost extra distance work"
        );
    }

    #[test]
    fn kernel_counters_are_thread_invariant_and_mirror_distance_count() {
        let mut pts = Vec::new();
        for i in 0..60 {
            pts.push([
                (i % 10) as f64 * 0.35 + (i as f64 * 0.618).fract() * 0.05,
                (i / 10) as f64 * 0.35,
            ]);
        }
        pts.push([40.0, 40.0]);
        let store = store_2d(&pts);
        let params = DbscoutParams::new(1.0, 5).unwrap();
        for layout in [ExecutionLayout::CellMajor, ExecutionLayout::Hashed] {
            let single = Dbscout::new(params)
                .with_layout(layout)
                .with_threads(1)
                .detect(&store)
                .unwrap();
            assert_eq!(
                single.stats.distance_computations, single.stats.kernel.distance_evals,
                "{layout:?}"
            );
            assert!(single.stats.kernel.cells_visited > 0, "{layout:?}");
            for threads in [2, 4, 8] {
                let multi = Dbscout::new(params)
                    .with_layout(layout)
                    .with_threads(threads)
                    .detect(&store)
                    .unwrap();
                assert_eq!(
                    single.stats.kernel, multi.stats.kernel,
                    "{layout:?} threads {threads}"
                );
            }
        }
    }

    #[test]
    fn stats_cell_counts_are_consistent() {
        let mut pts = vec![[0.05, 0.05]; 6];
        pts.push([0.8, 0.05]);
        pts.push([30.0, 30.0]);
        let store = store_2d(&pts);
        let r = detect_outliers(&store, DbscoutParams::new(1.0, 5).unwrap()).unwrap();
        assert!(r.stats.dense_cells <= r.stats.core_cells);
        assert!(r.stats.core_cells <= r.stats.num_cells);
    }
}
