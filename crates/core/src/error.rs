//! Error type for DBSCOUT runs.
//!
//! Every engine — [`crate::Dbscout`], [`crate::DistributedDbscout`],
//! [`crate::IncrementalDbscout`] — reports failures through this one
//! enum, so code generic over [`crate::OutlierDetector`] matches on a
//! single set of variants. Parameter mistakes surface as the dedicated
//! [`DbscoutError::InvalidEpsilon`] / [`DbscoutError::InvalidMinPts`]
//! variants whichever layer catches them; everything else folds into
//! "the input data was bad" ([`DbscoutError::InvalidInput`]) or "the
//! execution substrate failed" ([`DbscoutError::Execution`]).

use std::fmt;

use dbscout_data::DataIoError;
use dbscout_dataflow::EngineError;
use dbscout_spatial::SpatialError;

/// Convenient result alias.
pub type Result<T> = std::result::Result<T, DbscoutError>;

/// Errors from configuring or running DBSCOUT.
#[derive(Debug, Clone, PartialEq)]
pub enum DbscoutError {
    /// ε must be finite and positive.
    InvalidEpsilon {
        /// The offending value.
        value: f64,
    },
    /// `minPts` must be at least 1.
    InvalidMinPts {
        /// The offending value.
        value: usize,
    },
    /// The input data was rejected (dimension mismatch, non-finite
    /// coordinate, unsupported dimensionality, …).
    InvalidInput(SpatialError),
    /// The execution substrate failed (a task panicked, exhausted its
    /// retry budget, bad partitioning, …).
    Execution(EngineError),
    /// A streaming [`dbscout_data::PointSource`] failed mid-detection
    /// (IO error, malformed row in strict mode, corrupt binary payload).
    /// Carries the rendered message so this enum stays `Clone +
    /// PartialEq` (the underlying [`DataIoError`] holds an
    /// [`std::io::Error`], which is neither).
    Ingest(String),
}

impl fmt::Display for DbscoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbscoutError::InvalidEpsilon { value } => {
                write!(f, "eps must be finite and positive, got {value}")
            }
            DbscoutError::InvalidMinPts { value } => {
                write!(f, "minPts must be at least 1, got {value}")
            }
            DbscoutError::InvalidInput(e) => write!(f, "invalid input: {e}"),
            DbscoutError::Execution(e) => write!(f, "execution error: {e}"),
            DbscoutError::Ingest(message) => write!(f, "ingest error: {message}"),
        }
    }
}

impl std::error::Error for DbscoutError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DbscoutError::InvalidInput(e) => Some(e),
            DbscoutError::Execution(e) => Some(e),
            DbscoutError::InvalidEpsilon { .. }
            | DbscoutError::InvalidMinPts { .. }
            | DbscoutError::Ingest(_) => None,
        }
    }
}

impl From<SpatialError> for DbscoutError {
    /// Parameter mistakes caught by the spatial layer are re-expressed as
    /// the top-level parameter variants, so a caller sees the same error
    /// whether validation happened in [`crate::DbscoutParams::new`] or
    /// deep inside an engine.
    fn from(e: SpatialError) -> Self {
        match e {
            SpatialError::InvalidEpsilon { value } => DbscoutError::InvalidEpsilon { value },
            SpatialError::InvalidMinPts => DbscoutError::InvalidMinPts { value: 0 },
            other => DbscoutError::InvalidInput(other),
        }
    }
}

impl From<EngineError> for DbscoutError {
    fn from(e: EngineError) -> Self {
        DbscoutError::Execution(e)
    }
}

impl From<DataIoError> for DbscoutError {
    /// Structural point problems detected during decoding re-enter the
    /// [`SpatialError`] normalization (so e.g. a non-finite coordinate in
    /// a binary file surfaces exactly like one in a materialized store);
    /// everything else is an ingest failure.
    fn from(e: DataIoError) -> Self {
        match e {
            DataIoError::Spatial(s) => s.into(),
            other => DbscoutError::Ingest(other.to_string()),
        }
    }
}

// Compile-time proof of the XL004 contract: the error type is
// `Display + std::error::Error + Send + Sync`.
const fn _assert_error_bounds<T: std::error::Error + Send + Sync + 'static>() {}
const _: () = _assert_error_bounds::<DbscoutError>();

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_errors_normalize_across_layers() {
        // The spatial layer's parameter variants surface as the same
        // top-level variants DbscoutParams::new produces directly.
        let e: DbscoutError = SpatialError::InvalidEpsilon { value: -1.0 }.into();
        assert_eq!(e, DbscoutError::InvalidEpsilon { value: -1.0 });
        let e: DbscoutError = SpatialError::InvalidMinPts.into();
        assert_eq!(e, DbscoutError::InvalidMinPts { value: 0 });
    }

    #[test]
    fn conversions_and_sources() {
        let e: DbscoutError = SpatialError::ZeroDims.into();
        assert!(matches!(e, DbscoutError::InvalidInput(_)));
        assert!(std::error::Error::source(&e).is_some());

        let e: DbscoutError = EngineError::InvalidPartitionCount { requested: 0 }.into();
        assert!(matches!(e, DbscoutError::Execution(_)));
        assert!(std::error::Error::source(&e).is_some());

        let e = DbscoutError::InvalidMinPts { value: 0 };
        assert!(e.to_string().contains("minPts"));
        assert!(std::error::Error::source(&e).is_none());

        let e = DbscoutError::InvalidEpsilon { value: f64::NAN };
        assert!(e.to_string().contains("eps"));
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn ingest_errors_fold_in_but_spatial_causes_normalize() {
        let e: DbscoutError = DataIoError::Truncated.into();
        assert!(matches!(e, DbscoutError::Ingest(_)));
        assert!(e.to_string().contains("truncated"));
        assert!(std::error::Error::source(&e).is_none());

        // A structurally-bad point inside a decoded payload surfaces the
        // same way as one in a materialized store.
        let e: DbscoutError =
            DataIoError::Spatial(SpatialError::InvalidEpsilon { value: -2.0 }).into();
        assert_eq!(e, DbscoutError::InvalidEpsilon { value: -2.0 });
        let e: DbscoutError = DataIoError::Spatial(SpatialError::ZeroDims).into();
        assert!(matches!(e, DbscoutError::InvalidInput(_)));
    }
}
