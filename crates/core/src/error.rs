//! Error type for DBSCOUT runs.

use std::fmt;

use dbscout_dataflow::EngineError;
use dbscout_spatial::SpatialError;

/// Convenient result alias.
pub type Result<T> = std::result::Result<T, DbscoutError>;

/// Errors from configuring or running DBSCOUT.
#[derive(Debug, Clone, PartialEq)]
pub enum DbscoutError {
    /// Invalid spatial input (bad ε, dimensionality, non-finite data, …).
    Spatial(SpatialError),
    /// The dataflow substrate failed (a task panicked, …).
    Engine(EngineError),
    /// `minPts` must be at least 1.
    InvalidMinPts {
        /// The offending value.
        value: usize,
    },
}

impl fmt::Display for DbscoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbscoutError::Spatial(e) => write!(f, "spatial error: {e}"),
            DbscoutError::Engine(e) => write!(f, "dataflow error: {e}"),
            DbscoutError::InvalidMinPts { value } => {
                write!(f, "minPts must be at least 1, got {value}")
            }
        }
    }
}

impl std::error::Error for DbscoutError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DbscoutError::Spatial(e) => Some(e),
            DbscoutError::Engine(e) => Some(e),
            DbscoutError::InvalidMinPts { .. } => None,
        }
    }
}

impl From<SpatialError> for DbscoutError {
    fn from(e: SpatialError) -> Self {
        DbscoutError::Spatial(e)
    }
}

impl From<EngineError> for DbscoutError {
    fn from(e: EngineError) -> Self {
        DbscoutError::Engine(e)
    }
}

// Compile-time proof of the XL004 contract: the error type is
// `Display + std::error::Error + Send + Sync`.
const fn _assert_error_bounds<T: std::error::Error + Send + Sync + 'static>() {}
const _: () = _assert_error_bounds::<DbscoutError>();

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let e: DbscoutError = SpatialError::ZeroDims.into();
        assert!(matches!(e, DbscoutError::Spatial(_)));
        assert!(std::error::Error::source(&e).is_some());

        let e: DbscoutError = EngineError::InvalidPartitionCount { requested: 0 }.into();
        assert!(matches!(e, DbscoutError::Engine(_)));

        let e = DbscoutError::InvalidMinPts { value: 0 };
        assert!(e.to_string().contains("minPts"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
